#!/usr/bin/env bash
# Tier-1 verification: formatting, lints, build, tests, and a clean
# ks-lint bill of health for the three shipped app kernels (linted with
# the geometry the apps actually launch, all severities escalated to
# deny so any diagnostic fails CI).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --offline --release

echo "== cargo test"
cargo test --offline -q

# Concurrency stress tests run in release mode: the optimized build
# shrinks the compile window enough to actually exercise the
# single-flight dedup and eviction races (debug timings hide them).
echo "== cargo test --release (cache concurrency stress)"
cargo test --offline --release -q -p ks-core --test concurrency
cargo test --offline --release -q -p ks-tune --test parallel_compile

# Profile one kernel end to end with the JSONL exporter; --selfcheck
# validates the export schema (span nesting, phase sums vs the compile
# span, cache counters == CacheStats, sim counters == launch reports)
# and exits non-zero on any mismatch.
echo "== ks-prof --kernel template_match --export jsonl --selfcheck"
cargo run --offline --release -q -p ks-apps --bin ks-prof -- \
    --kernel template_match --device c2070 --export jsonl --quick \
    --selfcheck > /dev/null

# Fault-injection tier: every gpu-pf example pipeline must complete
# under a seeded FaultPlan (10% transient compile faults, 5% transient
# device faults, plus a persistent fault pinned to one module's
# specialization defines) with zero panics, and the run must be
# deterministic: same seed => byte-identical stdout (the fault event
# log carries no timestamps).
echo "== fault-injection drill (seeded, deterministic)"
FAULT_OUT_A=$(mktemp) FAULT_OUT_B=$(mktemp)
cargo run --offline --release -q -p ks-apps --example fault_injection -- \
    --seed 77 > "$FAULT_OUT_A" 2> /dev/null
cargo run --offline --release -q -p ks-apps --example fault_injection -- \
    --seed 77 > "$FAULT_OUT_B" 2> /dev/null
diff -u "$FAULT_OUT_A" "$FAULT_OUT_B"
grep -q "pipelines completed: 3/3, panics: 0" "$FAULT_OUT_A"
rm -f "$FAULT_OUT_A" "$FAULT_OUT_B"

# Tiered-execution tier: pipelines in tiered refresh mode must serve
# the first launch on the generic binary without waiting for the
# specialized compile, hot-swap every module to Specialized, cancel
# superseded in-flight promotions, and produce byte-identical outputs
# to blocking mode. The example exits non-zero on any violation; the
# greps pin the summary line so a silently-skipped check also fails.
echo "== tiered-execution drill (generic first, hot-swap on promotion)"
TIERED_OUT=$(mktemp)
cargo run --offline --release -q -p ks-apps --example tiered_execution \
    > "$TIERED_OUT" 2> /dev/null
grep -q "modules specialized: 3/3" "$TIERED_OUT"
grep -q "first launch on generic: 3/3" "$TIERED_OUT"
grep -q "superseded: 1, parity: ok" "$TIERED_OUT"
rm -f "$TIERED_OUT"

# Persistent-store tier: compile, drop process state (fresh compiler,
# empty in-memory cache), reload byte-identical binaries from the
# content-addressed store; then corrupt a record on purpose and assert
# a graceful, byte-identical recompile (store_errors == 1, no panic).
echo "== persistent-store drill (warm start, corruption recovery)"
STORE_OUT=$(mktemp)
cargo run --offline --release -q -p ks-apps --example persistent_store \
    > "$STORE_OUT" 2> /dev/null
grep -q "warm restart: 0 compiles, 3/3 disk hits, identical: ok" "$STORE_OUT"
grep -q "corruption: recovered 1/1, store errors: 1, identical: ok" "$STORE_OUT"
rm -f "$STORE_OUT"

# Cross-process cold start: run the full table_6_13 suite twice against
# one store directory. The second run is a real process restart and
# must perform zero compiles, serving every specialization from disk
# (asserted in-process via CacheStats/registry parity).
echo "== table_6_13 cold-start (process restart on a warm store)"
STORE_DIR=$(mktemp -d) BENCH_DIR=$(mktemp -d)
KS_BENCH_DIR="$BENCH_DIR" KS_BENCH_QUICK=1 KS_BENCH_STORE="$STORE_DIR" \
cargo run --offline --release -q -p ks-bench --bin table_6_13 > /dev/null
KS_BENCH_DIR="$BENCH_DIR" KS_BENCH_QUICK=1 KS_BENCH_STORE="$STORE_DIR" \
KS_BENCH_ASSERT_WARM=1 \
cargo run --offline --release -q -p ks-bench --bin table_6_13 \
    | grep -q "warm start verified: 0 compiles"
rm -rf "$STORE_DIR" "$BENCH_DIR"

# The profiler selfcheck must still reconcile exactly — CacheStats ==
# exported profile == registry counters, including the resilience
# columns — while compile faults are being injected and retried.
echo "== ks-prof --selfcheck under injected compile faults"
KS_FAULT_SEED=77 KS_FAULT_COMPILE_PPM=100000 \
cargo run --offline --release -q -p ks-apps --bin ks-prof -- \
    --kernel template_match --device c2070 --export jsonl --quick \
    --selfcheck > /dev/null

# Verification tier: translation validation. Every codegen stage and
# optimizer pass must preserve each app kernel's symbolic summary, and
# the specialized (SK) build must equal the generic (RE) build under
# the -D bindings — zero KSV0xx errors allowed (KSV101 budget warnings
# are fine). The mutation smoke then injects seeded IR breakages and
# requires the checker to catch 100% of them.
verify() {
    cargo run --offline --release -q -p ks-apps --bin ks-verify -- "$@"
}
for k in template_match piv backproj; do
    echo "== ks-verify --kernel $k --check all"
    verify --kernel "$k" --check all > /dev/null
    echo "== ks-verify --kernel $k --mutation-smoke"
    verify --kernel "$k" --mutation-smoke > /dev/null
done

# Compile-latency regression gate: fresh per-phase p50/p95 vs the
# checked-in baseline; a phase fails only past 10x AND the 2 ms floor,
# so machine variance cannot flake the build but order-of-magnitude
# blowups do.
echo "== ks-perfgate --check ci/perf-baseline.txt"
cargo run --offline --release -q -p ks-apps --bin ks-perfgate -- \
    --check ci/perf-baseline.txt --iters 5

lint() {
    cargo run --offline --release -q -p ks-analysis --bin ks-lint -- \
        --deny KSA004 --deny KSA005 "$@"
}

echo "== ks-lint crates/apps/src/kernels/piv.cu"
lint crates/apps/src/kernels/piv.cu \
    -D RB=4 -D THREADS=64 -D MASK_W=16 -D MASK_H=16 -D OFFS_W=9 \
    --block 64 --grid 16,21,1 \
    -A imgW=96 -A numOffsets=81 -A masksX=4 -A stepX=16 -A stepY=16 \
    -A marginX=4 -A marginY=4 -A rb=4

echo "== ks-lint crates/apps/src/kernels/template_match.cu"
lint crates/apps/src/kernels/template_match.cu \
    -D TILE_W=16 -D TILE_H=16 -D SHIFT_W=16 -D NUM_TILES=16 \
    -D TEMPL_W=64 -D TEMPL_H=56 -D THREADS=128 \
    --block 128 \
    -A frameW=320 -A numOffsets=256 -A templW=64 -A templH=56 -A tilesX=4 \
    -A tileX0=0 -A tileY0=0 -A tileBase=0 -A invN=0.00027901786 -A denomA=1.0

echo "== ks-lint crates/apps/src/kernels/backproj.cu"
lint crates/apps/src/kernels/backproj.cu \
    -D PPL=8 -D ZB=4 -D VOL_N=32 \
    --block 16,4 \
    -A detU=48 -A detV=48 -A ppl=8 -A zb=4 -A z0=0 \
    -A sid=100.0 -A sdd=150.0 -A halfN=16.0 -A halfU=24.0 -A halfV=24.0

# Telemetry tier: scoped metrics, rolling windows, and the SLO
# watchdog. (1) The Prometheus exposition must carry a # TYPE line per
# family and labeled samples. (2) A live watch run with a tiny JSONL
# sink must overflow without blocking and without losing accounting
# (offered == drained + dropped, dropped > 0) while the two concurrent
# pipelines keep distinct windowed p95s. (3) The seeded drill must fire
# exactly one typed SLO-breach event against the checked-in baseline,
# and a clean run must fire zero.
echo "== ks-prof --export prom (exposition schema)"
PROM_OUT=$(mktemp)
cargo run --offline --release -q -p ks-apps --bin ks-prof -- \
    --kernel template_match --device c2070 --export prom --quick \
    > "$PROM_OUT" 2> /dev/null
grep -q '^# TYPE ks_core_cache_hits counter$' "$PROM_OUT"
grep -q '^# TYPE ks_sim_occupancy gauge$' "$PROM_OUT"
grep -Eq '^ks_core_cache_hits\{kernel="template_match".*\} [0-9]+$' "$PROM_OUT"
rm -f "$PROM_OUT"

echo "== ks-prof watch (sink overflow drill, per-pipeline windows)"
WATCH_OUT=$(mktemp)
cargo run --offline --release -q -p ks-apps --bin ks-prof -- \
    watch --ticks 6 --window 3 --sink-cap 2 > "$WATCH_OUT" 2> /dev/null
grep -q "distinct: ok" "$WATCH_OUT"
grep -Eq "sink offered=[0-9]+ drained=[0-9]+ dropped=[1-9][0-9]* conserved: ok" \
    "$WATCH_OUT"
rm -f "$WATCH_OUT"

echo "== ks-prof watch --drill-breach (watchdog fires exactly once)"
BREACH_OUT=$(mktemp) CLEAN_OUT=$(mktemp)
cargo run --offline --release -q -p ks-apps --bin ks-prof -- \
    watch --ticks 8 --drill-breach --watchdog ci/perf-baseline.txt \
    > "$BREACH_OUT" 2> /dev/null
test "$(grep -c '^SLO breach' "$BREACH_OUT")" = 1
grep -q "watch: slo breaches=1" "$BREACH_OUT"
cargo run --offline --release -q -p ks-apps --bin ks-prof -- \
    watch --ticks 6 --watchdog ci/perf-baseline.txt > "$CLEAN_OUT" 2> /dev/null
grep -q "watch: slo breaches=0 recoveries=0" "$CLEAN_OUT"
rm -f "$BREACH_OUT" "$CLEAN_OUT"

# Integrity tier: silent-data-corruption defense end to end. (1) The
# seeded SDC drill injects one in-flight bit flip into each app
# kernel's specialized variant; every corruption must be caught by the
# generic-binary witness, adjudicated transient by re-execution voting,
# and recovered — final outputs byte-identical to the fault-free pass,
# which itself must report zero violations. Same seed => byte-identical
# stdout. (2) The store-scrub drill rots one record's payload (header
# intact, so only the full-checksum scrub can see it), asserts it is
# quarantined at attach time and recompiled cleanly; the ks-store-scrub
# CLI then finds the repaired store clean, and a separate process
# warm-starts both variants from it.
echo "== sdc drill (seeded flips detected, recovered, byte-identical)"
SDC_OUT_A=$(mktemp) SDC_OUT_B=$(mktemp)
cargo run --offline --release -q -p ks-apps --example sdc_drill -- \
    --seed 77 > "$SDC_OUT_A" 2> /dev/null
cargo run --offline --release -q -p ks-apps --example sdc_drill -- \
    --seed 77 > "$SDC_OUT_B" 2> /dev/null
diff -u "$SDC_OUT_A" "$SDC_OUT_B"
grep -q "clean pass: violations=0 across 3 pipelines" "$SDC_OUT_A"
grep -q "sdc drill: pipelines 3/3, injected 3, detected 3, recovered 3" \
    "$SDC_OUT_A"
grep -q "outputs byte-identical to fault-free run" "$SDC_OUT_A"
rm -f "$SDC_OUT_A" "$SDC_OUT_B"

echo "== store-scrub drill (rotted payload quarantined, warm restart)"
SCRUB_DIR=$(mktemp -d) SCRUB_OUT=$(mktemp)
cargo run --offline --release -q -p ks-apps --example sdc_drill -- \
    --scrub-drill "$SCRUB_DIR" > "$SCRUB_OUT" 2> /dev/null
grep -q "scrub drill: scanned=2 quarantined=1 recompiled store_errors=0" \
    "$SCRUB_OUT"
cargo run --offline --release -q -p ks-store --bin ks-store-scrub -- \
    "$SCRUB_DIR" | grep -q "2 valid, 0 quarantined"
cargo run --offline --release -q -p ks-apps --example sdc_drill -- \
    --warm-start "$SCRUB_DIR" \
    | grep -q "warm start: scanned=2 quarantined=0 disk_hits=2 store_errors=0"
rm -rf "$SCRUB_DIR" "$SCRUB_OUT"

echo "== ci.sh: all green"
