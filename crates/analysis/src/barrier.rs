//! Static barrier-divergence checking.
//!
//! `__syncthreads()` must be reached by every thread of the block or by
//! none. This pass needs no launch geometry: it taints values that can
//! differ between threads of one block (`%tid.*`, loaded data) and flags
//! any barrier that sits in the *influence region* of a branch on a
//! tainted predicate — the blocks control-dependent on the branch, i.e.
//! everything reachable from a successor before the branch's immediate
//! post-dominator.
//!
//! Uniform values (`%ctaid.*`, `%ntid.*`, grid shape, parameter loads)
//! never taint, so the common `for (i = 0; i < N; ++i) { ... __syncthreads(); }`
//! shape with a parameter-derived bound stays clean. Loads from mutable
//! memory are conservatively tainted: two threads may observe different
//! values. The abstract executor gives the precise answer when geometry
//! is available; this pass is the sound fallback.

use crate::race::Site;
use ks_ir::cfg::{ipdoms, Cfg};
use ks_ir::{BlockId, Function, Inst, Space, SpecialReg, Terminator};

#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceFinding {
    /// The barrier's location.
    pub site: Site,
    /// The branch the barrier is control-dependent on.
    pub branch_block: BlockId,
    pub message: String,
}

/// Blocks reachable from `start` without entering `stop` (which is
/// excluded from the result).
fn reachable_before(f: &Function, start: BlockId, stop: Option<BlockId>) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    if Some(start) == stop {
        return seen;
    }
    let mut work = vec![start];
    seen[start.0 as usize] = true;
    while let Some(b) = work.pop() {
        for s in f.block(b).term.successors() {
            if Some(s) == stop || seen[s.0 as usize] {
                continue;
            }
            seen[s.0 as usize] = true;
            work.push(s);
        }
    }
    seen
}

/// Per-vreg thread-dependence taint, with implicit flows through divergent
/// control: a value defined under a tainted branch is itself tainted, since
/// whether the definition executed depends on the thread.
fn thread_dependent(f: &Function, pdom: &[Option<BlockId>]) -> Vec<bool> {
    let nv = f.num_vregs();
    let mut taint = vec![false; nv];
    loop {
        let mut changed = false;
        let set = |taint: &mut Vec<bool>, r: ks_ir::VReg, v: bool, changed: &mut bool| {
            if v && !taint[r.0 as usize] {
                taint[r.0 as usize] = true;
                *changed = true;
            }
        };
        // Influence regions of currently-tainted branches.
        let mut divergent_block = vec![false; f.blocks.len()];
        for bb in &f.blocks {
            if let Terminator::CondBr {
                pred,
                then_t,
                else_t,
                ..
            } = &bb.term
            {
                if taint[pred.0 as usize] {
                    let stop = pdom[bb.id.0 as usize];
                    for start in [*then_t, *else_t] {
                        for (i, r) in reachable_before(f, start, stop).iter().enumerate() {
                            divergent_block[i] |= r;
                        }
                    }
                }
            }
        }
        for bb in &f.blocks {
            let implicit = divergent_block[bb.id.0 as usize];
            for inst in &bb.insts {
                let mut any_use_tainted = implicit;
                inst.for_each_use(|r| any_use_tainted |= taint[r.0 as usize]);
                let from_space = match inst {
                    Inst::Special { reg, .. } => {
                        matches!(reg, SpecialReg::TidX | SpecialReg::TidY | SpecialReg::TidZ)
                    }
                    // Parameter loads are uniform; every other load may
                    // observe per-thread data.
                    Inst::Ld { space, .. } => !matches!(space, Space::Param),
                    Inst::Tex { .. } => true,
                    _ => false,
                };
                if let Some(d) = inst.def() {
                    set(&mut taint, d, any_use_tainted || from_space, &mut changed);
                }
            }
        }
        if !changed {
            break;
        }
    }
    taint
}

/// Find every barrier reachable under thread-dependent control flow.
pub fn check_barrier_divergence(f: &Function) -> Vec<DivergenceFinding> {
    if !f
        .blocks
        .iter()
        .any(|b| b.insts.iter().any(|i| matches!(i, Inst::Bar)))
    {
        return Vec::new();
    }
    let cfg = Cfg::build(f);
    let pdom = ipdoms(f, &cfg);
    let taint = thread_dependent(f, &pdom);

    let mut findings = Vec::new();
    for bb in &f.blocks {
        let Terminator::CondBr {
            pred,
            then_t,
            else_t,
            ..
        } = &bb.term
        else {
            continue;
        };
        if !taint[pred.0 as usize] {
            continue;
        }
        let stop = pdom[bb.id.0 as usize];
        let mut region = vec![false; f.blocks.len()];
        for start in [*then_t, *else_t] {
            for (i, r) in reachable_before(f, start, stop).iter().enumerate() {
                region[i] |= r;
            }
        }
        for tb in &f.blocks {
            if !region[tb.id.0 as usize] {
                continue;
            }
            for (ii, inst) in tb.insts.iter().enumerate() {
                if matches!(inst, Inst::Bar) {
                    let site = (tb.id.0, ii);
                    if findings.iter().any(|d: &DivergenceFinding| d.site == site) {
                        continue;
                    }
                    findings.push(DivergenceFinding {
                        site,
                        branch_block: bb.id,
                        message: format!(
                            "__syncthreads() in {} is control-dependent on the \
                             thread-varying branch in {}; threads that skip it \
                             deadlock the block",
                            tb.id, bb.id
                        ),
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_ir::{Address, BasicBlock, CmpOp, Operand, Ty};

    fn branchy_kernel(pred_from_tid: bool) -> Function {
        // %p = setp.lt (tid|param), 16 ; @%p bra BB1 ; BB1: bar ; BB2: ret
        let mut f = Function {
            name: "k".into(),
            params: vec![ks_ir::KernelParam {
                name: "n".into(),
                ty: Ty::S32,
                offset: 0,
            }],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        };
        let v = f.new_vreg(Ty::S32);
        let p = f.new_vreg(Ty::Pred);
        let src = if pred_from_tid {
            Inst::Special {
                dst: v,
                reg: SpecialReg::TidX,
            }
        } else {
            Inst::Ld {
                space: Space::Param,
                ty: Ty::S32,
                dst: v,
                addr: Address::abs(0),
            }
        };
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![
                src,
                Inst::Setp {
                    cmp: CmpOp::Lt,
                    ty: Ty::S32,
                    dst: p,
                    a: v.into(),
                    b: Operand::ImmI(16),
                },
            ],
            term: Terminator::CondBr {
                pred: p,
                negate: false,
                then_t: BlockId(1),
                else_t: BlockId(2),
            },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(1),
            insts: vec![Inst::Bar],
            term: Terminator::Br { target: BlockId(2) },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(2),
            insts: vec![],
            term: Terminator::Ret,
        });
        f
    }

    #[test]
    fn tid_guarded_barrier_flagged() {
        let f = branchy_kernel(true);
        let d = check_barrier_divergence(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].site, (1, 0));
        assert_eq!(d[0].branch_block, BlockId(0));
    }

    #[test]
    fn param_guarded_barrier_clean() {
        // The same shape guarded by a uniform parameter is fine: all
        // threads agree on the branch.
        let f = branchy_kernel(false);
        assert!(check_barrier_divergence(&f).is_empty());
    }

    #[test]
    fn barrier_after_reconvergence_clean() {
        // Guarded work, then a barrier at the join point.
        let mut f = branchy_kernel(true);
        f.blocks[1].insts.clear(); // no barrier inside the guard
        f.blocks[2].insts.push(Inst::Bar); // barrier at the ipdom
        assert!(check_barrier_divergence(&f).is_empty());
    }

    #[test]
    fn implicit_flow_taints_derived_predicates() {
        // v is rewritten under a tid-dependent branch, then a later branch
        // on v guards a barrier: divergent even though v's operands are
        // uniform.
        let mut f = Function {
            name: "k".into(),
            params: vec![],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        };
        let tid = f.new_vreg(Ty::S32);
        let p0 = f.new_vreg(Ty::Pred);
        let v = f.new_vreg(Ty::S32);
        let p1 = f.new_vreg(Ty::Pred);
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![
                Inst::Special {
                    dst: tid,
                    reg: SpecialReg::TidX,
                },
                Inst::Setp {
                    cmp: CmpOp::Lt,
                    ty: Ty::S32,
                    dst: p0,
                    a: tid.into(),
                    b: Operand::ImmI(16),
                },
                Inst::Mov {
                    ty: Ty::S32,
                    dst: v,
                    src: Operand::ImmI(0),
                },
            ],
            term: Terminator::CondBr {
                pred: p0,
                negate: false,
                then_t: BlockId(1),
                else_t: BlockId(2),
            },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(1),
            insts: vec![Inst::Mov {
                ty: Ty::S32,
                dst: v,
                src: Operand::ImmI(1),
            }],
            term: Terminator::Br { target: BlockId(2) },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(2),
            insts: vec![Inst::Setp {
                cmp: CmpOp::Eq,
                ty: Ty::S32,
                dst: p1,
                a: v.into(),
                b: Operand::ImmI(1),
            }],
            term: Terminator::CondBr {
                pred: p1,
                negate: false,
                then_t: BlockId(3),
                else_t: BlockId(4),
            },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(3),
            insts: vec![Inst::Bar],
            term: Terminator::Br { target: BlockId(4) },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(4),
            insts: vec![],
            term: Terminator::Ret,
        });
        let d = check_barrier_divergence(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].site, (3, 0));
    }

    #[test]
    fn kernel_without_barriers_short_circuits() {
        let mut f = branchy_kernel(true);
        f.blocks[1].insts.clear();
        assert!(check_barrier_divergence(&f).is_empty());
    }
}
