//! `ks-lint` — compile a kernel source and run the KSA analysis suite.
//!
//! ```text
//! cargo run -p ks-analysis --bin ks-lint -- kernel.cu -D N=64 --block 64
//! ```
//!
//! Exit status: 0 when no deny-level diagnostics fired, 1 when at least
//! one did, 2 on usage or compile errors.

use ks_analysis::{analyze_module, AnalysisConfig, LintCode, ParamValue, Severity};
use ks_sim::device::DeviceConfig;
use std::process::ExitCode;

const USAGE: &str = "\
usage: ks-lint [options] <kernel.cu>

options:
  -D NAME[=VALUE]     preprocessor define (like nvcc -D); repeatable
  -A NAME=VALUE       assume a value for a run-time kernel parameter
                      (integer, 0x-hex pointer, or float); repeatable
  --block X[,Y[,Z]]   thread-block shape; enables the abstract executor
  --grid X[,Y[,Z]]    grid shape (default 1,1,1)
  --block-idx X,Y,Z   which block the executor analyzes (default 0,0,0)
  --shared BYTES      dynamic shared memory appended at launch
  --device NAME       tesla_c1060 | tesla_c2070 (default tesla_c2070)
  --max-steps N       abstract-execution instruction budget
  --allow KSA00x      suppress a lint; repeatable
  --warn KSA00x       demote a lint to a warning; repeatable
  --deny KSA00x       promote a lint to an error; repeatable
  --kernel NAME       analyze only the named kernel
  -v, --verbose       also print per-kernel memory predictions
  -h, --help          this text
";

struct Args {
    source_path: String,
    defines: Vec<(String, String)>,
    cfg: AnalysisConfig,
    device: DeviceConfig,
    kernel: Option<String>,
    verbose: bool,
}

fn parse_dims(s: &str) -> Result<(u32, u32, u32), String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.is_empty() || parts.len() > 3 {
        return Err(format!("bad dimension triple `{s}`"));
    }
    let mut d = [1u32; 3];
    for (i, p) in parts.iter().enumerate() {
        d[i] = p
            .trim()
            .parse()
            .map_err(|_| format!("bad dimension `{p}` in `{s}`"))?;
    }
    Ok((d[0], d[1], d[2]))
}

fn parse_param_value(s: &str) -> Result<ParamValue, String> {
    let t = s.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16)
            .map(|v| ParamValue::Int(v as i64))
            .map_err(|_| format!("bad hex value `{s}`"));
    }
    if let Ok(v) = t.parse::<i64>() {
        return Ok(ParamValue::Int(v));
    }
    let ft = t.strip_suffix('f').unwrap_or(t);
    ft.parse::<f32>()
        .map(ParamValue::F32)
        .map_err(|_| format!("bad value `{s}`"))
}

fn parse_lint(s: &str) -> Result<LintCode, String> {
    LintCode::parse(s).ok_or_else(|| {
        format!(
            "unknown lint `{s}` (expected one of {})",
            LintCode::ALL.map(|c| c.code()).join(", ")
        )
    })
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        source_path: String::new(),
        defines: Vec::new(),
        cfg: AnalysisConfig::default(),
        device: DeviceConfig::tesla_c2070(),
        kernel: None,
        verbose: false,
    };
    let mut it = argv.iter();
    let next = |name: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{name} requires an argument"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "-v" | "--verbose" => args.verbose = true,
            "-D" => {
                let d = next("-D", &mut it)?;
                let (n, v) = d.split_once('=').unwrap_or((d.as_str(), ""));
                args.defines.push((n.to_string(), v.to_string()));
            }
            "-A" => {
                let d = next("-A", &mut it)?;
                let (n, v) = d
                    .split_once('=')
                    .ok_or_else(|| format!("-A expects NAME=VALUE, got `{d}`"))?;
                args.cfg
                    .param_assumptions
                    .push((n.to_string(), parse_param_value(v)?));
            }
            "--block" => args.cfg.block_dim = Some(parse_dims(&next("--block", &mut it)?)?),
            "--grid" => args.cfg.grid_dim = parse_dims(&next("--grid", &mut it)?)?,
            "--block-idx" => args.cfg.block_idx = parse_dims(&next("--block-idx", &mut it)?)?,
            "--shared" => {
                args.cfg.dynamic_shared = next("--shared", &mut it)?
                    .parse()
                    .map_err(|_| "bad --shared value".to_string())?
            }
            "--max-steps" => {
                args.cfg.max_steps = next("--max-steps", &mut it)?
                    .parse()
                    .map_err(|_| "bad --max-steps value".to_string())?
            }
            "--device" => {
                args.device = match next("--device", &mut it)?.as_str() {
                    "tesla_c1060" | "c1060" | "1060" => DeviceConfig::tesla_c1060(),
                    "tesla_c2070" | "c2070" | "2070" => DeviceConfig::tesla_c2070(),
                    other => return Err(format!("unknown device `{other}`")),
                }
            }
            "--allow" => {
                let c = parse_lint(&next("--allow", &mut it)?)?;
                args.cfg.levels.push((c, Severity::Allow));
            }
            "--warn" => {
                let c = parse_lint(&next("--warn", &mut it)?)?;
                args.cfg.levels.push((c, Severity::Warn));
            }
            "--deny" => {
                let c = parse_lint(&next("--deny", &mut it)?)?;
                args.cfg.levels.push((c, Severity::Deny));
            }
            "--kernel" => args.kernel = Some(next("--kernel", &mut it)?),
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            path => {
                if !args.source_path.is_empty() {
                    return Err("multiple source files given".into());
                }
                args.source_path = path.to_string();
            }
        }
    }
    if args.source_path.is_empty() {
        return Err("no kernel source file given".into());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<bool, String> {
    let source = std::fs::read_to_string(&args.source_path)
        .map_err(|e| format!("cannot read {}: {e}", args.source_path))?;

    // Mirror ks-core: inject the architecture macro for the target device.
    let mut defines = vec![(
        "__CUDA_ARCH__".to_string(),
        format!("{}{}0", args.device.cc_major, args.device.cc_minor),
    )];
    defines.extend(args.defines.iter().cloned());

    let program = ks_lang::frontend(&source, &defines).map_err(|e| e.to_string())?;
    let mut module = ks_codegen::compile(&program, &ks_codegen::CodegenOptions::default())?;
    ks_opt::optimize_module_with(&mut module, &ks_opt::OptConfig::default());
    let verify = ks_ir::verify_module(&module);
    if let Some(e) = verify.first() {
        return Err(format!("IR verification failed: {e}"));
    }

    if let Some(k) = &args.kernel {
        module.functions.retain(|f| &f.name == k);
        if module.functions.is_empty() {
            return Err(format!("kernel `{k}` not found in {}", args.source_path));
        }
    }

    let report = analyze_module(&module, &args.device, &args.cfg);
    for d in &report.diagnostics {
        eprintln!("{d}");
    }
    for n in &report.inconclusive {
        eprintln!("note: {n}");
    }
    if args.verbose {
        for (f, m) in &report.mem {
            println!(
                "mem[{f}]: {} global transactions ({} ld, {} st), {} shared accesses, \
                 {} bank-conflict replays, {} unresolved",
                m.global_transactions,
                m.global_loads,
                m.global_stores,
                m.shared_accesses,
                m.bank_conflict_extra,
                m.unresolved_accesses
            );
        }
        println!("proven in-bounds accesses: {}", report.proven_bounds);
    }
    let denials = report.has_denials();
    let warnings = report.warnings().count();
    let kernels = module.functions.len();
    println!(
        "ks-lint: {kernels} kernel{} on {}: {} error{}, {warnings} warning{}",
        if kernels == 1 { "" } else { "s" },
        args.device.name,
        report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count(),
        if report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
            == 1
        {
            ""
        } else {
            "s"
        },
        if warnings == 1 { "" } else { "s" },
    );
    Ok(denials)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("ks-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("ks-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
