//! Static bounds checking for the on-chip address spaces.
//!
//! Shared, local, and constant memory all have extents the compiler knows
//! exactly — per-declaration sizes for shared/constant arrays, the spill
//! window for local — so once specialization (or a launch-geometry
//! assumption) makes an address concrete, in-bounds is decidable. This is
//! the analyzability half of the RE-vs-SK contrast: a run-time-evaluated
//! kernel indexes with values the compiler never sees.

use crate::race::Site;
use ks_ir::{ConstDecl, SharedDecl};

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundsFinding {
    pub site: Site,
    pub message: String,
}

pub struct BoundsChecker {
    /// Static shared declarations (window layout) for straddle reporting.
    shared_decls: Vec<SharedDecl>,
    /// Static shared bytes + dynamic shared bytes = the legal window.
    shared_total: u64,
    local_bytes: u64,
    const_decls: Vec<ConstDecl>,
    const_total: u64,
    findings: Vec<BoundsFinding>,
    reported: Vec<Site>,
    /// Accesses proven in-bounds (for the report's positive summary).
    pub proven: u64,
}

impl BoundsChecker {
    pub fn new(
        shared_decls: &[SharedDecl],
        dynamic_shared: u32,
        local_bytes: u32,
        const_decls: &[ConstDecl],
    ) -> BoundsChecker {
        let static_shared: u32 = shared_decls.iter().map(|d| d.size_bytes).sum();
        BoundsChecker {
            shared_decls: shared_decls.to_vec(),
            shared_total: static_shared as u64 + dynamic_shared as u64,
            local_bytes: local_bytes as u64,
            const_decls: const_decls.to_vec(),
            const_total: const_decls.iter().map(|c| c.size_bytes as u64).sum(),
            findings: Vec::new(),
            reported: Vec::new(),
            proven: 0,
        }
    }

    fn report(&mut self, site: Site, message: String) {
        if self.reported.contains(&site) {
            return;
        }
        self.reported.push(site);
        self.findings.push(BoundsFinding { site, message });
    }

    /// Check a concrete 4-byte shared-memory access.
    pub fn check_shared(&mut self, addr: u64, site: Site) {
        if !addr.is_multiple_of(4) {
            self.report(
                site,
                format!("misaligned shared access at byte offset {addr:#x}"),
            );
            return;
        }
        if addr + 4 > self.shared_total {
            let decl = self
                .shared_decls
                .iter()
                .rev()
                .find(|d| addr >= d.offset as u64)
                .map(|d| format!(" (past `{}`)", d.name))
                .unwrap_or_default();
            self.report(
                site,
                format!(
                    "shared access at byte offset {addr:#x} outside the {}‑byte window{decl}",
                    self.shared_total
                ),
            );
            return;
        }
        // In-window, but does it land inside the declaration it starts in?
        // Overrunning one array into the next is in-window yet still a bug
        // the source-level program cannot have meant.
        if let Some(d) = self
            .shared_decls
            .iter()
            .find(|d| addr >= d.offset as u64 && addr < (d.offset + d.size_bytes) as u64)
        {
            if addr + 4 > (d.offset + d.size_bytes) as u64 {
                self.report(
                    site,
                    format!(
                        "shared access at {addr:#x} straddles the end of `{}`",
                        d.name
                    ),
                );
                return;
            }
        }
        self.proven += 1;
    }

    pub fn check_local(&mut self, addr: u64, site: Site) {
        if !addr.is_multiple_of(4) {
            self.report(
                site,
                format!("misaligned local access at byte offset {addr:#x}"),
            );
        } else if addr + 4 > self.local_bytes {
            self.report(
                site,
                format!(
                    "local access at byte offset {addr:#x} outside the {}-byte spill window",
                    self.local_bytes
                ),
            );
        } else {
            self.proven += 1;
        }
    }

    pub fn check_const(&mut self, addr: u64, site: Site) {
        if !addr.is_multiple_of(4) {
            self.report(
                site,
                format!("misaligned constant access at byte offset {addr:#x}"),
            );
            return;
        }
        if addr + 4 > self.const_total {
            self.report(
                site,
                format!(
                    "constant access at byte offset {addr:#x} outside the {}-byte constant bank",
                    self.const_total
                ),
            );
            return;
        }
        if let Some(d) = self
            .const_decls
            .iter()
            .find(|d| addr >= d.offset as u64 && addr < (d.offset + d.size_bytes) as u64)
        {
            if addr + 4 > (d.offset + d.size_bytes) as u64 {
                self.report(
                    site,
                    format!(
                        "constant access at {addr:#x} straddles the end of `{}`",
                        d.name
                    ),
                );
                return;
            }
        }
        self.proven += 1;
    }

    pub fn findings(&self) -> &[BoundsFinding] {
        &self.findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> BoundsChecker {
        BoundsChecker::new(
            &[
                SharedDecl {
                    name: "a".into(),
                    offset: 0,
                    size_bytes: 64,
                },
                SharedDecl {
                    name: "b".into(),
                    offset: 64,
                    size_bytes: 64,
                },
            ],
            0,
            16,
            &[ConstDecl {
                name: "geo".into(),
                offset: 0,
                size_bytes: 32,
            }],
        )
    }

    #[test]
    fn in_bounds_is_proven() {
        let mut c = checker();
        c.check_shared(0, (0, 0));
        c.check_shared(124, (0, 1));
        c.check_local(12, (0, 2));
        c.check_const(28, (0, 3));
        assert!(c.findings().is_empty());
        assert_eq!(c.proven, 4);
    }

    #[test]
    fn out_of_window_reported() {
        let mut c = checker();
        c.check_shared(128, (1, 0));
        c.check_local(16, (1, 1));
        c.check_const(32, (1, 2));
        assert_eq!(c.findings().len(), 3);
    }

    #[test]
    fn straddle_between_decls_reported() {
        let mut c = BoundsChecker::new(
            &[
                SharedDecl {
                    name: "a".into(),
                    offset: 0,
                    size_bytes: 62,
                },
                SharedDecl {
                    name: "b".into(),
                    offset: 62,
                    size_bytes: 66,
                },
            ],
            0,
            0,
            &[],
        );
        // 4-byte read at 60 crosses from `a` into `b`.
        c.check_shared(60, (2, 0));
        assert_eq!(c.findings().len(), 1);
        assert!(
            c.findings()[0].message.contains("straddles"),
            "{:?}",
            c.findings()
        );
    }

    #[test]
    fn misalignment_reported() {
        let mut c = checker();
        c.check_shared(2, (3, 0));
        assert_eq!(c.findings().len(), 1);
        assert!(c.findings()[0].message.contains("misaligned"));
    }

    #[test]
    fn dynamic_shared_extends_window() {
        let mut c = BoundsChecker::new(&[], 256, 0, &[]);
        c.check_shared(252, (0, 0));
        assert!(c.findings().is_empty());
        c.check_shared(256, (0, 1));
        assert_eq!(c.findings().len(), 1);
    }
}
