//! The diagnostics framework: stable lint codes, severities, per-lint
//! configuration, and rendered reports.

use ks_ir::BlockId;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Stable lint codes. Numbers are append-only: a code is never reused or
/// renumbered once shipped, so `allow`/`deny` configs stay meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintCode {
    /// Shared-memory data race: a word written and accessed by another
    /// warp in the same barrier interval.
    SharedRace,
    /// `__syncthreads()` reachable under thread-dependent control flow.
    BarrierDivergence,
    /// Statically provable out-of-bounds access to a shared / local /
    /// constant array.
    OutOfBounds,
    /// Shared-memory access pattern with a high bank-conflict degree.
    BankConflict,
    /// Global-memory access pattern that coalesces poorly on the target
    /// compute capability.
    Uncoalesced,
}

impl LintCode {
    pub const ALL: [LintCode; 5] = [
        LintCode::SharedRace,
        LintCode::BarrierDivergence,
        LintCode::OutOfBounds,
        LintCode::BankConflict,
        LintCode::Uncoalesced,
    ];

    /// The stable `KSA0xx` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::SharedRace => "KSA001",
            LintCode::BarrierDivergence => "KSA002",
            LintCode::OutOfBounds => "KSA003",
            LintCode::BankConflict => "KSA004",
            LintCode::Uncoalesced => "KSA005",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            LintCode::SharedRace => "shared-memory race",
            LintCode::BarrierDivergence => "divergent barrier",
            LintCode::OutOfBounds => "out-of-bounds access",
            LintCode::BankConflict => "shared-memory bank conflicts",
            LintCode::Uncoalesced => "uncoalesced global access",
        }
    }

    /// Correctness lints deny by default; performance lints warn.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::SharedRace | LintCode::BarrierDivergence | LintCode::OutOfBounds => {
                Severity::Deny
            }
            LintCode::BankConflict | LintCode::Uncoalesced => Severity::Warn,
        }
    }

    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL
            .iter()
            .copied()
            .find(|c| c.code().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// What a reported lint does to the surrounding compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Suppressed entirely.
    Allow,
    /// Reported, compilation proceeds.
    Warn,
    /// Reported, compilation fails.
    Deny,
}

impl Severity {
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "allow" => Some(Severity::Allow),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Allow => write!(f, "allow"),
            Severity::Warn => write!(f, "warning"),
            Severity::Deny => write!(f, "error"),
        }
    }
}

/// A value assumed for a kernel parameter during analysis — the analysis
/// analogue of passing the argument at launch. Pointer parameters take an
/// `Int` with the device address.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    Int(i64),
    F32(f32),
}

impl Hash for ParamValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            ParamValue::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            ParamValue::F32(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
        }
    }
}

/// Configuration for one analysis run.
///
/// The launch geometry and parameter assumptions play the role that real
/// launch arguments play at run time: with a specialized kernel they make
/// every address and trip count concrete, which is exactly the
/// RE-vs-SK *analyzability* contrast the dissertation's specialization
/// argument extends to (§3.2 — what the compiler can prove, not just what
/// it can optimize).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisConfig {
    /// Thread block shape to analyze under; `None` disables the abstract
    /// executor (only flow-insensitive checks run).
    pub block_dim: Option<(u32, u32, u32)>,
    pub grid_dim: (u32, u32, u32),
    /// Which block of the grid the abstract executor simulates.
    pub block_idx: (u32, u32, u32),
    /// Dynamic shared memory bytes appended at launch.
    pub dynamic_shared: u32,
    /// Assumed values for (remaining run-time) kernel parameters, by name.
    pub param_assumptions: Vec<(String, ParamValue)>,
    /// Abstract-executor budget in dynamic instructions per function.
    pub max_steps: u64,
    /// Per-lint severity overrides (defaults from
    /// [`LintCode::default_severity`]).
    pub levels: Vec<(LintCode, Severity)>,
    /// KSA004 fires when the mean extra bank-conflict degree per shared
    /// access reaches this value (1.0 = every access fully serialized
    /// twice; the shipped kernels sit well under the default).
    pub bank_conflict_threshold: f64,
    /// KSA005 fires when measured transactions exceed this multiple of
    /// the ideal (fully coalesced) transaction count.
    pub coalescing_slack: f64,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            block_dim: None,
            grid_dim: (1, 1, 1),
            block_idx: (0, 0, 0),
            dynamic_shared: 0,
            param_assumptions: Vec::new(),
            max_steps: 4_000_000,
            levels: Vec::new(),
            bank_conflict_threshold: 1.0,
            coalescing_slack: 2.0,
        }
    }
}

impl AnalysisConfig {
    /// Effective severity of a lint under this config.
    pub fn severity(&self, code: LintCode) -> Severity {
        self.levels
            .iter()
            .rev()
            .find(|(c, _)| *c == code)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| code.default_severity())
    }

    pub fn assume(mut self, name: &str, v: ParamValue) -> AnalysisConfig {
        self.param_assumptions.push((name.to_string(), v));
        self
    }

    pub fn assumed(&self, name: &str) -> Option<ParamValue> {
        self.param_assumptions
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Feed every field that affects analysis results into a hasher, so
    /// compile caches keyed on options stay correct.
    pub fn hash_into<H: Hasher>(&self, state: &mut H) {
        self.block_dim.hash(state);
        self.grid_dim.hash(state);
        self.block_idx.hash(state);
        self.dynamic_shared.hash(state);
        for (n, v) in &self.param_assumptions {
            n.hash(state);
            v.hash(state);
        }
        self.max_steps.hash(state);
        for (c, s) in &self.levels {
            c.hash(state);
            s.hash(state);
        }
        self.bank_conflict_threshold.to_bits().hash(state);
        self.coalescing_slack.to_bits().hash(state);
    }
}

/// One reported finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub code: LintCode,
    pub severity: Severity,
    pub function: String,
    pub block: Option<BlockId>,
    /// Instruction index within the block, when attributable.
    pub inst: Option<usize>,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.function)?;
        if let Some(b) = self.block {
            write!(f, "/{b}")?;
            if let Some(i) = self.inst {
                write!(f, "#{i}")?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

/// Predicted memory behaviour of one function under the analyzed launch
/// geometry — the static mirror of the simulator's measured `ExecStats`,
/// cross-validated against it in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemPrediction {
    /// Global load/store instructions executed (per analyzed block).
    pub global_loads: u64,
    pub global_stores: u64,
    /// Memory transactions after per-CC coalescing.
    pub global_transactions: u64,
    /// Shared-memory access instructions executed.
    pub shared_accesses: u64,
    /// Extra issue slots lost to bank-conflict replays (degree − 1 summed).
    pub bank_conflict_extra: u64,
    /// Accesses whose addresses the analysis could not resolve and
    /// therefore excluded from the totals above.
    pub unresolved_accesses: u64,
}

/// The result of analyzing one function or module.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    pub diagnostics: Vec<Diagnostic>,
    /// Why precise analyses stopped short, when they did (the RE side of
    /// the analyzability contrast: unspecialized values make these
    /// questions undecidable at compile time).
    pub inconclusive: Vec<String>,
    /// Per-function memory predictions (empty when the executor didn't
    /// run to completion for that function).
    pub mem: Vec<(String, MemPrediction)>,
    /// Barrier intervals the abstract executor observed, per function.
    pub intervals: Vec<(String, u64)>,
    /// Shared/local/constant accesses proven in-bounds.
    pub proven_bounds: u64,
}

impl AnalysisReport {
    pub fn merge(&mut self, other: AnalysisReport) {
        self.diagnostics.extend(other.diagnostics);
        self.inconclusive.extend(other.inconclusive);
        self.mem.extend(other.mem);
        self.intervals.extend(other.intervals);
        self.proven_bounds += other.proven_bounds;
    }

    pub fn has_denials(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
    }

    pub fn mem_for(&self, function: &str) -> Option<&MemPrediction> {
        self.mem.iter().find(|(n, _)| n == function).map(|(_, m)| m)
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        for n in &self.inconclusive {
            out.push_str(&format!("note: {n}\n"));
        }
        for (f, m) in &self.mem {
            out.push_str(&format!(
                "mem[{f}]: {} global transactions ({} ld, {} st), \
                 {} shared accesses, {} bank-conflict replays{}\n",
                m.global_transactions,
                m.global_loads,
                m.global_stores,
                m.shared_accesses,
                m.bank_conflict_extra,
                if m.unresolved_accesses > 0 {
                    format!(", {} unresolved", m.unresolved_accesses)
                } else {
                    String::new()
                },
            ));
        }
        if self.diagnostics.is_empty() {
            out.push_str("no diagnostics\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_parse() {
        assert_eq!(LintCode::SharedRace.code(), "KSA001");
        assert_eq!(LintCode::Uncoalesced.code(), "KSA005");
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.code()), Some(c));
        }
        assert_eq!(LintCode::parse("KSA999"), None);
    }

    #[test]
    fn severity_overrides_apply_last_wins() {
        let cfg = AnalysisConfig {
            levels: vec![
                (LintCode::BankConflict, Severity::Deny),
                (LintCode::BankConflict, Severity::Allow),
            ],
            ..Default::default()
        };
        assert_eq!(cfg.severity(LintCode::BankConflict), Severity::Allow);
        assert_eq!(cfg.severity(LintCode::SharedRace), Severity::Deny);
        assert_eq!(cfg.severity(LintCode::Uncoalesced), Severity::Warn);
    }

    #[test]
    fn report_denials_and_render() {
        let mut r = AnalysisReport::default();
        assert!(!r.has_denials());
        r.diagnostics.push(Diagnostic {
            code: LintCode::SharedRace,
            severity: Severity::Deny,
            function: "k".into(),
            block: Some(BlockId(2)),
            inst: Some(7),
            message: "write/write conflict".into(),
        });
        assert!(r.has_denials());
        let text = r.render();
        assert!(text.contains("KSA001"), "{text}");
        assert!(text.contains("BB2#7"), "{text}");
    }

    #[test]
    fn config_hash_distinguishes_assumptions() {
        use std::collections::hash_map::DefaultHasher;
        let h = |c: &AnalysisConfig| {
            let mut s = DefaultHasher::new();
            c.hash_into(&mut s);
            std::hash::Hasher::finish(&s)
        };
        let a = AnalysisConfig::default();
        let b = AnalysisConfig::default().assume("n", ParamValue::Int(64));
        assert_ne!(h(&a), h(&b));
    }
}
