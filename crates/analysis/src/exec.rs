//! Block-wide abstract SIMT execution.
//!
//! The executor runs one thread block the same way `ks_sim::interp` does —
//! lockstep warps, post-dominator reconvergence stacks, round-robin
//! scheduling between barriers — but over an abstract value domain:
//!
//! * `Con(bits)` — a concrete 64-bit register value, evaluated with the
//!   *identical* arithmetic the interpreter uses (wrapping 32-bit ops,
//!   `mul24` masking, pointer sign-extension rules, the full `cvt` matrix);
//! * `Based(sym, off)` — an unresolved pointer parameter or texture base
//!   plus a concrete byte offset. Enough to decide coalescing, since
//!   transaction counts depend only on offsets relative to an aligned base;
//! * `Unk` — anything data-dependent (loaded values, unassumed scalars).
//!
//! A specialized kernel (or one analyzed under parameter assumptions)
//! keeps every branch predicate and address in the first two classes, so
//! races, bounds, and transaction counts are decided exactly. When a
//! branch predicate is `Unk` for an active lane the executor stops and
//! reports *why* — the analyzability side of the RE-vs-SK contrast: the
//! same kernel compiled run-time-evaluated is unanalyzable precisely
//! because the values specialization would bake in are missing.

#![allow(clippy::needless_range_loop)] // lane loops deliberately mirror ks_sim::interp

use crate::bounds::{BoundsChecker, BoundsFinding};
use crate::diag::{AnalysisConfig, MemPrediction, ParamValue};
use crate::memlint::{AccessKind, MemFinding, MemLint};
use crate::race::{RaceFinding, RaceTracker, Site};
use ks_ir::cfg::{ipdoms, Cfg};
use ks_ir::{
    Address, BinOp, BlockId, CmpOp, Function, Inst, Module, Operand, Space, SpecialReg, Terminator,
    Ty, UnOp,
};
use ks_sim::device::DeviceConfig;
use std::collections::HashMap;

/// Abstract register value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Val {
    Con(u64),
    Based { sym: u32, off: i64 },
    Unk,
}

/// Texture symbols live above parameter symbols.
const TEX_SYM: u32 = 0x8000_0000;

/// What the abstract execution of one function produced.
#[derive(Debug, Default)]
pub struct ExecOutcome {
    pub races: Vec<RaceFinding>,
    pub bounds: Vec<BoundsFinding>,
    pub mem_findings: Vec<MemFinding>,
    /// Divergent-barrier findings: site (when attributable) and message.
    pub divergent_barriers: Vec<(Option<Site>, String)>,
    /// Set when the executor stopped early, with the reason.
    pub inconclusive: Option<String>,
    /// Present only when the block ran to completion, so the numbers are
    /// comparable with a simulator launch of the same geometry.
    pub prediction: Option<MemPrediction>,
    /// Barrier intervals observed (completed barriers + the final one).
    pub intervals: u64,
    pub proven_bounds: u64,
}

struct Frame {
    block: BlockId,
    inst: usize,
    reconv: Option<BlockId>,
    mask: u32,
}

struct AWarp {
    base_tid: u32,
    regs: Vec<Val>,
    stack: Vec<Frame>,
    done: bool,
    at_barrier: bool,
}

impl AWarp {
    fn new(base_tid: u32, lanes: u32, nv: usize) -> AWarp {
        let full_mask = if lanes == 32 {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        };
        AWarp {
            base_tid,
            regs: vec![Val::Unk; nv * 32],
            stack: vec![Frame {
                block: BlockId(0),
                inst: 0,
                reconv: None,
                mask: full_mask,
            }],
            done: false,
            at_barrier: false,
        }
    }

    fn warp_id(&self) -> u32 {
        self.base_tid / 32
    }
}

enum WStop {
    Barrier,
    Done,
}

/// Why execution of the whole block stopped early.
enum Abort {
    /// A deny-class finding was recorded; further state is meaningless.
    Poisoned,
    Inconclusive(String),
}

struct Exec<'a> {
    f: &'a Function,
    cfg: &'a AnalysisConfig,
    block_dim: (u32, u32, u32),
    pdom: Vec<Option<BlockId>>,
    /// Parameter values by parameter index.
    param_vals: Vec<Val>,
    /// Param-space byte offset → parameter index.
    param_by_offset: HashMap<u32, usize>,
    /// Synthetic device base per symbol, spaced far apart and 256-aligned
    /// like real allocations, so relative alignment (all that coalescing
    /// depends on) matches a real launch.
    sym_bases: HashMap<u32, u64>,
    next_sym_base: u64,
    race: RaceTracker,
    bounds: BoundsChecker,
    mem: MemLint,
    divergent_barriers: Vec<(Option<Site>, String)>,
    notes: Vec<String>,
    steps: u64,
    intervals: u64,
}

/// Run the abstract executor over `f` with the launch geometry in `cfg`.
/// `cfg.block_dim` must be `Some`.
pub fn exec_function(
    m: &Module,
    f: &Function,
    dev: &DeviceConfig,
    cfg: &AnalysisConfig,
) -> ExecOutcome {
    let block_dim = cfg.block_dim.expect("exec_function requires a block shape");
    let (bx, by, bz) = block_dim;
    let threads = bx * by * bz;
    let mut out = ExecOutcome::default();
    if threads == 0 {
        out.inconclusive = Some("empty thread block".into());
        return out;
    }
    if threads > dev.max_threads_per_block {
        out.inconclusive = Some(format!(
            "block of {threads} threads exceeds {} limit of {}",
            dev.name, dev.max_threads_per_block
        ));
        return out;
    }

    let cfg_cfg = Cfg::build(f);
    let pdom = ipdoms(f, &cfg_cfg);

    let mut param_vals = Vec::with_capacity(f.params.len());
    let mut param_by_offset = HashMap::new();
    for (i, p) in f.params.iter().enumerate() {
        param_by_offset.insert(p.offset, i);
        let v = match cfg.assumed(&p.name) {
            Some(ParamValue::Int(v)) => match p.ty {
                // Scalar loads go through `load_extend`; pointers load the
                // full 64-bit value.
                Ty::Ptr(_) => Val::Con(v as u64),
                _ => Val::Con(load_extend(p.ty, v as u32)),
            },
            Some(ParamValue::F32(v)) => Val::Con(v.to_bits() as u64),
            None => match p.ty {
                Ty::Ptr(_) => Val::Based {
                    sym: i as u32,
                    off: 0,
                },
                _ => Val::Unk,
            },
        };
        param_vals.push(v);
    }

    let mut ex = Exec {
        f,
        cfg,
        block_dim,
        pdom,
        param_vals,
        param_by_offset,
        sym_bases: HashMap::new(),
        next_sym_base: ks_sim::mem::GLOBAL_BASE,
        race: RaceTracker::new(),
        bounds: BoundsChecker::new(&f.shared, cfg.dynamic_shared, f.local_bytes, &m.consts),
        mem: MemLint::new(dev),
        divergent_barriers: Vec::new(),
        notes: Vec::new(),
        steps: 0,
        intervals: 0,
    };

    let nv = f.num_vregs();
    let warp_count = threads.div_ceil(32);
    let mut warps: Vec<AWarp> = (0..warp_count)
        .map(|w| {
            let base_tid = w * 32;
            let lanes = (threads - base_tid).min(32);
            AWarp::new(base_tid, lanes, nv)
        })
        .collect();

    // Round-robin warps between barriers, exactly like the interpreter.
    let mut abort: Option<Abort> = None;
    'sched: loop {
        let mut all_done = true;
        let mut any_progress = false;
        for w in warps.iter_mut() {
            if w.done || w.at_barrier {
                all_done &= w.done;
                continue;
            }
            all_done = false;
            any_progress = true;
            match ex.exec_warp(w) {
                Ok(WStop::Done) => w.done = true,
                Ok(WStop::Barrier) => w.at_barrier = true,
                Err(a) => {
                    abort = Some(a);
                    break 'sched;
                }
            }
        }
        if all_done {
            ex.intervals += 1;
            break;
        }
        if !any_progress {
            // Everyone still running sits at a barrier. If some warps
            // already returned, the barrier can never be satisfied by all
            // threads — the divergent-barrier deadlock the interpreter
            // silently rolls past.
            if warps.iter().any(|w| w.done) {
                ex.divergent_barriers.push((
                    None,
                    "some threads return while others wait at __syncthreads(); \
                     the barrier never completes for the full block"
                        .into(),
                ));
                abort = Some(Abort::Poisoned);
                break;
            }
            ex.intervals += 1;
            ex.race.barrier();
            for w in warps.iter_mut() {
                w.at_barrier = false;
            }
        }
    }

    let completed = abort.is_none();
    out.races = ex.race.findings().to_vec();
    out.bounds = ex.bounds.findings().to_vec();
    out.mem_findings = ex
        .mem
        .finish(cfg.bank_conflict_threshold, cfg.coalescing_slack);
    out.divergent_barriers = ex.divergent_barriers;
    out.proven_bounds = ex.bounds.proven;
    out.intervals = ex.intervals;
    out.inconclusive = match abort {
        Some(Abort::Inconclusive(why)) => Some(why),
        Some(Abort::Poisoned) => None,
        None => None,
    };
    if completed {
        out.prediction = Some(ex.mem.prediction);
    }
    if !ex.notes.is_empty() {
        let joined = ex.notes.join("; ");
        out.inconclusive = Some(match out.inconclusive.take() {
            Some(w) => format!("{w}; {joined}"),
            None => joined,
        });
    }
    out
}

impl Exec<'_> {
    fn exec_warp(&mut self, w: &mut AWarp) -> Result<WStop, Abort> {
        loop {
            self.steps += 1;
            if self.steps > self.cfg.max_steps {
                return Err(Abort::Inconclusive(format!(
                    "abstract execution exceeded the {}-instruction budget \
                     (raise AnalysisConfig::max_steps for long kernels)",
                    self.cfg.max_steps
                )));
            }
            match self.warp_step(w)? {
                Some(stop) => return Ok(stop),
                None => continue,
            }
        }
    }

    /// One instruction / terminator / reconvergence pop.
    fn warp_step(&mut self, w: &mut AWarp) -> Result<Option<WStop>, Abort> {
        loop {
            let Some(frame) = w.stack.last() else {
                w.done = true;
                return Ok(Some(WStop::Done));
            };
            if frame.inst == 0 && Some(frame.block) == frame.reconv {
                w.stack.pop();
                continue;
            }
            let (block, inst_idx, mask) = (frame.block, frame.inst, frame.mask);
            let bb = self.f.block(block);
            if inst_idx < bb.insts.len() {
                let inst = &bb.insts[inst_idx];
                w.stack.last_mut().unwrap().inst += 1;
                if let Inst::Bar = inst {
                    if w.stack.len() > 1 {
                        self.divergent_barriers.push((
                            Some((block.0, inst_idx)),
                            format!(
                                "__syncthreads() executed under divergent control flow \
                                 (warp {} reaches it with a partial mask {:#010x})",
                                w.warp_id(),
                                mask
                            ),
                        ));
                        return Err(Abort::Poisoned);
                    }
                    w.at_barrier = true;
                    return Ok(Some(WStop::Barrier));
                }
                self.exec_inst(w, inst, mask, (block.0, inst_idx))?;
                return Ok(None);
            }
            // Terminator.
            w.stack.last_mut().unwrap().inst = usize::MAX;
            match &bb.term {
                Terminator::Ret => {
                    if w.stack.len() > 1 {
                        // The verifier guarantees reconvergence-before-ret
                        // for well-formed kernels; reaching this means the
                        // simulator would trap identically.
                        return Err(Abort::Inconclusive(format!(
                            "divergent return in {block} (simulator would trap)"
                        )));
                    }
                    w.done = true;
                    return Ok(Some(WStop::Done));
                }
                Terminator::Br { target } => {
                    let fr = w.stack.last_mut().unwrap();
                    fr.block = *target;
                    fr.inst = 0;
                    return Ok(None);
                }
                Terminator::CondBr {
                    pred,
                    negate,
                    then_t,
                    else_t,
                } => {
                    let mut taken = 0u32;
                    for lane in 0..32 {
                        if mask & (1 << lane) != 0 {
                            let v = match w.regs[pred.0 as usize * 32 + lane] {
                                Val::Con(bits) => bits != 0,
                                _ => {
                                    return Err(Abort::Inconclusive(format!(
                                        "branch in {block} depends on a value unavailable at \
                                         analysis time (an unassumed run-time parameter or \
                                         loaded data); a specialized kernel or a -A/param \
                                         assumption makes this decidable"
                                    )))
                                }
                            };
                            if v ^ negate {
                                taken |= 1 << lane;
                            }
                        }
                    }
                    let not_taken = mask & !taken;
                    let fr = w.stack.last_mut().unwrap();
                    if not_taken == 0 {
                        fr.block = *then_t;
                        fr.inst = 0;
                    } else if taken == 0 {
                        fr.block = *else_t;
                        fr.inst = 0;
                    } else {
                        let Some(r) = self.pdom[block.0 as usize] else {
                            return Err(Abort::Inconclusive(format!(
                                "divergent branch in {block} without a reconvergence point"
                            )));
                        };
                        fr.block = r;
                        fr.inst = 0;
                        w.stack.push(Frame {
                            block: *else_t,
                            inst: 0,
                            reconv: Some(r),
                            mask: not_taken,
                        });
                        w.stack.push(Frame {
                            block: *then_t,
                            inst: 0,
                            reconv: Some(r),
                            mask: taken,
                        });
                    }
                    return Ok(None);
                }
            }
        }
    }

    fn operand_val(&self, w: &AWarp, o: &Operand, lane: usize) -> Val {
        match o {
            Operand::Reg(r) => w.regs[r.0 as usize * 32 + lane],
            Operand::ImmI(v) => Val::Con(*v as u64),
            Operand::ImmF(v) => Val::Con(v.to_bits() as u64),
        }
    }

    fn lane_vals(&self, w: &AWarp, addr: &Address, mask: u32) -> [Val; 32] {
        let mut out = [Val::Con(0); 32];
        match addr.base {
            None => {
                for v in out.iter_mut() {
                    *v = Val::Con(addr.offset as u64);
                }
            }
            Some(base) => {
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        out[lane] = match w.regs[base.0 as usize * 32 + lane] {
                            Val::Con(b) => Val::Con(b.wrapping_add(addr.offset as u64)),
                            Val::Based { sym, off } => Val::Based {
                                sym,
                                off: off.wrapping_add(addr.offset),
                            },
                            Val::Unk => Val::Unk,
                        };
                    }
                }
            }
        }
        out
    }

    /// Synthetic (or assumed-concrete) device address for a value.
    fn resolve_addr(&mut self, v: Val) -> Option<u64> {
        match v {
            Val::Con(a) => Some(a),
            Val::Based { sym, off } => {
                let base = *self.sym_bases.entry(sym).or_insert_with(|| {
                    // 16 MiB apart: large enough that offsets never collide
                    // across symbols, aligned like a real allocation.
                    self.next_sym_base += 1 << 24;
                    self.next_sym_base
                });
                Some(base.wrapping_add(off as u64))
            }
            Val::Unk => None,
        }
    }

    /// Resolve all active lanes or report the access as unresolved.
    fn resolve_lanes(&mut self, vals: &[Val; 32], mask: u32) -> Option<[u64; 32]> {
        let mut out = [0u64; 32];
        for lane in 0..32 {
            if mask & (1 << lane) != 0 {
                out[lane] = self.resolve_addr(vals[lane])?;
            }
        }
        Some(out)
    }

    fn note_once(&mut self, note: String) {
        if !self.notes.contains(&note) {
            self.notes.push(note);
        }
    }

    fn exec_inst(
        &mut self,
        w: &mut AWarp,
        inst: &Inst,
        mask: u32,
        site: Site,
    ) -> Result<(), Abort> {
        match inst {
            Inst::Mov { dst, src, .. } => {
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        w.regs[dst.0 as usize * 32 + lane] = self.operand_val(w, src, lane);
                    }
                }
            }
            Inst::Special { dst, reg } => {
                let (bxd, byd, bzd) = self.block_dim;
                let (gx, gy, gz) = self.cfg.grid_dim;
                let (cx, cy, cz) = self.cfg.block_idx;
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        let tid = w.base_tid + lane as u32;
                        let tx = tid % bxd;
                        let ty = (tid / bxd) % byd;
                        let tz = tid / (bxd * byd);
                        let v = match reg {
                            SpecialReg::TidX => tx,
                            SpecialReg::TidY => ty,
                            SpecialReg::TidZ => tz,
                            SpecialReg::CtaIdX => cx,
                            SpecialReg::CtaIdY => cy,
                            SpecialReg::CtaIdZ => cz,
                            SpecialReg::NtidX => bxd,
                            SpecialReg::NtidY => byd,
                            SpecialReg::NtidZ => bzd,
                            SpecialReg::NctaIdX => gx,
                            SpecialReg::NctaIdY => gy,
                            SpecialReg::NctaIdZ => gz,
                        };
                        w.regs[dst.0 as usize * 32 + lane] = Val::Con(v as u64);
                    }
                }
            }
            Inst::Bin { op, ty, dst, a, b } => {
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        let x = self.operand_val(w, a, lane);
                        let y = self.operand_val(w, b, lane);
                        w.regs[dst.0 as usize * 32 + lane] = bin_val(*op, *ty, x, y);
                    }
                }
            }
            Inst::Un { op, ty, dst, a } => {
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        let x = self.operand_val(w, a, lane);
                        w.regs[dst.0 as usize * 32 + lane] = match x {
                            Val::Con(bits) => Val::Con(eval_un(*op, *ty, bits)),
                            _ => Val::Unk,
                        };
                    }
                }
            }
            Inst::Mad { ty, dst, a, b, c } => {
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        let x = self.operand_val(w, a, lane);
                        let y = self.operand_val(w, b, lane);
                        let z = self.operand_val(w, c, lane);
                        let xy = bin_val(BinOp::Mul, *ty, x, y);
                        w.regs[dst.0 as usize * 32 + lane] = bin_val(BinOp::Add, *ty, xy, z);
                    }
                }
            }
            Inst::Setp { cmp, ty, dst, a, b } => {
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        let x = self.operand_val(w, a, lane);
                        let y = self.operand_val(w, b, lane);
                        w.regs[dst.0 as usize * 32 + lane] = self.cmp_val(*cmp, *ty, x, y);
                    }
                }
            }
            Inst::Selp {
                dst, a, b, pred, ..
            } => {
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        let p = w.regs[pred.0 as usize * 32 + lane];
                        let av = self.operand_val(w, a, lane);
                        let bv = self.operand_val(w, b, lane);
                        w.regs[dst.0 as usize * 32 + lane] = match p {
                            Val::Con(bits) => {
                                if bits != 0 {
                                    av
                                } else {
                                    bv
                                }
                            }
                            // Unknown selector: sound only when both arms
                            // agree.
                            _ => {
                                if av == bv {
                                    av
                                } else {
                                    Val::Unk
                                }
                            }
                        };
                    }
                }
            }
            Inst::Cvt {
                dst_ty,
                src_ty,
                dst,
                src,
            } => {
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        let x = self.operand_val(w, src, lane);
                        w.regs[dst.0 as usize * 32 + lane] = match x {
                            Val::Con(bits) => Val::Con(eval_cvt(*dst_ty, *src_ty, bits)),
                            // The cvt matrix passes pointer→pointer bits
                            // through untouched, so a base survives.
                            Val::Based { .. }
                                if matches!(src_ty, Ty::Ptr(_)) && matches!(dst_ty, Ty::Ptr(_)) =>
                            {
                                x
                            }
                            _ => Val::Unk,
                        };
                    }
                }
            }
            Inst::Ld {
                space,
                ty,
                dst,
                addr,
            } => {
                let vals = self.lane_vals(w, addr, mask);
                let mut loaded = [Val::Unk; 32];
                match space {
                    Space::Global => match self.resolve_lanes(&vals, mask) {
                        Some(addrs) => self.mem.global(AccessKind::GlobalLoad, &addrs, mask, site),
                        None => self.mem.unresolved(),
                    },
                    Space::Shared => match self.resolve_lanes(&vals, mask) {
                        Some(addrs) => {
                            for lane in 0..32 {
                                if mask & (1 << lane) != 0 {
                                    self.bounds.check_shared(addrs[lane], site);
                                    self.race.read(w.warp_id(), addrs[lane], site);
                                }
                            }
                            self.mem.shared(AccessKind::SharedLoad, &addrs, mask, site);
                        }
                        None => {
                            self.mem.unresolved();
                            self.note_once(
                                "shared access with unresolved address: racecheck and \
                                 bounds results are incomplete"
                                    .into(),
                            );
                        }
                    },
                    Space::Local => {
                        for lane in 0..32 {
                            if mask & (1 << lane) != 0 {
                                match vals[lane] {
                                    Val::Con(a) => self.bounds.check_local(a, site),
                                    _ => self
                                        .note_once("local access with unresolved address".into()),
                                }
                            }
                        }
                    }
                    Space::Const => {
                        for lane in 0..32 {
                            if mask & (1 << lane) != 0 {
                                match vals[lane] {
                                    Val::Con(a) => self.bounds.check_const(a, site),
                                    _ => self.note_once(
                                        "constant access with unresolved address".into(),
                                    ),
                                }
                            }
                        }
                    }
                    Space::Param => {
                        // The verifier requires absolute param addresses.
                        let v = match addr.base {
                            None => self
                                .param_by_offset
                                .get(&(addr.offset as u32))
                                .map(|&i| self.param_vals[i])
                                .unwrap_or(Val::Unk),
                            Some(_) => Val::Unk,
                        };
                        for l in loaded.iter_mut() {
                            *l = v;
                        }
                    }
                }
                // Loaded data is opaque except for parameters, whose
                // values the config may pin down.
                let _ = ty;
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        w.regs[dst.0 as usize * 32 + lane] = loaded[lane];
                    }
                }
            }
            Inst::St {
                space,
                ty,
                addr,
                src,
            } => {
                let vals = self.lane_vals(w, addr, mask);
                let _ = ty;
                match space {
                    Space::Global => match self.resolve_lanes(&vals, mask) {
                        Some(addrs) => self.mem.global(AccessKind::GlobalStore, &addrs, mask, site),
                        None => self.mem.unresolved(),
                    },
                    Space::Shared => match self.resolve_lanes(&vals, mask) {
                        Some(addrs) => {
                            // Two lanes of one store hitting the same word
                            // is a race unless they provably write the same
                            // value (which lane wins is undefined).
                            let mut by_word: HashMap<u64, Val> = HashMap::new();
                            for lane in 0..32 {
                                if mask & (1 << lane) != 0 {
                                    self.bounds.check_shared(addrs[lane], site);
                                    self.race.write(w.warp_id(), addrs[lane], site);
                                    let v = self.operand_val(w, src, lane);
                                    match by_word.get(&(addrs[lane] / 4)) {
                                        Some(prev) if *prev == v && matches!(v, Val::Con(_)) => {}
                                        Some(_) => self.race.intra_warp_conflict(addrs[lane], site),
                                        None => {
                                            by_word.insert(addrs[lane] / 4, v);
                                        }
                                    }
                                }
                            }
                            self.mem.shared(AccessKind::SharedStore, &addrs, mask, site);
                        }
                        None => {
                            self.mem.unresolved();
                            self.note_once(
                                "shared access with unresolved address: racecheck and \
                                 bounds results are incomplete"
                                    .into(),
                            );
                        }
                    },
                    Space::Local => {
                        for lane in 0..32 {
                            if mask & (1 << lane) != 0 {
                                match vals[lane] {
                                    Val::Con(a) => self.bounds.check_local(a, site),
                                    _ => self
                                        .note_once("local access with unresolved address".into()),
                                }
                            }
                        }
                    }
                    // The verifier rejects these; nothing useful to model.
                    Space::Const | Space::Param => {}
                }
            }
            Inst::Tex { dst, tex, idx, .. } => {
                let mut vals = [Val::Con(0); 32];
                let mut ok = true;
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        vals[lane] = match self.operand_val(w, idx, lane) {
                            Val::Con(bits) => {
                                let i = bits as u32 as i32;
                                if i < 0 {
                                    ok = false;
                                    Val::Unk
                                } else {
                                    Val::Based {
                                        sym: TEX_SYM + tex,
                                        off: i as i64 * 4,
                                    }
                                }
                            }
                            _ => {
                                ok = false;
                                Val::Unk
                            }
                        };
                    }
                }
                if ok {
                    if let Some(addrs) = self.resolve_lanes(&vals, mask) {
                        self.mem.global(AccessKind::GlobalLoad, &addrs, mask, site);
                    } else {
                        self.mem.unresolved();
                    }
                } else {
                    self.mem.unresolved();
                }
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        w.regs[dst.0 as usize * 32 + lane] = Val::Unk;
                    }
                }
            }
            Inst::Bar => unreachable!("handled by the warp loop"),
        }
        Ok(())
    }

    fn cmp_val(&mut self, cmp: CmpOp, ty: Ty, x: Val, y: Val) -> Val {
        match (x, y) {
            (Val::Con(a), Val::Con(b)) => Val::Con(u64::from(eval_cmp(cmp, ty, a, b))),
            // Same-base pointers order by offset regardless of where the
            // base actually lands.
            (Val::Based { sym: sa, .. }, Val::Based { sym: sb, .. }) if sa == sb => {
                let a = self.resolve_addr(x).unwrap();
                let b = self.resolve_addr(y).unwrap();
                Val::Con(u64::from(eval_cmp(cmp, ty, a, b)))
            }
            _ => Val::Unk,
        }
    }
}

// ---------------------------------------------------------------------------
// Concrete arithmetic, mirroring ks_sim::interp exactly. Divergences here
// would make the cross-validation tests fail, so the property suite runs
// random kernels through both engines.
// ---------------------------------------------------------------------------

fn sext32(v: u32) -> u64 {
    v as i32 as i64 as u64
}

#[inline]
fn sext_operand(v: u64) -> u64 {
    if v <= u32::MAX as u64 {
        sext32(v as u32)
    } else {
        v
    }
}

fn load_extend(ty: Ty, v: u32) -> u64 {
    match ty {
        Ty::S32 => sext32(v),
        _ => v as u64,
    }
}

fn bin_val(op: BinOp, ty: Ty, x: Val, y: Val) -> Val {
    match (x, y) {
        (Val::Con(a), Val::Con(b)) => match eval_bin(op, ty, a, b) {
            Some(r) => Val::Con(r),
            None => Val::Unk, // division by zero: the simulator traps
        },
        // Pointer displacement keeps the base symbolic.
        (Val::Based { sym, off }, Val::Con(c)) if matches!(ty, Ty::Ptr(_)) => match op {
            BinOp::Add => Val::Based {
                sym,
                off: off.wrapping_add(sext_operand(c) as i64),
            },
            BinOp::Sub => Val::Based {
                sym,
                off: off.wrapping_sub(sext_operand(c) as i64),
            },
            _ => Val::Unk,
        },
        (Val::Con(c), Val::Based { sym, off }) if matches!(ty, Ty::Ptr(_)) && op == BinOp::Add => {
            Val::Based {
                sym,
                off: off.wrapping_add(sext_operand(c) as i64),
            }
        }
        (Val::Based { sym: sa, off: oa }, Val::Based { sym: sb, off: ob })
            if matches!(ty, Ty::Ptr(_)) && op == BinOp::Sub && sa == sb =>
        {
            Val::Con((oa as u64).wrapping_sub(ob as u64))
        }
        _ => Val::Unk,
    }
}

fn eval_bin(op: BinOp, ty: Ty, x: u64, y: u64) -> Option<u64> {
    Some(match ty {
        Ty::F32 => {
            let a = f32::from_bits(x as u32);
            let b = f32::from_bits(y as u32);
            let r = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                _ => return None,
            };
            r.to_bits() as u64
        }
        Ty::U32 => {
            let (a, b) = (x as u32, y as u32);
            let r = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Mul24 => (a & 0xFF_FFFF).wrapping_mul(b & 0xFF_FFFF),
                BinOp::Div => a.checked_div(b)?,
                BinOp::Rem => a.checked_rem(b)?,
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(b & 31),
                BinOp::Shr => a.wrapping_shr(b & 31),
            };
            r as u64
        }
        Ty::S32 => {
            let (a, b) = (x as u32 as i32, y as u32 as i32);
            let r: i32 = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Mul24 => {
                    (((a as u32) & 0xFF_FFFF).wrapping_mul((b as u32) & 0xFF_FFFF)) as i32
                }
                BinOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_rem(b)
                }
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(b as u32 & 31),
                BinOp::Shr => a.wrapping_shr(b as u32 & 31),
            };
            return Some(sext32(r as u32));
        }
        Ty::Ptr(_) => match op {
            BinOp::Add => x.wrapping_add(sext_operand(y)),
            BinOp::Sub => x.wrapping_sub(sext_operand(y)),
            _ => return None,
        },
        Ty::Pred => {
            let (a, b) = (x != 0, y != 0);
            let r = match op {
                BinOp::And => a && b,
                BinOp::Or => a || b,
                BinOp::Xor => a ^ b,
                _ => return None,
            };
            u64::from(r)
        }
    })
}

fn eval_un(op: UnOp, ty: Ty, x: u64) -> u64 {
    match ty {
        Ty::F32 => {
            let a = f32::from_bits(x as u32);
            let r = match op {
                UnOp::Neg => -a,
                UnOp::Abs => a.abs(),
                UnOp::Sqrt => a.sqrt(),
                UnOp::Rsqrt => 1.0 / a.sqrt(),
                UnOp::Floor => a.floor(),
                UnOp::Not => f32::from_bits(!(x as u32)),
            };
            r.to_bits() as u64
        }
        Ty::Pred => match op {
            UnOp::Not => u64::from(x == 0),
            _ => 0,
        },
        _ => {
            let a = x as u32 as i32;
            let r: i32 = match op {
                UnOp::Neg => a.wrapping_neg(),
                UnOp::Not => !a,
                UnOp::Abs => a.wrapping_abs(),
                UnOp::Sqrt | UnOp::Rsqrt | UnOp::Floor => a,
            };
            if ty == Ty::S32 {
                sext32(r as u32)
            } else {
                (r as u32) as u64
            }
        }
    }
}

fn eval_cmp(cmp: CmpOp, ty: Ty, x: u64, y: u64) -> bool {
    match ty {
        Ty::F32 => {
            let (a, b) = (f32::from_bits(x as u32), f32::from_bits(y as u32));
            match cmp {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            }
        }
        Ty::U32 => {
            let (a, b) = (x as u32, y as u32);
            match cmp {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            }
        }
        Ty::Ptr(_) => match cmp {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        },
        _ => {
            let (a, b) = (x as u32 as i32, y as u32 as i32);
            match cmp {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            }
        }
    }
}

fn eval_cvt(dst: Ty, src: Ty, x: u64) -> u64 {
    match (src, dst) {
        (Ty::S32, Ty::F32) => ((x as u32 as i32) as f32).to_bits() as u64,
        (Ty::U32, Ty::F32) => ((x as u32) as f32).to_bits() as u64,
        (Ty::F32, Ty::S32) => sext32((f32::from_bits(x as u32) as i32) as u32),
        (Ty::F32, Ty::U32) => (f32::from_bits(x as u32) as u32) as u64,
        (Ty::S32, Ty::Ptr(_)) => sext32(x as u32),
        (Ty::U32, Ty::Ptr(_)) => (x as u32) as u64,
        (Ty::Ptr(_), Ty::S32) => sext32(x as u32),
        (Ty::Ptr(_), Ty::U32) => (x as u32) as u64,
        _ => x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_ir::{BasicBlock, SharedDecl, VReg};

    fn cfg_1d(threads: u32) -> AnalysisConfig {
        AnalysisConfig {
            block_dim: Some((threads, 1, 1)),
            ..Default::default()
        }
    }

    /// `shm[f(tid)*4] = tid; __syncthreads(); x = shm[g(tid)*4]` kernel
    /// builder: one block, store phase, barrier, load phase.
    fn shm_kernel(
        shared_words: u32,
        store_scale: i64,
        store_bias: i64,
        load_scale: i64,
        load_bias: i64,
    ) -> Function {
        let mut f = Function {
            name: "k".into(),
            params: vec![],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![SharedDecl {
                name: "shm".into(),
                offset: 0,
                size_bytes: shared_words * 4,
            }],
            local_bytes: 0,
        };
        let tid = f.new_vreg(Ty::S32);
        let saddr = f.new_vreg(Ty::S32);
        let laddr = f.new_vreg(Ty::S32);
        let tmp = f.new_vreg(Ty::S32);
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![
                Inst::Special {
                    dst: tid,
                    reg: SpecialReg::TidX,
                },
                // store address = (tid*scale + bias) * 4
                Inst::Bin {
                    op: BinOp::Mul,
                    ty: Ty::S32,
                    dst: saddr,
                    a: tid.into(),
                    b: Operand::ImmI(store_scale * 4),
                },
                Inst::St {
                    space: Space::Shared,
                    ty: Ty::S32,
                    addr: Address::reg_off(saddr, store_bias * 4),
                    src: tid.into(),
                },
                Inst::Bar,
                Inst::Bin {
                    op: BinOp::Mul,
                    ty: Ty::S32,
                    dst: laddr,
                    a: tid.into(),
                    b: Operand::ImmI(load_scale * 4),
                },
                Inst::Ld {
                    space: Space::Shared,
                    ty: Ty::S32,
                    dst: tmp,
                    addr: Address::reg_off(laddr, load_bias * 4),
                },
            ],
            term: Terminator::Ret,
        });
        f
    }

    #[test]
    fn clean_kernel_produces_nothing() {
        let f = shm_kernel(64, 1, 0, 1, 0);
        let m = Module {
            functions: vec![],
            consts: vec![],
            textures: vec![],
        };
        let out = exec_function(&m, &f, &DeviceConfig::tesla_c2070(), &cfg_1d(64));
        assert!(out.races.is_empty(), "{:?}", out.races);
        assert!(out.bounds.is_empty());
        assert!(out.divergent_barriers.is_empty());
        assert!(out.inconclusive.is_none());
        let p = out.prediction.unwrap();
        // 2 warps × (1 store + 1 load) of shared memory, conflict-free.
        assert_eq!(p.shared_accesses, 4);
        assert_eq!(p.bank_conflict_extra, 0);
        assert_eq!(out.intervals, 2);
    }

    #[test]
    fn cross_warp_race_without_barrier_detected() {
        // Both warps write word (tid % 32): warp 0 and warp 1 collide.
        let mut f = shm_kernel(32, 1, 0, 1, 0);
        // Rewrite the store address to tid%32 words and drop the barrier.
        let tid = VReg(0);
        let saddr = VReg(1);
        f.blocks[0].insts[1] = Inst::Bin {
            op: BinOp::Rem,
            ty: Ty::S32,
            dst: saddr,
            a: tid.into(),
            b: Operand::ImmI(32),
        };
        let shl = Inst::Bin {
            op: BinOp::Shl,
            ty: Ty::S32,
            dst: saddr,
            a: saddr.into(),
            b: Operand::ImmI(2),
        };
        f.blocks[0].insts.insert(2, shl);
        f.blocks[0].insts.remove(4); // the Bar
        let m = Module::default();
        let out = exec_function(&m, &f, &DeviceConfig::tesla_c2070(), &cfg_1d(64));
        assert!(!out.races.is_empty());
        assert_eq!(out.races[0].kind, "write/write");
    }

    #[test]
    fn barrier_orders_colliding_phases() {
        // Warp 0 loads the words warp 1 stored (and vice versa shifted),
        // which the intervening barrier orders: no race, no bounds issue.
        let f = shm_kernel(96, 1, 0, 1, 32);
        let m = Module::default();
        let out = exec_function(&m, &f, &DeviceConfig::tesla_c2070(), &cfg_1d(64));
        assert!(out.races.is_empty(), "{:?}", out.races);
        assert!(out.bounds.is_empty(), "{:?}", out.bounds);
    }

    #[test]
    fn out_of_bounds_store_detected() {
        // 64 threads store words 0..64 but only 32 words exist.
        let f = shm_kernel(32, 1, 0, 1, 0);
        let m = Module::default();
        let out = exec_function(&m, &f, &DeviceConfig::tesla_c2070(), &cfg_1d(64));
        assert!(!out.bounds.is_empty());
        assert!(
            out.bounds[0].message.contains("outside"),
            "{:?}",
            out.bounds
        );
    }

    #[test]
    fn divergent_barrier_detected() {
        // if (tid < 16) __syncthreads();
        let mut f = Function {
            name: "k".into(),
            params: vec![],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        };
        let tid = f.new_vreg(Ty::S32);
        let p = f.new_vreg(Ty::Pred);
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![
                Inst::Special {
                    dst: tid,
                    reg: SpecialReg::TidX,
                },
                Inst::Setp {
                    cmp: CmpOp::Lt,
                    ty: Ty::S32,
                    dst: p,
                    a: tid.into(),
                    b: Operand::ImmI(16),
                },
            ],
            term: Terminator::CondBr {
                pred: p,
                negate: false,
                then_t: BlockId(1),
                else_t: BlockId(2),
            },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(1),
            insts: vec![Inst::Bar],
            term: Terminator::Br { target: BlockId(2) },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(2),
            insts: vec![],
            term: Terminator::Ret,
        });
        let m = Module::default();
        let out = exec_function(&m, &f, &DeviceConfig::tesla_c2070(), &cfg_1d(32));
        assert_eq!(out.divergent_barriers.len(), 1);
        assert!(out.divergent_barriers[0].1.contains("divergent"));
    }

    #[test]
    fn bank_conflict_stride_flagged() {
        // Stride-32 word accesses on Fermi's 32 banks: every lane in bank 0.
        let f = shm_kernel(32 * 32, 32, 0, 32, 0);
        let m = Module::default();
        let out = exec_function(&m, &f, &DeviceConfig::tesla_c2070(), &cfg_1d(32));
        assert!(!out.mem_findings.is_empty());
        let p = out.prediction.unwrap();
        assert_eq!(p.bank_conflict_extra, 2 * 31); // store + load, 32-way
    }

    #[test]
    fn unassumed_scalar_branch_is_inconclusive_and_assumption_resolves_it() {
        // if (tid < n) { } — n is a run-time parameter.
        let mut f = Function {
            name: "k".into(),
            params: vec![ks_ir::KernelParam {
                name: "n".into(),
                ty: Ty::S32,
                offset: 0,
            }],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        };
        let n = f.new_vreg(Ty::S32);
        let tid = f.new_vreg(Ty::S32);
        let p = f.new_vreg(Ty::Pred);
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![
                Inst::Ld {
                    space: Space::Param,
                    ty: Ty::S32,
                    dst: n,
                    addr: Address::abs(0),
                },
                Inst::Special {
                    dst: tid,
                    reg: SpecialReg::TidX,
                },
                Inst::Setp {
                    cmp: CmpOp::Lt,
                    ty: Ty::S32,
                    dst: p,
                    a: tid.into(),
                    b: n.into(),
                },
            ],
            term: Terminator::CondBr {
                pred: p,
                negate: false,
                then_t: BlockId(1),
                else_t: BlockId(2),
            },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(1),
            insts: vec![],
            term: Terminator::Br { target: BlockId(2) },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(2),
            insts: vec![],
            term: Terminator::Ret,
        });
        let m = Module::default();
        let dev = DeviceConfig::tesla_c2070();
        let re = exec_function(&m, &f, &dev, &cfg_1d(32));
        assert!(re.inconclusive.is_some());
        assert!(re.prediction.is_none());
        let sk = exec_function(&m, &f, &dev, &cfg_1d(32).assume("n", ParamValue::Int(16)));
        assert!(sk.inconclusive.is_none(), "{:?}", sk.inconclusive);
        assert!(sk.prediction.is_some());
    }

    #[test]
    fn pointer_param_accesses_are_coalescing_checked_without_assumptions() {
        // out[tid*32] = tid → badly strided global store.
        let mut f = Function {
            name: "k".into(),
            params: vec![ks_ir::KernelParam {
                name: "out".into(),
                ty: Ty::Ptr(Space::Global),
                offset: 0,
            }],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        };
        let out_p = f.new_vreg(Ty::Ptr(Space::Global));
        let tid = f.new_vreg(Ty::S32);
        let off = f.new_vreg(Ty::S32);
        let addr = f.new_vreg(Ty::Ptr(Space::Global));
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![
                Inst::Ld {
                    space: Space::Param,
                    ty: Ty::Ptr(Space::Global),
                    dst: out_p,
                    addr: Address::abs(0),
                },
                Inst::Special {
                    dst: tid,
                    reg: SpecialReg::TidX,
                },
                Inst::Bin {
                    op: BinOp::Mul,
                    ty: Ty::S32,
                    dst: off,
                    a: tid.into(),
                    b: Operand::ImmI(128),
                },
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::Ptr(Space::Global),
                    dst: addr,
                    a: out_p.into(),
                    b: off.into(),
                },
                Inst::St {
                    space: Space::Global,
                    ty: Ty::S32,
                    addr: Address::reg(addr),
                    src: tid.into(),
                },
            ],
            term: Terminator::Ret,
        });
        let m = Module::default();
        let out = exec_function(&m, &f, &DeviceConfig::tesla_c2070(), &cfg_1d(32));
        assert!(out.inconclusive.is_none(), "{:?}", out.inconclusive);
        let p = out.prediction.unwrap();
        assert_eq!(p.global_stores, 1);
        assert_eq!(p.global_transactions, 32); // one line per lane
        assert_eq!(out.mem_findings.len(), 1);
    }
}
