//! `ks-analysis` — static analysis and sanitizer suite for `ks-ir` kernels.
//!
//! Five analyses run over compiled modules, unified behind stable
//! `KSA0xx` lint codes (see [`LintCode`]):
//!
//! | code   | lint                     | default  |
//! |--------|--------------------------|----------|
//! | KSA001 | shared-memory race       | deny     |
//! | KSA002 | divergent barrier        | deny     |
//! | KSA003 | out-of-bounds access     | deny     |
//! | KSA004 | shared bank conflicts    | warn     |
//! | KSA005 | uncoalesced global access| warn     |
//!
//! The precise engine is an abstract SIMT executor ([`exec`]) that runs
//! one thread block exactly like `ks_sim::interp` but over a
//! concrete/symbolic value domain. Specialization is what makes it
//! decisive: a kernel whose parameters were compiled in (SK) — or are
//! supplied as analysis assumptions — has concrete branch predicates and
//! addresses, so races, bounds, and per-instruction transaction counts
//! are computed exactly, with the memory numbers cross-validated against
//! the simulator's measured `ExecStats`. The run-time-evaluated (RE)
//! build of the same kernel stops at the first data-dependent branch with
//! an explanation — the dissertation's performance contrast restated as
//! an *analyzability* contrast.
//!
//! When no launch geometry is available the suite falls back to the
//! flow-insensitive barrier-divergence checker ([`barrier`]), which
//! taints thread-varying values and flags barriers control-dependent on
//! them.

pub mod barrier;
pub mod bounds;
pub mod diag;
pub mod exec;
pub mod memlint;
pub mod race;

pub use diag::{
    AnalysisConfig, AnalysisReport, Diagnostic, LintCode, MemPrediction, ParamValue, Severity,
};

use ks_ir::{BlockId, Function, Module};
use ks_sim::device::DeviceConfig;

/// Shared-memory declaration containing a byte address, for messages.
fn shared_name(f: &Function, addr: u64) -> String {
    f.shared
        .iter()
        .find(|d| addr >= d.offset as u64 && addr < (d.offset + d.size_bytes) as u64)
        .map(|d| format!("`{}`", d.name))
        .unwrap_or_else(|| "the shared window".into())
}

fn push(
    report: &mut AnalysisReport,
    cfg: &AnalysisConfig,
    code: LintCode,
    function: &str,
    site: Option<(u32, usize)>,
    message: String,
) {
    let severity = cfg.severity(code);
    if severity == Severity::Allow {
        return;
    }
    report.diagnostics.push(Diagnostic {
        code,
        severity,
        function: function.to_string(),
        block: site.map(|(b, _)| BlockId(b)),
        inst: site.map(|(_, i)| i),
        message,
    });
}

/// Analyze one function of a module.
pub fn analyze_function(
    m: &Module,
    f: &Function,
    dev: &DeviceConfig,
    cfg: &AnalysisConfig,
) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let mut executor_was_conclusive = false;

    if cfg.block_dim.is_some() {
        let out = exec::exec_function(m, f, dev, cfg);
        executor_was_conclusive = out.inconclusive.is_none();
        for r in &out.races {
            push(
                &mut report,
                cfg,
                LintCode::SharedRace,
                &f.name,
                Some(r.site),
                format!(
                    "{} race on word {:#x} of {} (conflicting access at BB{}#{})",
                    r.kind,
                    r.word_addr,
                    shared_name(f, r.word_addr),
                    r.other_site.0,
                    r.other_site.1
                ),
            );
        }
        for b in &out.bounds {
            push(
                &mut report,
                cfg,
                LintCode::OutOfBounds,
                &f.name,
                Some(b.site),
                b.message.clone(),
            );
        }
        for (site, msg) in &out.divergent_barriers {
            push(
                &mut report,
                cfg,
                LintCode::BarrierDivergence,
                &f.name,
                *site,
                msg.clone(),
            );
        }
        for mf in &out.mem_findings {
            let code = match mf.kind {
                memlint::AccessKind::SharedLoad | memlint::AccessKind::SharedStore => {
                    LintCode::BankConflict
                }
                _ => LintCode::Uncoalesced,
            };
            push(
                &mut report,
                cfg,
                code,
                &f.name,
                Some(mf.site),
                mf.message.clone(),
            );
        }
        if let Some(why) = &out.inconclusive {
            report.inconclusive.push(format!("{}: {}", f.name, why));
        }
        if let Some(p) = out.prediction {
            report.mem.push((f.name.clone(), p));
        }
        report.intervals.push((f.name.clone(), out.intervals));
        report.proven_bounds += out.proven_bounds;
    }

    // The static divergence checker is the fallback for whatever the
    // executor could not settle precisely; when the executor completed,
    // its exact observation of every barrier supersedes the
    // conservative taint answer.
    if !executor_was_conclusive {
        for d in barrier::check_barrier_divergence(f) {
            // Don't double-report a barrier the executor already flagged.
            let dup = report.diagnostics.iter().any(|x| {
                x.code == LintCode::BarrierDivergence
                    && x.block == Some(BlockId(d.site.0))
                    && x.inst == Some(d.site.1)
            });
            if !dup {
                push(
                    &mut report,
                    cfg,
                    LintCode::BarrierDivergence,
                    &f.name,
                    Some(d.site),
                    d.message,
                );
            }
        }
    }
    report
}

/// Analyze every function of a module.
pub fn analyze_module(m: &Module, dev: &DeviceConfig, cfg: &AnalysisConfig) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    for f in &m.functions {
        report.merge(analyze_function(m, f, dev, cfg));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_ir::{Address, BasicBlock, Inst, Operand, SpecialReg, Terminator, Ty};

    /// tid-guarded barrier: flagged with or without launch geometry.
    fn divergent_fixture() -> Module {
        let mut f = Function {
            name: "k".into(),
            params: vec![],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        };
        let tid = f.new_vreg(Ty::S32);
        let p = f.new_vreg(Ty::Pred);
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![
                Inst::Special {
                    dst: tid,
                    reg: SpecialReg::TidX,
                },
                Inst::Setp {
                    cmp: ks_ir::CmpOp::Lt,
                    ty: Ty::S32,
                    dst: p,
                    a: tid.into(),
                    b: Operand::ImmI(7),
                },
            ],
            term: Terminator::CondBr {
                pred: p,
                negate: false,
                then_t: BlockId(1),
                else_t: BlockId(2),
            },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(1),
            insts: vec![Inst::Bar],
            term: Terminator::Br { target: BlockId(2) },
        });
        f.blocks.push(BasicBlock {
            id: BlockId(2),
            insts: vec![],
            term: Terminator::Ret,
        });
        Module {
            functions: vec![f],
            consts: vec![],
            textures: vec![],
        }
    }

    #[test]
    fn divergent_barrier_found_statically_and_dynamically() {
        let m = divergent_fixture();
        let dev = DeviceConfig::tesla_c2070();
        // Static only (no geometry).
        let r = analyze_module(&m, &dev, &AnalysisConfig::default());
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, LintCode::BarrierDivergence);
        assert!(r.has_denials());
        // With geometry: the executor observes it directly.
        let cfg = AnalysisConfig {
            block_dim: Some((32, 1, 1)),
            ..Default::default()
        };
        let r = analyze_module(&m, &dev, &cfg);
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|d| d.code == LintCode::BarrierDivergence)
                .count(),
            1,
            "{}",
            r.render()
        );
    }

    #[test]
    fn severity_overrides_silence_and_escalate() {
        let m = divergent_fixture();
        let dev = DeviceConfig::tesla_c2070();
        let allow = AnalysisConfig {
            levels: vec![(LintCode::BarrierDivergence, Severity::Allow)],
            ..Default::default()
        };
        assert!(analyze_module(&m, &dev, &allow).diagnostics.is_empty());
        let warn = AnalysisConfig {
            levels: vec![(LintCode::BarrierDivergence, Severity::Warn)],
            ..Default::default()
        };
        let r = analyze_module(&m, &dev, &warn);
        assert_eq!(r.diagnostics.len(), 1);
        assert!(!r.has_denials());
    }

    #[test]
    fn param_load_of_missing_offset_is_unknown_not_panic() {
        // A param load at an offset no parameter occupies must not panic —
        // the verifier catches it separately; analysis degrades to Unknown.
        let mut f = Function {
            name: "k".into(),
            params: vec![],
            blocks: vec![],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        };
        let v = f.new_vreg(Ty::S32);
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![Inst::Ld {
                space: ks_ir::Space::Param,
                ty: Ty::S32,
                dst: v,
                addr: Address::abs(4),
            }],
            term: Terminator::Ret,
        });
        let m = Module {
            functions: vec![f],
            consts: vec![],
            textures: vec![],
        };
        let cfg = AnalysisConfig {
            block_dim: Some((32, 1, 1)),
            ..Default::default()
        };
        let r = analyze_module(&m, &DeviceConfig::tesla_c2070(), &cfg);
        assert!(r.diagnostics.is_empty());
    }
}
