//! Coalescing and bank-conflict prediction.
//!
//! Per memory-instruction site, accumulate exactly the quantities the
//! simulator measures — transactions via `ks_sim::mem::coalesce_transactions`
//! and conflict degree via `ks_sim::mem::bank_conflict_degree` — so the
//! static prediction and the simulator's `ExecStats` agree bit-for-bit on
//! kernels whose addresses the analysis resolves (cross-validated in the
//! test suite).

#![allow(clippy::single_range_in_vec_init)] // [0..32] is a slice of ranges, like ks_sim::mem

use crate::diag::MemPrediction;
use crate::race::Site;
use ks_sim::device::DeviceConfig;
use ks_sim::mem::{bank_conflict_degree, coalesce_transactions};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    GlobalLoad,
    GlobalStore,
    SharedLoad,
    SharedStore,
}

#[derive(Debug, Clone, Copy, Default)]
struct SiteStats {
    kind: Option<AccessKind>,
    /// Executions of this instruction with fully resolved addresses.
    count: u64,
    /// Global: measured transactions. Shared: summed conflict degree − 1.
    cost: u64,
    /// Global only: transactions a perfectly coalesced access of the same
    /// active-lane count would need.
    ideal: u64,
}

/// A performance finding at one memory instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct MemFinding {
    pub site: Site,
    pub kind: AccessKind,
    pub message: String,
}

pub struct MemLint {
    dev: DeviceConfig,
    sites: HashMap<Site, SiteStats>,
    pub prediction: MemPrediction,
}

impl MemLint {
    pub fn new(dev: &DeviceConfig) -> MemLint {
        MemLint {
            dev: dev.clone(),
            sites: HashMap::new(),
            prediction: MemPrediction::default(),
        }
    }

    /// Transactions needed if the same active lanes accessed consecutive
    /// words starting at a segment boundary.
    fn ideal_transactions(&self, mask: u32) -> u64 {
        let groups: &[std::ops::Range<usize>] = if self.dev.half_warp_coalescing {
            &[0..16, 16..32]
        } else {
            &[0..32]
        };
        let mut total = 0u64;
        for g in groups {
            let lanes = g.clone().filter(|l| mask & (1 << l) != 0).count() as u64;
            if lanes > 0 {
                total += (lanes * 4).div_ceil(self.dev.mem_segment).max(1);
            }
        }
        total
    }

    /// Record a global access with fully resolved per-lane addresses.
    pub fn global(&mut self, kind: AccessKind, addrs: &[u64; 32], mask: u32, site: Site) {
        let t = coalesce_transactions(&self.dev, addrs, mask) as u64;
        self.prediction.global_transactions += t;
        match kind {
            AccessKind::GlobalStore => self.prediction.global_stores += 1,
            _ => self.prediction.global_loads += 1,
        }
        let ideal = self.ideal_transactions(mask);
        let s = self.sites.entry(site).or_default();
        s.kind = Some(kind);
        s.count += 1;
        s.cost += t;
        s.ideal += ideal;
    }

    /// Record a shared access with fully resolved per-lane addresses.
    pub fn shared(&mut self, kind: AccessKind, addrs: &[u64; 32], mask: u32, site: Site) {
        let d = bank_conflict_degree(&self.dev, addrs, mask) as u64;
        self.prediction.shared_accesses += 1;
        self.prediction.bank_conflict_extra += d - 1;
        let s = self.sites.entry(site).or_default();
        s.kind = Some(kind);
        s.count += 1;
        s.cost += d - 1;
    }

    /// Record an access the analysis could not resolve (excluded from the
    /// prediction; counting keeps the exclusion visible).
    pub fn unresolved(&mut self) {
        self.prediction.unresolved_accesses += 1;
    }

    /// Mirror the simulator: a global load/store instruction executed with
    /// no active lanes still counts as an access with zero transactions.
    pub fn finish(&self, bank_conflict_threshold: f64, coalescing_slack: f64) -> Vec<MemFinding> {
        let mut out: Vec<MemFinding> = Vec::new();
        let mut sites: Vec<(&Site, &SiteStats)> = self.sites.iter().collect();
        sites.sort_by_key(|(s, _)| **s);
        for (site, s) in sites {
            let Some(kind) = s.kind else { continue };
            match kind {
                AccessKind::SharedLoad | AccessKind::SharedStore => {
                    let mean_extra = s.cost as f64 / s.count as f64;
                    if mean_extra >= bank_conflict_threshold {
                        out.push(MemFinding {
                            site: *site,
                            kind,
                            message: format!(
                                "shared access replays {:.1}x on {} ({} banks): \
                                 {} extra conflict cycles over {} accesses",
                                mean_extra + 1.0,
                                self.dev.name,
                                self.dev.shared_banks,
                                s.cost,
                                s.count
                            ),
                        });
                    }
                }
                AccessKind::GlobalLoad | AccessKind::GlobalStore => {
                    let measured = s.cost as f64;
                    let ideal = s.ideal as f64;
                    // Require both a relative blow-up and at least one
                    // extra transaction per execution on average, so a
                    // single boundary-crossing access doesn't fire.
                    if measured > coalescing_slack * ideal && s.cost >= s.ideal + s.count {
                        out.push(MemFinding {
                            site: *site,
                            kind,
                            message: format!(
                                "uncoalesced on {} ({}-byte segments): {} transactions \
                                 where {} would suffice over {} accesses",
                                self.dev.name, self.dev.mem_segment, s.cost, s.ideal, s.count
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(base: u64, stride: u64) -> [u64; 32] {
        let mut a = [0u64; 32];
        for (i, v) in a.iter_mut().enumerate() {
            *v = base + i as u64 * stride;
        }
        a
    }

    #[test]
    fn coalesced_access_stays_quiet() {
        let dev = DeviceConfig::tesla_c2070();
        let mut m = MemLint::new(&dev);
        for _ in 0..16 {
            m.global(AccessKind::GlobalLoad, &seq(0x1_0000, 4), u32::MAX, (0, 0));
        }
        assert!(m.finish(1.0, 2.0).is_empty());
        assert_eq!(m.prediction.global_transactions, 16);
        assert_eq!(m.prediction.global_loads, 16);
    }

    #[test]
    fn strided_access_flagged() {
        let dev = DeviceConfig::tesla_c2070();
        let mut m = MemLint::new(&dev);
        for _ in 0..16 {
            m.global(
                AccessKind::GlobalLoad,
                &seq(0x1_0000, 128),
                u32::MAX,
                (2, 5),
            );
        }
        let f = m.finish(1.0, 2.0);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].site, (2, 5));
        assert!(f[0].message.contains("uncoalesced"));
    }

    #[test]
    fn bank_conflicts_flagged() {
        let dev = DeviceConfig::tesla_c1060();
        let mut m = MemLint::new(&dev);
        // Stride of 16 words on 16 banks: 16-way conflict per half-warp.
        m.shared(AccessKind::SharedLoad, &seq(0, 64), u32::MAX, (1, 1));
        let f = m.finish(1.0, 2.0);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("replays"), "{}", f[0].message);
        assert_eq!(m.prediction.bank_conflict_extra, 15);
    }

    #[test]
    fn conflict_free_shared_stays_quiet() {
        let dev = DeviceConfig::tesla_c2070();
        let mut m = MemLint::new(&dev);
        m.shared(AccessKind::SharedLoad, &seq(0, 4), u32::MAX, (1, 1));
        assert!(m.finish(1.0, 2.0).is_empty());
        assert_eq!(m.prediction.shared_accesses, 1);
        assert_eq!(m.prediction.bank_conflict_extra, 0);
    }
}
