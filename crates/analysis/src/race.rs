//! Shared-memory race tracking at warp granularity.
//!
//! The tracker records, for every 4-byte shared-memory word, which warps
//! read and wrote it since the last block-wide barrier. A conflict is
//! reported only when *different warps* touch a word (with at least one
//! writer) inside one barrier interval, or when two lanes of the same
//! instruction write different values to the same word. Same-warp
//! cross-instruction accesses are ordered by lockstep execution and are
//! deliberately not flagged — warp-synchronous idioms like the tail of a
//! shared-memory reduction (`if (t < 16) red[t] += red[t + 16];`) are
//! correct programs.

use std::collections::HashMap;

/// Where a diagnostic points: (block index, instruction index).
pub type Site = (u32, usize);

#[derive(Default, Clone, Copy)]
struct WordState {
    /// Bitmask of warps that wrote this word in the current interval.
    writers: u64,
    /// Bitmask of warps that read this word in the current interval.
    readers: u64,
    write_site: Site,
    read_site: Site,
}

/// A detected race, reported once per (kind, site) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// `"write/write"`, `"read/write"`, or `"intra-warp write/write"`.
    pub kind: &'static str,
    pub word_addr: u64,
    pub site: Site,
    pub other_site: Site,
}

pub struct RaceTracker {
    words: HashMap<u64, WordState>,
    findings: Vec<RaceFinding>,
    /// (kind, site) pairs already reported, to keep output finite.
    reported: Vec<(&'static str, Site)>,
}

impl Default for RaceTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl RaceTracker {
    pub fn new() -> RaceTracker {
        RaceTracker {
            words: HashMap::new(),
            findings: Vec::new(),
            reported: Vec::new(),
        }
    }

    fn report(&mut self, kind: &'static str, word_addr: u64, site: Site, other_site: Site) {
        if self.reported.contains(&(kind, site)) {
            return;
        }
        self.reported.push((kind, site));
        self.findings.push(RaceFinding {
            kind,
            word_addr,
            site,
            other_site,
        });
    }

    /// Record a write of `addr` (4-byte word) by `warp` at `site`.
    pub fn write(&mut self, warp: u32, addr: u64, site: Site) {
        let word = addr / 4;
        let bit = 1u64 << (warp % 64);
        let s = *self.words.entry(word).or_default();
        if s.writers & !bit != 0 {
            self.report("write/write", addr, site, s.write_site);
        }
        if s.readers & !bit != 0 {
            self.report("read/write", addr, site, s.read_site);
        }
        let e = self.words.get_mut(&word).unwrap();
        e.writers |= bit;
        e.write_site = site;
    }

    /// Record a read of `addr` by `warp` at `site`.
    pub fn read(&mut self, warp: u32, addr: u64, site: Site) {
        let word = addr / 4;
        let bit = 1u64 << (warp % 64);
        let s = *self.words.entry(word).or_default();
        if s.writers & !bit != 0 {
            self.report("read/write", addr, site, s.write_site);
        }
        let e = self.words.get_mut(&word).unwrap();
        e.readers |= bit;
        e.read_site = site;
    }

    /// Two lanes of one store instruction hit the same word with
    /// conflicting values (which lane wins is undefined on hardware).
    pub fn intra_warp_conflict(&mut self, addr: u64, site: Site) {
        self.report("intra-warp write/write", addr, site, site);
    }

    /// A block-wide barrier separates intervals: all prior accesses are
    /// ordered before all later ones.
    pub fn barrier(&mut self) {
        self.words.clear();
    }

    pub fn findings(&self) -> &[RaceFinding] {
        &self.findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_warp_write_write_detected() {
        let mut t = RaceTracker::new();
        t.write(0, 0x40, (1, 0));
        t.write(1, 0x40, (1, 0));
        assert_eq!(t.findings().len(), 1);
        assert_eq!(t.findings()[0].kind, "write/write");
    }

    #[test]
    fn same_warp_accesses_are_ordered() {
        let mut t = RaceTracker::new();
        t.write(0, 0x40, (1, 0));
        t.read(0, 0x40, (1, 1));
        t.write(0, 0x40, (1, 2));
        assert!(t.findings().is_empty());
    }

    #[test]
    fn barrier_separates_intervals() {
        let mut t = RaceTracker::new();
        t.write(0, 0x40, (1, 0));
        t.barrier();
        t.read(1, 0x40, (2, 0));
        assert!(t.findings().is_empty());
    }

    #[test]
    fn read_then_write_across_warps_detected() {
        let mut t = RaceTracker::new();
        t.read(0, 0x80, (0, 3));
        t.write(1, 0x80, (0, 5));
        assert_eq!(t.findings().len(), 1);
        assert_eq!(t.findings()[0].kind, "read/write");
    }

    #[test]
    fn duplicate_sites_reported_once() {
        let mut t = RaceTracker::new();
        for _ in 0..10 {
            t.write(0, 0x40, (1, 0));
            t.write(1, 0x40, (1, 0));
        }
        assert_eq!(t.findings().len(), 1);
    }
}
