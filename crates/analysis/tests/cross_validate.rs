//! Cross-validation of the static memory predictions against the
//! simulator: for a specialized kernel analyzed with the *actual* launch
//! geometry and buffer addresses, every number in [`MemPrediction`] must
//! equal the corresponding `ExecStats` counter measured by `ks_sim` on a
//! single-block launch — not approximately, exactly. This is what makes
//! the KSA004/KSA005 lints trustworthy.

use ks_analysis::{analyze_module, AnalysisConfig, MemPrediction, ParamValue};
use ks_ir::Module;
use ks_sim::{launch, DeviceConfig, DeviceState, ExecStats, KArg, LaunchDims, LaunchOptions};

const PIV: &str = include_str!("../../apps/src/kernels/piv.cu");
const TEMPLATE_MATCH: &str = include_str!("../../apps/src/kernels/template_match.cu");

fn compile(source: &str, defines: &[(&str, &str)]) -> Module {
    let defines: Vec<(String, String)> = std::iter::once(("__CUDA_ARCH__", "200"))
        .chain(defines.iter().copied())
        .map(|(n, v)| (n.to_string(), v.to_string()))
        .collect();
    let program = ks_lang::frontend(source, &defines).expect("frontend");
    let mut module =
        ks_codegen::compile(&program, &ks_codegen::CodegenOptions::default()).expect("codegen");
    ks_opt::optimize_module_with(&mut module, &ks_opt::OptConfig::default());
    let errs = ks_ir::verify_module(&module);
    assert!(errs.is_empty(), "verify: {errs:?}");
    module
}

fn assert_mem_matches(mem: &MemPrediction, stats: &ExecStats, what: &str) {
    assert_eq!(
        mem.unresolved_accesses, 0,
        "{what}: analysis left accesses unresolved"
    );
    assert_eq!(mem.global_loads, stats.global_loads, "{what}: global loads");
    assert_eq!(
        mem.global_stores, stats.global_stores,
        "{what}: global stores"
    );
    assert_eq!(
        mem.global_transactions, stats.global_transactions,
        "{what}: global transactions"
    );
    assert_eq!(
        mem.shared_accesses, stats.shared_accesses,
        "{what}: shared accesses"
    );
    assert_eq!(
        mem.bank_conflict_extra, stats.bank_conflict_extra,
        "{what}: bank conflicts"
    );
}

#[test]
fn piv_ssd_prediction_matches_simulator_counts() {
    let m = compile(
        PIV,
        &[
            ("RB", "4"),
            ("THREADS", "64"),
            ("MASK_W", "16"),
            ("MASK_H", "16"),
            ("OFFS_W", "9"),
        ],
    );
    let dev = DeviceConfig::tesla_c2070();
    let mut st = DeviceState::new(dev.clone(), 16 << 20);
    let img = 96u32;
    let pa = st.global.alloc((img * img * 4) as u64).unwrap();
    let pb = st.global.alloc((img * img * 4) as u64).unwrap();
    let ps = st.global.alloc(81 * 4).unwrap();
    let va: Vec<f32> = (0..img * img).map(|i| (i % 17) as f32).collect();
    st.global.write_f32_slice(pa, &va).unwrap();
    st.global.write_f32_slice(pb, &va).unwrap();

    let rep = launch(
        &mut st,
        &m,
        "piv_ssd",
        LaunchDims {
            grid: (1, 1, 1),
            block: (64, 1, 1),
            dynamic_shared: 0,
        },
        &[
            KArg::Ptr(pa),
            KArg::Ptr(pb),
            KArg::Ptr(ps),
            KArg::I32(96),
            KArg::I32(16),
            KArg::I32(16),
            KArg::I32(9),
            KArg::I32(81),
            KArg::I32(4),
            KArg::I32(16),
            KArg::I32(16),
            KArg::I32(4),
            KArg::I32(4),
            KArg::I32(4),
        ],
        LaunchOptions::default(),
    )
    .unwrap();

    let cfg = AnalysisConfig {
        block_dim: Some((64, 1, 1)),
        grid_dim: (1, 1, 1),
        block_idx: (0, 0, 0),
        ..Default::default()
    }
    .assume("imgA", ParamValue::Int(pa as i64))
    .assume("imgB", ParamValue::Int(pb as i64))
    .assume("scores", ParamValue::Int(ps as i64))
    .assume("imgW", ParamValue::Int(96))
    .assume("numOffsets", ParamValue::Int(81))
    .assume("masksX", ParamValue::Int(4))
    .assume("stepX", ParamValue::Int(16))
    .assume("stepY", ParamValue::Int(16))
    .assume("marginX", ParamValue::Int(4))
    .assume("marginY", ParamValue::Int(4))
    .assume("rb", ParamValue::Int(4));
    let r = analyze_module(&m, &dev, &cfg);
    assert!(
        !r.inconclusive.iter().any(|s| s.starts_with("piv_ssd:")),
        "piv_ssd inconclusive: {:?}",
        r.inconclusive
    );
    let mem = r.mem_for("piv_ssd").expect("no prediction for piv_ssd");
    assert_mem_matches(mem, &rep.stats, "piv_ssd");
    // Sanity: the kernel actually exercises every counter we compare.
    assert!(rep.stats.global_loads > 0 && rep.stats.shared_accesses > 0);
}

#[test]
fn window_stats_prediction_matches_simulator_counts() {
    let m = compile(
        TEMPLATE_MATCH,
        &[
            ("TILE_W", "16"),
            ("TILE_H", "16"),
            ("SHIFT_W", "16"),
            ("NUM_TILES", "16"),
            ("TEMPL_W", "64"),
            ("TEMPL_H", "56"),
            ("THREADS", "128"),
        ],
    );
    let dev = DeviceConfig::tesla_c2070();
    let mut st = DeviceState::new(dev.clone(), 16 << 20);
    let (fw, fh) = (320u32, 240u32);
    let pf = st.global.alloc((fw * fh * 4) as u64).unwrap();
    let psum = st.global.alloc(256 * 4).unwrap();
    let psq = st.global.alloc(256 * 4).unwrap();
    let vf: Vec<f32> = (0..fw * fh).map(|i| (i % 31) as f32).collect();
    st.global.write_f32_slice(pf, &vf).unwrap();

    let rep = launch(
        &mut st,
        &m,
        "window_stats",
        LaunchDims {
            grid: (1, 1, 1),
            block: (128, 1, 1),
            dynamic_shared: 0,
        },
        &[
            KArg::Ptr(pf),
            KArg::Ptr(psum),
            KArg::Ptr(psq),
            KArg::I32(320),
            KArg::I32(16),
            KArg::I32(256),
            KArg::I32(64),
            KArg::I32(56),
        ],
        LaunchOptions::default(),
    )
    .unwrap();

    let cfg = AnalysisConfig {
        block_dim: Some((128, 1, 1)),
        grid_dim: (1, 1, 1),
        block_idx: (0, 0, 0),
        ..Default::default()
    }
    .assume("frame", ParamValue::Int(pf as i64))
    .assume("sums", ParamValue::Int(psum as i64))
    .assume("sumsq", ParamValue::Int(psq as i64))
    .assume("frameW", ParamValue::Int(320))
    .assume("shiftW", ParamValue::Int(16))
    .assume("numOffsets", ParamValue::Int(256))
    .assume("templW", ParamValue::Int(64))
    .assume("templH", ParamValue::Int(56));
    let r = analyze_module(&m, &dev, &cfg);
    assert!(
        !r.inconclusive
            .iter()
            .any(|s| s.starts_with("window_stats:")),
        "window_stats inconclusive: {:?}",
        r.inconclusive
    );
    let mem = r
        .mem_for("window_stats")
        .expect("no prediction for window_stats");
    assert_mem_matches(mem, &rep.stats, "window_stats");
    assert!(rep.stats.shared_accesses > 0);
}
