//! End-to-end lint tests: fixture kernels go through the real compile
//! pipeline (preprocess → parse → sema → codegen → opt → verify) and the
//! analysis suite must flag exactly the seeded defect.

use ks_analysis::{analyze_module, AnalysisConfig, LintCode, ParamValue};
use ks_ir::Module;
use ks_sim::device::DeviceConfig;

fn compile(source: &str, defines: &[(&str, &str)]) -> Module {
    let defines: Vec<(String, String)> = std::iter::once(("__CUDA_ARCH__", "200"))
        .chain(defines.iter().copied())
        .map(|(n, v)| (n.to_string(), v.to_string()))
        .collect();
    let program = ks_lang::frontend(source, &defines).expect("frontend");
    let mut module =
        ks_codegen::compile(&program, &ks_codegen::CodegenOptions::default()).expect("codegen");
    ks_opt::optimize_module_with(&mut module, &ks_opt::OptConfig::default());
    let errs = ks_ir::verify_module(&module);
    assert!(errs.is_empty(), "verify: {errs:?}");
    module
}

fn geometry(block_x: u32) -> AnalysisConfig {
    AnalysisConfig {
        block_dim: Some((block_x, 1, 1)),
        ..Default::default()
    }
}

fn codes(m: &Module, cfg: &AnalysisConfig) -> Vec<LintCode> {
    let dev = DeviceConfig::tesla_c2070();
    let r = analyze_module(m, &dev, cfg);
    r.diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn seeded_shared_race_is_denied() {
    let m = compile(include_str!("fixtures/shared_race.cu"), &[]);
    let cfg = geometry(64);
    let r = analyze_module(&m, &DeviceConfig::tesla_c2070(), &cfg);
    assert!(
        r.diagnostics.iter().any(|d| d.code == LintCode::SharedRace),
        "expected KSA001, got:\n{}",
        r.render()
    );
    assert!(r.has_denials());
}

#[test]
fn seeded_divergent_barrier_is_denied() {
    let m = compile(include_str!("fixtures/divergent_barrier.cu"), &[]);
    let r = analyze_module(&m, &DeviceConfig::tesla_c2070(), &geometry(64));
    assert!(
        r.diagnostics
            .iter()
            .any(|d| d.code == LintCode::BarrierDivergence),
        "expected KSA002, got:\n{}",
        r.render()
    );
    assert!(r.has_denials());
    // The purely static path (no geometry) finds it too.
    let r = analyze_module(&m, &DeviceConfig::tesla_c2070(), &AnalysisConfig::default());
    assert!(r
        .diagnostics
        .iter()
        .any(|d| d.code == LintCode::BarrierDivergence));
}

#[test]
fn seeded_out_of_bounds_shared_store_is_denied() {
    let m = compile(include_str!("fixtures/oob_shared.cu"), &[]);
    let r = analyze_module(&m, &DeviceConfig::tesla_c2070(), &geometry(32));
    assert!(
        r.diagnostics
            .iter()
            .any(|d| d.code == LintCode::OutOfBounds),
        "expected KSA003, got:\n{}",
        r.render()
    );
    assert!(r.has_denials());
}

#[test]
fn bank_conflicts_and_uncoalesced_access_warn() {
    let m = compile(include_str!("fixtures/bank_stride.cu"), &[]);
    let got = codes(&m, &geometry(32));
    assert!(
        got.contains(&LintCode::BankConflict),
        "expected KSA004 in {got:?}"
    );
    assert!(
        got.contains(&LintCode::Uncoalesced),
        "expected KSA005 in {got:?}"
    );
    // Performance lints alone must not fail the build by default.
    let r = analyze_module(&m, &DeviceConfig::tesla_c2070(), &geometry(32));
    assert!(!r.has_denials(), "{}", r.render());
}

#[test]
fn clean_kernel_is_clean_and_re_needs_an_assumption() {
    let dev = DeviceConfig::tesla_c2070();
    // SK: the trip count is compiled in; the executor proves the kernel.
    let sk = compile(include_str!("fixtures/clean.cu"), &[("N", "128")]);
    let r = analyze_module(&sk, &dev, &geometry(64));
    assert!(r.diagnostics.is_empty(), "{}", r.render());
    assert!(r.inconclusive.is_empty(), "{:?}", r.inconclusive);
    assert!(r.proven_bounds > 0);

    // RE: the bound is a run-time parameter — the first data-dependent
    // branch stops the executor (no false positives, but no proof).
    let re = compile(include_str!("fixtures/clean.cu"), &[]);
    let r = analyze_module(&re, &dev, &geometry(64));
    assert!(r.diagnostics.is_empty(), "{}", r.render());
    assert_eq!(r.inconclusive.len(), 1, "{:?}", r.inconclusive);

    // An explicit assumption restores SK-grade analyzability.
    let mut cfg = geometry(64);
    cfg.param_assumptions
        .push(("n".into(), ParamValue::Int(128)));
    let r = analyze_module(&re, &dev, &cfg);
    assert!(r.diagnostics.is_empty(), "{}", r.render());
    assert!(r.inconclusive.is_empty(), "{:?}", r.inconclusive);
}

#[test]
fn ks_lint_cli_exit_codes_and_report() {
    let lint = env!("CARGO_BIN_EXE_ks-lint");
    let fixture = |name: &str| format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));

    let out = std::process::Command::new(lint)
        .args([&fixture("shared_race.cu"), "--block", "64"])
        .output()
        .expect("run ks-lint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "race fixture must fail the lint"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("KSA001"), "stderr: {stderr}");

    let out = std::process::Command::new(lint)
        .args([
            &fixture("clean.cu"),
            "--block",
            "64",
            "-A",
            "n=128",
            "--device",
            "tesla_c1060",
            "-v",
        ])
        .output()
        .expect("run ks-lint");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean fixture must pass: {stderr}"
    );

    // Allowing the lint turns failure into success.
    let out = std::process::Command::new(lint)
        .args([
            &fixture("shared_race.cu"),
            "--block",
            "64",
            "--allow",
            "KSA001",
        ])
        .output()
        .expect("run ks-lint");
    assert_eq!(out.status.code(), Some(0));

    // Unknown files and bad flags are usage errors, not lint failures.
    let out = std::process::Command::new(lint)
        .args(["does_not_exist.cu"])
        .output()
        .expect("run ks-lint");
    assert_eq!(out.status.code(), Some(2));
}
