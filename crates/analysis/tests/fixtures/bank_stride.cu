// KSA004/KSA005 fixture: a word stride equal to the bank count makes
// every lane hit bank 0, and the same stride in global memory touches a
// separate segment per lane.
__global__ void bank_stride(float* a, float* out) {
    __shared__ float s[1024];
    int t = (int)threadIdx.x;
    s[t * 32] = a[t];
    __syncthreads();
    out[t] = s[t * 32];
}

__global__ void global_stride(float* a, float* out) {
    int t = (int)threadIdx.x;
    out[t * 32] = a[t * 32];
}
