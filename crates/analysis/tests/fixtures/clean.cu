// Negative fixture: a correctly synchronized, coalesced, conflict-free
// blocked reversal. No lint may fire.
#ifndef N
#define N n
#endif
__global__ void clean_reverse(float* a, float* out, int n) {
    __shared__ float s[256];
    int t = (int)threadIdx.x;
    for (int i = t; i < N; i += (int)blockDim.x) {
        s[i] = a[i];
    }
    __syncthreads();
    for (int i = t; i < N; i += (int)blockDim.x) {
        out[i] = s[N - 1 - i];
    }
}
