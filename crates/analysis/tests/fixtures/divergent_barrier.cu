// KSA002 fixture: only the first half-warp reaches the barrier.
__global__ void divergent_barrier(float* a, float* out) {
    __shared__ float s[64];
    int t = (int)threadIdx.x;
    s[t] = a[t];
    if (t < 16) {
        __syncthreads();
    }
    out[t] = s[t];
}
