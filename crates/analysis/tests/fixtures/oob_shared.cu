// KSA003 fixture: a 16-float window indexed by up to blockDim.x = 32.
__global__ void oob_shared(float* a, float* out) {
    __shared__ float s[16];
    int t = (int)threadIdx.x;
    s[t + 1] = a[t];
    __syncthreads();
    out[t] = s[t];
}
