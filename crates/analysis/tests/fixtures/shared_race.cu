// KSA001 fixture: each thread reads a word another warp wrote with no
// intervening barrier.
__global__ void shared_race(float* a, float* out) {
    __shared__ float s[64];
    int t = (int)threadIdx.x;
    s[t] = a[t];
    // Lane t of warp 0 reads the word lane t of warp 1 just stored (and
    // vice versa) without a __syncthreads() in between.
    out[t] = s[(t + 32) & 63];
}
