//! Property tests over randomly generated kernels.
//!
//! 1. Whatever the generator produces, the compile pipeline's output
//!    passes the IR verifier and the whole analysis suite runs without
//!    panicking — diagnostics are data, not crashes.
//! 2. On the race-free, in-bounds subset, the static memory predictions
//!    equal the simulator's measured counters (the property-based twin of
//!    `cross_validate.rs`).

use ks_analysis::{analyze_module, AnalysisConfig, ParamValue};
use ks_ir::Module;
use ks_sim::{launch, DeviceConfig, DeviceState, KArg, LaunchDims, LaunchOptions};
use proptest::prelude::*;

fn compile(source: &str, defines: &[(String, String)]) -> Module {
    let defines: Vec<(String, String)> =
        std::iter::once(("__CUDA_ARCH__".to_string(), "200".to_string()))
            .chain(defines.iter().cloned())
            .collect();
    let program = ks_lang::frontend(source, &defines).expect("frontend");
    let mut module =
        ks_codegen::compile(&program, &ks_codegen::CodegenOptions::default()).expect("codegen");
    ks_opt::optimize_module_with(&mut module, &ks_opt::OptConfig::default());
    let errs = ks_ir::verify_module(&module);
    assert!(
        errs.is_empty(),
        "verifier rejected codegen output: {errs:?}"
    );
    module
}

/// A kernel whose shape is driven by the generated numbers. Depending on
/// them it may contain strided (bank-conflicting, uncoalescing) accesses,
/// out-of-bounds shared stores, guarded barriers — all of which must come
/// out as diagnostics, never as panics.
fn arbitrary_kernel(
    shared_n: u32,
    gstride: u32,
    goff: u32,
    sstride: u32,
    guard: u32,
    barrier: bool,
    specialize_n: bool,
) -> (String, Vec<(String, String)>) {
    let sync = if barrier { "__syncthreads();" } else { "" };
    let src = format!(
        r#"
        __global__ void k(float* a, float* out, int n) {{
            __shared__ float s[{shared_n}];
            int t = (int)threadIdx.x;
            float v = a[t * {gstride} + {goff}];
            if (t < {guard}) {{
                s[t * {sstride}] = v;
            }}
            {sync}
            out[t] = v + s[(unsigned int)t % {shared_n}u] + (float)N;
        }}
    "#
    );
    let defines = if specialize_n {
        vec![("N".to_string(), "3".to_string())]
    } else {
        vec![("N".to_string(), "n".to_string())]
    };
    (src, defines)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..Default::default() })]

    #[test]
    fn random_kernels_verify_and_analyze_without_panicking(
        shared_n in 1u32..512,
        gstride in 0u32..40,
        goff in 0u32..64,
        sstride in 0u32..40,
        guard in 0u32..160,
        barrier in prop_oneof![Just(true), Just(false)],
        specialize_n in prop_oneof![Just(true), Just(false)],
        block in prop_oneof![Just(32u32), Just(64), Just(96), Just(128)],
    ) {
        let (src, defines) =
            arbitrary_kernel(shared_n, gstride, goff, sstride, guard, barrier, specialize_n);
        let m = compile(&src, &defines);
        let dev = DeviceConfig::tesla_c2070();
        // Without geometry: flow-insensitive checks only.
        let _ = analyze_module(&m, &dev, &AnalysisConfig::default());
        // With geometry, with and without the scalar assumption.
        let cfg = AnalysisConfig { block_dim: Some((block, 1, 1)), ..Default::default() };
        let _ = analyze_module(&m, &dev, &cfg);
        let cfg = cfg.assume("n", ParamValue::Int(3));
        let r = analyze_module(&m, &dev, &cfg);
        // The executor must always reach a verdict on this family: every
        // branch predicate is tid-vs-constant once `n` is assumed.
        prop_assert!(r.inconclusive.is_empty(), "inconclusive: {:?}", r.inconclusive);
    }

    #[test]
    fn predictions_match_simulator_on_random_clean_kernels(
        an in 64u32..512,
        gstride in 1u32..17,
        sstride in 1u32..17,
        soff in 0u32..64,
        block in prop_oneof![Just(32u32), Just(64), Just(128)],
    ) {
        // Race-free by construction (each thread writes s[t], reads after a
        // barrier) and in-bounds by construction (modulo indexing), so the
        // abstract executor completes and the launch cannot fault.
        let src = format!(
            r#"
            __global__ void k(float* a, float* out) {{
                __shared__ float s[{block}];
                int t = (int)threadIdx.x;
                float v = a[((unsigned int)(t * {gstride}) % {an}u)];
                s[t] = v;
                __syncthreads();
                float w = s[(unsigned int)(t * {sstride} + {soff}) % {block}u];
                out[((unsigned int)(t + {soff}) % {an}u)] = v + w;
            }}
        "#
        );
        let m = compile(&src, &[]);
        let dev = DeviceConfig::tesla_c2070();
        let mut st = DeviceState::new(dev.clone(), 1 << 22);
        let pa = st.global.alloc((an * 4) as u64).unwrap();
        let po = st.global.alloc((an * 4) as u64).unwrap();
        let va: Vec<f32> = (0..an).map(|i| (i % 7) as f32).collect();
        st.global.write_f32_slice(pa, &va).unwrap();
        let rep = launch(
            &mut st,
            &m,
            "k",
            LaunchDims { grid: (1, 1, 1), block: (block, 1, 1), dynamic_shared: 0 },
            &[KArg::Ptr(pa), KArg::Ptr(po)],
            LaunchOptions::default(),
        )
        .unwrap();

        let cfg = AnalysisConfig {
            block_dim: Some((block, 1, 1)),
            grid_dim: (1, 1, 1),
            block_idx: (0, 0, 0),
            ..Default::default()
        }
        .assume("a", ParamValue::Int(pa as i64))
        .assume("out", ParamValue::Int(po as i64));
        let r = analyze_module(&m, &dev, &cfg);
        prop_assert!(r.inconclusive.is_empty(), "inconclusive: {:?}", r.inconclusive);
        prop_assert!(!r.has_denials(), "unexpected denials:\n{}", r.render());
        let mem = r.mem_for("k").expect("no prediction");
        prop_assert_eq!(mem.unresolved_accesses, 0);
        prop_assert_eq!(mem.global_loads, rep.stats.global_loads);
        prop_assert_eq!(mem.global_stores, rep.stats.global_stores);
        prop_assert_eq!(mem.global_transactions, rep.stats.global_transactions);
        prop_assert_eq!(mem.shared_accesses, rep.stats.shared_accesses);
        prop_assert_eq!(mem.bank_conflict_extra, rep.stats.bank_conflict_extra);
    }
}
