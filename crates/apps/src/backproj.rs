//! Cone-beam backprojection (dissertation §5.3).
//!
//! Voxel-driven backprojection for circular cone-beam CT with a flat
//! detector (Figure 5.13 geometry): each thread covers a column of `ZB`
//! voxels (z register blocking), loops over the `PPL` projections of the
//! current launch batch — whose per-angle cos/sin pairs sit in constant
//! memory — projects the voxel onto the detector, and accumulates a
//! distance-weighted bilinear sample.
//!
//! Specialization (§5.3.1): `PPL` fixes the projection loop for unrolling
//! and makes the constant-memory declaration exactly the needed size;
//! `ZB` enables register-blocked accumulators; `VOL_N` folds the volume
//! addressing arithmetic.

use crate::synth::{ConeGeometry, CtScenario};
use crate::{GpuRunResult, Variant};
use ks_core::{Compiler, Defines};
use ks_sim::{launch, DeviceState, KArg, LaunchDims, LaunchOptions};

/// Problem parameters (Table 6.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackprojProblem {
    /// Volume is `n³` voxels.
    pub n: usize,
    pub num_proj: usize,
    pub det_u: usize,
    pub det_v: usize,
}

/// Implementation parameters (Table 6.9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackprojImpl {
    /// Thread block (x, y).
    pub block_x: u32,
    pub block_y: u32,
    /// Projections per launch (constant-memory batch).
    pub ppl: u32,
    /// Voxels along z per thread (register blocking).
    pub zb: u32,
}

impl Default for BackprojImpl {
    fn default() -> Self {
        BackprojImpl {
            block_x: 16,
            block_y: 8,
            ppl: 8,
            zb: 2,
        }
    }
}

/// The backprojection kernel module.
pub const KERNELS: &str = include_str!("kernels/backproj.cu");

/// The define set [`run_gpu`] compiles for this configuration (empty for
/// RE): `PPL` fixes the projection batch, `ZB` the register blocking,
/// `VOL_N` the volume edge. Profiling and sweep drivers use this to
/// compile the same module `run_gpu` will request.
pub fn specialization(variant: Variant, prob: &BackprojProblem, imp: &BackprojImpl) -> Defines {
    match variant {
        Variant::Re => Defines::new(),
        Variant::Sk => Defines::new()
            .def("PPL", imp.ppl)
            .def("ZB", imp.zb)
            .def("VOL_N", prob.n),
    }
}

/// Output of a GPU backprojection run.
#[derive(Debug, Clone)]
pub struct BackprojOutput {
    pub volume: Vec<f32>,
    pub run: GpuRunResult,
}

/// Run the full backprojection (all projection batches) on the GPU.
pub fn run_gpu(
    compiler: &Compiler,
    variant: Variant,
    prob: &BackprojProblem,
    imp: &BackprojImpl,
    scen: &CtScenario,
    functional: bool,
) -> Result<BackprojOutput, Box<dyn std::error::Error>> {
    assert_eq!(prob.n, scen.n);
    assert!(imp.zb >= 1 && imp.zb as usize <= prob.n && imp.zb <= 8);
    assert!(imp.ppl >= 1 && imp.ppl <= 64);
    let n = prob.n;
    let defines = specialization(variant, prob, imp);
    let t0 = std::time::Instant::now();
    let bin = compiler.compile(KERNELS, &defines)?;
    let compile_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut st = DeviceState::new(compiler.device().clone(), 512 << 20);
    let batch = imp.ppl as usize;
    let p_proj = st
        .global
        .alloc((batch * prob.det_u * prob.det_v * 4) as u64)?;
    let p_vol = st.global.alloc((n * n * n * 4) as u64)?;

    let geo: ConeGeometry = scen.geo;
    let half_n = n as f32 / 2.0;
    let half_u = prob.det_u as f32 / 2.0;
    let half_v = prob.det_v as f32 / 2.0;

    let grid_z = (n as u32).div_ceil(imp.zb);
    let dims = LaunchDims {
        grid: (
            (n as u32).div_ceil(imp.block_x),
            (n as u32).div_ceil(imp.block_y),
            grid_z,
        ),
        block: (imp.block_x, imp.block_y, 1),
        dynamic_shared: 0,
    };

    let mut reports = Vec::new();
    let mut p0 = 0usize;
    while p0 < prob.num_proj {
        let this_batch = batch.min(prob.num_proj - p0);
        // Upload this batch's projections and (cos, sin) table.
        let slice = &scen.projections
            [p0 * prob.det_u * prob.det_v..(p0 + this_batch) * prob.det_u * prob.det_v];
        st.global.write_f32_slice(p_proj, slice)?;
        let mut geo_tab = Vec::with_capacity(batch * 2);
        for p in 0..this_batch {
            let theta = (p0 + p) as f32 * std::f32::consts::PI * 2.0 / prob.num_proj as f32;
            geo_tab.push(theta.cos());
            geo_tab.push(theta.sin());
        }
        // Pad the table if the last batch is short (kernel still loops
        // PPL times when specialized; the extra reads need valid data but
        // contribute only when p < this_batch — guard below via ppl arg in
        // RE; for SK we simply require num_proj % ppl == 0).
        while geo_tab.len() < batch * 2 {
            geo_tab.push(1.0);
            geo_tab.push(0.0);
        }
        let bytes: Vec<u8> = geo_tab.iter().flat_map(|v| v.to_le_bytes()).collect();
        st.set_const(&bin.module, "projGeo", &bytes)?;
        if variant == Variant::Sk && this_batch != batch {
            return Err(
                format!("specialized PPL={batch} requires num_proj divisible by it").into(),
            );
        }

        let rep = launch(
            &mut st,
            &bin.module,
            "backproject",
            dims,
            &[
                KArg::Ptr(p_proj),
                KArg::Ptr(p_vol),
                KArg::I32(n as i32),
                KArg::I32(prob.det_u as i32),
                KArg::I32(prob.det_v as i32),
                KArg::I32(this_batch as i32),
                KArg::I32(imp.zb as i32),
                KArg::I32(0),
                KArg::F32(geo.sid),
                KArg::F32(geo.sdd),
                KArg::F32(half_n),
                KArg::F32(half_u),
                KArg::F32(half_v),
            ],
            LaunchOptions {
                functional,
                timing_sample_blocks: 6,
                ..Default::default()
            },
        )?;
        reports.push(rep);
        p0 += this_batch;
    }

    let volume = st.global.read_f32_slice(p_vol, n * n * n)?;
    let sim_ms = reports.iter().map(|r| r.time_ms).sum();
    Ok(BackprojOutput {
        volume,
        run: GpuRunResult {
            sim_ms,
            reports,
            compile_ms,
        },
    })
}

/// Multi-threaded CPU reference (the OpenMP baseline of Table 6.12),
/// parallel over z-slices.
pub fn cpu_backproject(prob: &BackprojProblem, scen: &CtScenario, threads: usize) -> Vec<f32> {
    let n = prob.n;
    let geo = scen.geo;
    let half_n = n as f32 / 2.0;
    let half_u = prob.det_u as f32 / 2.0;
    let half_v = prob.det_v as f32 / 2.0;
    // Precompute angle table.
    let angles: Vec<(f32, f32)> = (0..prob.num_proj)
        .map(|p| {
            let th = p as f32 * std::f32::consts::PI * 2.0 / prob.num_proj as f32;
            (th.cos(), th.sin())
        })
        .collect();
    let mut vol = vec![0.0f32; n * n * n];
    let chunk = (n * n).div_ceil(threads.max(1)) * n; // whole z-slices
    std::thread::scope(|s| {
        for (ci, slice) in vol.chunks_mut(chunk).enumerate() {
            let angles = &angles;
            s.spawn(move || {
                for (k, out) in slice.iter_mut().enumerate() {
                    let idx = ci * chunk + k;
                    let x = idx % n;
                    let y = (idx / n) % n;
                    let z = idx / (n * n);
                    let fx = x as f32 - half_n;
                    let fy = y as f32 - half_n;
                    let fz = z as f32 - half_n;
                    let mut acc = 0.0f32;
                    for (p, &(ct, st)) in angles.iter().enumerate() {
                        let t = fx * ct + fy * st;
                        let ss = fy * ct - fx * st;
                        let depth = geo.sid - ss;
                        let w = geo.sid * geo.sid / (depth * depth);
                        let mag = geo.sdd / depth;
                        let u = t * mag + half_u;
                        let v = fz * mag + half_v;
                        let u0 = u.floor() as i32;
                        let v0 = v.floor() as i32;
                        let fu = u - u0 as f32;
                        let fv = v - v0 as f32;
                        let cl = |c: i32, hi: usize| (c.max(0) as usize).min(hi - 1);
                        let (uu0, uu1) = (cl(u0, prob.det_u), cl(u0 + 1, prob.det_u));
                        let (vv0, vv1) = (cl(v0, prob.det_v), cl(v0 + 1, prob.det_v));
                        let at = |vv: usize, uu: usize| {
                            scen.projections[(p * prob.det_v + vv) * prob.det_u + uu]
                        };
                        let b0 = at(vv0, uu0) + fu * (at(vv0, uu1) - at(vv0, uu0));
                        let b1 = at(vv1, uu0) + fu * (at(vv1, uu1) - at(vv1, uu0));
                        acc += w * (b0 + fv * (b1 - b0));
                    }
                    *out = acc;
                }
            });
        }
    });
    vol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::ct_scenario;
    use ks_sim::DeviceConfig;

    fn small() -> (BackprojProblem, CtScenario) {
        let prob = BackprojProblem {
            n: 16,
            num_proj: 8,
            det_u: 24,
            det_v: 24,
        };
        (
            prob,
            ct_scenario(prob.n, prob.num_proj, prob.det_u, prob.det_v),
        )
    }

    #[test]
    fn gpu_matches_cpu_reference_sk() {
        let (prob, scen) = small();
        let compiler = Compiler::new(DeviceConfig::tesla_c2070());
        let imp = BackprojImpl {
            block_x: 8,
            block_y: 8,
            ppl: 8,
            zb: 2,
        };
        let out = run_gpu(&compiler, Variant::Sk, &prob, &imp, &scen, true).unwrap();
        let cpu = cpu_backproject(&prob, &scen, 4);
        let mut max_rel = 0.0f32;
        for (g, c) in out.volume.iter().zip(&cpu) {
            let rel = (g - c).abs() / c.abs().max(1.0);
            max_rel = max_rel.max(rel);
        }
        assert!(max_rel < 1e-3, "max relative error {max_rel}");
    }

    #[test]
    fn re_and_sk_agree_and_sk_wins() {
        let (prob, scen) = small();
        let compiler = Compiler::new(DeviceConfig::tesla_c1060());
        let imp = BackprojImpl {
            block_x: 8,
            block_y: 8,
            ppl: 4,
            zb: 2,
        };
        let re = run_gpu(&compiler, Variant::Re, &prob, &imp, &scen, true).unwrap();
        let sk = run_gpu(&compiler, Variant::Sk, &prob, &imp, &scen, true).unwrap();
        for (a, b) in re.volume.iter().zip(&sk.volume) {
            assert!((a - b).abs() <= 1e-3 * a.abs().max(1.0));
        }
        assert!(
            sk.run.sim_ms < re.run.sim_ms,
            "SK {:.4} ms must beat RE {:.4} ms",
            sk.run.sim_ms,
            re.run.sim_ms
        );
    }

    #[test]
    fn reconstruction_has_phantom_structure() {
        let (prob, scen) = small();
        let compiler = Compiler::new(DeviceConfig::tesla_c2070());
        let out = run_gpu(
            &compiler,
            Variant::Sk,
            &prob,
            &BackprojImpl {
                block_x: 8,
                block_y: 8,
                ppl: 8,
                zb: 2,
            },
            &scen,
            true,
        )
        .unwrap();
        let n = prob.n;
        let center = out.volume[(n / 2 * n + n / 2) * n + n / 2];
        let corner = out.volume[0];
        assert!(
            center > corner,
            "phantom interior ({center}) must backproject brighter than air ({corner})"
        );
    }

    #[test]
    fn batching_is_equivalent_to_single_launch() {
        let (prob, scen) = small();
        let compiler = Compiler::new(DeviceConfig::tesla_c2070());
        let one = run_gpu(
            &compiler,
            Variant::Sk,
            &prob,
            &BackprojImpl {
                block_x: 8,
                block_y: 8,
                ppl: 8,
                zb: 1,
            },
            &scen,
            true,
        )
        .unwrap();
        let many = run_gpu(
            &compiler,
            Variant::Sk,
            &prob,
            &BackprojImpl {
                block_x: 8,
                block_y: 8,
                ppl: 2,
                zb: 1,
            },
            &scen,
            true,
        )
        .unwrap();
        for (a, b) in one.volume.iter().zip(&many.volume) {
            assert!((a - b).abs() <= 2e-3 * a.abs().max(1.0));
        }
    }
}
