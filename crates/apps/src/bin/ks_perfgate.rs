//! ks-perfgate: compile-latency regression gate.
//!
//! Measures per-phase compile latency (p50/p95 over repeated cold
//! compiles of the three app kernels) and diffs the numbers against a
//! checked-in baseline. CI fails only on *large* regressions — a phase
//! must blow past both a 10× ratio and an absolute floor before the
//! gate trips, so machine-to-machine variance and micro-phase noise
//! (a parse phase jittering between 3µs and 20µs) never flake the
//! build, while a quadratic blowup in any phase still fails loudly.
//!
//! ```text
//! ks-perfgate --write-baseline ci/perf-baseline.txt
//! ks-perfgate --check ci/perf-baseline.txt [--iters 20]
//! ```

use ks_core::{Compiler, Defines};
use ks_sim::DeviceConfig;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A regression must exceed BOTH the ratio and the absolute floor.
const MAX_RATIO: f64 = 10.0;
const FLOOR_US: u64 = 2_000;

/// `promotion` is wall time from `spawn_compile` to ticket resolution
/// on a cold compiler — the window a tiered gpu-pf module serves its
/// generic binary before the hot-swap. `store` is the warm-load path: a
/// fresh compiler resolving a kernel from a pre-populated persistent
/// store (deserialize, no compile) — it must stay well under the
/// cheapest blocking compile for warm starts to pay off. The rest are
/// compile phases.
const PHASES: [&str; 11] = [
    "preproc",
    "parse",
    "sema",
    "lower",
    "opt",
    "analysis",
    "verify",
    "regalloc",
    "total",
    "promotion",
    "store",
];

fn usage() -> ! {
    eprintln!("usage: ks-perfgate (--write-baseline FILE | --check FILE) [--iters N]");
    std::process::exit(2);
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| usage()))
}

fn kernels() -> Vec<(&'static str, Defines)> {
    vec![
        (
            ks_apps::template_match::KERNELS,
            Defines::new()
                .def("TILE_W", 16)
                .def("TILE_H", 16)
                .def("SHIFT_W", 16)
                .def("NUM_TILES", 16)
                .def("TEMPL_W", 64)
                .def("TEMPL_H", 56)
                .def("THREADS", 128),
        ),
        (
            ks_apps::piv::KERNELS,
            Defines::new()
                .def("RB", 4)
                .def("THREADS", 64)
                .def("MASK_W", 16)
                .def("MASK_H", 16)
                .def("OFFS_W", 9),
        ),
        (
            ks_apps::backproj::KERNELS,
            Defines::new().def("PPL", 8).def("ZB", 4).def("VOL_N", 32),
        ),
    ]
}

/// Cold-compile every app kernel `iters` times and collect per-phase
/// latency samples in µs. A fresh compiler per compile defeats the
/// cache, so every sample is a real pipeline run.
fn measure(iters: usize) -> BTreeMap<&'static str, Vec<u64>> {
    let mut samples: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let ks = kernels();
    for _ in 0..iters {
        for (src, defs) in &ks {
            let compiler = Compiler::new(DeviceConfig::tesla_c2070());
            let bin = compiler.compile(src, defs.clone()).unwrap_or_else(|e| {
                eprintln!("ks-perfgate: compile failed: {e}");
                std::process::exit(1);
            });
            let m = &bin.metrics;
            let us = |d: Duration| d.as_micros() as u64;
            for (name, d) in [
                ("preproc", m.preproc),
                ("parse", m.parse),
                ("sema", m.sema),
                ("lower", m.lower),
                ("opt", m.opt),
                ("analysis", m.analysis),
                ("verify", m.verify),
                ("regalloc", m.regalloc),
                ("total", m.total),
            ] {
                samples.entry(name).or_default().push(us(d));
            }
        }
        // Promotion latency: spawn → resolved on a cold compiler, the
        // end-to-end time the background tier takes to produce a
        // specialized binary (queue wait + compile).
        for (src, defs) in &ks {
            let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c2070()));
            let start = Instant::now();
            let ticket = compiler.spawn_compile(src, defs);
            ticket.wait().unwrap_or_else(|e| {
                eprintln!("ks-perfgate: background compile failed: {e}");
                std::process::exit(1);
            });
            samples
                .entry("promotion")
                .or_default()
                .push(start.elapsed().as_micros() as u64);
        }
    }
    // Store warm-load latency: populate a throwaway persistent store
    // once, then time fresh compilers resolving each kernel from disk.
    // Every sample must be a disk hit — a compile sneaking in would
    // inflate the numbers and hide a broken store path.
    let mut store_dir = std::env::temp_dir();
    store_dir.push(format!("ks-perfgate-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let with_store = |dir: &std::path::Path| {
        Compiler::new(DeviceConfig::tesla_c2070())
            .with_store(dir)
            .unwrap_or_else(|e| {
                eprintln!("ks-perfgate: cannot open store: {e}");
                std::process::exit(1);
            })
    };
    let warmup = with_store(&store_dir);
    for (src, defs) in &ks {
        warmup.compile(src, defs.clone()).unwrap_or_else(|e| {
            eprintln!("ks-perfgate: store warmup compile failed: {e}");
            std::process::exit(1);
        });
    }
    drop(warmup);
    for _ in 0..iters {
        for (src, defs) in &ks {
            let compiler = with_store(&store_dir);
            let start = Instant::now();
            compiler.compile(src, defs.clone()).unwrap_or_else(|e| {
                eprintln!("ks-perfgate: store warm load failed: {e}");
                std::process::exit(1);
            });
            let stats = compiler.cache_stats();
            if stats.disk_hits != 1 || stats.misses != 0 {
                eprintln!("ks-perfgate: store sample was not a disk hit: {stats}");
                std::process::exit(1);
            }
            samples
                .entry("store")
                .or_default()
                .push(start.elapsed().as_micros() as u64);
        }
    }
    let _ = std::fs::remove_dir_all(&store_dir);
    samples
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn stats(samples: &BTreeMap<&'static str, Vec<u64>>) -> BTreeMap<String, (u64, u64)> {
    samples
        .iter()
        .map(|(name, v)| {
            let mut s = v.clone();
            s.sort_unstable();
            (
                name.to_string(),
                (percentile(&s, 0.50), percentile(&s, 0.95)),
            )
        })
        .collect()
}

fn render(stats: &BTreeMap<String, (u64, u64)>) -> String {
    let mut out = String::from(
        "# ks-perfgate baseline: per-phase compile latency over the three\n\
         # app kernels (cold compiles, release build). Columns are µs.\n\
         # phase p50_us p95_us\n",
    );
    for phase in PHASES {
        if let Some((p50, p95)) = stats.get(phase) {
            out.push_str(&format!("{phase} {p50} {p95}\n"));
        }
    }
    out
}

fn parse_baseline(text: &str) -> BTreeMap<String, (u64, u64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(name), Some(p50), Some(p95)) = (it.next(), it.next(), it.next()) else {
            eprintln!("ks-perfgate: malformed baseline line: {line:?}");
            std::process::exit(2);
        };
        let parse = |s: &str| {
            s.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("ks-perfgate: malformed baseline number in: {line:?}");
                std::process::exit(2);
            })
        };
        out.insert(name.to_string(), (parse(p50), parse(p95)));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let iters = arg_value(&args, "--iters")
        .map(|s| {
            s.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("ks-perfgate: --iters expects a number, got {s:?}");
                usage();
            })
        })
        .unwrap_or(20);

    if let Some(path) = arg_value(&args, "--write-baseline") {
        let fresh = stats(&measure(iters));
        let text = render(&fresh);
        std::fs::write(&path, &text).unwrap_or_else(|e| {
            eprintln!("ks-perfgate: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprint!("{text}");
        eprintln!("ks-perfgate: wrote {path}");
        return;
    }

    let Some(path) = arg_value(&args, "--check") else {
        usage();
    };
    let baseline = parse_baseline(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("ks-perfgate: cannot read {path}: {e}");
        std::process::exit(1);
    }));
    let fresh = stats(&measure(iters));

    let mut failed = false;
    for phase in PHASES {
        let Some(&(f50, f95)) = fresh.get(phase) else {
            continue;
        };
        let Some(&(b50, b95)) = baseline.get(phase) else {
            eprintln!("ks-perfgate: phase {phase} missing from baseline {path}");
            failed = true;
            continue;
        };
        for (pct, f, b) in [("p50", f50, b50), ("p95", f95, b95)] {
            // A phase regresses only if it exceeds the ratio AND the
            // absolute floor — micro-phases can ratio-jitter freely.
            let regressed = f > FLOOR_US && f as f64 > (b.max(1)) as f64 * MAX_RATIO;
            let marker = if regressed {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!("{phase:>9} {pct}: {f:>7} µs (baseline {b:>7} µs) {marker}");
        }
    }
    if failed {
        eprintln!(
            "ks-perfgate: FAILED — phase latency exceeded {MAX_RATIO}× baseline \
             and the {FLOOR_US} µs floor"
        );
        std::process::exit(1);
    }
    eprintln!("ks-perfgate: ok ({iters} iterations per kernel)");
}
