//! ks-prof: per-kernel observability report.
//!
//! Compiles and runs one case-study kernel on a simulated device with
//! tracing enabled, then emits a [`ks_trace::KernelProfile`] joining the
//! per-phase compile timings, specialization-cache counters, simulated
//! execution statistics, analysis diagnostics, and the captured span
//! tree.
//!
//! ```text
//! ks-prof --kernel template_match --device c2070 --export jsonl
//! ks-prof --kernel piv --variant re --export text
//! ks-prof --kernel backproj --export csv --out profile.csv
//! ks-prof --kernel template_match --export jsonl --selfcheck
//! ```
//!
//! `--selfcheck` validates the JSONL schema (span nesting, phase sums,
//! counter consistency) and asserts the exported cache/exec counters
//! match the compiler's `CacheStats` and the summed launch reports
//! exactly; it then drives the background compile tier (tickets over
//! one key, a cancellation, and a tiered gpu-pf promotion) and asserts
//! `spawned == completed + failed + cancelled` with exact registry
//! parity on the `ks_core.async.*` and `gpu_pf.promotions*` counters.
//! Finally it round-trips a probe kernel through a throwaway persistent
//! store (cold publish, warm disk hit, byte-identical reload) and
//! asserts `ks_core.store.*` registry parity against `CacheStats`.
//! It exits non-zero on any mismatch.

use ks_apps::template_match::{MatchImpl, MatchProblem};
use ks_apps::{backproj, piv, synth, template_match, GpuRunResult, Variant};
use ks_core::{Compiler, Defines};
use ks_sim::DeviceConfig;
use ks_trace::{CacheCounters, CompileProfile, ExecCounters, ExportFormat, KernelProfile};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: ks-prof [--kernel template_match|piv|backproj] [--device c1060|c2070]\n\
         \x20             [--variant sk|re] [--export text|jsonl|csv|flame|chrome|prom]\n\
         \x20             [--out FILE] [--quick] [--selfcheck]\n\
         \x20      ks-prof watch [--ticks N] [--window N] [--watchdog BASELINE]\n\
         \x20             [--drill-breach] [--sink-cap N]"
    );
    std::process::exit(2);
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| usage()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    if args.first().map(String::as_str) == Some("watch") {
        watch_main(&args[1..]);
        return;
    }
    let kernel = arg_value(&args, "--kernel").unwrap_or_else(|| "template_match".into());
    let device = arg_value(&args, "--device").unwrap_or_else(|| "c2070".into());
    let variant = match arg_value(&args, "--variant").as_deref() {
        None | Some("sk") | Some("SK") => Variant::Sk,
        Some("re") | Some("RE") => Variant::Re,
        Some(v) => {
            eprintln!("ks-prof: unknown variant {v:?}");
            usage();
        }
    };
    let format = match arg_value(&args, "--export") {
        None => ExportFormat::Text,
        Some(f) => ExportFormat::parse(&f).unwrap_or_else(|| {
            eprintln!("ks-prof: unknown export format {f:?}");
            usage();
        }),
    };
    let out_path = arg_value(&args, "--out");
    let quick = args.iter().any(|a| a == "--quick");
    let selfcheck = args.iter().any(|a| a == "--selfcheck");

    let dev = match device.as_str() {
        "c1060" | "tesla_c1060" => DeviceConfig::tesla_c1060(),
        "c2070" | "tesla_c2070" => DeviceConfig::tesla_c2070(),
        other => {
            eprintln!("ks-prof: unknown device {other:?}");
            usage();
        }
    };

    // Span tracing is opt-in; the profiler is the one place it is
    // always on. Metrics counters are always live.
    ks_trace::set_enabled(true);

    // Opt-in fault injection (KS_FAULT_SEED / KS_FAULT_COMPILE_PPM /
    // KS_FAULT_DEVICE_PPM): install the seeded plan and arm retries so
    // the profiled run still completes; the selfcheck below then proves
    // the resilience counters reconcile exactly even under faults.
    let mut compiler = Compiler::new(dev);
    if let Some(plan) = ks_fault::FaultPlan::from_env() {
        eprintln!(
            "ks-prof: fault injection armed (seed {}, {} rules)",
            plan.seed(),
            plan.rule_count()
        );
        ks_fault::install(std::sync::Arc::new(plan));
        compiler = compiler.with_resilience(ks_core::ResilienceConfig {
            max_retries: 4,
            catch_panics: true,
            ..ks_core::ResilienceConfig::default()
        });
    }
    let compiler = std::sync::Arc::new(compiler);

    let profile = match run(&compiler, &kernel, variant, quick) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ks-prof: {e}");
            std::process::exit(1);
        }
    };

    if selfcheck {
        // Order matters: `check` compares the profile snapshot against
        // the live counters, so it must run before the async/promotion
        // probes add their own traffic to the same compiler.
        let checks = [
            ("profile", check(&compiler, &profile)),
            ("async tier", async_check(&compiler)),
            ("promotion", promotion_check(&compiler)),
            ("store", store_check(compiler.device())),
            ("scope roll-up", scope_check(&compiler)),
            ("integrity", integrity_check(&compiler)),
            ("watchdog", watchdog_check()),
            ("prom export", prom_check(&profile)),
            ("sink", sink_check()),
        ];
        for (what, result) in checks {
            if let Err(e) = result {
                eprintln!("ks-prof: selfcheck FAILED ({what}): {e}");
                std::process::exit(1);
            }
        }
        eprintln!(
            "ks-prof: selfcheck ok ({} compiles, {} spans, {} launches, \
             async+promotion+store+scope+integrity+watchdog+prom+sink parity)",
            profile.compiles.len(),
            profile.spans.len(),
            profile.exec.launches
        );
    }

    let rendered = format.exporter().profile(&profile);
    match out_path {
        None => print!("{rendered}"),
        Some(p) => {
            let mut f = std::fs::File::create(&p).unwrap_or_else(|e| {
                eprintln!("ks-prof: cannot write {p}: {e}");
                std::process::exit(1);
            });
            let _ = f.write_all(rendered.as_bytes());
            eprintln!("ks-prof: wrote {p}");
        }
    }
}

/// Compile (capturing per-module profiles) and run the selected kernel,
/// then join everything the subsystems observed into one report.
fn run(
    compiler: &Compiler,
    kernel: &str,
    variant: Variant,
    quick: bool,
) -> Result<KernelProfile, Box<dyn std::error::Error>> {
    let mut compiles = Vec::new();
    let mut diagnostics = Vec::new();
    let mut profile_defines: Vec<(String, String)> = Vec::new();

    // Pre-compile every module the run will request so the run itself is
    // all cache hits and the compile profiles below cover each distinct
    // specialization exactly once.
    let mut compile_one = |src: &str, defs: &Defines| -> Result<(), Box<dyn std::error::Error>> {
        let before = compiler.cache_stats();
        let bin = compiler.compile(src, defs)?;
        let after = compiler.cache_stats();
        let m = &bin.metrics;
        compiles.push(CompileProfile {
            module: if defs.items().is_empty() {
                kernel.to_string()
            } else {
                format!("{kernel} [{}]", defs.command_line())
            },
            cached: after.hits > before.hits,
            total_us: bin.compile_time.as_micros() as u64,
            phases: [
                ("preproc", m.preproc),
                ("parse", m.parse),
                ("sema", m.sema),
                ("lower", m.lower),
                ("opt", m.opt),
                ("analysis", m.analysis),
                ("regalloc", m.regalloc),
            ]
            .iter()
            .map(|(n, d)| (n.to_string(), d.as_micros() as u64))
            .collect(),
        });
        for d in &bin.diagnostics {
            diagnostics.push(d.to_string());
        }
        if profile_defines.is_empty() {
            profile_defines = defs.items().to_vec();
        }
        Ok(())
    };

    let run: GpuRunResult = match kernel {
        "template_match" => {
            let prob = if quick {
                MatchProblem {
                    frame_w: 96,
                    frame_h: 72,
                    templ_w: 28,
                    templ_h: 20,
                    shift_w: 8,
                    shift_h: 8,
                    frames: 1,
                }
            } else {
                MatchProblem {
                    frame_w: 160,
                    frame_h: 120,
                    templ_w: 48,
                    templ_h: 36,
                    shift_w: 12,
                    shift_h: 12,
                    frames: 1,
                }
            };
            let imp = MatchImpl {
                tile_w: 8,
                tile_h: 8,
                threads: 64,
            };
            for d in template_match::specializations(variant, &prob, &imp) {
                compile_one(template_match::KERNELS, &d)?;
            }
            let scen = synth::match_scenario(
                prob.frame_w,
                prob.frame_h,
                prob.templ_w,
                prob.templ_h,
                prob.shift_w,
                prob.shift_h,
                42,
            );
            template_match::run_gpu(compiler, variant, &prob, &imp, &scen, true)?.run
        }
        "piv" => {
            let prob = if quick {
                piv::PivProblem::standard(128, 16, 50, 4)
            } else {
                piv::PivProblem::standard(256, 16, 50, 4)
            };
            let imp = piv::PivImpl { rb: 2, threads: 64 };
            compile_one(piv::KERNELS, &piv::specialization(variant, &prob, &imp))?;
            let scen = synth::piv_scenario(prob.img_w, prob.img_h, (3, 1), 77);
            piv::run_gpu(
                compiler,
                variant,
                piv::PivKernel::Basic,
                &prob,
                &imp,
                &scen,
                true,
            )?
            .run
        }
        "backproj" => {
            let prob = backproj::BackprojProblem {
                n: if quick { 12 } else { 16 },
                num_proj: 8,
                det_u: 24,
                det_v: 24,
            };
            let imp = backproj::BackprojImpl {
                block_x: 8,
                block_y: 8,
                ppl: 4,
                zb: 2,
            };
            compile_one(
                backproj::KERNELS,
                &backproj::specialization(variant, &prob, &imp),
            )?;
            let scen = synth::ct_scenario(prob.n, prob.num_proj, prob.det_u, prob.det_v);
            backproj::run_gpu(compiler, variant, &prob, &imp, &scen, true)?.run
        }
        other => return Err(format!("unknown kernel {other:?}").into()),
    };

    let stats = compiler.cache_stats();
    let exec = ExecCounters {
        launches: run.reports.len() as u64,
        dyn_insts: run.reports.iter().map(|r| r.stats.dyn_insts).sum(),
        global_bytes: run.reports.iter().map(|r| r.stats.global_bytes).sum(),
        divergent_branches: run.reports.iter().map(|r| r.stats.divergent_branches).sum(),
        barriers: run.reports.iter().map(|r| r.stats.barriers).sum(),
        sim_time_us: (run.sim_ms * 1e3) as u64,
        occupancy: run
            .reports
            .last()
            .map(|r| r.occupancy.occupancy)
            .unwrap_or(0.0),
    };
    Ok(KernelProfile {
        kernel: kernel.to_string(),
        device: compiler.device().name.clone(),
        variant: variant.to_string(),
        defines: profile_defines,
        compiles,
        cache: CacheCounters {
            hits: stats.hits,
            misses: stats.misses,
            dedup_waits: stats.dedup_waits,
            evictions: stats.evictions,
            failures: stats.failures,
            quarantined: stats.quarantined,
            retries: stats.retries,
            breaker_opens: stats.breaker_opens,
        },
        exec,
        diagnostics,
        spans: ks_trace::drain_spans(),
        metrics: ks_trace::registry().snapshot(),
    })
}

/// Cross-validate the profile against every independent source of the
/// same numbers: the JSONL schema validator, the compiler's own
/// `CacheStats`, and the registry counters published by ks-core/ks-sim.
fn check(compiler: &Compiler, p: &KernelProfile) -> Result<(), String> {
    ks_trace::validate_profile_jsonl(&p.to_jsonl())?;

    let stats = compiler.cache_stats();
    if (
        p.cache.hits,
        p.cache.misses,
        p.cache.dedup_waits,
        p.cache.evictions,
        p.cache.failures,
        p.cache.quarantined,
        p.cache.retries,
        p.cache.breaker_opens,
    ) != (
        stats.hits,
        stats.misses,
        stats.dedup_waits,
        stats.evictions,
        stats.failures,
        stats.quarantined,
        stats.retries,
        stats.breaker_opens,
    ) {
        return Err(format!(
            "cache counters {:?} disagree with CacheStats {stats}",
            p.cache
        ));
    }
    let reg = ks_trace::registry();
    let reg_cache = (
        reg.counter_value(ks_trace::names::CACHE_HITS),
        reg.counter_value(ks_trace::names::CACHE_MISSES),
        reg.counter_value(ks_trace::names::CACHE_DEDUP_WAITS),
        reg.counter_value(ks_trace::names::CACHE_EVICTIONS),
        reg.counter_value(ks_trace::names::CACHE_FAILURES),
        reg.counter_value(ks_trace::names::CACHE_QUARANTINED),
        reg.counter_value(ks_trace::names::COMPILE_RETRIES),
        reg.counter_value(ks_trace::names::BREAKER_OPEN),
    );
    if reg_cache
        != (
            stats.hits,
            stats.misses,
            stats.dedup_waits,
            stats.evictions,
            stats.failures,
            stats.quarantined,
            stats.retries,
            stats.breaker_opens,
        )
    {
        return Err(format!(
            "registry cache counters {reg_cache:?} disagree with CacheStats {stats}"
        ));
    }
    if reg.counter_value(ks_trace::names::COMPILE_REQUESTS) != stats.hits + stats.misses {
        return Err("hits + misses != compile requests".into());
    }
    for (name, want) in [
        (ks_trace::names::SIM_LAUNCHES, p.exec.launches),
        (ks_trace::names::SIM_DYN_INSTS, p.exec.dyn_insts),
        (ks_trace::names::SIM_GLOBAL_BYTES, p.exec.global_bytes),
        (
            ks_trace::names::SIM_DIVERGENT_BRANCHES,
            p.exec.divergent_branches,
        ),
        (ks_trace::names::SIM_BARRIERS, p.exec.barriers),
    ] {
        let got = reg.counter_value(name);
        if got != want {
            return Err(format!(
                "registry {name} = {got}, launch reports say {want}"
            ));
        }
    }
    Ok(())
}

const PROBE_KERNEL: &str = r#"
    #ifndef N
    #define N n
    #endif
    __global__ void probe(float* x, int n) {
        int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
        if (i < N) { x[i] = x[i] + 1.0f; }
    }
"#;

fn async_registry() -> (u64, u64, u64, u64) {
    let r = ks_trace::registry();
    (
        r.counter_value(ks_trace::names::ASYNC_SPAWNED),
        r.counter_value(ks_trace::names::ASYNC_COMPLETED),
        r.counter_value(ks_trace::names::ASYNC_FAILED),
        r.counter_value(ks_trace::names::ASYNC_CANCELLED),
    )
}

/// Drive the background compile tier and prove its accounting: three
/// tickets over one key plus one cancelled ticket, then assert
/// `spawned == completed + failed + cancelled` on the compiler's
/// `AsyncStats` with exact delta parity on the `ks_core.async.*`
/// registry counters. Runs under whatever fault plan is installed —
/// the balance must hold whether tickets complete or fail.
fn async_check(compiler: &std::sync::Arc<Compiler>) -> Result<(), String> {
    let s0 = compiler.async_stats();
    let r0 = async_registry();
    let tickets: Vec<_> = (0..3)
        .map(|_| compiler.spawn_compile(PROBE_KERNEL, Defines::new().def("N", 128)))
        .collect();
    let doomed = compiler.spawn_compile(PROBE_KERNEL, Defines::new().def("N", 129));
    let cancelled = doomed.cancel();
    for t in &tickets {
        // Under injected faults a ticket may legitimately fail; the
        // accounting below must balance either way.
        let _ = t.wait();
    }
    let _ = doomed.wait();
    let s1 = compiler.async_stats();
    let spawned = s1.spawned - s0.spawned;
    let resolved =
        (s1.completed - s0.completed) + (s1.failed - s0.failed) + (s1.cancelled - s0.cancelled);
    if spawned != 4 || resolved != 4 {
        return Err(format!(
            "async accounting unbalanced: {spawned} spawned, {resolved} resolved ({s1})"
        ));
    }
    if (s1.cancelled - s0.cancelled) != u64::from(cancelled) {
        return Err(format!(
            "cancel() returned {cancelled} but cancelled delta is {}",
            s1.cancelled - s0.cancelled
        ));
    }
    let r1 = async_registry();
    let reg_delta = (r1.0 - r0.0, r1.1 - r0.1, r1.2 - r0.2, r1.3 - r0.3);
    let stats_delta = (
        spawned,
        s1.completed - s0.completed,
        s1.failed - s0.failed,
        s1.cancelled - s0.cancelled,
    );
    if reg_delta != stats_delta {
        return Err(format!(
            "ks_core.async.* registry deltas {reg_delta:?} disagree with AsyncStats deltas \
             {stats_delta:?}"
        ));
    }
    Ok(())
}

fn store_registry() -> (u64, u64, u64) {
    let r = ks_trace::registry();
    (
        r.counter_value(ks_trace::names::STORE_DISK_HITS),
        r.counter_value(ks_trace::names::STORE_DISK_MISSES),
        r.counter_value(ks_trace::names::STORE_ERRORS),
    )
}

/// Prove the persistent-store tier's accounting: a cold compiler
/// publishes a record, a warm compiler on the same directory serves it
/// from disk without compiling (byte-identical), and the
/// `ks_core.store.*` registry deltas match both compilers' `CacheStats`
/// exactly.
fn store_check(device: &DeviceConfig) -> Result<(), String> {
    let mut dir = std::env::temp_dir();
    dir.push(format!("ks-prof-selfcheck-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let r0 = store_registry();
    let defs = Defines::new().def("N", 640);

    let cold = Compiler::new(device.clone())
        .with_store(&dir)
        .map_err(|e| format!("open store: {e}"))?;
    let a = cold
        .compile(PROBE_KERNEL, &defs)
        .map_err(|e| e.to_string())?;
    let cs = cold.cache_stats();
    if (cs.misses, cs.disk_misses, cs.disk_hits, cs.store_errors) != (1, 1, 0, 0) {
        return Err(format!("cold store pass accounting off: {cs}"));
    }

    let warm = Compiler::new(device.clone())
        .with_store(&dir)
        .map_err(|e| format!("open store: {e}"))?;
    let b = warm
        .compile(PROBE_KERNEL, &defs)
        .map_err(|e| e.to_string())?;
    let ws = warm.cache_stats();
    if (
        ws.hits,
        ws.misses,
        ws.disk_hits,
        ws.disk_misses,
        ws.store_errors,
    ) != (1, 0, 1, 0, 0)
    {
        return Err(format!("warm store pass accounting off: {ws}"));
    }
    if a.ptx != b.ptx {
        return Err("reloaded binary is not byte-identical to the compiled one".into());
    }

    let r1 = store_registry();
    let reg_delta = (r1.0 - r0.0, r1.1 - r0.1, r1.2 - r0.2);
    let stats_delta = (
        cs.disk_hits + ws.disk_hits,
        cs.disk_misses + ws.disk_misses,
        cs.store_errors + ws.store_errors,
    );
    if reg_delta != stats_delta {
        return Err(format!(
            "ks_core.store.* registry deltas {reg_delta:?} disagree with CacheStats deltas \
             {stats_delta:?}"
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Drive one tiered gpu-pf refresh end to end: the module must serve
/// immediately, promote to its specialized binary, and account the
/// promotion on both `PromotionStats` and `gpu_pf.promotions`.
fn promotion_check(compiler: &std::sync::Arc<Compiler>) -> Result<(), String> {
    let reg = ks_trace::registry();
    let p0 = reg.counter_value(ks_trace::names::PF_PROMOTIONS);
    let mut p = gpu_pf::Pipeline::new(compiler.clone(), 1 << 20);
    p.set_refresh_mode(gpu_pf::RefreshMode::Tiered);
    let n = p.int_param("N", 256);
    let m = p.module(PROBE_KERNEL, vec![("N", gpu_pf::MacroBinding::Param(n))]);
    p.refresh().map_err(|e| format!("tiered refresh: {e}"))?;
    p.wait_promotions();
    let stats = p.promotion_stats();
    if p.module_tier(m) != Some(gpu_pf::Tier::Specialized) {
        return Err(format!(
            "module did not reach Specialized: {:?} ({stats:?}, degradations {:?})",
            p.module_tier(m),
            p.degradations()
        ));
    }
    if stats.promoted != 1 || stats.pending != 0 {
        return Err(format!("promotion accounting off: {stats:?}"));
    }
    let p1 = reg.counter_value(ks_trace::names::PF_PROMOTIONS);
    if p1 - p0 != 1 {
        return Err(format!(
            "gpu_pf.promotions delta {} != PromotionStats.promoted 1",
            p1 - p0
        ));
    }
    Ok(())
}

/// Prove the labeled-scope roll-up: two labeled pipelines publish known
/// iteration counts, and the sum of the per-pipeline cells must equal
/// both the expected publishes and the global counter's delta, exactly.
fn scope_check(compiler: &std::sync::Arc<Compiler>) -> Result<(), String> {
    let reg = ks_trace::registry();
    let g0 = reg.counter_value(ks_trace::names::PF_ITERATIONS);
    let run_labeled = |label: &str, iters: u64| -> Result<(), String> {
        let mut p = gpu_pf::Pipeline::new(compiler.clone(), 1 << 20);
        p.set_label(label);
        p.refresh().map_err(|e| e.to_string())?;
        p.run(iters).map_err(|e| e.to_string())
    };
    run_labeled("sc-a", 5)?;
    run_labeled("sc-b", 3)?;
    let g1 = reg.counter_value(ks_trace::names::PF_ITERATIONS);
    if g1 - g0 != 8 {
        return Err(format!("global gpu_pf.iterations delta {} != 8", g1 - g0));
    }
    let a = reg.counter_value("gpu_pf.iterations{pipeline=sc-a}");
    let b = reg.counter_value("gpu_pf.iterations{pipeline=sc-b}");
    if (a, b) != (5, 3) {
        return Err(format!("scoped cells (sc-a={a}, sc-b={b}) != (5, 3)"));
    }
    // Sum over every single-label pipeline cell (these two are the only
    // labeled pipelines in this process) == the global delta: the
    // roll-up is exact, not approximate.
    let snap = reg.snapshot();
    let sum = ks_trace::scoped_counter_sum(&snap, "gpu_pf.iterations", "pipeline");
    if sum != 8 {
        return Err(format!(
            "sum of pipeline-scoped gpu_pf.iterations cells {sum} != global delta 8"
        ));
    }
    Ok(())
}

/// Prove integrity-counter parity: a seeded silent flip against a
/// dedicated probe pipeline must be detected, adjudicated transient,
/// and recovered — and the global `gpu_pf.integrity.*` counter deltas
/// must equal the pipeline's own `IntegrityStats`, field for field.
fn integrity_check(compiler: &std::sync::Arc<Compiler>) -> Result<(), String> {
    let reg = ks_trace::registry();
    let read = || -> [u64; 7] {
        [
            reg.counter_value(ks_trace::names::PF_INTEGRITY_CHECKS),
            reg.counter_value(ks_trace::names::PF_INTEGRITY_WITNESS),
            reg.counter_value(ks_trace::names::PF_INTEGRITY_VIOLATIONS),
            reg.counter_value(ks_trace::names::PF_INTEGRITY_TRANSIENT),
            reg.counter_value(ks_trace::names::PF_INTEGRITY_CORRUPT),
            reg.counter_value(ks_trace::names::PF_INTEGRITY_RECOVERED),
            reg.counter_value(ks_trace::names::PF_INTEGRITY_REEXECS),
        ]
    };

    let mut p = gpu_pf::Pipeline::new(compiler.clone(), 1 << 20);
    p.set_integrity(Some(gpu_pf::IntegrityConfig {
        witness_period: 1,
        vote_m: 3,
        vote_n: 2,
    }));
    let elems = 256u32;
    let ext = p.extent_param("x", [elems, 1, 1], 4);
    let h_x = p.host_memory(ext);
    let d_x = p.global_memory(ext);
    let m = p.module(
        PROBE_KERNEL,
        vec![("N", gpu_pf::MacroBinding::Literal(elems.to_string()))],
    );
    let k = p.kernel(m, "probe");
    let grid = p.triplet_param("grid", [elems.div_ceil(64), 1, 1]);
    let blk = p.triplet_param("block", [64, 1, 1]);
    let once = p.schedule_param("once", 1_000_000, 0);
    let every = p.schedule_param("every", 1, 0);
    let n = p.int_param("n", elems as i64);
    p.copy("h2d", h_x, d_x, once);
    p.exec(
        "probe",
        k,
        grid,
        blk,
        None,
        vec![gpu_pf::Arg::Mem(d_x), gpu_pf::Arg::Param(n)],
        every,
    );
    p.copy("d2h", d_x, h_x, every);
    let vals: Vec<u8> = (0..elems).flat_map(|i| (i as f32).to_le_bytes()).collect();
    p.set_host_data(h_x, &vals);
    p.refresh().map_err(|e| format!("refresh: {e}"))?;
    let key = p
        .module_bound_key(m)
        .ok_or("probe module has no bound key")?
        .clone();

    // Flip one output bit of the specialized variant's first launch;
    // witness and vote launches carry other keys and stay clean. The
    // prior plan (possibly armed via KS_FAULT_SEED) is restored after.
    let prior = ks_fault::active();
    let plan = std::sync::Arc::new(
        ks_fault::FaultPlan::new(0x5DC).rule(
            ks_fault::FaultRule::new(
                ks_fault::FaultKind::SilentFlip,
                ks_fault::Target::Key(key.lo64),
            )
            .nth(1),
        ),
    );
    ks_fault::install(plan.clone());
    let before = read();
    let run = p.run(2);
    match prior {
        Some(prev) => ks_fault::install(prev),
        None => ks_fault::clear(),
    }
    run.map_err(|e| format!("probe run: {e}"))?;

    if plan.injected_count() != 1 {
        return Err(format!("injected {} flips, want 1", plan.injected_count()));
    }
    let stats = p.integrity_stats();
    let want = [
        stats.checks,
        stats.witness_launches,
        stats.violations,
        stats.transient_flips,
        stats.corrupt_binaries,
        stats.recovered,
        stats.reexecutions,
    ];
    if want != [2, 2, 1, 1, 0, 1, 4] {
        return Err(format!("unexpected IntegrityStats: {stats:?}"));
    }
    let after = read();
    let deltas: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
    if deltas != want {
        return Err(format!(
            "gpu_pf.integrity.* registry deltas {deltas:?} != IntegrityStats {want:?}"
        ));
    }
    // Two iterations, flip scrubbed by recovery: every element advanced
    // by exactly 2.0 — the corruption never reached host memory.
    let out = p.host_data(h_x);
    for (i, c) in out.chunks_exact(4).enumerate() {
        let v = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        if v != i as f32 + 2.0 {
            return Err(format!("element {i} is {v}, want {}", i as f32 + 2.0));
        }
    }
    Ok(())
}

/// Watchdog dry run on a private registry: a clean window raises
/// nothing, a seeded spike breaches exactly once (edge-triggered, no
/// re-fire), and fresh clean samples recover exactly once.
fn watchdog_check() -> Result<(), String> {
    let r = ks_trace::Registry::new();
    let baseline = ks_trace::Baseline::parse("total 1000 2000\n")?;
    let mut dog = ks_trace::Watchdog::standard(baseline, ks_trace::SloPolicy::default());
    let mut hist = ks_trace::History::new(4);
    let h = r.histogram(ks_trace::names::COMPILE_TOTAL_US);
    h.record(1500);
    hist.tick_at(&r, 0);
    let e = dog.evaluate(&hist.window(1));
    if !e.is_empty() {
        return Err(format!("clean window raised events: {e:?}"));
    }
    h.record(30_000_000);
    hist.tick_at(&r, 1000);
    let e = dog.evaluate(&hist.window(1));
    match e.as_slice() {
        [ks_trace::SloEvent::Breach(b)] if b.budget_us == 20_000 => {}
        other => return Err(format!("spike window: want one breach, got {other:?}")),
    }
    h.record(30_000_000);
    hist.tick_at(&r, 2000);
    if !dog.evaluate(&hist.window(1)).is_empty() {
        return Err("breach re-fired while still over budget".into());
    }
    h.record(900);
    hist.tick_at(&r, 3000);
    let e = dog.evaluate(&hist.window(1));
    if !matches!(e.as_slice(), [ks_trace::SloEvent::Recover { .. }]) {
        return Err(format!("recovery window: want one recover, got {e:?}"));
    }
    Ok(())
}

/// Render the profile as Prometheus exposition text and schema-check it.
fn prom_check(p: &KernelProfile) -> Result<(), String> {
    let text = ExportFormat::Prom.exporter().profile(p);
    ks_trace::validate_prometheus(&text)?;
    if !text.contains("# TYPE") {
        return Err("prometheus exposition has no TYPE metadata".into());
    }
    Ok(())
}

/// Bounded-sink overflow drill on a private registry: overflow drops the
/// newest offers, keeps the oldest, and self-accounts every drop.
fn sink_check() -> Result<(), String> {
    let r = ks_trace::Registry::new();
    let sink = ks_trace::StreamSink::with_registry(4, &r);
    for i in 0..12 {
        sink.offer(format!("{{\"i\":{i}}}"));
    }
    if (sink.pending(), sink.dropped()) != (4, 8) {
        return Err(format!(
            "sink bounds off: pending {} dropped {}",
            sink.pending(),
            sink.dropped()
        ));
    }
    if r.counter_value(ks_trace::names::SINK_DROPPED) != 8 {
        return Err("registry drop counter disagrees with sink.dropped()".into());
    }
    let lines = sink.drain();
    if lines.first().map(String::as_str) != Some("{\"i\":0}") {
        return Err(format!("oldest line did not survive overflow: {lines:?}"));
    }
    Ok(())
}

// ---- `ks-prof watch`: live windowed telemetry over two pipelines ----

/// Two concurrently running labeled pipelines with ~60x different
/// per-iteration work, a rolling [`ks_trace::History`] ticked by the
/// main thread, per-pipeline windowed p50/p95 readouts, and (when a
/// baseline is available) the live SLO watchdog. `--drill-breach` seeds
/// one synthetic latency spike mid-run to prove the breach fires
/// exactly once; `--sink-cap` streams each tick's JSONL records through
/// a bounded StreamSink to demonstrate overflow accounting.
fn watch_main(args: &[String]) {
    let parse_n = |name: &str, default: usize| -> usize {
        arg_value(args, name)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("ks-prof: bad {name} value {v:?}");
                    usage();
                })
            })
            .unwrap_or(default)
    };
    let ticks = parse_n("--ticks", 8).max(2);
    let window = parse_n("--window", 4).max(1);
    let sink_cap = parse_n("--sink-cap", 0);
    let drill = args.iter().any(|a| a == "--drill-breach");
    let baseline_path = arg_value(args, "--watchdog");

    let baseline_text = match &baseline_path {
        Some(p) => Some(std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("ks-prof: cannot read baseline {p}: {e}");
            std::process::exit(1);
        })),
        None => std::fs::read_to_string("ci/perf-baseline.txt").ok(),
    };
    let mut dog = baseline_text.map(|t| {
        let baseline = ks_trace::Baseline::parse(&t).unwrap_or_else(|e| {
            eprintln!("ks-prof: bad baseline: {e}");
            std::process::exit(1);
        });
        ks_trace::Watchdog::standard(baseline, ks_trace::SloPolicy::default())
    });
    if drill && dog.is_none() {
        eprintln!("ks-prof: --drill-breach needs a baseline (--watchdog FILE)");
        std::process::exit(1);
    }

    let reg = ks_trace::registry();
    let breach_counter = reg.counter(ks_trace::names::SLO_BREACHES);
    let recover_counter = reg.counter(ks_trace::names::SLO_RECOVERIES);
    let sink = (sink_cap > 0).then(|| ks_trace::StreamSink::new(sink_cap));
    let mut offered = 0u64;

    let compiler = std::sync::Arc::new(Compiler::new(DeviceConfig::tesla_c2070()));
    let mut history = ks_trace::History::new(ticks.max(window));
    let started = std::time::Instant::now();

    // Each worker owns one labeled pipeline; the main thread hands out
    // per-tick iteration batches so every tick covers a known amount of
    // work. p1 simulates ~60x the threads of p0, so their windowed
    // iteration p95s are unambiguously distinct.
    let spawn_worker = |label: &'static str, n: u32, threads: u32| {
        let compiler = compiler.clone();
        let (cmd_tx, cmd_rx) = std::sync::mpsc::channel::<u64>();
        let (ack_tx, ack_rx) = std::sync::mpsc::channel::<Result<(), String>>();
        let handle = std::thread::spawn(move || {
            let build = || -> Result<gpu_pf::Pipeline, String> {
                let mut p = gpu_pf::Pipeline::new(compiler, 32 << 20);
                p.set_label(label);
                let nparam = p.int_param("N", n as i64);
                let ext = p.extent_param("buf", [n, 1, 1], 4);
                let dev = p.global_memory(ext);
                let m = p.module(
                    PROBE_KERNEL,
                    vec![("N", gpu_pf::MacroBinding::Param(nparam))],
                );
                let k = p.kernel(m, "probe");
                let grid = p.triplet_param("grid", [n.div_ceil(threads), 1, 1]);
                let blk = p.triplet_param("block", [threads, 1, 1]);
                let every = p.schedule_param("every", 1, 0);
                p.exec(
                    "probe",
                    k,
                    grid,
                    blk,
                    None,
                    vec![gpu_pf::Arg::Mem(dev), gpu_pf::Arg::Param(nparam)],
                    every,
                );
                p.refresh().map_err(|e| e.to_string())?;
                Ok(p)
            };
            let mut p = match build() {
                Ok(p) => p,
                Err(e) => {
                    let _ = ack_tx.send(Err(format!("{label}: {e}")));
                    return;
                }
            };
            let _ = ack_tx.send(Ok(()));
            while let Ok(iters) = cmd_rx.recv() {
                if iters == 0 {
                    break;
                }
                let _ = ack_tx.send(p.run(iters).map_err(|e| format!("{label}: {e}")));
            }
        });
        (cmd_tx, ack_rx, handle)
    };
    let workers = [spawn_worker("p0", 256, 64), spawn_worker("p1", 16384, 256)];
    for (_, ack, _) in &workers {
        if let Err(e) = ack.recv().unwrap_or_else(|e| Err(e.to_string())) {
            eprintln!("ks-prof: watch setup failed: {e}");
            std::process::exit(1);
        }
    }

    let mut breaches = 0u64;
    let mut recoveries = 0u64;
    for tick in 1..=ticks {
        for (cmd, _, _) in &workers {
            let _ = cmd.send(4);
        }
        for (_, ack, _) in &workers {
            if let Err(e) = ack.recv().unwrap_or_else(|e| Err(e.to_string())) {
                eprintln!("ks-prof: watch iteration failed: {e}");
                std::process::exit(1);
            }
        }
        if drill && tick == ticks / 2 {
            // Seeded spike: far over any plausible compile budget, so
            // the windowed p95 breaches on this tick and only this
            // excursion.
            let h = reg.histogram(ks_trace::names::COMPILE_TOTAL_US);
            for _ in 0..8 {
                h.record(60_000_000);
            }
        }
        history.tick_at(reg, started.elapsed().as_millis() as u64);
        let w = history.window(window);
        for label in ["p0", "p1"] {
            let iters = w.counter(&format!("gpu_pf.iterations{{pipeline={label}}}"));
            let line = match w.summary(&format!("gpu_pf.iteration_us{{pipeline={label}}}")) {
                Some(s) => format!(
                    "[tick {tick}] pipeline={label} window={}t iters={iters} \
                     iter_p50_us={} iter_p95_us={}",
                    w.ticks, s.p50, s.p95
                ),
                None => format!(
                    "[tick {tick}] pipeline={label} window={}t iters={iters} (no samples)",
                    w.ticks
                ),
            };
            println!("{line}");
            if let Some(sink) = &sink {
                offered += 1;
                sink.offer(format!(
                    "{{\"type\":\"watch\",\"tick\":{tick},\"pipeline\":\"{label}\",\
                     \"iters\":{iters}}}"
                ));
            }
        }
        if let Some(dog) = &mut dog {
            for event in dog.evaluate(&w) {
                match &event {
                    ks_trace::SloEvent::Breach(_) => {
                        breaches += 1;
                        breach_counter.inc();
                    }
                    ks_trace::SloEvent::Recover { .. } => {
                        recoveries += 1;
                        recover_counter.inc();
                    }
                    ks_trace::SloEvent::CounterBreach { .. } => {
                        breaches += 1;
                        breach_counter.inc();
                    }
                }
                println!("{event}");
            }
        }
    }
    for (cmd, _, _) in &workers {
        let _ = cmd.send(0);
    }
    for (_, _, handle) in workers {
        let _ = handle.join();
    }

    let w = history.window(window);
    let p0 = w
        .summary("gpu_pf.iteration_us{pipeline=p0}")
        .unwrap_or_default();
    let p1 = w
        .summary("gpu_pf.iteration_us{pipeline=p1}")
        .unwrap_or_default();
    let distinct = p1.p95 > p0.p95 && p0.count > 0;
    println!(
        "watch: pipeline=p0 p95_us={} pipeline=p1 p95_us={} distinct: {}",
        p0.p95,
        p1.p95,
        if distinct { "ok" } else { "NOT-DISTINCT" }
    );
    if dog.is_some() {
        println!("watch: slo breaches={breaches} recoveries={recoveries}");
    }
    if let Some(sink) = &sink {
        let drained = sink.drain().len() as u64;
        let dropped = sink.dropped();
        println!(
            "watch: sink offered={offered} drained={drained} dropped={dropped} conserved: {}",
            if drained + dropped == offered {
                "ok"
            } else {
                "LOST"
            }
        );
    }
}
