//! ks-verify: translation validation from the command line.
//!
//! Validates the real compilation pipeline for one kernel — every
//! codegen stage and optimization pass must preserve the kernel's
//! symbolic summary — and checks that the specialized (SK) build is
//! equivalent to the generic (RE) build under its `-D` bindings.
//!
//! ```text
//! ks-verify --kernel template_match --check all
//! ks-verify --kernel piv --check spec --export jsonl
//! ks-verify --source my_kernel.cu -D N=256 -D THREADS=64
//! ks-verify --kernel backproj --mutation-smoke
//! ```
//!
//! Named kernels use their canonical specialization geometry when no
//! `-D` pairs are given. Exits non-zero on any error finding (KSV0xx)
//! or any escaped mutation.

use ks_apps::{backproj, piv, template_match};
use ks_verify::{check_specialization, mutate, Limits, VerifyReport};

fn usage() -> ! {
    eprintln!(
        "usage: ks-verify [--kernel template_match|piv|backproj | --source FILE]\n\
         \x20               [-D NAME=VALUE ...] [--check pipeline|spec|all]\n\
         \x20               [--export text|jsonl] [--mutation-smoke] [--seed HEX]"
    );
    std::process::exit(2);
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| usage()))
}

/// All `-D NAME=VALUE` pairs, in order.
fn arg_defines(args: &[String]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "-D" {
            let kv = args.get(i + 1).cloned().unwrap_or_else(|| usage());
            let Some((k, v)) = kv.split_once('=') else {
                eprintln!("ks-verify: -D expects NAME=VALUE, got {kv:?}");
                usage();
            };
            out.push((k.to_string(), v.to_string()));
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn canonical_defines(kernel: &str) -> Vec<(&'static str, &'static str)> {
    match kernel {
        "template_match" => vec![
            ("TILE_W", "16"),
            ("TILE_H", "16"),
            ("SHIFT_W", "16"),
            ("NUM_TILES", "16"),
            ("TEMPL_W", "64"),
            ("TEMPL_H", "56"),
            ("THREADS", "128"),
        ],
        "piv" => vec![
            ("RB", "4"),
            ("THREADS", "64"),
            ("MASK_W", "16"),
            ("MASK_H", "16"),
            ("OFFS_W", "9"),
        ],
        "backproj" => vec![("PPL", "8"), ("ZB", "4"), ("VOL_N", "32")],
        _ => vec![],
    }
}

fn emit(report: &VerifyReport, jsonl: bool, context: &str) {
    if jsonl {
        for f in &report.findings {
            println!("{}", f.to_json());
        }
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "{context}: {} checks, {} errors, {} warnings",
            report.checks,
            report.error_count(),
            report.warning_count()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let source_path = arg_value(&args, "--source");
    let kernel = arg_value(&args, "--kernel").unwrap_or_else(|| {
        if source_path.is_some() {
            "custom".into()
        } else {
            "template_match".into()
        }
    });
    let source = match &source_path {
        Some(p) => std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("ks-verify: cannot read {p}: {e}");
            std::process::exit(1);
        }),
        None => match kernel.as_str() {
            "template_match" => template_match::KERNELS.to_string(),
            "piv" => piv::KERNELS.to_string(),
            "backproj" => backproj::KERNELS.to_string(),
            other => {
                eprintln!("ks-verify: unknown kernel {other:?}");
                usage();
            }
        },
    };
    let mut defines = arg_defines(&args);
    if defines.is_empty() {
        defines = canonical_defines(&kernel)
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
    }
    let check = arg_value(&args, "--check").unwrap_or_else(|| "all".into());
    if !matches!(check.as_str(), "pipeline" | "spec" | "all") {
        eprintln!("ks-verify: unknown check {check:?}");
        usage();
    }
    let jsonl = match arg_value(&args, "--export").as_deref() {
        None | Some("text") => false,
        Some("jsonl") => true,
        Some(f) => {
            eprintln!("ks-verify: unknown export format {f:?}");
            usage();
        }
    };
    let seed = match arg_value(&args, "--seed") {
        None => 0xC0FFEEu64,
        Some(s) => u64::from_str_radix(s.trim_start_matches("0x"), 16).unwrap_or_else(|_| {
            eprintln!("ks-verify: --seed expects hex, got {s:?}");
            usage();
        }),
    };
    let limits = Limits::default();
    let mut failed = false;

    if args.iter().any(|a| a == "--mutation-smoke") {
        match mutation_smoke(&source, &defines, seed, limits) {
            Ok((caught, total)) => {
                println!("{kernel}: mutation smoke: {caught}/{total} caught");
                if caught != total {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("ks-verify: {kernel}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        if check == "pipeline" || check == "all" {
            // Validate both the specialized and the generic build.
            for (label, defs) in [("sk", defines.clone()), ("re", vec![])] {
                let run = if defs.is_empty() && !defines.is_empty() {
                    format!("{kernel} {label}")
                } else {
                    format!("{kernel} {label} [{}]", render_defs(&defs))
                };
                match ks_verify::validate_pipeline(&source, &defs, limits) {
                    Ok(report) => {
                        failed |= report.error_count() > 0;
                        emit(&report, jsonl, &format!("pipeline {run}"));
                    }
                    Err(e) => {
                        eprintln!("ks-verify: {run}: {e}");
                        std::process::exit(1);
                    }
                }
                if defines.is_empty() {
                    break; // sk == re; validate once
                }
            }
        }
        if (check == "spec" || check == "all") && !defines.is_empty() {
            let build = |defs: &[(String, String)]| {
                let prog = ks_lang::frontend(&source, defs).map_err(|e| e.to_string())?;
                ks_codegen::compile(&prog, &ks_codegen::CodegenOptions::default())
                    .map_err(|e| e.to_string())
            };
            match (build(&[]), build(&defines)) {
                (Ok(re), Ok(sk)) => {
                    let report = check_specialization(&re, &sk, &source, &defines, limits);
                    failed |= report.error_count() > 0;
                    emit(&report, jsonl, &format!("spec {kernel}"));
                }
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("ks-verify: {kernel}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    std::process::exit(if failed { 1 } else { 0 });
}

fn render_defs(defs: &[(String, String)]) -> String {
    defs.iter()
        .map(|(k, v)| format!("-D {k}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Build the optimized module, seed mutations into every function, and
/// require the checker to flag each one. Returns (caught, total).
fn mutation_smoke(
    source: &str,
    defines: &[(String, String)],
    seed: u64,
    limits: Limits,
) -> Result<(usize, usize), String> {
    let m = ks_verify::build_optimized(source, defines)?;
    let envs = ks_verify::default_envs();
    let ctx = ks_ir::Module {
        functions: vec![],
        consts: m.consts.clone(),
        textures: m.textures.clone(),
    };
    let mut caught = 0;
    let mut total = 0;
    for f in &m.functions {
        let sites = mutate::enumerate(f);
        for mu in mutate::sample(&sites, seed, 3) {
            let mut bad = f.clone();
            if !mutate::apply(&mut bad, &mu) {
                continue;
            }
            total += 1;
            let report =
                ks_verify::check_function_pair(f, &ctx, &bad, &ctx, &envs, limits, &mu.desc);
            if report.findings.iter().any(|fi| fi.is_error()) {
                caught += 1;
            } else {
                eprintln!("ks-verify: mutation ESCAPED: {}: {}", f.name, mu.desc);
            }
        }
    }
    Ok((caught, total))
}
