// Cone-beam backprojection kernel (dissertation §5.3).
#ifndef PPL
#define PPL ppl
#define GEO_MAX 64
#else
#define GEO_MAX PPL
#endif
#ifndef ZB
#define ZB zb
#define ZB_MAX 8
#else
#define ZB_MAX ZB
#endif
#ifndef VOL_N
#define VOL_N volN
#endif

// Per-projection (cos theta, sin theta) pairs for the current batch,
// stored flat as [cos0, sin0, cos1, sin1, ...].
__constant__ float projGeo[GEO_MAX * 2];

__global__ void backproject(
    float* proj, float* vol,
    int volN, int detU, int detV, int ppl, int zb, int z0,
    float sid, float sdd, float halfN, float halfU, float halfV)
{
    int x = (int)(blockIdx.x * blockDim.x + threadIdx.x);
    int y = (int)(blockIdx.y * blockDim.y + threadIdx.y);
    if (x < VOL_N) {
        if (y < VOL_N) {
            float fx = (float)x - halfN;
            float fy = (float)y - halfN;
            float acc[ZB_MAX];
            for (int zi = 0; zi < ZB; zi++) { acc[zi] = 0.0f; }
            int zbase = z0 + (int)blockIdx.z * ZB;
            for (int p = 0; p < PPL; p++) {
                float ct = projGeo[p * 2];
                float st = projGeo[p * 2 + 1];
                float t = fx * ct + fy * st;
                float s = fy * ct - fx * st;
                float depth = sid - s;
                float w = (sid * sid) / (depth * depth);
                float mag = sdd / depth;
                float u = t * mag + halfU;
                int u0 = (int)floorf(u);
                float fu = u - (float)u0;
                int uu0 = max(0, min(u0, detU - 1));
                int uu1 = max(0, min(u0 + 1, detU - 1));
                for (int zi = 0; zi < ZB; zi++) {
                    float fz = (float)(zbase + zi) - halfN;
                    float v = fz * mag + halfV;
                    int v0 = (int)floorf(v);
                    float fv = v - (float)v0;
                    int vv0 = max(0, min(v0, detV - 1));
                    int vv1 = max(0, min(v0 + 1, detV - 1));
                    float p00 = proj[(p * detV + vv0) * detU + uu0];
                    float p10 = proj[(p * detV + vv0) * detU + uu1];
                    float p01 = proj[(p * detV + vv1) * detU + uu0];
                    float p11 = proj[(p * detV + vv1) * detU + uu1];
                    float b0 = p00 + fu * (p10 - p00);
                    float b1 = p01 + fu * (p11 - p01);
                    acc[zi] += w * (b0 + fv * (b1 - b0));
                }
            }
            for (int zi = 0; zi < ZB; zi++) {
                int z = zbase + zi;
                vol[(z * VOL_N + y) * VOL_N + x] =
                    vol[(z * VOL_N + y) * VOL_N + x] + acc[zi];
            }
        }
    }
}
