// PIV sum-of-squared-differences kernels (dissertation §5.2.1).
#ifndef RB
#define RB rb
#define RB_MAX 16
#else
#define RB_MAX RB
#endif
#ifndef THREADS
#define THREADS_ALLOC 512
#define THREADS (int)blockDim.x
#else
#define THREADS_ALLOC THREADS
#endif
#ifndef MASK_W
#define MASK_W maskW
#endif
#ifndef MASK_H
#define MASK_H maskH
#endif
#ifndef OFFS_W
#define OFFS_W offsW
#endif

// One block = one mask; gridDim.y covers groups of RB offsets; each
// thread accumulates RB partial SSDs in registers while striding across
// the mask area.
__global__ void piv_ssd(
    float* imgA, float* imgB, float* scores,
    int imgW, int maskW, int maskH, int offsW,
    int numOffsets, int masksX, int stepX, int stepY,
    int marginX, int marginY, int rb)
{
    __shared__ float red[THREADS_ALLOC];
    int mask = blockIdx.x;
    int mx = (mask % masksX) * stepX + marginX;
    int my = (mask / masksX) * stepY + marginY;
    int t = (int)threadIdx.x;

    float acc[RB_MAX];
    for (int r = 0; r < RB; r++) { acc[r] = 0.0f; }

    int area = MASK_W * MASK_H;
    for (int p = t; p < area; p += THREADS) {
        int px = p % MASK_W;
        int py = p / MASK_W;
        float a = imgA[(my + py) * imgW + (mx + px)];
        for (int r = 0; r < RB; r++) {
            int oi = (int)blockIdx.y * RB + r;
            int oc = min(oi, numOffsets - 1);
            int dx = oc % OFFS_W - OFFS_W / 2;
            int dy = oc / OFFS_W - (numOffsets / OFFS_W) / 2;
            float b = imgB[(my + py + dy) * imgW + (mx + px + dx)];
            float d = a - b;
            acc[r] += d * d;
        }
    }

    // Tree reduction over threads, one offset at a time.
    for (int r = 0; r < RB; r++) {
        red[t] = acc[r];
        __syncthreads();
        for (int s = THREADS / 2; s > 0; s = s / 2) {
            if (t < s) { red[t] += red[t + s]; }
            __syncthreads();
        }
        int oi = (int)blockIdx.y * RB + r;
        if (t == 0) {
            if (oi < numOffsets) {
                scores[mask * numOffsets + oi] = red[0];
            }
        }
        __syncthreads();
    }
}

// Warp-specialized variant: per-warp warp-synchronous reduction (no
// barrier inside the warp, SIMT lockstep guarantees ordering), one
// barrier, then warp 0 combines the per-warp partials.
__global__ void piv_ssd_warp(
    float* imgA, float* imgB, float* scores,
    int imgW, int maskW, int maskH, int offsW,
    int numOffsets, int masksX, int stepX, int stepY,
    int marginX, int marginY, int rb)
{
    __shared__ float red[THREADS_ALLOC];
    __shared__ float warpsum[16];
    int mask = blockIdx.x;
    int mx = (mask % masksX) * stepX + marginX;
    int my = (mask / masksX) * stepY + marginY;
    int t = (int)threadIdx.x;
    int lane = t & 31;
    int wid = t >> 5;
    int nwarps = THREADS / 32;

    float acc[RB_MAX];
    for (int r = 0; r < RB; r++) { acc[r] = 0.0f; }

    int area = MASK_W * MASK_H;
    for (int p = t; p < area; p += THREADS) {
        int px = p % MASK_W;
        int py = p / MASK_W;
        float a = imgA[(my + py) * imgW + (mx + px)];
        for (int r = 0; r < RB; r++) {
            int oi = (int)blockIdx.y * RB + r;
            int oc = min(oi, numOffsets - 1);
            int dx = oc % OFFS_W - OFFS_W / 2;
            int dy = oc / OFFS_W - (numOffsets / OFFS_W) / 2;
            float b = imgB[(my + py + dy) * imgW + (mx + px + dx)];
            float d = a - b;
            acc[r] += d * d;
        }
    }

    for (int r = 0; r < RB; r++) {
        red[t] = acc[r];
        // Warp-synchronous tree: lanes of a warp are in lockstep, so no
        // __syncthreads() is needed between levels (§2.2).
        if (lane < 16) { red[t] += red[t + 16]; }
        if (lane < 8) { red[t] += red[t + 8]; }
        if (lane < 4) { red[t] += red[t + 4]; }
        if (lane < 2) { red[t] += red[t + 2]; }
        if (lane < 1) { red[t] += red[t + 1]; }
        if (lane == 0) { warpsum[wid] = red[t]; }
        __syncthreads();
        if (t == 0) {
            float total = 0.0f;
            for (int w = 0; w < nwarps; w++) { total += warpsum[w]; }
            int oi = (int)blockIdx.y * RB + r;
            if (oi < numOffsets) {
                scores[mask * numOffsets + oi] = total;
            }
        }
        __syncthreads();
    }
}

// Texture-path variant: both images are read through 1-D texture
// references (bound by the host), the idiomatic cached-read path on
// compute capability 1.x hardware.
texture<float> texA;
texture<float> texB;

__global__ void piv_ssd_tex(
    float* imgA, float* imgB, float* scores,
    int imgW, int maskW, int maskH, int offsW,
    int numOffsets, int masksX, int stepX, int stepY,
    int marginX, int marginY, int rb)
{
    __shared__ float red[THREADS_ALLOC];
    int mask = blockIdx.x;
    int mx = (mask % masksX) * stepX + marginX;
    int my = (mask / masksX) * stepY + marginY;
    int t = (int)threadIdx.x;

    float acc[RB_MAX];
    for (int r = 0; r < RB; r++) { acc[r] = 0.0f; }

    int area = MASK_W * MASK_H;
    for (int p = t; p < area; p += THREADS) {
        int px = p % MASK_W;
        int py = p / MASK_W;
        float a = tex1Dfetch(texA, (my + py) * imgW + (mx + px));
        for (int r = 0; r < RB; r++) {
            int oi = (int)blockIdx.y * RB + r;
            int oc = min(oi, numOffsets - 1);
            int dx = oc % OFFS_W - OFFS_W / 2;
            int dy = oc / OFFS_W - (numOffsets / OFFS_W) / 2;
            float b = tex1Dfetch(texB, (my + py + dy) * imgW + (mx + px + dx));
            float d = a - b;
            acc[r] += d * d;
        }
    }

    for (int r = 0; r < RB; r++) {
        red[t] = acc[r];
        __syncthreads();
        for (int s = THREADS / 2; s > 0; s = s / 2) {
            if (t < s) { red[t] += red[t + s]; }
            __syncthreads();
        }
        int oi = (int)blockIdx.y * RB + r;
        if (t == 0) {
            if (oi < numOffsets) {
                scores[mask * numOffsets + oi] = red[0];
            }
        }
        __syncthreads();
    }
}
