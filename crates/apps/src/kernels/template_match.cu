// Large template matching kernels (dissertation §5.1.3).
#ifndef TILE_W
#define TILE_W tileW
#endif
#ifndef TILE_H
#define TILE_H tileH
#endif
#ifndef SHIFT_W
#define SHIFT_W shiftW
#endif
#ifndef NUM_TILES
#define NUM_TILES numTiles
#endif
#ifndef TEMPL_W
#define TEMPL_W templW
#endif
#ifndef TEMPL_H
#define TEMPL_H templH
#endif
#ifndef THREADS
#define THREADS_ALLOC 512
#define THREADS (int)blockDim.x
#else
#define THREADS_ALLOC THREADS
#endif

// Numerator stage: one tile's contribution to sum(A_C * B) for each
// shift offset. gridDim.y indexes tiles within this region.
__global__ void numerator_tiles(
    float* frame, float* templc, float* partial,
    int frameW, int shiftW, int numOffsets, int templW,
    int tileW, int tileH, int tilesX, int tileX0, int tileY0, int tileBase)
{
    int o = blockIdx.x * blockDim.x + threadIdx.x;
    int tile = blockIdx.y;
    if (o < numOffsets) {
        int ox = o % SHIFT_W;
        int oy = o / SHIFT_W;
        int tx0 = tileX0 + (tile % tilesX) * TILE_W;
        int ty0 = tileY0 + (tile / tilesX) * TILE_H;
        float acc = 0.0f;
        for (int y = 0; y < TILE_H; y++) {
            for (int x = 0; x < TILE_W; x++) {
                float a = templc[(ty0 + y) * TEMPL_W + (tx0 + x)];
                float b = frame[(oy + ty0 + y) * frameW + (ox + tx0 + x)];
                acc += a * b;
            }
        }
        partial[(tileBase + tile) * numOffsets + o] = acc;
    }
}

// Tiled summation: combine per-tile partial sums into the numerator.
__global__ void sum_partials(float* partial, float* numer, int numTiles, int numOffsets)
{
    int o = blockIdx.x * blockDim.x + threadIdx.x;
    if (o < numOffsets) {
        float acc = 0.0f;
        for (int t = 0; t < NUM_TILES; t++) {
            acc += partial[t * numOffsets + o];
        }
        numer[o] = acc;
    }
}

// Window statistics for the denominator: sum(B) and sum(B^2) over the
// template-sized window at each offset. One block per offset; threads
// stripe the window and tree-reduce through shared memory (the template
// is far too large for a per-thread serial loop to hide latency).
__global__ void window_stats(
    float* frame, float* sums, float* sumsq,
    int frameW, int shiftW, int numOffsets, int templW, int templH)
{
    __shared__ float s_sum[THREADS_ALLOC];
    __shared__ float s_sq[THREADS_ALLOC];
    int o = (int)blockIdx.x;
    int t = (int)threadIdx.x;
    int ox = o % SHIFT_W;
    int oy = o / SHIFT_W;
    float s = 0.0f;
    float s2 = 0.0f;
    int area = TEMPL_W * TEMPL_H;
    for (int p = t; p < area; p += THREADS) {
        int px = p % TEMPL_W;
        int py = p / TEMPL_W;
        float b = frame[(oy + py) * frameW + (ox + px)];
        s += b;
        s2 += b * b;
    }
    s_sum[t] = s;
    s_sq[t] = s2;
    __syncthreads();
    for (int r = THREADS / 2; r > 0; r = r / 2) {
        if (t < r) {
            s_sum[t] += s_sum[t + r];
            s_sq[t] += s_sq[t + r];
        }
        __syncthreads();
    }
    if (t == 0) {
        sums[o] = s_sum[0];
        sumsq[o] = s_sq[0];
    }
}

// Final normalization: corr2 = numer / sqrt(varB * sum(A_C^2)).
__global__ void normalize(
    float* numer, float* sums, float* sumsq, float* ncc,
    int numOffsets, float invN, float denomA)
{
    int o = blockIdx.x * blockDim.x + threadIdx.x;
    if (o < numOffsets) {
        float varB = sumsq[o] - sums[o] * sums[o] * invN;
        float d = sqrtf(fmaxf(varB * denomA, 0.0f));
        ncc[o] = numer[o] / fmaxf(d, 0.000001f);
    }
}
