//! # ks-apps — the dissertation's three case-study applications
//!
//! Each application is implemented twice-plus:
//!
//! * a **GPU implementation** written in the `ks-lang` CUDA-C dialect with
//!   specialization toggles (`#ifndef PARAM / #define PARAM runtimeArg`),
//!   runnable as either a run-time-evaluated (RE) or specialized (SK)
//!   kernel on the simulated Tesla C1060 / C2070;
//! * a **multi-threaded CPU reference** used both as the performance
//!   baseline the dissertation compares against and as the correctness
//!   oracle;
//! * for PIV, an additional **FPGA analytic baseline** standing in for
//!   Bennis's FPGA implementation (Table 6.11).
//!
//! Input data the paper took from clinical recordings / lab cameras /
//! CT scanners is synthesized in [`synth`] with the same geometry
//! (see DESIGN.md for the substitution rationale).

pub mod backproj;
pub mod piv;
pub mod synth;
pub mod template_match;

use ks_sim::LaunchReport;

/// Aggregate result of running one GPU configuration of an application.
#[derive(Debug, Clone)]
pub struct GpuRunResult {
    /// Total simulated kernel time (ms) across all launches.
    pub sim_ms: f64,
    /// Per-launch reports (occupancy, registers, stats).
    pub reports: Vec<LaunchReport>,
    /// Wall-clock compile time spent (cache misses only), in ms.
    pub compile_ms: f64,
}

impl GpuRunResult {
    pub fn regs_per_thread(&self) -> u32 {
        self.reports
            .iter()
            .map(|r| r.regs_per_thread)
            .max()
            .unwrap_or(0)
    }

    pub fn occupancy(&self) -> f64 {
        self.reports
            .first()
            .map(|r| r.occupancy.occupancy)
            .unwrap_or(0.0)
    }

    pub fn active_warps(&self) -> u32 {
        self.reports
            .first()
            .map(|r| r.occupancy.active_warps)
            .unwrap_or(0)
    }

    pub fn dyn_insts(&self) -> u64 {
        self.reports.iter().map(|r| r.stats.dyn_insts).sum()
    }
}

/// Whether kernels are compiled run-time evaluated or specialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Run-time evaluated: no problem/implementation parameters fixed at
    /// compile time (beyond what the source hard-codes).
    Re,
    /// Specialized kernel: problem + implementation parameters provided as
    /// `-D` defines at (simulated) run time.
    Sk,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::Re => write!(f, "RE"),
            Variant::Sk => write!(f, "SK"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_sim::{ExecStats, LaunchReport};

    fn report(ms: f64, regs: u32, warps: u32) -> LaunchReport {
        LaunchReport {
            kernel: "k".into(),
            device: "d".into(),
            time_ms: ms,
            cycles: 0,
            occupancy: ks_sim::Occupancy {
                blocks_per_sm: 1,
                warps_per_block: warps,
                active_warps: warps,
                occupancy: warps as f64 / 32.0,
                limiter: ks_sim::Limiter::Blocks,
            },
            regs_per_thread: regs,
            pred_regs: 0,
            shared_per_block: 0,
            local_bytes_per_thread: 0,
            static_insts: 0,
            stats: ExecStats {
                dyn_insts: 100,
                ..Default::default()
            },
            bound: ks_sim::Bound::Compute,
        }
    }

    #[test]
    fn run_result_aggregates_reports() {
        let r = GpuRunResult {
            sim_ms: 3.0,
            reports: vec![report(1.0, 12, 8), report(2.0, 20, 8)],
            compile_ms: 0.5,
        };
        assert_eq!(r.regs_per_thread(), 20, "max over launches");
        assert_eq!(r.active_warps(), 8, "first launch");
        assert_eq!(r.dyn_insts(), 200);
        assert!((r.occupancy() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn variant_display() {
        assert_eq!(Variant::Re.to_string(), "RE");
        assert_eq!(Variant::Sk.to_string(), "SK");
        assert_ne!(Variant::Re, Variant::Sk);
    }
}
