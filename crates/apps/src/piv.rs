//! Particle image velocimetry (dissertation §5.2).
//!
//! For each interrogation window ("mask") placed on a grid over image A
//! (with configurable overlap), the kernel evaluates the sum-of-squared-
//! differences similarity against image B at every search offset
//! (Figure 5.10) and the host picks the minimizing offset as the local
//! displacement vector.
//!
//! GPU structure (§5.2.1): one block per mask; threads are striped across
//! the mask's area (Figure 5.11); **register blocking** assigns each
//! thread `RB` search offsets whose partial sums live in registers —
//! which requires RB fixed at compile time (the central specialization
//! parameter, Tables 6.14–6.18). An in-block tree reduction combines the
//! per-thread partials; the **warp-specialized** variant (Figure 5.12)
//! reduces within warps warp-synchronously and only barriers once.

use crate::synth::PivScenario;
use crate::{GpuRunResult, Variant};
use ks_core::{Compiler, Defines};
use ks_sim::{launch, DeviceState, KArg, LaunchDims, LaunchOptions};

/// Problem parameters (Tables 6.2–6.6 geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PivProblem {
    pub img_w: usize,
    pub img_h: usize,
    /// Interrogation window (mask) dimensions.
    pub mask_w: usize,
    pub mask_h: usize,
    /// Mask grid step (mask size minus overlap).
    pub step_x: usize,
    pub step_y: usize,
    /// Search offsets per axis (window of offsets, centred).
    pub offs_w: usize,
    pub offs_h: usize,
}

impl PivProblem {
    /// A standard setup: given mask size, overlap fraction, and search
    /// radius, on an image.
    pub fn standard(
        img: usize,
        mask: usize,
        overlap_percent: usize,
        search_radius: usize,
    ) -> PivProblem {
        let step = (mask * (100 - overlap_percent) / 100).max(1);
        PivProblem {
            img_w: img,
            img_h: img,
            mask_w: mask,
            mask_h: mask,
            step_x: step,
            step_y: step,
            offs_w: 2 * search_radius + 1,
            offs_h: 2 * search_radius + 1,
        }
    }

    pub fn num_offsets(&self) -> usize {
        self.offs_w * self.offs_h
    }

    /// Number of mask positions in each axis and total. Masks must fit in
    /// the image with room for the search window on both sides.
    pub fn mask_grid(&self) -> (usize, usize) {
        let margin_x = self.offs_w / 2;
        let margin_y = self.offs_h / 2;
        let usable_w = self.img_w.saturating_sub(self.mask_w + 2 * margin_x);
        let usable_h = self.img_h.saturating_sub(self.mask_h + 2 * margin_y);
        (usable_w / self.step_x + 1, usable_h / self.step_y + 1)
    }

    pub fn num_masks(&self) -> usize {
        let (x, y) = self.mask_grid();
        x * y
    }

    /// Mask origin (top-left in image A) of mask `m`.
    pub fn mask_origin(&self, m: usize) -> (usize, usize) {
        let (gx, _) = self.mask_grid();
        let mx = (m % gx) * self.step_x + self.offs_w / 2;
        let my = (m / gx) * self.step_y + self.offs_h / 2;
        (mx, my)
    }
}

/// Implementation parameters (Table 6.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PivImpl {
    /// Data registers per thread (register blocking factor).
    pub rb: u32,
    /// Threads per block.
    pub threads: u32,
}

impl Default for PivImpl {
    fn default() -> Self {
        PivImpl {
            rb: 4,
            threads: 128,
        }
    }
}

/// Kernel flavours compared in Table 6.14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivKernel {
    /// Barriered tree reduction per offset.
    Basic,
    /// Warp-synchronous per-warp reduction, single barrier (Figure 5.12).
    WarpSpec,
    /// Image reads through texture references (the idiomatic CC 1.x path
    /// for cached reads).
    Textured,
}

impl PivKernel {
    pub fn name(self) -> &'static str {
        match self {
            PivKernel::Basic => "piv_ssd",
            PivKernel::WarpSpec => "piv_ssd_warp",
            PivKernel::Textured => "piv_ssd_tex",
        }
    }
}

/// The PIV kernel module. Written once; `RB`, `THREADS`, mask and search
/// dimensions are specialization parameters with run-time fallbacks.
pub const KERNELS: &str = include_str!("kernels/piv.cu");

/// Output of a GPU PIV run.
#[derive(Debug, Clone)]
pub struct PivOutput {
    /// SSD score per (mask, offset), row-major.
    pub scores: Vec<f32>,
    /// Estimated displacement per mask.
    pub displacements: Vec<(i32, i32)>,
    pub run: GpuRunResult,
}

/// Convert raw scores into per-mask displacement vectors.
pub fn displacements(prob: &PivProblem, scores: &[f32]) -> Vec<(i32, i32)> {
    let no = prob.num_offsets();
    (0..prob.num_masks())
        .map(|m| {
            let row = &scores[m * no..(m + 1) * no];
            let best = row
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0);
            (
                (best % prob.offs_w) as i32 - (prob.offs_w / 2) as i32,
                (best / prob.offs_w) as i32 - (prob.offs_h / 2) as i32,
            )
        })
        .collect()
}

/// The defines [`run_gpu`] compiles with for this configuration. Sweep
/// drivers use this to precompile whole candidate grids in parallel
/// through `Compiler::compile_batch` before walking them.
pub fn specialization(variant: Variant, prob: &PivProblem, imp: &PivImpl) -> Defines {
    match variant {
        Variant::Re => Defines::new(),
        Variant::Sk => Defines::new()
            .def("RB", imp.rb)
            .def("THREADS", imp.threads)
            .def("MASK_W", prob.mask_w)
            .def("MASK_H", prob.mask_h)
            .def("OFFS_W", prob.offs_w),
    }
}

/// Run the GPU PIV kernel over a scenario.
pub fn run_gpu(
    compiler: &Compiler,
    variant: Variant,
    kernel: PivKernel,
    prob: &PivProblem,
    imp: &PivImpl,
    scen: &PivScenario,
    functional: bool,
) -> Result<PivOutput, Box<dyn std::error::Error>> {
    run_gpu_with(
        compiler,
        variant,
        kernel,
        prob,
        imp,
        scen,
        LaunchOptions {
            functional,
            timing_sample_blocks: 6,
            ..Default::default()
        },
    )
}

/// Like [`run_gpu`] but with explicit simulator launch options (e.g. the
/// event-driven timing mode).
#[allow(clippy::too_many_arguments)]
pub fn run_gpu_with(
    compiler: &Compiler,
    variant: Variant,
    kernel: PivKernel,
    prob: &PivProblem,
    imp: &PivImpl,
    scen: &PivScenario,
    opts: LaunchOptions,
) -> Result<PivOutput, Box<dyn std::error::Error>> {
    assert!(
        imp.threads.is_power_of_two() && imp.threads >= 32,
        "threads must be pow2 ≥ 32"
    );
    assert!(imp.rb >= 1 && imp.rb <= 16);
    let num_offsets = prob.num_offsets();
    let num_masks = prob.num_masks();
    let (masks_x, _) = prob.mask_grid();

    let defines = specialization(variant, prob, imp);
    let t0 = std::time::Instant::now();
    let bin = compiler.compile(KERNELS, &defines)?;
    let compile_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut st = DeviceState::new(compiler.device().clone(), 256 << 20);
    let p_a = st.global.alloc((scen.a.data.len() * 4) as u64)?;
    let p_b = st.global.alloc((scen.b.data.len() * 4) as u64)?;
    let p_scores = st.global.alloc((num_masks * num_offsets * 4) as u64)?;
    st.global.write_f32_slice(p_a, &scen.a.data)?;
    st.global.write_f32_slice(p_b, &scen.b.data)?;
    if kernel == PivKernel::Textured {
        st.bind_texture("texA", p_a);
        st.bind_texture("texB", p_b);
    }

    let groups = (num_offsets as u32).div_ceil(imp.rb);
    let dims = LaunchDims {
        grid: (num_masks as u32, groups, 1),
        block: (imp.threads, 1, 1),
        dynamic_shared: 0,
    };
    let rep = launch(
        &mut st,
        &bin.module,
        kernel.name(),
        dims,
        &[
            KArg::Ptr(p_a),
            KArg::Ptr(p_b),
            KArg::Ptr(p_scores),
            KArg::I32(prob.img_w as i32),
            KArg::I32(prob.mask_w as i32),
            KArg::I32(prob.mask_h as i32),
            KArg::I32(prob.offs_w as i32),
            KArg::I32(num_offsets as i32),
            KArg::I32(masks_x as i32),
            KArg::I32(prob.step_x as i32),
            KArg::I32(prob.step_y as i32),
            KArg::I32((prob.offs_w / 2) as i32),
            KArg::I32((prob.offs_h / 2) as i32),
            KArg::I32(imp.rb as i32),
        ],
        opts,
    )?;
    let scores = st
        .global
        .read_f32_slice(p_scores, num_masks * num_offsets)?;
    let disp = displacements(prob, &scores);
    Ok(PivOutput {
        scores,
        displacements: disp,
        run: GpuRunResult {
            sim_ms: rep.time_ms,
            reports: vec![rep],
            compile_ms,
        },
    })
}

/// Sub-pixel displacement refinement: a three-point parabolic fit through
/// the SSD minimum and its axis neighbours (standard PIV peak
/// interpolation). Returns per-mask displacements with fractional parts.
pub fn subpixel_displacements(prob: &PivProblem, scores: &[f32]) -> Vec<(f32, f32)> {
    let no = prob.num_offsets();
    let (ow, oh) = (prob.offs_w, prob.offs_h);
    (0..prob.num_masks())
        .map(|m| {
            let row = &scores[m * no..(m + 1) * no];
            let best = row
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0);
            let (bx, by) = (best % ow, best / ow);
            let parabolic = |l: f32, c: f32, r: f32| -> f32 {
                let denom = l - 2.0 * c + r;
                if denom.abs() < 1e-12 {
                    0.0
                } else {
                    (0.5 * (l - r) / denom).clamp(-0.5, 0.5)
                }
            };
            let fx = if bx > 0 && bx + 1 < ow {
                parabolic(
                    row[by * ow + bx - 1],
                    row[by * ow + bx],
                    row[by * ow + bx + 1],
                )
            } else {
                0.0
            };
            let fy = if by > 0 && by + 1 < oh {
                parabolic(
                    row[(by - 1) * ow + bx],
                    row[by * ow + bx],
                    row[(by + 1) * ow + bx],
                )
            } else {
                0.0
            };
            (
                bx as f32 - (ow / 2) as f32 + fx,
                by as f32 - (oh / 2) as f32 + fy,
            )
        })
        .collect()
}

/// Multi-threaded CPU reference: direct SSD evaluation.
pub fn cpu_ssd(prob: &PivProblem, scen: &PivScenario, threads: usize) -> Vec<f32> {
    let no = prob.num_offsets();
    let nm = prob.num_masks();
    let mut out = vec![0.0f32; nm * no];
    let chunk = nm.div_ceil(threads.max(1));
    std::thread::scope(|s| {
        for (ci, slice) in out.chunks_mut(chunk * no).enumerate() {
            s.spawn(move || {
                for (k, v) in slice.iter_mut().enumerate() {
                    let m = ci * chunk + k / no;
                    let o = k % no;
                    let (mx, my) = prob.mask_origin(m);
                    let dx = (o % prob.offs_w) as i32 - (prob.offs_w / 2) as i32;
                    let dy = (o / prob.offs_w) as i32 - (prob.offs_h / 2) as i32;
                    let mut acc = 0.0f32;
                    for py in 0..prob.mask_h {
                        for px in 0..prob.mask_w {
                            let a = scen.a.at(mx + px, my + py);
                            let b = scen.b.at(
                                (mx as i32 + px as i32 + dx) as usize,
                                (my as i32 + py as i32 + dy) as usize,
                            );
                            acc += (a - b) * (a - b);
                        }
                    }
                    *v = acc;
                }
            });
        }
    });
    out
}

/// Analytic model of Bennis's FPGA PIV implementation (the Table 6.11
/// baseline; see DESIGN.md for the substitution). A deeply pipelined
/// correlator at `clock_hz` evaluates `lanes` offsets per mask-pixel per
/// cycle, plus per-frame transfer overhead.
pub fn fpga_model_ms(prob: &PivProblem) -> f64 {
    let clock_hz = 100.0e6;
    let lanes = 16.0;
    let work =
        prob.num_masks() as f64 * prob.num_offsets() as f64 * (prob.mask_w * prob.mask_h) as f64;
    let cycles = work / lanes;
    let io = (prob.img_w * prob.img_h * 2) as f64 / 4.0; // 4 B/cycle in
    (cycles + io) / clock_hz * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::piv_scenario;
    use ks_sim::DeviceConfig;

    fn small_problem() -> PivProblem {
        PivProblem {
            img_w: 96,
            img_h: 96,
            mask_w: 16,
            mask_h: 16,
            step_x: 16,
            step_y: 16,
            offs_w: 9,
            offs_h: 9,
        }
    }

    #[test]
    fn mask_grid_fits_image() {
        let p = small_problem();
        let (gx, gy) = p.mask_grid();
        assert!(gx >= 2 && gy >= 2);
        for m in 0..p.num_masks() {
            let (mx, my) = p.mask_origin(m);
            assert!(mx + p.mask_w + p.offs_w / 2 <= p.img_w);
            assert!(my + p.mask_h + p.offs_h / 2 <= p.img_h);
            assert!(mx >= p.offs_w / 2 && my >= p.offs_h / 2);
        }
    }

    #[test]
    fn gpu_matches_cpu_and_recovers_flow_sk() {
        let prob = small_problem();
        let scen = piv_scenario(prob.img_w, prob.img_h, (3, -2), 5);
        let compiler = Compiler::new(DeviceConfig::tesla_c1060());
        let imp = PivImpl { rb: 4, threads: 64 };
        let out = run_gpu(
            &compiler,
            Variant::Sk,
            PivKernel::Basic,
            &prob,
            &imp,
            &scen,
            true,
        )
        .unwrap();
        let cpu = cpu_ssd(&prob, &scen, 4);
        for (i, (g, c)) in out.scores.iter().zip(&cpu).enumerate() {
            assert!(
                (g - c).abs() <= 1e-3 * c.abs().max(1.0),
                "score {i}: gpu {g} vs cpu {c}"
            );
        }
        // Most masks should recover the true flow.
        let hits = out
            .displacements
            .iter()
            .filter(|d| **d == scen.flow)
            .count();
        assert!(
            hits * 10 >= out.displacements.len() * 7,
            "only {hits}/{} masks recovered the flow",
            out.displacements.len()
        );
    }

    #[test]
    fn app_kernels_run_clean_under_dynamic_sanitizers() {
        // The correlation kernels mix a block-wide barrier with a
        // warp-synchronous reduction tail; both the dynamic racecheck and
        // strict barrier checking must stay quiet (the static analyzers in
        // ks-analysis reach the same verdict).
        let prob = small_problem();
        let scen = piv_scenario(prob.img_w, prob.img_h, (3, -2), 5);
        let compiler = Compiler::new(DeviceConfig::tesla_c2070());
        let imp = PivImpl { rb: 4, threads: 64 };
        let opts = LaunchOptions {
            functional: true,
            racecheck: true,
            strict_barriers: true,
            ..Default::default()
        };
        for kernel in [PivKernel::Basic, PivKernel::WarpSpec] {
            run_gpu_with(&compiler, Variant::Sk, kernel, &prob, &imp, &scen, opts)
                .unwrap_or_else(|e| panic!("{kernel:?} under sanitizers: {e}"));
        }
    }

    #[test]
    fn warp_specialized_variant_agrees_with_basic() {
        let prob = small_problem();
        let scen = piv_scenario(prob.img_w, prob.img_h, (1, 2), 9);
        let compiler = Compiler::new(DeviceConfig::tesla_c2070());
        let imp = PivImpl { rb: 2, threads: 64 };
        let a = run_gpu(
            &compiler,
            Variant::Sk,
            PivKernel::Basic,
            &prob,
            &imp,
            &scen,
            true,
        )
        .unwrap();
        let b = run_gpu(
            &compiler,
            Variant::Sk,
            PivKernel::WarpSpec,
            &prob,
            &imp,
            &scen,
            true,
        )
        .unwrap();
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0));
        }
    }

    #[test]
    fn textured_variant_agrees_with_basic() {
        let prob = small_problem();
        let scen = piv_scenario(prob.img_w, prob.img_h, (2, -2), 17);
        let compiler = Compiler::new(DeviceConfig::tesla_c1060());
        let imp = PivImpl { rb: 2, threads: 64 };
        let a = run_gpu(
            &compiler,
            Variant::Sk,
            PivKernel::Basic,
            &prob,
            &imp,
            &scen,
            true,
        )
        .unwrap();
        let b = run_gpu(
            &compiler,
            Variant::Sk,
            PivKernel::Textured,
            &prob,
            &imp,
            &scen,
            true,
        )
        .unwrap();
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0));
        }
        assert_eq!(a.displacements, b.displacements);
    }

    #[test]
    fn re_and_sk_agree_and_sk_wins() {
        let prob = small_problem();
        let scen = piv_scenario(prob.img_w, prob.img_h, (2, 1), 3);
        let compiler = Compiler::new(DeviceConfig::tesla_c1060());
        let imp = PivImpl { rb: 4, threads: 64 };
        let re = run_gpu(
            &compiler,
            Variant::Re,
            PivKernel::Basic,
            &prob,
            &imp,
            &scen,
            true,
        )
        .unwrap();
        let sk = run_gpu(
            &compiler,
            Variant::Sk,
            PivKernel::Basic,
            &prob,
            &imp,
            &scen,
            true,
        )
        .unwrap();
        for (x, y) in re.scores.iter().zip(&sk.scores) {
            assert!((x - y).abs() <= 1e-3 * x.abs().max(1.0));
        }
        assert!(
            sk.run.sim_ms < re.run.sim_ms,
            "SK {:.4} ms must beat RE {:.4} ms (register blocking in local memory)",
            sk.run.sim_ms,
            re.run.sim_ms
        );
        // RE keeps the accumulator array in local memory; SK scalarizes it.
        assert!(re.run.reports[0].local_bytes_per_thread > 0);
        assert_eq!(sk.run.reports[0].local_bytes_per_thread, 0);
    }

    #[test]
    fn subpixel_refinement_tracks_fractional_flow() {
        // Integer SSD scores from a synthetic quadratic bowl centred at a
        // fractional offset: the parabolic fit must recover the fraction.
        let prob = small_problem();
        let no = prob.num_offsets();
        let (cx, cy) = (1.4f32, -0.7f32); // true displacement
        let mut scores = vec![0.0f32; prob.num_masks() * no];
        for m in 0..prob.num_masks() {
            for o in 0..no {
                let dx = (o % prob.offs_w) as f32 - (prob.offs_w / 2) as f32;
                let dy = (o / prob.offs_w) as f32 - (prob.offs_h / 2) as f32;
                scores[m * no + o] = (dx - cx).powi(2) + (dy - cy).powi(2);
            }
        }
        for (fx, fy) in subpixel_displacements(&prob, &scores) {
            assert!((fx - cx).abs() < 0.05, "x: {fx} vs {cx}");
            assert!((fy - cy).abs() < 0.05, "y: {fy} vs {cy}");
        }
        // Integer argmin alone cannot do this.
        let ints = displacements(&prob, &scores);
        assert!(ints.iter().all(|d| *d == (1, -1)));
    }

    #[test]
    fn fpga_model_scales_linearly_in_work() {
        let p1 = PivProblem::standard(128, 16, 0, 4);
        let p2 = PivProblem::standard(128, 32, 0, 4);
        let t1 = fpga_model_ms(&p1);
        let t2 = fpga_model_ms(&p2);
        assert!(t1 > 0.0 && t2 > 0.0);
        // Bigger masks, fewer masks — work roughly constant, so the ratio
        // stays moderate.
        assert!(t2 / t1 < 4.0);
    }
}
