//! Synthetic workload generation.
//!
//! The dissertation's inputs are gated (clinical ultrasound frames, PIV
//! lab camera pairs, CT projections); these generators produce data with
//! the same geometry and — because every kernel here is data-oblivious
//! dense arithmetic — the same performance behaviour, while adding a
//! ground-truth oracle (known embedding offset / displacement / phantom).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A row-major single-channel float image.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    pub w: usize,
    pub h: usize,
    pub data: Vec<f32>,
}

impl Image {
    pub fn new(w: usize, h: usize) -> Image {
        Image {
            w,
            h,
            data: vec![0.0; w * h],
        }
    }

    #[inline]
    pub fn at(&self, x: usize, y: usize) -> f32 {
        self.data[y * self.w + x]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        self.data[y * self.w + x] = v;
    }

    /// Mean of all pixels.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }
}

/// Smoothly textured random image (speckle-like, like ultrasound tissue).
pub fn textured_image(w: usize, h: usize, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut img = Image::new(w, h);
    // Low-frequency components + speckle noise.
    let fx = rng.gen_range(0.02..0.08);
    let fy = rng.gen_range(0.02..0.08);
    let phase = rng.gen_range(0.0..std::f32::consts::TAU);
    for y in 0..h {
        for x in 0..w {
            let base = ((x as f32 * fx + phase).sin() + (y as f32 * fy).cos()) * 0.25 + 0.5;
            let noise: f32 = rng.gen_range(-0.2..0.2);
            img.set(x, y, (base + noise).clamp(0.0, 1.0));
        }
    }
    img
}

/// A template-matching scenario: a frame containing the template embedded
/// at a known offset (plus noise), the template itself, and the truth.
pub struct MatchScenario {
    pub frame: Image,
    pub template: Image,
    /// True (x, y) position of the template inside the frame.
    pub truth: (usize, usize),
}

/// Build a frame of `frame_w × frame_h` with a `tw × th` template embedded
/// at a deterministic pseudo-random offset within `[0, shift_w) × [0, shift_h)`.
pub fn match_scenario(
    frame_w: usize,
    frame_h: usize,
    tw: usize,
    th: usize,
    shift_w: usize,
    shift_h: usize,
    seed: u64,
) -> MatchScenario {
    assert!(tw + shift_w <= frame_w + 1 && th + shift_h <= frame_h + 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7a11);
    let mut frame = textured_image(frame_w, frame_h, seed);
    let template = textured_image(tw, th, seed.wrapping_mul(31) + 7);
    let ox = rng.gen_range(0..shift_w);
    let oy = rng.gen_range(0..shift_h);
    // Blend the template into the frame at (ox, oy) with mild noise.
    for y in 0..th {
        for x in 0..tw {
            let n: f32 = rng.gen_range(-0.05..0.05);
            frame.set(ox + x, oy + y, (template.at(x, y) + n).clamp(0.0, 1.0));
        }
    }
    MatchScenario {
        frame,
        template,
        truth: (ox, oy),
    }
}

/// A PIV scenario: two particle images where the second is the first
/// displaced by a known uniform flow, plus noise.
pub struct PivScenario {
    pub a: Image,
    pub b: Image,
    /// The true displacement (dx, dy) applied to every particle.
    pub flow: (i32, i32),
}

/// Random particle field with `count` Gaussian particles.
fn particle_image(w: usize, h: usize, count: usize, rng: &mut StdRng) -> Vec<(f32, f32, f32)> {
    (0..count)
        .map(|_| {
            (
                rng.gen_range(0.0..w as f32),
                rng.gen_range(0.0..h as f32),
                rng.gen_range(0.6..1.0),
            )
        })
        .collect()
}

fn render_particles(w: usize, h: usize, parts: &[(f32, f32, f32)], dx: f32, dy: f32) -> Image {
    let mut img = Image::new(w, h);
    let sigma2 = 1.6f32;
    for &(px, py, amp) in parts {
        let (cx, cy) = (px + dx, py + dy);
        let x0 = (cx - 4.0).max(0.0) as usize;
        let x1 = ((cx + 4.0) as usize).min(w.saturating_sub(1));
        let y0 = (cy - 4.0).max(0.0) as usize;
        let y1 = ((cy + 4.0) as usize).min(h.saturating_sub(1));
        for y in y0..=y1 {
            for x in x0..=x1 {
                let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                let v = amp * (-d2 / (2.0 * sigma2)).exp();
                let cur = img.at(x, y);
                img.set(x, y, (cur + v).min(1.0));
            }
        }
    }
    img
}

/// Build a particle-image pair with a known uniform displacement.
pub fn piv_scenario(w: usize, h: usize, flow: (i32, i32), seed: u64) -> PivScenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1234_5678_9abc_def0);
    let density = (w * h) / 48; // particles per image
    let parts = particle_image(w, h, density, &mut rng);
    let a = render_particles(w, h, &parts, 0.0, 0.0);
    let b = render_particles(w, h, &parts, flow.0 as f32, flow.1 as f32);
    PivScenario { a, b, flow }
}

/// A 3D phantom made of ellipsoids (Shepp-Logan flavoured), its forward
/// projections, and geometry for cone-beam reconstruction.
pub struct CtScenario {
    /// Cubic volume, `n³`, row-major (x fastest, then y, then z).
    pub volume: Vec<f32>,
    pub n: usize,
    /// `num_proj` projections, each `det_u × det_v` row-major.
    pub projections: Vec<f32>,
    pub num_proj: usize,
    pub det_u: usize,
    pub det_v: usize,
    pub geo: ConeGeometry,
}

/// Circular cone-beam geometry with a flat detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConeGeometry {
    /// Source-to-isocenter distance (in voxel units).
    pub sid: f32,
    /// Source-to-detector distance.
    pub sdd: f32,
    /// Detector pixel pitch.
    pub du: f32,
    pub dv: f32,
}

/// One ellipsoid: center, semi-axes, density.
struct Ellipsoid {
    c: [f32; 3],
    r: [f32; 3],
    rho: f32,
}

fn phantom_ellipsoids(n: usize) -> Vec<Ellipsoid> {
    let s = n as f32 / 2.0;
    vec![
        Ellipsoid {
            c: [0.0, 0.0, 0.0],
            r: [0.85 * s, 0.9 * s, 0.8 * s],
            rho: 1.0,
        },
        Ellipsoid {
            c: [0.0, 0.0, 0.0],
            r: [0.8 * s, 0.85 * s, 0.75 * s],
            rho: -0.8,
        },
        Ellipsoid {
            c: [0.25 * s, 0.1 * s, 0.0],
            r: [0.15 * s, 0.2 * s, 0.25 * s],
            rho: 0.6,
        },
        Ellipsoid {
            c: [-0.3 * s, -0.2 * s, 0.1 * s],
            r: [0.2 * s, 0.12 * s, 0.2 * s],
            rho: 0.4,
        },
        Ellipsoid {
            c: [0.0, 0.35 * s, -0.2 * s],
            r: [0.1 * s, 0.1 * s, 0.1 * s],
            rho: 0.8,
        },
    ]
}

/// Evaluate the phantom density at a point (voxel coordinates centred on
/// the volume).
fn phantom_at(es: &[Ellipsoid], x: f32, y: f32, z: f32) -> f32 {
    let mut v = 0.0;
    for e in es {
        let dx = (x - e.c[0]) / e.r[0];
        let dy = (y - e.c[1]) / e.r[1];
        let dz = (z - e.c[2]) / e.r[2];
        if dx * dx + dy * dy + dz * dz <= 1.0 {
            v += e.rho;
        }
    }
    v
}

/// Generate the phantom volume and cone-beam projections by ray casting.
pub fn ct_scenario(n: usize, num_proj: usize, det_u: usize, det_v: usize) -> CtScenario {
    let es = phantom_ellipsoids(n);
    let half = n as f32 / 2.0;
    let mut volume = vec![0.0f32; n * n * n];
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                volume[(z * n + y) * n + x] =
                    phantom_at(&es, x as f32 - half, y as f32 - half, z as f32 - half);
            }
        }
    }
    let geo = ConeGeometry {
        sid: 3.0 * n as f32,
        sdd: 4.5 * n as f32,
        du: 1.0,
        dv: 1.0,
    };
    // Forward projection: march each detector ray through the volume.
    let mut projections = vec![0.0f32; num_proj * det_u * det_v];
    for p in 0..num_proj {
        let theta = p as f32 * std::f32::consts::PI * 2.0 / num_proj as f32;
        let (sin_t, cos_t) = theta.sin_cos();
        // Source position.
        let sx = -geo.sid * sin_t;
        let sy = geo.sid * cos_t;
        for v in 0..det_v {
            for u in 0..det_u {
                // Detector pixel position in world coordinates (detector
                // plane passes through the axis opposite the source).
                let lu = (u as f32 - det_u as f32 / 2.0) * geo.du;
                let lv = (v as f32 - det_v as f32 / 2.0) * geo.dv;
                let ddist = geo.sdd - geo.sid;
                let dxw = lu * cos_t + ddist * sin_t;
                let dyw = lu * sin_t - ddist * cos_t;
                let dzw = lv;
                // Ray from source to detector pixel, sampled through the
                // volume bounding sphere.
                let dirx = dxw - sx;
                let diry = dyw - sy;
                let dirz = dzw - 0.0;
                let len = (dirx * dirx + diry * diry + dirz * dirz).sqrt();
                let steps = n * 2;
                let mut acc = 0.0;
                for s in 0..steps {
                    let t = (geo.sid - half * 1.5) / len
                        + (s as f32 / steps as f32) * (3.0 * half / len);
                    let px = sx + dirx * t;
                    let py = sy + diry * t;
                    let pz = 0.0 + dirz * t;
                    if px.abs() < half && py.abs() < half && pz.abs() < half {
                        acc += phantom_at(&es, px, py, pz);
                    }
                }
                projections[(p * det_v + v) * det_u + u] = acc * (3.0 * half / steps as f32);
            }
        }
    }
    CtScenario {
        volume,
        n,
        projections,
        num_proj,
        det_u,
        det_v,
        geo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textured_image_is_deterministic_and_bounded() {
        let a = textured_image(64, 48, 7);
        let b = textured_image(64, 48, 7);
        assert_eq!(a, b);
        assert!(a.data.iter().all(|v| (0.0..=1.0).contains(v)));
        let c = textured_image(64, 48, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn match_scenario_embeds_template_at_truth() {
        let s = match_scenario(128, 96, 32, 24, 16, 16, 3);
        let (ox, oy) = s.truth;
        assert!(ox < 16 && oy < 16);
        // The embedded region correlates strongly with the template.
        let mut diff = 0.0f32;
        for y in 0..24 {
            for x in 0..32 {
                diff += (s.frame.at(ox + x, oy + y) - s.template.at(x, y)).abs();
            }
        }
        let avg = diff / (32.0 * 24.0);
        assert!(avg < 0.06, "embedding too noisy: {avg}");
    }

    #[test]
    fn piv_scenario_pair_is_shifted() {
        let s = piv_scenario(96, 96, (4, 2), 11);
        // SSD at the true shift should beat SSD at zero shift for a
        // central window.
        let win = 32usize;
        let (x0, y0) = (32, 32);
        let ssd = |dx: i32, dy: i32| -> f32 {
            let mut acc = 0.0;
            for y in 0..win {
                for x in 0..win {
                    let a = s.a.at(x0 + x, y0 + y);
                    let b = s.b.at(
                        (x0 as i32 + x as i32 + dx) as usize,
                        (y0 as i32 + y as i32 + dy) as usize,
                    );
                    acc += (a - b) * (a - b);
                }
            }
            acc
        };
        assert!(ssd(4, 2) < ssd(0, 0) * 0.5);
    }

    #[test]
    fn ct_scenario_is_deterministic_and_projection_symmetric() {
        let a = ct_scenario(12, 4, 16, 16);
        let b = ct_scenario(12, 4, 16, 16);
        assert_eq!(a.volume, b.volume);
        assert_eq!(a.projections, b.projections);
        // The phantom is centred; opposite views (0 and π) see mirrored
        // but equal total attenuation.
        let view = |p: usize| -> f32 { a.projections[p * 16 * 16..(p + 1) * 16 * 16].iter().sum() };
        let (v0, v2) = (view(0), view(2));
        assert!(
            (v0 - v2).abs() / v0.max(1e-6) < 0.25,
            "opposite views differ too much: {v0} vs {v2}"
        );
    }

    #[test]
    fn ct_scenario_round_trips_phantom_shape() {
        let s = ct_scenario(16, 8, 24, 24);
        assert_eq!(s.volume.len(), 16 * 16 * 16);
        assert_eq!(s.projections.len(), 8 * 24 * 24);
        // Center voxel is inside the skull: positive density.
        let c = s.volume[(8 * 16 + 8) * 16 + 8];
        assert!(c > 0.0);
        // Projections carry signal.
        assert!(s.projections.iter().any(|v| *v > 0.0));
        // Corner voxel is air.
        assert_eq!(s.volume[0], 0.0);
    }
}
