//! Large template matching (dissertation §5.1).
//!
//! Normalized cross-correlation (`corr2`) of a large template against every
//! shift offset within a region of interest. The GPU implementation follows
//! the dissertation's staging:
//!
//! 1. **Numerator stage** — the template is split into tiles (a main tile
//!    size plus right/bottom/corner edge tiles); each block accumulates one
//!    tile's contribution to Σ A_C·B for a stripe of shift offsets
//!    (Figures 5.4–5.6). Tile dimensions are the headline specialization
//!    parameters: every distinct tile size is compiled on demand
//!    (§5.1.3.2) instead of pre-instantiating all variants.
//! 2. **Tiled summation** — partial sums are reduced across tiles per
//!    offset (the kernel Table 6.13 benchmarks).
//! 3. **Other stages** — per-offset window statistics (ΣB, ΣB²) and the
//!    final normalization (§5.1.3.3).
//!
//! The numerator uses the simplification of Figure 5.3: with the template
//! mean pre-subtracted (A_C), Σ A_C·B̄ vanishes, so only Σ A_C·B is needed.

use crate::synth::{Image, MatchScenario};
use crate::{GpuRunResult, Variant};
use ks_core::{Compiler, Defines};
use ks_sim::{launch, DeviceState, KArg, LaunchDims, LaunchOptions};

/// Problem parameters (Table 5.1 geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MatchProblem {
    pub frame_w: usize,
    pub frame_h: usize,
    pub templ_w: usize,
    pub templ_h: usize,
    /// Shift area (vertical/horizontal shift within the ROI).
    pub shift_w: usize,
    pub shift_h: usize,
    /// Image frames per sequence.
    pub frames: usize,
}

impl MatchProblem {
    pub fn num_offsets(&self) -> usize {
        self.shift_w * self.shift_h
    }

    /// corr2() calls per frame-set, as Table 5.1 counts them.
    pub fn corr2_calls(&self) -> usize {
        self.num_offsets() * self.frames
    }
}

/// The four patient data sets of Table 5.1. Template sizes follow the
/// dissertation where stated (patient 4: 156×116); the others scale down.
pub fn patients() -> Vec<(&'static str, MatchProblem)> {
    vec![
        (
            "Patient 1",
            MatchProblem {
                frame_w: 320,
                frame_h: 240,
                templ_w: 64,
                templ_h: 56,
                shift_w: 16,
                shift_h: 16,
                frames: 32,
            },
        ),
        (
            "Patient 2",
            MatchProblem {
                frame_w: 400,
                frame_h: 300,
                templ_w: 96,
                templ_h: 80,
                shift_w: 24,
                shift_h: 24,
                frames: 32,
            },
        ),
        (
            "Patient 3",
            MatchProblem {
                frame_w: 480,
                frame_h: 360,
                templ_w: 128,
                templ_h: 96,
                shift_w: 28,
                shift_h: 28,
                frames: 16,
            },
        ),
        (
            "Patient 4",
            MatchProblem {
                frame_w: 512,
                frame_h: 400,
                templ_w: 156,
                templ_h: 116,
                shift_w: 32,
                shift_h: 32,
                frames: 16,
            },
        ),
    ]
}

/// Implementation parameters (Table 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchImpl {
    /// Main tile dimensions.
    pub tile_w: u32,
    pub tile_h: u32,
    /// Threads per block (offsets per block stripe).
    pub threads: u32,
}

impl Default for MatchImpl {
    fn default() -> Self {
        MatchImpl {
            tile_w: 16,
            tile_h: 16,
            threads: 128,
        }
    }
}

/// The kernel module source, written once with specialization toggles.
pub const KERNELS: &str = include_str!("kernels/template_match.cu");

/// A tile region: origin, tile dims, tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRegion {
    pub x0: u32,
    pub y0: u32,
    pub tw: u32,
    pub th: u32,
    pub tiles_x: u32,
    pub tiles_y: u32,
}

impl TileRegion {
    pub fn num_tiles(&self) -> u32 {
        self.tiles_x * self.tiles_y
    }
}

/// Decompose a template into main + edge tile regions (Table 5.2 style).
pub fn tile_regions(templ_w: u32, templ_h: u32, tile_w: u32, tile_h: u32) -> Vec<TileRegion> {
    let tx = templ_w / tile_w;
    let ty = templ_h / tile_h;
    let rw = templ_w % tile_w;
    let rh = templ_h % tile_h;
    let mut out = Vec::new();
    if tx > 0 && ty > 0 {
        out.push(TileRegion {
            x0: 0,
            y0: 0,
            tw: tile_w,
            th: tile_h,
            tiles_x: tx,
            tiles_y: ty,
        });
    }
    if rw > 0 && ty > 0 {
        out.push(TileRegion {
            x0: tx * tile_w,
            y0: 0,
            tw: rw,
            th: tile_h,
            tiles_x: 1,
            tiles_y: ty,
        });
    }
    if rh > 0 && tx > 0 {
        out.push(TileRegion {
            x0: 0,
            y0: ty * tile_h,
            tw: tile_w,
            th: rh,
            tiles_x: tx,
            tiles_y: 1,
        });
    }
    if rw > 0 && rh > 0 {
        out.push(TileRegion {
            x0: tx * tile_w,
            y0: ty * tile_h,
            tw: rw,
            th: rh,
            tiles_x: 1,
            tiles_y: 1,
        });
    }
    out
}

/// Result of one GPU template-matching run.
#[derive(Debug, Clone)]
pub struct MatchOutput {
    /// NCC score per offset (row-major over the shift area).
    pub ncc: Vec<f32>,
    pub run: GpuRunResult,
}

impl MatchOutput {
    /// Best-scoring offset (x, y).
    pub fn best(&self, shift_w: usize) -> (usize, usize) {
        let (mut bi, mut bv) = (0usize, f32::MIN);
        for (i, v) in self.ncc.iter().enumerate() {
            if *v > bv {
                bv = *v;
                bi = i;
            }
        }
        (bi % shift_w, bi / shift_w)
    }
}

/// Defines for the tile kernels at one region tile size (the per-region
/// modules of [`run_gpu`] plus its auxiliary module all come from here).
fn tile_defines(
    variant: Variant,
    prob: &MatchProblem,
    imp: &MatchImpl,
    total_tiles: u32,
    tw: u32,
    th: u32,
) -> Defines {
    match variant {
        Variant::Re => Defines::new(),
        Variant::Sk => Defines::new()
            .def("TILE_W", tw)
            .def("TILE_H", th)
            .def("SHIFT_W", prob.shift_w)
            .def("NUM_TILES", total_tiles)
            .def("TEMPL_W", prob.templ_w)
            .def("TEMPL_H", prob.templ_h)
            .def("THREADS", imp.threads),
    }
}

/// The distinct define sets [`run_gpu`] compiles for this configuration
/// (one per region tile size, plus the auxiliary-stage module). Sweep
/// drivers use this to precompile whole candidate grids in parallel
/// through `Compiler::compile_batch` before walking them.
pub fn specializations(variant: Variant, prob: &MatchProblem, imp: &MatchImpl) -> Vec<Defines> {
    let regions = tile_regions(
        prob.templ_w as u32,
        prob.templ_h as u32,
        imp.tile_w,
        imp.tile_h,
    );
    let total_tiles: u32 = regions.iter().map(|r| r.num_tiles()).sum();
    let mut out: Vec<Defines> = Vec::new();
    for (tw, th) in regions
        .iter()
        .map(|r| (r.tw, r.th))
        .chain(std::iter::once((imp.tile_w, imp.tile_h)))
    {
        let d = tile_defines(variant, prob, imp, total_tiles, tw, th);
        if !out.contains(&d) {
            out.push(d);
        }
    }
    out
}

/// Run the full GPU pipeline for one frame.
///
/// `functional` should be true when outputs are checked; perf sweeps can
/// pass false to time from the block sample only.
pub fn run_gpu(
    compiler: &Compiler,
    variant: Variant,
    prob: &MatchProblem,
    imp: &MatchImpl,
    scen: &MatchScenario,
    functional: bool,
) -> Result<MatchOutput, Box<dyn std::error::Error>> {
    let num_offsets = prob.num_offsets();
    let regions = tile_regions(
        prob.templ_w as u32,
        prob.templ_h as u32,
        imp.tile_w,
        imp.tile_h,
    );
    let total_tiles: u32 = regions.iter().map(|r| r.num_tiles()).sum();

    // Template with mean removed (A_C) and its sum of squares.
    let tmean = scen.template.mean();
    let templc: Vec<f32> = scen.template.data.iter().map(|v| v - tmean).collect();
    let denom_a: f32 = templc.iter().map(|v| v * v).sum();
    let inv_n = 1.0f32 / (prob.templ_w * prob.templ_h) as f32;

    // --- compile (per-region for SK; single RE module otherwise) ---
    let base_defs = |tw: u32, th: u32| tile_defines(variant, prob, imp, total_tiles, tw, th);
    let compile_start = std::time::Instant::now();
    let mut region_bins = Vec::new();
    for r in &regions {
        region_bins.push(compiler.compile(KERNELS, base_defs(r.tw, r.th))?);
    }
    let aux_bin = compiler.compile(KERNELS, base_defs(imp.tile_w, imp.tile_h))?;
    let compile_ms = compile_start.elapsed().as_secs_f64() * 1e3;

    // --- device state and buffers ---
    let mut st = DeviceState::new(compiler.device().clone(), 256 << 20);
    let p_frame = st.global.alloc((scen.frame.data.len() * 4) as u64)?;
    let p_templc = st.global.alloc((templc.len() * 4) as u64)?;
    let p_partial = st
        .global
        .alloc(total_tiles as u64 * num_offsets as u64 * 4)?;
    let p_numer = st.global.alloc(num_offsets as u64 * 4)?;
    let p_sums = st.global.alloc(num_offsets as u64 * 4)?;
    let p_sumsq = st.global.alloc(num_offsets as u64 * 4)?;
    let p_ncc = st.global.alloc(num_offsets as u64 * 4)?;
    st.global.write_f32_slice(p_frame, &scen.frame.data)?;
    st.global.write_f32_slice(p_templc, &templc)?;

    let opts = LaunchOptions {
        functional,
        timing_sample_blocks: 6,
        ..Default::default()
    };
    let oblocks = (num_offsets as u32).div_ceil(imp.threads);
    let mut reports = Vec::new();

    // Stage 1: numerator, one launch per tile region.
    let mut tile_base = 0u32;
    for (r, bin) in regions.iter().zip(&region_bins) {
        let dims = LaunchDims {
            grid: (oblocks, r.num_tiles(), 1),
            block: (imp.threads, 1, 1),
            dynamic_shared: 0,
        };
        let rep = launch(
            &mut st,
            &bin.module,
            "numerator_tiles",
            dims,
            &[
                KArg::Ptr(p_frame),
                KArg::Ptr(p_templc),
                KArg::Ptr(p_partial),
                KArg::I32(prob.frame_w as i32),
                KArg::I32(prob.shift_w as i32),
                KArg::I32(num_offsets as i32),
                KArg::I32(prob.templ_w as i32),
                KArg::I32(r.tw as i32),
                KArg::I32(r.th as i32),
                KArg::I32(r.tiles_x as i32),
                KArg::I32(r.x0 as i32),
                KArg::I32(r.y0 as i32),
                KArg::I32(tile_base as i32),
            ],
            opts,
        )?;
        reports.push(rep);
        tile_base += r.num_tiles();
    }

    // Stage 2: tiled summation.
    let dims1 = LaunchDims::linear(oblocks, imp.threads);
    reports.push(launch(
        &mut st,
        &aux_bin.module,
        "sum_partials",
        dims1,
        &[
            KArg::Ptr(p_partial),
            KArg::Ptr(p_numer),
            KArg::I32(total_tiles as i32),
            KArg::I32(num_offsets as i32),
        ],
        opts,
    )?);

    // Stage 3: window statistics (one block per offset).
    let stats_dims = LaunchDims::linear(num_offsets as u32, imp.threads);
    reports.push(launch(
        &mut st,
        &aux_bin.module,
        "window_stats",
        stats_dims,
        &[
            KArg::Ptr(p_frame),
            KArg::Ptr(p_sums),
            KArg::Ptr(p_sumsq),
            KArg::I32(prob.frame_w as i32),
            KArg::I32(prob.shift_w as i32),
            KArg::I32(num_offsets as i32),
            KArg::I32(prob.templ_w as i32),
            KArg::I32(prob.templ_h as i32),
        ],
        opts,
    )?);

    // Stage 4: normalization.
    reports.push(launch(
        &mut st,
        &aux_bin.module,
        "normalize",
        dims1,
        &[
            KArg::Ptr(p_numer),
            KArg::Ptr(p_sums),
            KArg::Ptr(p_sumsq),
            KArg::Ptr(p_ncc),
            KArg::I32(num_offsets as i32),
            KArg::F32(inv_n),
            KArg::F32(denom_a),
        ],
        opts,
    )?);

    let ncc = st.global.read_f32_slice(p_ncc, num_offsets)?;
    let sim_ms = reports.iter().map(|r| r.time_ms).sum();
    Ok(MatchOutput {
        ncc,
        run: GpuRunResult {
            sim_ms,
            reports,
            compile_ms,
        },
    })
}

/// Match several templates against the same frame (Table 5.1's "template
/// number" column: each patient tracks multiple templates per frame). The
/// per-region specialized binaries are shared across templates via the
/// compiler cache, so only the first template pays compilation.
pub fn run_gpu_multi(
    compiler: &Compiler,
    variant: Variant,
    prob: &MatchProblem,
    imp: &MatchImpl,
    frame: &Image,
    templates: &[Image],
    functional: bool,
) -> Result<Vec<MatchOutput>, Box<dyn std::error::Error>> {
    templates
        .iter()
        .map(|t| {
            let scen = MatchScenario {
                frame: frame.clone(),
                template: t.clone(),
                truth: (0, 0), // unknown here; caller scores via NCC
            };
            run_gpu(compiler, variant, prob, imp, &scen, functional)
        })
        .collect()
}

/// Multi-threaded CPU reference (Figure 5.7): each thread computes the
/// full correlation for a stripe of shift offsets.
pub fn cpu_ncc(prob: &MatchProblem, frame: &Image, template: &Image, threads: usize) -> Vec<f32> {
    let num_offsets = prob.num_offsets();
    let tmean = template.mean();
    let templc: Vec<f32> = template.data.iter().map(|v| v - tmean).collect();
    let denom_a: f32 = templc.iter().map(|v| v * v).sum();
    let n = (prob.templ_w * prob.templ_h) as f32;
    let mut out = vec![0.0f32; num_offsets];
    let chunk = num_offsets.div_ceil(threads.max(1));
    std::thread::scope(|s| {
        for (ci, slice) in out.chunks_mut(chunk).enumerate() {
            let templc = &templc;
            s.spawn(move || {
                for (k, v) in slice.iter_mut().enumerate() {
                    let o = ci * chunk + k;
                    let ox = o % prob.shift_w;
                    let oy = o / prob.shift_w;
                    let mut num = 0.0f32;
                    let mut sb = 0.0f32;
                    let mut sb2 = 0.0f32;
                    for y in 0..prob.templ_h {
                        for x in 0..prob.templ_w {
                            let a = templc[y * prob.templ_w + x];
                            let b = frame.at(ox + x, oy + y);
                            num += a * b;
                            sb += b;
                            sb2 += b * b;
                        }
                    }
                    let var_b = (sb2 - sb * sb / n).max(0.0);
                    *v = num / (var_b * denom_a).sqrt().max(1e-6);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::match_scenario;
    use ks_sim::DeviceConfig;

    fn small_problem() -> MatchProblem {
        MatchProblem {
            frame_w: 96,
            frame_h: 72,
            templ_w: 28, // deliberately not a tile multiple: edge tiles
            templ_h: 20,
            shift_w: 8,
            shift_h: 8,
            frames: 1,
        }
    }

    #[test]
    fn tile_decomposition_covers_template_exactly() {
        for (tw, th) in [(8u32, 8u32), (16, 16), (7, 5), (28, 20), (32, 32)] {
            let regions = tile_regions(28, 20, tw, th);
            let mut covered = vec![false; 28 * 20];
            for r in &regions {
                for ty in 0..r.tiles_y {
                    for tx in 0..r.tiles_x {
                        for y in 0..r.th {
                            for x in 0..r.tw {
                                let gx = r.x0 + tx * r.tw + x;
                                let gy = r.y0 + ty * r.th + y;
                                let idx = (gy * 28 + gx) as usize;
                                assert!(!covered[idx], "overlap at ({gx},{gy}) tiles {tw}x{th}");
                                covered[idx] = true;
                            }
                        }
                    }
                }
            }
            assert!(covered.iter().all(|c| *c), "gap with tiles {tw}x{th}");
        }
    }

    #[test]
    fn gpu_matches_cpu_and_finds_truth_sk() {
        let prob = small_problem();
        let scen = match_scenario(
            prob.frame_w,
            prob.frame_h,
            prob.templ_w,
            prob.templ_h,
            prob.shift_w,
            prob.shift_h,
            42,
        );
        let compiler = Compiler::new(DeviceConfig::tesla_c1060());
        let imp = MatchImpl {
            tile_w: 8,
            tile_h: 8,
            threads: 64,
        };
        let out = run_gpu(&compiler, Variant::Sk, &prob, &imp, &scen, true).unwrap();
        let cpu = cpu_ncc(&prob, &scen.frame, &scen.template, 4);
        assert_eq!(out.ncc.len(), cpu.len());
        for (i, (g, c)) in out.ncc.iter().zip(&cpu).enumerate() {
            assert!((g - c).abs() < 2e-3, "offset {i}: gpu {g} vs cpu {c}");
        }
        assert_eq!(out.best(prob.shift_w), scen.truth);
    }

    #[test]
    fn re_and_sk_agree() {
        let prob = small_problem();
        let scen = match_scenario(
            prob.frame_w,
            prob.frame_h,
            prob.templ_w,
            prob.templ_h,
            prob.shift_w,
            prob.shift_h,
            7,
        );
        let compiler = Compiler::new(DeviceConfig::tesla_c2070());
        let imp = MatchImpl {
            tile_w: 8,
            tile_h: 8,
            threads: 64,
        };
        let re = run_gpu(&compiler, Variant::Re, &prob, &imp, &scen, true).unwrap();
        let sk = run_gpu(&compiler, Variant::Sk, &prob, &imp, &scen, true).unwrap();
        for (a, b) in re.ncc.iter().zip(&sk.ncc) {
            assert!((a - b).abs() < 1e-4);
        }
        assert!(
            sk.run.sim_ms < re.run.sim_ms,
            "SK {:.4} ms must beat RE {:.4} ms",
            sk.run.sim_ms,
            re.run.sim_ms
        );
    }

    #[test]
    fn multi_template_tracking_shares_compiled_binaries() {
        let prob = small_problem();
        // One frame containing template A at its truth spot; template B is
        // unrelated and must score lower at every offset.
        let scen = match_scenario(
            prob.frame_w,
            prob.frame_h,
            prob.templ_w,
            prob.templ_h,
            prob.shift_w,
            prob.shift_h,
            21,
        );
        let other = crate::synth::textured_image(prob.templ_w, prob.templ_h, 999);
        let compiler = Compiler::new(DeviceConfig::tesla_c1060());
        let imp = MatchImpl {
            tile_w: 8,
            tile_h: 8,
            threads: 64,
        };
        let outs = run_gpu_multi(
            &compiler,
            Variant::Sk,
            &prob,
            &imp,
            &scen.frame,
            &[scen.template.clone(), other],
            true,
        )
        .unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].best(prob.shift_w), scen.truth);
        let best_a = outs[0].ncc.iter().cloned().fold(f32::MIN, f32::max);
        let best_b = outs[1].ncc.iter().cloned().fold(f32::MIN, f32::max);
        assert!(
            best_a > 0.9 && best_a > best_b + 0.2,
            "A {best_a} vs B {best_b}"
        );
        // Second template re-used every compiled module.
        let stats = compiler.cache_stats();
        assert!(stats.hits >= stats.misses, "{stats:?}");
    }

    #[test]
    fn cpu_reference_finds_embedded_template() {
        let prob = small_problem();
        let scen = match_scenario(
            prob.frame_w,
            prob.frame_h,
            prob.templ_w,
            prob.templ_h,
            prob.shift_w,
            prob.shift_h,
            99,
        );
        let ncc = cpu_ncc(&prob, &scen.frame, &scen.template, 2);
        let best = ncc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!((best % prob.shift_w, best / prob.shift_w), scen.truth);
    }
}
