//! Criterion micro-benchmarks of the toolchain itself (real wall-clock,
//! as opposed to the simulated-GPU tables): run-time compilation cost
//! (the §4.3 trade-off), cache-hit cost, and simulator throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ks_core::{Compiler, Defines};
use ks_sim::{launch, DeviceConfig, DeviceState, KArg, LaunchDims, LaunchOptions};

const MATHTEST: &str = r#"
#ifndef LOOP_COUNT
#define LOOP_COUNT loopCount
#endif
__global__ void mathTest(int* in, int* out, int argA, int argB, int loopCount) {
    int acc = 0;
    const unsigned int stride = argA * argB;
    const unsigned int offset = blockIdx.x * blockDim.x + threadIdx.x;
    for (int i = 0; i < LOOP_COUNT; i++) {
        acc += *(in + offset + i * stride);
    }
    *(out + offset) = acc;
}
"#;

/// Run-time compilation overhead: full pipeline (preprocess → parse →
/// check → unroll/fold/scalarize → lower → optimize → regalloc).
fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.bench_function("mathTest_re", |b| {
        b.iter_batched(
            || Compiler::new(DeviceConfig::tesla_c1060()),
            |compiler| compiler.compile(MATHTEST, Defines::new()).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("mathTest_sk_unroll64", |b| {
        b.iter_batched(
            || Compiler::new(DeviceConfig::tesla_c1060()),
            |compiler| {
                compiler
                    .compile(MATHTEST, Defines::new().def("LOOP_COUNT", 64))
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("piv_kernel_sk", |b| {
        b.iter_batched(
            || Compiler::new(DeviceConfig::tesla_c2070()),
            |compiler| {
                compiler
                    .compile(
                        ks_apps::piv::KERNELS,
                        Defines::new()
                            .def("RB", 4)
                            .def("THREADS", 128)
                            .def("MASK_W", 32)
                            .def("MASK_H", 32)
                            .def("OFFS_W", 17),
                    )
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    // Cache hit: "speed similar to loading a dynamically linked shared
    // object" (§4.3).
    let warm = Compiler::new(DeviceConfig::tesla_c1060());
    warm.compile(MATHTEST, Defines::new().def("LOOP_COUNT", 8))
        .unwrap();
    g.bench_function("cache_hit", |b| {
        b.iter(|| {
            warm.compile(MATHTEST, Defines::new().def("LOOP_COUNT", 8))
                .unwrap()
        })
    });
    g.finish();
}

/// Simulator throughput: functional + timed execution of a 64-block
/// vector-add launch.
fn bench_simulator(c: &mut Criterion) {
    let compiler = Compiler::new(DeviceConfig::tesla_c1060());
    let src = r#"
        __global__ void vadd(float* a, float* b, float* o, int n) {
            int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
            if (i < n) { o[i] = a[i] + b[i]; }
        }
    "#;
    let bin = compiler.compile(src, Defines::new()).unwrap();
    let n = 64 * 128;
    let mut st = DeviceState::new(DeviceConfig::tesla_c1060(), 16 << 20);
    let pa = st.global.alloc((n * 4) as u64).unwrap();
    let pb = st.global.alloc((n * 4) as u64).unwrap();
    let po = st.global.alloc((n * 4) as u64).unwrap();
    let args = [KArg::Ptr(pa), KArg::Ptr(pb), KArg::Ptr(po), KArg::I32(n)];
    let mut g = c.benchmark_group("simulator");
    g.bench_function("vadd_64_blocks_functional", |b| {
        b.iter(|| {
            launch(
                &mut st,
                &bin.module,
                "vadd",
                LaunchDims::linear(64, 128),
                &args,
                LaunchOptions {
                    functional: true,
                    timing_sample_blocks: 4,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    g.bench_function("vadd_sampled_timing_only", |b| {
        b.iter(|| {
            launch(
                &mut st,
                &bin.module,
                "vadd",
                LaunchDims::linear(64, 128),
                &args,
                LaunchOptions {
                    functional: false,
                    timing_sample_blocks: 4,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

/// GPU-PF pipeline overhead: a refresh with nothing dirty, and one
/// iteration of a two-copy + one-kernel pipeline.
fn bench_gpu_pf(c: &mut Criterion) {
    use gpu_pf::{Arg, MacroBinding, Pipeline};
    use std::sync::Arc;
    let src = r#"
        #ifndef F
        #define F f
        #endif
        __global__ void scale(float* i, float* o, int f, int n) {
            int x = (int)(blockIdx.x * blockDim.x + threadIdx.x);
            if (x < n) { o[x] = i[x] * (float)F; }
        }
    "#;
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
    let mut p = Pipeline::new(compiler, 16 << 20);
    let f = p.int_param("F", 3);
    let ext = p.extent_param("b", [1024, 1, 1], 4);
    let hin = p.host_memory(ext);
    let hout = p.host_memory(ext);
    let din = p.global_memory(ext);
    let dout = p.global_memory(ext);
    let m = p.module(src, vec![("F", MacroBinding::Param(f))]);
    let k = p.kernel(m, "scale");
    let every = p.schedule_param("e", 1, 0);
    let grid = p.triplet_param("g", [8, 1, 1]);
    let blk = p.triplet_param("bk", [128, 1, 1]);
    let np = p.int_param("n", 1024);
    p.copy("h2d", hin, din, every);
    p.exec(
        "scale",
        k,
        grid,
        blk,
        None,
        vec![Arg::Mem(din), Arg::Mem(dout), Arg::Param(f), Arg::Param(np)],
        every,
    );
    p.copy("d2h", dout, hout, every);
    p.refresh().unwrap();
    p.set_host_f32(hin, &vec![1.0f32; 1024]);

    let mut g = c.benchmark_group("gpu_pf");
    g.bench_function("noop_refresh", |b| b.iter(|| p.refresh().unwrap()));
    g.bench_function("pipeline_iteration", |b| b.iter(|| p.run(1).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_compile, bench_simulator, bench_gpu_pf);
criterion_main!(benches);
