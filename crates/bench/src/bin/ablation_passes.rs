//! Ablation study: which compile-time optimization buys what?
//!
//! The dissertation's thesis is that specialization matters because it
//! *enables* a set of static-value optimizations (§2.4). This harness
//! isolates each one on the specialized PIV kernel (V2 data set) and the
//! backprojection kernel by disabling passes individually and re-running
//! the simulator:
//!
//! * no loop unrolling  (HIR `unroll_limit = 0`)
//! * no scalarization   (HIR `scalarize_cap = 0` — register blocking
//!   falls back to local memory even though RB is compile-time)
//! * no strength reduction
//! * no CSE
//! * no IR optimization at all (-O0 backend)

use ks_apps::piv::{PivImpl, PivKernel, PivProblem};
use ks_apps::{synth, Variant};
use ks_bench::*;
use ks_codegen::CodegenOptions;
use ks_core::Compiler;
use ks_opt::OptConfig;
use ks_sim::DeviceConfig;

struct Config {
    name: &'static str,
    codegen: CodegenOptions,
    opt: OptConfig,
}

fn configs() -> Vec<Config> {
    let cg = CodegenOptions::default;
    vec![
        Config {
            name: "full",
            codegen: cg(),
            opt: OptConfig::default(),
        },
        Config {
            name: "no-unroll",
            codegen: CodegenOptions {
                unroll_limit: 0,
                ..cg()
            },
            opt: OptConfig::default(),
        },
        Config {
            name: "no-scalarize",
            codegen: CodegenOptions {
                scalarize_cap: 0,
                ..cg()
            },
            opt: OptConfig::default(),
        },
        Config {
            name: "no-strength",
            codegen: cg(),
            opt: OptConfig {
                strength: false,
                ..OptConfig::default()
            },
        },
        Config {
            name: "no-cse",
            codegen: cg(),
            opt: OptConfig {
                cse: false,
                ..OptConfig::default()
            },
        },
        Config {
            name: "no-addrfold",
            codegen: cg(),
            opt: OptConfig {
                addrfold: false,
                ..OptConfig::default()
            },
        },
        Config {
            name: "-O0 backend",
            codegen: cg(),
            opt: OptConfig::none(),
        },
        Config {
            name: "no-hir-opts",
            codegen: CodegenOptions {
                optimize: false,
                ..cg()
            },
            opt: OptConfig::default(),
        },
    ]
}

fn main() {
    let prob = if quick() {
        PivProblem::standard(256, 32, 50, 8)
    } else {
        PivProblem::standard(512, 32, 50, 8)
    };
    let imp = PivImpl {
        rb: 4,
        threads: 128,
    };
    let scen = synth::piv_scenario(prob.img_w, prob.img_h, (3, 1), 42);

    let mut table = Table::new(
        "ablation_passes",
        "Ablation: specialized PIV kernel (V2 set, RB=4, 128 thr) with passes disabled",
        &[
            "Device",
            "Config",
            "ms",
            "vs full",
            "Regs",
            "Local B",
            "Dyn insts",
        ],
    );
    for dev in [DeviceConfig::tesla_c1060(), DeviceConfig::tesla_c2070()] {
        let mut full_ms = None;
        for c in configs() {
            let compiler = Compiler::with_passes(dev.clone(), c.codegen.clone(), c.opt);
            let out = ks_apps::piv::run_gpu(
                &compiler,
                Variant::Sk,
                PivKernel::Basic,
                &prob,
                &imp,
                &scen,
                false,
            )
            .expect(c.name);
            let ms = out.run.sim_ms;
            let base = *full_ms.get_or_insert(ms);
            let rep = &out.run.reports[0];
            table.row(vec![
                dev.name.clone(),
                c.name.to_string(),
                fmt_ms(ms),
                format!("{:+.1}%", (ms / base - 1.0) * 100.0),
                fmt(out.run.regs_per_thread()),
                fmt(rep.local_bytes_per_thread),
                fmt(rep.stats.dyn_insts),
            ]);
        }
    }
    table.finish();
}
