//! Timing-model ablation: the default hybrid model (per-warp scoreboard +
//! analytic SM assembly) versus the event-driven SM scheduler, across the
//! PIV FPGA benchmark set. The models are independent implementations;
//! their agreement on RE/SK ordering and rough magnitudes is a validation
//! check on both.

use ks_apps::piv::{PivImpl, PivKernel};
use ks_apps::{synth, Variant};
use ks_bench::*;
use ks_core::Compiler;
use ks_sim::DeviceConfig;

fn main() {
    let mut table = Table::new(
        "ablation_timing",
        "Timing-model ablation: hybrid vs event-driven SM scheduler (PIV)",
        &["Device", "Set", "Variant", "Hybrid ms", "Event ms", "ratio"],
    );
    let imp = PivImpl {
        rb: 4,
        threads: 128,
    };
    for dev in [DeviceConfig::tesla_c1060(), DeviceConfig::tesla_c2070()] {
        let compiler = Compiler::new(dev.clone());
        for (name, prob) in piv_fpga_sets()
            .into_iter()
            .take(if quick() { 1 } else { 3 })
        {
            let scen = synth::piv_scenario(prob.img_w, prob.img_h, (2, 1), 9);
            for variant in [Variant::Re, Variant::Sk] {
                let mut times = Vec::new();
                for event in [false, true] {
                    let mut out = ks_apps::piv::run_gpu(
                        &compiler,
                        variant,
                        PivKernel::Basic,
                        &prob,
                        &imp,
                        &scen,
                        false,
                    )
                    .unwrap();
                    if event {
                        // Re-run the launch through the event scheduler by
                        // flipping the option at the sim level.
                        out = ks_apps::piv::run_gpu_with(
                            &compiler,
                            variant,
                            PivKernel::Basic,
                            &prob,
                            &imp,
                            &scen,
                            ks_sim::LaunchOptions {
                                functional: false,
                                timing_sample_blocks: 6,
                                event_timing: true,
                                ..Default::default()
                            },
                        )
                        .unwrap();
                    }
                    times.push(out.run.sim_ms);
                }
                table.row(vec![
                    dev.name.clone(),
                    name.to_string(),
                    variant.to_string(),
                    fmt_ms(times[0]),
                    fmt_ms(times[1]),
                    format!("{:.2}", times[1] / times[0]),
                ]);
            }
        }
    }
    table.finish();
}
