//! Figure 6.1 — Contour plots of PIV performance relative to the peak for
//! each Table 6.4 data set on the Tesla C1060 (register blocking × thread
//! count). Peak marked with `#`. CSV grids under bench_results/.

use ks_sim::DeviceConfig;

fn main() {
    ks_bench::piv_contour("fig_6_1", DeviceConfig::tesla_c1060());
}
