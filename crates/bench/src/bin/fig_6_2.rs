//! Figure 6.2 — Same contours as Figure 6.1, on the Tesla C2070.

use ks_sim::DeviceConfig;

fn main() {
    ks_bench::piv_contour("fig_6_2", DeviceConfig::tesla_c2070());
}
