//! First-launch latency: blocking vs tiered refresh across the three
//! app kernels' specialization grids.
//!
//! The blocking path pays each variant's full specialized compile
//! before the pipeline can launch at all; the tiered path binds the
//! generic (define-free) binary — compiled once per kernel source,
//! then a cache hit for every further variant — and promotes in the
//! background. Each sample times one `Pipeline::refresh()` on a fresh
//! pipeline over a shared compiler: the wall time until the module can
//! serve its first launch. Promotions are drained off-clock afterwards
//! so the cache sidecar records the full promotion count.

use gpu_pf::{MacroBinding, Pipeline, RefreshMode, Tier};
use ks_apps::backproj::{BackprojImpl, BackprojProblem};
use ks_apps::piv::{PivImpl, PivProblem};
use ks_apps::template_match::{MatchImpl, MatchProblem};
use ks_apps::Variant;
use ks_bench::*;
use ks_core::{Compiler, Defines};
use ks_sim::DeviceConfig;
use std::sync::Arc;
use std::time::Instant;

/// The specialization grid for one app kernel: (source, per-variant
/// defines).
fn grids() -> Vec<(&'static str, &'static str, Vec<Defines>)> {
    let mut out = Vec::new();

    let prob = MatchProblem {
        frame_w: 160,
        frame_h: 120,
        templ_w: 48,
        templ_h: 36,
        shift_w: 12,
        shift_h: 12,
        frames: 1,
    };
    let mut defs = Vec::new();
    for (tw, th) in match_tile_options() {
        for t in thread_options() {
            let imp = MatchImpl {
                tile_w: tw,
                tile_h: th,
                threads: t,
            };
            defs.extend(ks_apps::template_match::specializations(
                Variant::Sk,
                &prob,
                &imp,
            ));
        }
    }
    defs.dedup_by_key(|d| d.command_line());
    out.push(("template_match", ks_apps::template_match::KERNELS, defs));

    let prob = PivProblem::standard(256, 16, 50, 4);
    let mut defs = Vec::new();
    for rb in piv_rb_options() {
        for t in piv_thread_options() {
            let imp = PivImpl { rb, threads: t };
            defs.push(ks_apps::piv::specialization(Variant::Sk, &prob, &imp));
        }
    }
    defs.dedup_by_key(|d| d.command_line());
    out.push(("piv", ks_apps::piv::KERNELS, defs));

    let prob = BackprojProblem {
        n: 16,
        num_proj: 8,
        det_u: 24,
        det_v: 24,
    };
    let mut defs = Vec::new();
    let (ppls, zbs): (&[u32], &[u32]) = if quick() {
        (&[4, 8], &[2])
    } else {
        (&[2, 4, 8], &[2, 4])
    };
    for &ppl in ppls {
        for &zb in zbs {
            let imp = BackprojImpl {
                block_x: 8,
                block_y: 8,
                ppl,
                zb,
            };
            defs.push(ks_apps::backproj::specialization(Variant::Sk, &prob, &imp));
        }
    }
    defs.dedup_by_key(|d| d.command_line());
    out.push(("backproj", ks_apps::backproj::KERNELS, defs));

    if quick() {
        for (_, _, defs) in &mut out {
            defs.truncate(4);
        }
    }
    out
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Refresh-latency samples (µs) for one kernel's variant grid under
/// one mode: fresh pipeline per variant, shared compiler. Returns the
/// samples plus the number of modules that ended `Specialized`.
fn measure(src: &str, defs: &[Defines], mode: RefreshMode) -> (Vec<u64>, usize) {
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c2070()));
    let mut samples = Vec::new();
    let mut pipelines = Vec::new();
    for d in defs {
        let mut p = Pipeline::new(compiler.clone(), 1 << 20);
        p.set_refresh_mode(mode);
        let bindings: Vec<(&str, MacroBinding)> = d
            .items()
            .iter()
            .map(|(k, v)| (k.as_str(), MacroBinding::Literal(v.clone())))
            .collect();
        let m = p.module(src, bindings);
        let start = Instant::now();
        p.refresh().expect("refresh");
        samples.push(start.elapsed().as_micros() as u64);
        pipelines.push((p, m));
    }
    // Off-clock: drain promotions so every module reaches its final
    // tier and the table's sidecar accounts each one.
    let mut specialized = 0;
    for (p, m) in &mut pipelines {
        p.wait_promotions();
        if p.module_tier(*m) == Some(Tier::Specialized) {
            specialized += 1;
        }
    }
    (samples, specialized)
}

fn main() {
    let mut table = Table::new(
        "first_launch_latency",
        "First-launch latency: blocking vs tiered refresh (Tesla C2070, µs to servable binary)",
        &[
            "Kernel",
            "Variants",
            "Blocking p50",
            "Blocking p99",
            "Tiered p50",
            "Tiered p99",
            "p50 speedup",
            "Promoted",
        ],
    );
    for (name, src, defs) in grids() {
        let (mut blocking, _) = measure(src, &defs, RefreshMode::Blocking);
        let (mut tiered, promoted) = measure(src, &defs, RefreshMode::Tiered);
        blocking.sort_unstable();
        tiered.sort_unstable();
        let (b50, b99) = (percentile(&blocking, 0.50), percentile(&blocking, 0.99));
        let (t50, t99) = (percentile(&tiered, 0.50), percentile(&tiered, 0.99));
        table.row(vec![
            name.to_string(),
            fmt(defs.len()),
            fmt(b50),
            fmt(b99),
            fmt(t50),
            fmt(t99),
            format!("{:.1}x", b50 as f64 / t50.max(1) as f64),
            format!("{promoted}/{}", defs.len()),
        ]);
        table.tick(); // one telemetry window per kernel
    }
    table.finish();
}
