//! Table 5.2 — Template tiling examples for the template size associated
//! with Patient 4 (156×116 pixels): how different main tile sizes
//! decompose the template into main + edge tile regions, and what each
//! choice implies for the number of specialized kernels compiled and the
//! total tile count the summation stage must reduce over.

use ks_apps::template_match::tile_regions;
use ks_bench::*;

fn main() {
    let (tw, th) = (156u32, 116u32);
    let mut table = Table::new(
        "table_5_2",
        "Table 5.2: tiling examples for the Patient-4 template (156x116)",
        &[
            "Main tile",
            "Regions",
            "Main tiles",
            "Edge tiles",
            "Total tiles",
            "Distinct sizes",
            "Coverage px",
        ],
    );
    for (mw, mh) in [
        (8u32, 8u32),
        (16, 8),
        (16, 16),
        (32, 16),
        (32, 32),
        (64, 58),
        (156, 116),
    ] {
        let regions = tile_regions(tw, th, mw, mh);
        let main_tiles = regions
            .first()
            .filter(|r| r.tw == mw && r.th == mh)
            .map(|r| r.num_tiles())
            .unwrap_or(0);
        let total: u32 = regions.iter().map(|r| r.num_tiles()).sum();
        let covered: u32 = regions.iter().map(|r| r.num_tiles() * r.tw * r.th).sum();
        let mut sizes: Vec<(u32, u32)> = regions.iter().map(|r| (r.tw, r.th)).collect();
        sizes.sort_unstable();
        sizes.dedup();
        assert_eq!(covered, tw * th, "tiling must cover the template exactly");
        table.row(vec![
            format!("{mw}x{mh}"),
            fmt(regions.len()),
            fmt(main_tiles),
            fmt(total - main_tiles),
            fmt(total),
            fmt(sizes.len()),
            fmt(covered),
        ]);
    }
    table.finish();
    println!(
        "\neach distinct tile size is one on-demand specialized compile; the\n\
         run-time-evaluated fallback needs exactly one compile regardless."
    );
}
