//! Table 6.10 — Template matching: multi-threaded CPU vs the best
//! performing CUDA configuration on two GPUs. CPU times are wall-clock
//! (per frame); GPU times are simulated kernel time (per frame).

use ks_apps::template_match::cpu_ncc;
use ks_apps::{synth, Variant};
use ks_bench::*;

fn main() {
    let mut table = Table::new(
        "table_6_10",
        "Table 6.10: Template matching — CPU vs best CUDA configuration",
        &[
            "Data set",
            "corr2/frame",
            "CPU ms",
            "C1060 ms",
            "C2070 ms",
            "SU C1060",
            "SU C2070",
        ],
    );
    let mut sweeps: Vec<MatchSweep> = devices().into_iter().map(MatchSweep::new).collect();
    for (name, prob) in match_patients() {
        let scen = synth::match_scenario(
            prob.frame_w,
            prob.frame_h,
            prob.templ_w,
            prob.templ_h,
            prob.shift_w,
            prob.shift_h,
            1,
        );
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let cpu_ms = time_ms(2, || {
            let _ = cpu_ncc(&prob, &scen.frame, &scen.template, threads);
        });
        let mut gpu_ms = Vec::new();
        for sweep in &mut sweeps {
            let (_, best) = sweep.best(Variant::Sk, &prob);
            gpu_ms.push(best.sim_ms);
        }
        table.row(vec![
            name.to_string(),
            fmt(prob.num_offsets()),
            fmt_ms(cpu_ms),
            fmt_ms(gpu_ms[0]),
            fmt_ms(gpu_ms[1]),
            format!("{:.1}x", cpu_ms / gpu_ms[0]),
            format!("{:.1}x", cpu_ms / gpu_ms[1]),
        ]);
    }
    table.finish();
}
