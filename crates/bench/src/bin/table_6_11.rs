//! Table 6.11 — PIV: FPGA reference (analytic model) vs the best
//! performing CUDA configuration on two GPUs.

use ks_apps::piv::{fpga_model_ms, PivKernel};
use ks_apps::Variant;
use ks_bench::*;

fn main() {
    let mut table = Table::new(
        "table_6_11",
        "Table 6.11: PIV — FPGA vs best CUDA configuration",
        &[
            "Set", "Masks", "Offsets", "FPGA ms", "C1060 ms", "C2070 ms", "SU C1060", "SU C2070",
        ],
    );
    let mut sweeps: Vec<PivSweep> = devices().into_iter().map(PivSweep::new).collect();
    for (name, prob) in piv_fpga_sets() {
        let fpga = fpga_model_ms(&prob);
        let mut gpu = Vec::new();
        for sweep in &mut sweeps {
            let (_, best) = sweep.best(Variant::Sk, PivKernel::Basic, &prob);
            gpu.push(best.sim_ms);
        }
        table.row(vec![
            name.to_string(),
            fmt(prob.num_masks()),
            fmt(prob.num_offsets()),
            fmt_ms(fpga),
            fmt_ms(gpu[0]),
            fmt_ms(gpu[1]),
            format!("{:.1}x", fpga / gpu[0]),
            format!("{:.1}x", fpga / gpu[1]),
        ]);
    }
    table.finish();
}
