//! Table 6.12 — Cone-beam backprojection: OpenMP-style CPU (4 threads)
//! vs the best performing configuration on both GPUs.

use ks_apps::backproj::*;
use ks_apps::{synth, Variant};
use ks_bench::*;
use ks_core::Compiler;

fn main() {
    let quick = quick();
    let (n, np, det) = if quick { (32, 16, 48) } else { (64, 32, 96) };
    let prob = BackprojProblem {
        n,
        num_proj: np,
        det_u: det,
        det_v: det,
    };
    eprintln!("[gen] forward projecting {n}^3 phantom, {np} views...");
    let scen = synth::ct_scenario(n, np, det, det);

    let mut table = Table::new(
        "table_6_12",
        "Table 6.12: Backprojection — 4-thread CPU vs best GPU configuration",
        &[
            "Volume",
            "Projections",
            "CPU ms",
            "C1060 ms",
            "C2070 ms",
            "SU C1060",
            "SU C2070",
        ],
    );
    let cpu_ms = time_ms(2, || {
        let _ = cpu_backproject(&prob, &scen, 4);
    });
    let mut gpu = Vec::new();
    for dev in devices() {
        let compiler = Compiler::new(dev);
        let mut best = f64::INFINITY;
        for ppl in [4u32, 8, 16] {
            for zb in [1u32, 2, 4] {
                if !(np as u32).is_multiple_of(ppl) {
                    continue;
                }
                let imp = BackprojImpl {
                    block_x: 16,
                    block_y: 8,
                    ppl,
                    zb,
                };
                let out = run_gpu(&compiler, Variant::Sk, &prob, &imp, &scen, false).unwrap();
                best = best.min(out.run.sim_ms);
            }
        }
        gpu.push(best);
    }
    table.row(vec![
        format!("{n}^3"),
        fmt(np),
        fmt_ms(cpu_ms),
        fmt_ms(gpu[0]),
        fmt_ms(gpu[1]),
        format!("{:.1}x", cpu_ms / gpu[0]),
        format!("{:.1}x", cpu_ms / gpu[1]),
    ]);
    table.finish();
}
