//! Table 6.13 — Template matching partial sums: performance and optimal
//! configuration characteristics for the tiled summation kernel,
//! run-time evaluated (RE) vs specialized (SK).
//!
//! With `--store DIR` the sweep compilers attach the persistent artifact
//! store; `--assert-warm` then turns the run into the cold-start check:
//! every binary must come from disk (zero compiles), asserted against
//! both `CacheStats` and the `ks_core.store.*` registry counters.

use ks_apps::Variant;
use ks_bench::*;

fn main() {
    let mut table = Table::new(
        "table_6_13",
        "Table 6.13: Template matching — RE vs SK, optimal configurations",
        &[
            "Device", "Data set", "RE ms", "RE tile", "RE thr", "RE regs", "SK ms", "SK tile",
            "SK thr", "SK regs", "Speedup",
        ],
    );
    let mut total_misses = 0u64;
    let mut total_disk_hits = 0u64;
    for dev in devices() {
        let dev_name = dev.name.clone();
        let mut sweep = MatchSweep::new(dev);
        for (name, prob) in match_patients() {
            let (re_imp, re) = sweep.best(Variant::Re, &prob);
            let (sk_imp, sk) = sweep.best(Variant::Sk, &prob);
            table.row(vec![
                dev_name.clone(),
                name.to_string(),
                fmt_ms(re.sim_ms),
                format!("{}x{}", re_imp.tile_w, re_imp.tile_h),
                fmt(re_imp.threads),
                fmt(re.regs),
                fmt_ms(sk.sim_ms),
                format!("{}x{}", sk_imp.tile_w, sk_imp.tile_h),
                fmt(sk_imp.threads),
                fmt(sk.regs),
                format!("{:.2}x", re.sim_ms / sk.sim_ms),
            ]);
        }
        let stats = sweep.compiler.cache_stats();
        println!("[cache] {dev_name}: {stats}");
        table.tick(); // one telemetry window per device sweep
        total_misses += stats.misses;
        total_disk_hits += stats.disk_hits;
    }
    table.finish();

    if assert_warm() {
        // Cold-start check: a warm store must serve the entire suite.
        // Cross-check the per-compiler CacheStats sums against the
        // process-wide registry so a counting bug cannot hide a compile.
        let reg = ks_trace::registry();
        let reg_misses = reg.counter_value(ks_trace::names::CACHE_MISSES);
        let reg_disk_hits = reg.counter_value(ks_trace::names::STORE_DISK_HITS);
        let reg_errors = reg.counter_value(ks_trace::names::STORE_ERRORS);
        if reg_misses != total_misses || reg_disk_hits != total_disk_hits {
            eprintln!(
                "table_6_13: registry disagrees with CacheStats \
                 (misses {reg_misses} vs {total_misses}, disk hits {reg_disk_hits} vs \
                 {total_disk_hits})"
            );
            std::process::exit(1);
        }
        if total_misses != 0 || reg_errors != 0 {
            eprintln!(
                "table_6_13: warm start FAILED: {total_misses} compiles, {reg_errors} store \
                 errors (expected 0 and 0)"
            );
            std::process::exit(1);
        }
        println!("[store] warm start verified: 0 compiles, {total_disk_hits} disk hits");
    }
}
