//! Table 6.13 — Template matching partial sums: performance and optimal
//! configuration characteristics for the tiled summation kernel,
//! run-time evaluated (RE) vs specialized (SK).

use ks_apps::Variant;
use ks_bench::*;

fn main() {
    let mut table = Table::new(
        "table_6_13",
        "Table 6.13: Template matching — RE vs SK, optimal configurations",
        &[
            "Device", "Data set", "RE ms", "RE tile", "RE thr", "RE regs", "SK ms", "SK tile",
            "SK thr", "SK regs", "Speedup",
        ],
    );
    for dev in devices() {
        let dev_name = dev.name.clone();
        let mut sweep = MatchSweep::new(dev);
        for (name, prob) in match_patients() {
            let (re_imp, re) = sweep.best(Variant::Re, &prob);
            let (sk_imp, sk) = sweep.best(Variant::Sk, &prob);
            table.row(vec![
                dev_name.clone(),
                name.to_string(),
                fmt_ms(re.sim_ms),
                format!("{}x{}", re_imp.tile_w, re_imp.tile_h),
                fmt(re_imp.threads),
                fmt(re.regs),
                fmt_ms(sk.sim_ms),
                format!("{}x{}", sk_imp.tile_w, sk_imp.tile_h),
                fmt(sk_imp.threads),
                fmt(sk.regs),
                format!("{:.2}x", re.sim_ms / sk.sim_ms),
            ]);
        }
    }
    table.finish();
}
