//! Table 6.14 — PIV GPU performance comparisons for several kernel
//! variants across the FPGA benchmark set: run-time evaluated, specialized,
//! and specialized + warp-specialized reduction.

use ks_apps::piv::PivKernel;
use ks_apps::Variant;
use ks_bench::*;

fn main() {
    let mut table = Table::new(
        "table_6_14",
        "Table 6.14: PIV kernel variants across the FPGA benchmark set",
        &[
            "Device",
            "Set",
            "RE ms",
            "SK ms",
            "SK+warp ms",
            "SK+tex ms",
            "SK/RE",
            "warp/SK",
            "tex/SK",
        ],
    );
    for dev in devices() {
        let dev_name = dev.name.clone();
        let mut sweep = PivSweep::new(dev);
        for (name, prob) in piv_fpga_sets() {
            let (_, re) = sweep.best(Variant::Re, PivKernel::Basic, &prob);
            let (_, sk) = sweep.best(Variant::Sk, PivKernel::Basic, &prob);
            let (_, ws) = sweep.best(Variant::Sk, PivKernel::WarpSpec, &prob);
            let (_, tx) = sweep.best(Variant::Sk, PivKernel::Textured, &prob);
            table.row(vec![
                dev_name.clone(),
                name.to_string(),
                fmt_ms(re.sim_ms),
                fmt_ms(sk.sim_ms),
                fmt_ms(ws.sim_ms),
                fmt_ms(tx.sim_ms),
                format!("{:.2}x", re.sim_ms / sk.sim_ms),
                format!("{:.2}x", sk.sim_ms / ws.sim_ms),
                format!("{:.2}x", sk.sim_ms / tx.sim_ms),
            ]);
        }
    }
    table.finish();
}
