//! Table 6.15 — PIV performance for the FPGA benchmark set, including the
//! optimal register blocking and thread counts per device.

use ks_apps::piv::PivKernel;
use ks_apps::Variant;
use ks_bench::*;

fn main() {
    let sets: Vec<(String, ks_apps::piv::PivProblem)> = piv_fpga_sets()
        .into_iter()
        .map(|(n, p)| (n.to_string(), p))
        .collect();
    ks_bench::piv_sweep_table(
        "table_6_15",
        "Table 6.15: PIV FPGA benchmark set — optimal register blocking & threads",
        "Set",
        &sets,
        PivKernel::Basic,
        Variant::Sk,
    );
}
