//! Table 6.16 — PIV performance versus interrogation-window (mask) size
//! (the Table 6.4 problem set), with optimal register blocking and thread
//! counts.

use ks_apps::piv::PivKernel;
use ks_apps::Variant;
use ks_bench::*;

fn main() {
    ks_bench::piv_sweep_table(
        "table_6_16",
        "Table 6.16: PIV vs mask size — optimal register blocking & threads",
        "Mask",
        &piv_mask_sets(),
        PivKernel::Basic,
        Variant::Sk,
    );
}
