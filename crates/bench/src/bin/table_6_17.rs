//! Table 6.17 — PIV performance versus the number of search offsets
//! (the Table 6.5 problem set).

use ks_apps::piv::PivKernel;
use ks_apps::Variant;
use ks_bench::*;

fn main() {
    ks_bench::piv_sweep_table(
        "table_6_17",
        "Table 6.17: PIV vs search offsets — optimal register blocking & threads",
        "Search",
        &piv_search_sets(),
        PivKernel::Basic,
        Variant::Sk,
    );
}
