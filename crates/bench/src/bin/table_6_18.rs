//! Table 6.18 — PIV performance versus interrogation-window overlap
//! (the Table 6.6 problem set).

use ks_apps::piv::PivKernel;
use ks_apps::Variant;
use ks_bench::*;

fn main() {
    ks_bench::piv_sweep_table(
        "table_6_18",
        "Table 6.18: PIV vs window overlap — optimal register blocking & threads",
        "Overlap",
        &piv_overlap_sets(),
        PivKernel::Basic,
        Variant::Sk,
    );
}
