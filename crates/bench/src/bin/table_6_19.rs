//! Table 6.19 — Performance comparisons for the backprojection kernels:
//! RE vs SK across (projections-per-launch × z-blocking) configurations.

use ks_apps::backproj::*;
use ks_apps::{synth, Variant};
use ks_bench::*;
use ks_core::Compiler;

fn main() {
    let quick = quick();
    let (n, np, det) = if quick { (32, 16, 48) } else { (64, 32, 96) };
    let prob = BackprojProblem {
        n,
        num_proj: np,
        det_u: det,
        det_v: det,
    };
    eprintln!("[gen] forward projecting {n}^3 phantom, {np} views...");
    let scen = synth::ct_scenario(n, np, det, det);
    let mut table = Table::new(
        "table_6_19",
        "Table 6.19: Backprojection kernel comparisons (RE vs SK)",
        &[
            "Device", "Block", "PPL", "ZB", "RE ms", "RE regs", "SK ms", "SK regs", "Speedup",
        ],
    );
    for dev in devices() {
        let dev_name = dev.name.clone();
        let compiler = Compiler::new(dev);
        let mut best: Option<(f64, f64)> = None; // (best RE, best SK)
        for (bx, by) in [(8u32, 8u32), (16, 8), (16, 16)] {
            for ppl in [8u32, 16] {
                if !(np as u32).is_multiple_of(ppl) {
                    continue;
                }
                for zb in [1u32, 2, 4] {
                    let imp = BackprojImpl {
                        block_x: bx,
                        block_y: by,
                        ppl,
                        zb,
                    };
                    let re = run_gpu(&compiler, Variant::Re, &prob, &imp, &scen, false).unwrap();
                    let sk = run_gpu(&compiler, Variant::Sk, &prob, &imp, &scen, false).unwrap();
                    best = Some(match best {
                        None => (re.run.sim_ms, sk.run.sim_ms),
                        Some((br, bs)) => (br.min(re.run.sim_ms), bs.min(sk.run.sim_ms)),
                    });
                    table.row(vec![
                        dev_name.clone(),
                        format!("{bx}x{by}"),
                        fmt(ppl),
                        fmt(zb),
                        fmt_ms(re.run.sim_ms),
                        fmt(re.run.regs_per_thread()),
                        fmt_ms(sk.run.sim_ms),
                        fmt(sk.run.regs_per_thread()),
                        format!("{:.2}x", re.run.sim_ms / sk.run.sim_ms),
                    ]);
                }
            }
        }
        if let Some((br, bs)) = best {
            table.row(vec![
                dev_name.clone(),
                "best".into(),
                "-".into(),
                "-".into(),
                fmt_ms(br),
                "-".into(),
                fmt_ms(bs),
                "-".into(),
                format!("{:.2}x", br / bs),
            ]);
        }
    }
    table.finish();
}
