//! Table 6.20 — Occupancy and execution data for the Tesla C1060 on the
//! PIV V2 data set: per kernel variant and configuration, registers per
//! thread, shared memory, blocks per SM, active warps, occupancy, time.

use ks_apps::piv::{PivImpl, PivKernel};
use ks_apps::Variant;
use ks_bench::*;
use ks_sim::DeviceConfig;

fn main() {
    let (_, prob) = piv_fpga_sets().remove(1.min(piv_fpga_sets().len() - 1));
    let mut sweep = PivSweep::new(DeviceConfig::tesla_c1060());
    let mut table = Table::new(
        "table_6_20",
        "Table 6.20: Occupancy & execution data, Tesla C1060, PIV V2 set",
        &[
            "Variant",
            "RB",
            "Threads",
            "Regs",
            "Shared B",
            "Local B",
            "Blk/SM",
            "Warps",
            "Occupancy",
            "ms",
        ],
    );
    for (variant, kernel, tag) in [
        (Variant::Re, PivKernel::Basic, "RE"),
        (Variant::Sk, PivKernel::Basic, "SK"),
        (Variant::Sk, PivKernel::WarpSpec, "SK+warp"),
    ] {
        for rb in [2u32, 4, 8] {
            for threads in [64u32, 128, 256] {
                let imp = PivImpl { rb, threads };
                let s = sweep.eval(variant, kernel, &prob, &imp);
                table.row(vec![
                    tag.to_string(),
                    fmt(rb),
                    fmt(threads),
                    fmt(s.regs),
                    fmt(s.shared_bytes),
                    fmt(s.local_bytes),
                    fmt(s.blocks_per_sm),
                    fmt(s.active_warps),
                    format!("{:.2}", s.occupancy),
                    fmt_ms(s.sim_ms),
                ]);
            }
        }
    }
    table.finish();
}
