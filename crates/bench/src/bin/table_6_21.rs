//! Table 6.21 — Percentage of peak performance for the template matching
//! application with various *fixed* main tile sizes and thread counts:
//! how much performance a one-size-fits-all configuration leaves behind,
//! per data set (the motivation for adjustable implementation parameters).

use ks_apps::template_match::MatchImpl;
use ks_apps::Variant;
use ks_bench::*;

fn main() {
    for dev in devices() {
        let dev_name = dev.name.clone();
        let mut sweep = MatchSweep::new(dev);
        let patients = match_patients();
        // Peak per data set.
        let peaks: Vec<f64> = patients
            .iter()
            .map(|(_, p)| sweep.best(Variant::Sk, p).1.sim_ms)
            .collect();
        let mut headers: Vec<String> = vec!["Tile".into(), "Threads".into()];
        headers.extend(patients.iter().map(|(n, _)| n.to_string()));
        headers.push("Min %".into());
        let tag = dev_name.replace(' ', "_").to_lowercase();
        let mut table = Table::new(
            &format!("table_6_21_{tag}"),
            &format!("Table 6.21: % of peak with fixed configs — {dev_name}"),
            &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for (tw, th) in match_tile_options() {
            for t in thread_options() {
                let imp = MatchImpl {
                    tile_w: tw,
                    tile_h: th,
                    threads: t,
                };
                let mut row = vec![format!("{tw}x{th}"), fmt(t)];
                let mut min_pct = f64::INFINITY;
                for ((_, p), peak) in patients.iter().zip(&peaks) {
                    let s = sweep.eval(Variant::Sk, p, &imp);
                    let pct = peak / s.sim_ms * 100.0;
                    min_pct = min_pct.min(pct);
                    row.push(format!("{pct:.0}%"));
                }
                row.push(format!("{min_pct:.0}%"));
                table.row(row);
            }
        }
        table.finish();
    }
}
