//! Table 6.22 — Percentage of peak performance for the PIV application
//! with various *fixed* data register counts and thread counts, across
//! the mask-size data sets (Table 6.4).

use ks_apps::piv::{PivImpl, PivKernel};
use ks_apps::Variant;
use ks_bench::*;

fn main() {
    for dev in devices() {
        let dev_name = dev.name.clone();
        let mut sweep = PivSweep::new(dev);
        let sets = piv_mask_sets();
        let peaks: Vec<f64> = sets
            .iter()
            .map(|(_, p)| sweep.best(Variant::Sk, PivKernel::Basic, p).1.sim_ms)
            .collect();
        let mut headers: Vec<String> = vec!["RB".into(), "Threads".into()];
        headers.extend(sets.iter().map(|(n, _)| n.clone()));
        headers.push("Min %".into());
        let tag = dev_name.replace(' ', "_").to_lowercase();
        let mut table = Table::new(
            &format!("table_6_22_{tag}"),
            &format!("Table 6.22: PIV % of peak with fixed configs — {dev_name}"),
            &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for rb in piv_rb_options() {
            for t in piv_thread_options() {
                let imp = PivImpl { rb, threads: t };
                let mut row = vec![fmt(rb), fmt(t)];
                let mut min_pct = f64::INFINITY;
                for ((_, p), peak) in sets.iter().zip(&peaks) {
                    let s = sweep.eval(Variant::Sk, PivKernel::Basic, p, &imp);
                    let pct = peak / s.sim_ms * 100.0;
                    min_pct = min_pct.min(pct);
                    row.push(format!("{pct:.0}%"));
                }
                row.push(format!("{min_pct:.0}%"));
                table.row(row);
            }
        }
        table.finish();
    }
}
