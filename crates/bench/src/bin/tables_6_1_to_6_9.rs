//! Tables 6.1–6.9 — the problem and implementation parameterizations of
//! §6.1.2, printed from the same definitions the benchmark binaries use
//! (so the parameter tables and the measurements can never drift apart).

use ks_bench::*;

fn main() {
    // Table 6.1: template matching implementation parameters.
    let mut t = Table::new(
        "table_6_1",
        "Table 6.1: template matching GPU implementation parameters benchmarked",
        &["Parameter", "Values"],
    );
    let tiles: Vec<String> = match_tile_options()
        .iter()
        .map(|(w, h)| format!("{w}x{h}"))
        .collect();
    t.row(vec!["main tile (WxH)".into(), tiles.join(", ")]);
    let thr: Vec<String> = thread_options().iter().map(|v| v.to_string()).collect();
    t.row(vec!["threads per block".into(), thr.join(", ")]);
    t.finish();

    // Tables 6.2/6.3: the FPGA comparison set, in both the paper's
    // vocabularies (window/image dims; mask/offset counts).
    let mut t = Table::new(
        "table_6_2",
        "Table 6.2: PIV problem set — interrogation window and image dimensions",
        &["Set", "Image", "Window", "Step", "Search"],
    );
    for (name, p) in piv_fpga_sets() {
        t.row(vec![
            name.to_string(),
            format!("{}x{}", p.img_w, p.img_h),
            format!("{}x{}", p.mask_w, p.mask_h),
            format!("{}x{}", p.step_x, p.step_y),
            format!("{}x{}", p.offs_w, p.offs_h),
        ]);
    }
    t.finish();

    let mut t = Table::new(
        "table_6_3",
        "Table 6.3: PIV problem set — mask and offset counts",
        &["Set", "Masks", "Offsets", "Mask-pixel x offset ops"],
    );
    for (name, p) in piv_fpga_sets() {
        let ops = p.num_masks() * p.num_offsets() * p.mask_w * p.mask_h;
        t.row(vec![
            name.to_string(),
            fmt(p.num_masks()),
            fmt(p.num_offsets()),
            fmt(ops),
        ]);
    }
    t.finish();

    // Tables 6.4–6.6: the mask-size / search / overlap sweeps.
    for (name, title, sets) in [
        (
            "table_6_4",
            "Table 6.4: PIV mask-size sweep",
            piv_mask_sets(),
        ),
        (
            "table_6_5",
            "Table 6.5: PIV search-offset sweep",
            piv_search_sets(),
        ),
        (
            "table_6_6",
            "Table 6.6: PIV overlap sweep",
            piv_overlap_sets(),
        ),
    ] {
        let mut t = Table::new(
            name,
            title,
            &["Point", "Image", "Mask", "Step", "Offsets", "Masks"],
        );
        for (pname, p) in sets {
            t.row(vec![
                pname,
                format!("{}x{}", p.img_w, p.img_h),
                format!("{}x{}", p.mask_w, p.mask_h),
                format!("{}x{}", p.step_x, p.step_y),
                fmt(p.num_offsets()),
                fmt(p.num_masks()),
            ]);
        }
        t.finish();
    }

    // Table 6.7: PIV implementation parameters.
    let mut t = Table::new(
        "table_6_7",
        "Table 6.7: PIV GPU implementation parameters benchmarked",
        &["Parameter", "Values"],
    );
    let rbs: Vec<String> = piv_rb_options().iter().map(|v| v.to_string()).collect();
    t.row(vec!["data registers (RB)".into(), rbs.join(", ")]);
    let thr: Vec<String> = piv_thread_options().iter().map(|v| v.to_string()).collect();
    t.row(vec!["threads per block".into(), thr.join(", ")]);
    t.row(vec![
        "kernel variants".into(),
        "basic, warp-specialized".into(),
    ]);
    t.finish();

    // Tables 6.8/6.9: backprojection problem & implementation parameters.
    let quick = quick();
    let (n, np, det) = if quick { (32, 16, 48) } else { (64, 32, 96) };
    let mut t = Table::new(
        "table_6_8",
        "Table 6.8: cone beam backprojection problem parameters benchmarked",
        &["Parameter", "Values"],
    );
    t.row(vec!["volume".into(), format!("{n}^3 voxels")]);
    t.row(vec![
        "projections".into(),
        format!("{np} views of {det}x{det}"),
    ]);
    t.finish();

    let mut t = Table::new(
        "table_6_9",
        "Table 6.9: cone beam backprojection implementation parameters benchmarked",
        &["Parameter", "Values"],
    );
    t.row(vec![
        "projections per launch (PPL)".into(),
        "4, 8, 16".into(),
    ]);
    t.row(vec!["z register blocking (ZB)".into(), "1, 2, 4".into()]);
    t.row(vec!["thread block".into(), "16x8".into()]);
    t.finish();
}
