//! # ks-bench — the evaluation harness
//!
//! One binary per table and figure of the dissertation's Chapter 6 (see
//! DESIGN.md's per-experiment index). Shared here: the problem sets
//! (Tables 6.1–6.9), configuration sweep drivers with memoization, table
//! formatting, and CSV output under `bench_results/`.
//!
//! Every binary accepts `--quick` (or env `KS_BENCH_QUICK=1`) to shrink
//! problem sizes for smoke testing.

use ks_apps::piv::{PivImpl, PivKernel, PivProblem};
use ks_apps::template_match::{MatchImpl, MatchProblem};
use ks_apps::{synth, Variant};
use ks_core::{Compiler, Defines};
use ks_sim::DeviceConfig;
use std::collections::BTreeMap;
use std::fmt::Display;
use std::io::Write;

/// True if the run should use reduced problem sizes.
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var("KS_BENCH_QUICK").is_ok()
}

/// The two simulated devices of the dissertation's testbed.
pub fn devices() -> Vec<DeviceConfig> {
    DeviceConfig::presets()
}

/// Persistent-store directory for sweep compilers: `--store DIR` or env
/// `KS_BENCH_STORE`. When set, every sweep attaches the on-disk artifact
/// store so compiled binaries survive process restarts (warm starts).
pub fn store_dir() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--store")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("KS_BENCH_STORE").ok())
}

/// True when the run must be a pure warm start (`--assert-warm` or env
/// `KS_BENCH_ASSERT_WARM`): cold-start CI uses it to prove a warm store
/// serves the whole suite with zero compiles.
pub fn assert_warm() -> bool {
    std::env::args().any(|a| a == "--assert-warm") || std::env::var("KS_BENCH_ASSERT_WARM").is_ok()
}

/// The compiler every sweep uses: plain, or store-backed when
/// [`store_dir`] is configured.
fn sweep_compiler(dev: DeviceConfig) -> Compiler {
    let c = Compiler::new(dev);
    match store_dir() {
        Some(dir) => c
            .with_store(&dir)
            .unwrap_or_else(|e| panic!("ks-bench: cannot open store {dir}: {e}")),
        None => c,
    }
}

// ---------------------------------------------------------------- tables

/// An aligned ASCII table that also lands in `bench_results/<name>.csv`,
/// plus a `<name>_cache.csv` sidecar recording the specialization-cache
/// activity (hits, misses, dedup waits, evictions) that produced it.
pub struct Table {
    name: String,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    /// Registry state when the table was opened; `finish()` diffs against
    /// it so the sidecar covers exactly this table's work.
    baseline: ks_trace::MetricsSnapshot,
    /// Rolling tick history over the same interval: the first tick is
    /// the baseline, [`Table::tick`] adds phase boundaries, and
    /// `finish()` closes the last window — giving the sidecar windowed
    /// histogram columns (dwell/promotion p50s, last-window iteration
    /// p95) alongside the cumulative counters.
    history: std::sync::Mutex<ks_trace::History>,
}

impl Table {
    pub fn new(name: &str, title: &str, headers: &[&str]) -> Table {
        let mut history = ks_trace::History::new(256);
        history.tick_at(ks_trace::registry(), 0);
        Table {
            name: name.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            baseline: ks_trace::registry().snapshot(),
            history: std::sync::Mutex::new(history),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Close the current telemetry window (e.g. at a per-device or
    /// per-phase boundary). The sidecar's windowed columns then
    /// distinguish the most recent window from the whole-table span.
    pub fn tick(&self) {
        let mut h = self.history.lock().unwrap();
        let at = h.len() as u64 * 1000;
        h.tick_at(ks_trace::registry(), at);
    }

    /// Print the table and write the CSV. Returns the CSV path.
    pub fn finish(&self) -> std::path::PathBuf {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n=== {} ===", self.title);
        let line = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("| {} |", padded.join(" | "));
        };
        line(&self.headers);
        println!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            line(r);
        }
        // CSV
        let dir_owned =
            std::env::var("KS_BENCH_DIR").unwrap_or_else(|_| "bench_results".to_string());
        let dir = std::path::Path::new(&dir_owned);
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = std::fs::File::create(&path).expect("write csv");
        let esc = |s: &str| {
            if s.contains(',') {
                format!("\"{s}\"")
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            f,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                f,
                "{}",
                r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        println!("[csv] {}", path.display());
        // Cache-pressure sidecar: specialization-cache activity since the
        // table was opened, from the process-wide metrics registry.
        let delta = ks_trace::registry()
            .snapshot()
            .counters_since(&self.baseline);
        let hits = delta.get(ks_trace::names::CACHE_HITS).copied().unwrap_or(0);
        let misses = delta
            .get(ks_trace::names::CACHE_MISSES)
            .copied()
            .unwrap_or(0);
        let dedup_waits = delta
            .get(ks_trace::names::CACHE_DEDUP_WAITS)
            .copied()
            .unwrap_or(0);
        let evictions = delta
            .get(ks_trace::names::CACHE_EVICTIONS)
            .copied()
            .unwrap_or(0);
        let hit_rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        let get = |name: &str| delta.get(name).copied().unwrap_or(0);
        let retries = get(ks_trace::names::COMPILE_RETRIES);
        let failures = get(ks_trace::names::CACHE_FAILURES);
        let quarantined = get(ks_trace::names::CACHE_QUARANTINED);
        let breaker_opens = get(ks_trace::names::BREAKER_OPEN);
        let fallback_generic = get(ks_trace::names::PF_FALLBACK_GENERIC);
        let fallback_last_good = get(ks_trace::names::PF_FALLBACK_LAST_GOOD);
        let promotions = get(ks_trace::names::PF_PROMOTIONS);
        let disk_hits = get(ks_trace::names::STORE_DISK_HITS);
        let disk_misses = get(ks_trace::names::STORE_DISK_MISSES);
        let store_errors = get(ks_trace::names::STORE_ERRORS);
        let sdc_detected = get(ks_trace::names::PF_INTEGRITY_VIOLATIONS);
        let witness_launches = get(ks_trace::names::PF_INTEGRITY_WITNESS);
        let scrub_quarantined = get(ks_trace::names::STORE_SCRUB_QUARANTINED);
        // Which execution tier produced this table: any background
        // ticket traffic during the run means the tiered path ran.
        let tier = if get(ks_trace::names::ASYNC_SPAWNED) > 0 {
            "tiered"
        } else {
            "blocking"
        };
        // Windowed histogram columns: close the final tick, then read
        // the whole-table span (every tick since the baseline) and the
        // most recent window. Dwell and promotion-latency p50s come
        // from the tiered-execution instrumentation; zero when the
        // table ran purely blocking refreshes.
        let (time_in_generic_p50, promotion_latency_p50, windows, window_iter_p95_us) = {
            let mut h = self.history.lock().unwrap();
            let at = h.len() as u64 * 1000;
            h.tick_at(ks_trace::registry(), at);
            let windows = h.len().saturating_sub(1).max(1);
            let span = h.window(windows);
            let last = h.window(1);
            (
                span.quantile(&ks_trace::names::pf_tier_dwell_us("generic"), 0.5)
                    .unwrap_or(0),
                span.quantile(ks_trace::names::PF_PROMOTION_LATENCY_US, 0.5)
                    .unwrap_or(0),
                windows,
                last.quantile(ks_trace::names::PF_ITERATION_US, 0.95)
                    .unwrap_or(0),
            )
        };
        let side_path = dir.join(format!("{}_cache.csv", self.name));
        if let Ok(mut f) = std::fs::File::create(&side_path) {
            let _ = writeln!(
                f,
                "hits,misses,dedup_waits,evictions,hit_rate,retries,failures,quarantined,breaker_opens,fallback_generic,fallback_last_good,promotions,disk_hits,disk_misses,store_errors,tier,time_in_generic_p50,promotion_latency_p50,windows,window_iter_p95_us,sdc_detected,witness_launches,scrub_quarantined"
            );
            let _ = writeln!(
                f,
                "{hits},{misses},{dedup_waits},{evictions},{hit_rate:.4},{retries},{failures},{quarantined},{breaker_opens},{fallback_generic},{fallback_last_good},{promotions},{disk_hits},{disk_misses},{store_errors},{tier},{time_in_generic_p50},{promotion_latency_p50},{windows},{window_iter_p95_us},{sdc_detected},{witness_launches},{scrub_quarantined}"
            );
            println!("[csv] {}", side_path.display());
        }
        path
    }
}

pub fn fmt_ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.1}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

pub fn fmt<T: Display>(v: T) -> String {
    v.to_string()
}

/// Wall-clock a closure (best of `reps`), in milliseconds.
pub fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

// ------------------------------------------------- problem sets (Ch. 6)

/// Template-matching patients (Table 5.1), optionally shrunk.
pub fn match_patients() -> Vec<(&'static str, MatchProblem)> {
    let mut p = ks_apps::template_match::patients();
    if quick() {
        p.truncate(2);
        for (_, prob) in &mut p {
            prob.frames = 4;
        }
    }
    p
}

/// The PIV "FPGA benchmark set" (Tables 6.2/6.3): window/image dims and
/// the resulting mask/offset counts.
pub fn piv_fpga_sets() -> Vec<(&'static str, PivProblem)> {
    let mut v = vec![
        ("V1", PivProblem::standard(256, 16, 50, 4)),
        ("V2", PivProblem::standard(512, 32, 50, 8)),
        ("V3", PivProblem::standard(512, 64, 50, 8)),
        ("V4", PivProblem::standard(1024, 32, 75, 12)),
        ("V5", PivProblem::standard(1024, 64, 50, 16)),
    ];
    if quick() {
        v.truncate(2);
    }
    v
}

/// Mask-size sweep (Table 6.4).
pub fn piv_mask_sets() -> Vec<(String, PivProblem)> {
    let sizes: &[usize] = if quick() {
        &[16, 32]
    } else {
        &[16, 24, 32, 48, 64]
    };
    sizes
        .iter()
        .map(|&m| (format!("{m}x{m}"), PivProblem::standard(512, m, 50, 8)))
        .collect()
}

/// Search-offset sweep (Table 6.5).
pub fn piv_search_sets() -> Vec<(String, PivProblem)> {
    let radii: &[usize] = if quick() { &[4, 8] } else { &[2, 4, 6, 8, 12] };
    radii
        .iter()
        .map(|&r| {
            (
                format!("{0}x{0}", 2 * r + 1),
                PivProblem::standard(512, 32, 50, r),
            )
        })
        .collect()
}

/// Overlap sweep (Table 6.6).
pub fn piv_overlap_sets() -> Vec<(String, PivProblem)> {
    let overlaps: &[usize] = if quick() { &[0, 50] } else { &[0, 25, 50, 75] };
    overlaps
        .iter()
        .map(|&o| (format!("{o}%"), PivProblem::standard(512, 32, o, 8)))
        .collect()
}

/// Implementation parameter grids (Tables 6.1 / 6.7).
pub fn match_tile_options() -> Vec<(u32, u32)> {
    if quick() {
        vec![(8, 8), (16, 16)]
    } else {
        vec![(8, 8), (8, 16), (16, 8), (16, 16), (16, 32), (32, 16)]
    }
}

pub fn thread_options() -> Vec<u32> {
    if quick() {
        vec![64, 128]
    } else {
        vec![64, 128, 256]
    }
}

pub fn piv_rb_options() -> Vec<u32> {
    if quick() {
        vec![2, 4]
    } else {
        vec![1, 2, 4, 6, 8]
    }
}

pub fn piv_thread_options() -> Vec<u32> {
    if quick() {
        vec![64, 128]
    } else {
        vec![32, 64, 128, 256]
    }
}

// ---------------------------------------------------------- sweep engine

/// Measurement of one (problem, configuration) point.
#[derive(Debug, Clone)]
pub struct Sample {
    pub sim_ms: f64,
    pub regs: u32,
    pub occupancy: f64,
    pub active_warps: u32,
    pub blocks_per_sm: u32,
    pub local_bytes: u32,
    pub shared_bytes: u32,
}

impl Sample {
    /// Marker for configurations the device cannot launch at all.
    pub fn infeasible() -> Sample {
        Sample {
            sim_ms: f64::INFINITY,
            regs: 0,
            occupancy: 0.0,
            active_warps: 0,
            blocks_per_sm: 0,
            local_bytes: 0,
            shared_bytes: 0,
        }
    }

    pub fn is_infeasible(&self) -> bool {
        self.sim_ms.is_infinite()
    }
}

/// Launch options used across all sweeps: timing-only, tiny sample.
fn sweep_functional() -> bool {
    false
}

/// Cache key for a match scenario: frame and template geometry.
type ScenKey = (usize, usize, usize, usize, usize, usize);

/// Cache key for a measured configuration point.
type PointKey<P> = (String, P, (u32, u32, u32));

/// Memoizing evaluator for template matching configurations.
pub struct MatchSweep {
    pub compiler: Compiler,
    scen_cache: BTreeMap<ScenKey, synth::MatchScenario>,
    cache: BTreeMap<PointKey<MatchProblem>, Sample>,
    variant_tag: String,
}

impl MatchSweep {
    pub fn new(dev: DeviceConfig) -> MatchSweep {
        MatchSweep {
            compiler: sweep_compiler(dev),
            scen_cache: BTreeMap::new(),
            cache: BTreeMap::new(),
            variant_tag: String::new(),
        }
    }

    fn scenario(&mut self, p: &MatchProblem) -> &synth::MatchScenario {
        let key: ScenKey = (
            p.frame_w, p.frame_h, p.templ_w, p.templ_h, p.shift_w, p.shift_h,
        );
        self.scen_cache.entry(key).or_insert_with(|| {
            synth::match_scenario(
                p.frame_w, p.frame_h, p.templ_w, p.templ_h, p.shift_w, p.shift_h, 1234,
            )
        })
    }

    /// Simulated time (ms) for one frame at this configuration.
    pub fn eval(&mut self, variant: Variant, prob: &MatchProblem, imp: &MatchImpl) -> Sample {
        self.variant_tag = variant.to_string();
        let key = (
            format!("{variant}"),
            *prob,
            (imp.tile_w, imp.tile_h, imp.threads),
        );
        if let Some(s) = self.cache.get(&key) {
            return s.clone();
        }
        // Scenario borrow dance: clone the needed data.
        let scen = self.scenario(prob).clone_lite();
        let s = match ks_apps::template_match::run_gpu(
            &self.compiler,
            variant,
            prob,
            imp,
            &scen,
            sweep_functional(),
        ) {
            Ok(out) => {
                let rep = &out.run.reports[0];
                Sample {
                    sim_ms: out.run.sim_ms,
                    regs: out.run.regs_per_thread(),
                    occupancy: rep.occupancy.occupancy,
                    active_warps: rep.occupancy.active_warps,
                    blocks_per_sm: rep.occupancy.blocks_per_sm,
                    local_bytes: rep.local_bytes_per_thread,
                    shared_bytes: rep.shared_per_block,
                }
            }
            // Configurations that exceed device limits are legal sweep
            // points with infinite cost (exactly what happens on real
            // hardware: the launch fails).
            Err(e) if e.to_string().contains("infeasible") => Sample::infeasible(),
            Err(e) => panic!("template sweep: {e}"),
        };
        self.cache.insert(key, s.clone());
        s
    }

    /// Warm the compile cache with every module the (tile × threads)
    /// grid will need, fanned out across threads by the batch API.
    /// Best-effort: compile errors resurface (with context) when the
    /// corresponding sweep point is actually evaluated.
    pub fn precompile(&self, variant: Variant, prob: &MatchProblem) {
        let mut jobs: Vec<(&str, Defines)> = Vec::new();
        for (tw, th) in match_tile_options() {
            for t in thread_options() {
                let imp = MatchImpl {
                    tile_w: tw,
                    tile_h: th,
                    threads: t,
                };
                for d in ks_apps::template_match::specializations(variant, prob, &imp) {
                    jobs.push((ks_apps::template_match::KERNELS, d));
                }
            }
        }
        let _ = self.compiler.compile_batch(&jobs);
    }

    /// Best configuration over the sweep grid.
    pub fn best(&mut self, variant: Variant, prob: &MatchProblem) -> (MatchImpl, Sample) {
        self.precompile(variant, prob);
        let mut best: Option<(MatchImpl, Sample)> = None;
        for (tw, th) in match_tile_options() {
            for t in thread_options() {
                let imp = MatchImpl {
                    tile_w: tw,
                    tile_h: th,
                    threads: t,
                };
                let s = self.eval(variant, prob, &imp);
                if best.as_ref().is_none_or(|(_, b)| s.sim_ms < b.sim_ms) {
                    best = Some((imp, s));
                }
            }
        }
        best.unwrap()
    }
}

/// Cheap clone for scenarios inside the sweep cache.
trait CloneLite {
    fn clone_lite(&self) -> Self;
}

impl CloneLite for synth::MatchScenario {
    fn clone_lite(&self) -> Self {
        synth::MatchScenario {
            frame: self.frame.clone(),
            template: self.template.clone(),
            truth: self.truth,
        }
    }
}

/// Memoizing evaluator for PIV configurations.
pub struct PivSweep {
    pub compiler: Compiler,
    scen_cache: BTreeMap<(usize, usize), synth::PivScenario>,
    cache: BTreeMap<PointKey<PivProblem>, Sample>,
}

impl PivSweep {
    pub fn new(dev: DeviceConfig) -> PivSweep {
        PivSweep {
            compiler: sweep_compiler(dev),
            scen_cache: BTreeMap::new(),
            cache: BTreeMap::new(),
        }
    }

    fn scenario(&mut self, p: &PivProblem) -> synth::PivScenario {
        let key = (p.img_w, p.img_h);
        let s = self
            .scen_cache
            .entry(key)
            .or_insert_with(|| synth::piv_scenario(p.img_w, p.img_h, (3, 1), 77));
        synth::PivScenario {
            a: s.a.clone(),
            b: s.b.clone(),
            flow: s.flow,
        }
    }

    pub fn eval(
        &mut self,
        variant: Variant,
        kernel: PivKernel,
        prob: &PivProblem,
        imp: &PivImpl,
    ) -> Sample {
        let key = (
            format!("{variant}/{:?}", kernel),
            *prob,
            (imp.rb, imp.threads, 0),
        );
        if let Some(s) = self.cache.get(&key) {
            return s.clone();
        }
        let scen = self.scenario(prob);
        let s = match ks_apps::piv::run_gpu(
            &self.compiler,
            variant,
            kernel,
            prob,
            imp,
            &scen,
            sweep_functional(),
        ) {
            Ok(out) => {
                let rep = &out.run.reports[0];
                Sample {
                    sim_ms: out.run.sim_ms,
                    regs: out.run.regs_per_thread(),
                    occupancy: rep.occupancy.occupancy,
                    active_warps: rep.occupancy.active_warps,
                    blocks_per_sm: rep.occupancy.blocks_per_sm,
                    local_bytes: rep.local_bytes_per_thread,
                    shared_bytes: rep.shared_per_block,
                }
            }
            Err(e) if e.to_string().contains("infeasible") => Sample::infeasible(),
            Err(e) => panic!("piv sweep: {e}"),
        };
        self.cache.insert(key, s.clone());
        s
    }

    /// Warm the compile cache with the full (rb × threads) grid in
    /// parallel (single-flight collapses the RE variant's identical
    /// defines to one compilation). Best-effort: errors resurface when
    /// the sweep point is evaluated.
    pub fn precompile(&self, variant: Variant, prob: &PivProblem, rbs: &[u32], threads: &[u32]) {
        let jobs: Vec<(&str, Defines)> = rbs
            .iter()
            .flat_map(|&rb| {
                threads.iter().map(move |&t| {
                    let imp = PivImpl { rb, threads: t };
                    (
                        ks_apps::piv::KERNELS,
                        ks_apps::piv::specialization(variant, prob, &imp),
                    )
                })
            })
            .collect();
        let _ = self.compiler.compile_batch(&jobs);
    }

    pub fn best(
        &mut self,
        variant: Variant,
        kernel: PivKernel,
        prob: &PivProblem,
    ) -> (PivImpl, Sample) {
        self.precompile(variant, prob, &piv_rb_options(), &piv_thread_options());
        let mut best: Option<(PivImpl, Sample)> = None;
        for rb in piv_rb_options() {
            for t in piv_thread_options() {
                let imp = PivImpl { rb, threads: t };
                let s = self.eval(variant, kernel, prob, &imp);
                if best.as_ref().is_none_or(|(_, b)| s.sim_ms < b.sim_ms) {
                    best = Some((imp, s));
                }
            }
        }
        best.unwrap()
    }
}

/// Standard "performance + optimal configuration" table used by Tables
/// 6.15–6.18: for each problem set, the best (RB, threads) on each device.
pub fn piv_sweep_table(
    name: &str,
    title: &str,
    set_label: &str,
    sets: &[(String, PivProblem)],
    kernel: PivKernel,
    variant: Variant,
) {
    let mut headers = vec![set_label.to_string(), "Masks".into(), "Offsets".into()];
    for d in devices() {
        headers.push(format!("{} ms", d.name));
        headers.push("RB".into());
        headers.push("Thr".into());
        headers.push("Regs".into());
        headers.push("Occ".into());
    }
    let mut table = Table::new(
        name,
        title,
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut sweeps: Vec<PivSweep> = devices().into_iter().map(PivSweep::new).collect();
    for (set_name, prob) in sets {
        let mut row = vec![
            set_name.clone(),
            fmt(prob.num_masks()),
            fmt(prob.num_offsets()),
        ];
        for sweep in &mut sweeps {
            let (imp, s) = sweep.best(variant, kernel, prob);
            row.push(fmt_ms(s.sim_ms));
            row.push(fmt(imp.rb));
            row.push(fmt(imp.threads));
            row.push(fmt(s.regs));
            row.push(format!("{:.2}", s.occupancy));
        }
        table.row(row);
    }
    table.finish();
    for sweep in &sweeps {
        println!(
            "[cache] {}: {}",
            sweep.compiler.device().name,
            sweep.compiler.cache_stats()
        );
    }
}

/// The Figure 6.1/6.2 driver: per Table 6.4 data set, a (RB × threads)
/// grid of performance relative to the peak, printed as an ASCII contour
/// and written as CSV.
pub fn piv_contour(name: &str, dev: DeviceConfig) {
    let dev_name = dev.name.clone();
    let mut sweep = PivSweep::new(dev);
    let rbs = piv_rb_options();
    let threads = piv_thread_options();
    println!("=== {name}: PIV performance relative to peak — {dev_name} ===");
    for (set_name, prob) in piv_mask_sets() {
        // Precompile the grid's variant set in parallel, then measure.
        sweep.precompile(Variant::Sk, &prob, &rbs, &threads);
        let mut times = vec![vec![0.0f64; rbs.len()]; threads.len()];
        let mut best = f64::INFINITY;
        for (i, &t) in threads.iter().enumerate() {
            for (j, &rb) in rbs.iter().enumerate() {
                let s = sweep.eval(
                    Variant::Sk,
                    PivKernel::Basic,
                    &prob,
                    &PivImpl { rb, threads: t },
                );
                times[i][j] = s.sim_ms;
                best = best.min(s.sim_ms);
            }
        }
        let rel: Vec<Vec<f64>> = times
            .iter()
            .map(|row| row.iter().map(|t| best / t).collect())
            .collect();
        println!(
            "
--- data set {set_name} (peak {} ms) ---",
            fmt_ms(best)
        );
        print!("{}", ascii_contour(&threads, &rbs, &rel, "threads", "rb"));
        // CSV grid.
        let mut table = Table::new(
            &format!("{name}_{}", set_name.replace(['x', '%'], "_")),
            &format!("{name} data set {set_name} ({dev_name})"),
            &std::iter::once("threads\\rb".to_string())
                .chain(rbs.iter().map(|r| r.to_string()))
                .collect::<Vec<_>>()
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>(),
        );
        for (i, &t) in threads.iter().enumerate() {
            let mut row = vec![t.to_string()];
            row.extend(rel[i].iter().map(|v| format!("{v:.3}")));
            table.row(row);
        }
        table.finish();
    }
    println!("[cache] {dev_name}: {}", sweep.compiler.cache_stats());
}

/// Render a (threads × rb) relative-performance grid as an ASCII contour
/// (used by the Figure 6.1/6.2 binaries). `grid[i][j]` is performance
/// relative to peak in [0, 1]; the peak cell is marked `#`.
pub fn ascii_contour(
    rows: &[u32],
    cols: &[u32],
    grid: &[Vec<f64>],
    row_label: &str,
    col_label: &str,
) -> String {
    let mut out = String::new();
    let shades = [' ', '.', ':', '-', '=', '+', '*', '%', '@'];
    let peak = grid
        .iter()
        .enumerate()
        .flat_map(|(i, r)| r.iter().enumerate().map(move |(j, v)| (i, j, *v)))
        .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .map(|(i, j, _)| (i, j))
        .unwrap_or((0, 0));
    out.push_str(&format!("{row_label} \\ {col_label}:"));
    for c in cols {
        out.push_str(&format!("{c:>6}"));
    }
    out.push('\n');
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!("{r:>16}"));
        for (j, v) in grid[i].iter().enumerate() {
            if (i, j) == peak {
                out.push_str("     #");
            } else {
                let idx = ((v * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1);
                out.push_str(&format!("     {}", shades[idx]));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_and_writes_csv_with_cache_sidecar() {
        let dir = std::env::temp_dir().join("ks-bench-test");
        std::env::set_var("KS_BENCH_DIR", &dir);
        let mut t = Table::new("unit_test_table", "A test", &["a", "b"]);
        // Cache activity attributed to this table: one miss, one hit.
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let src = "__global__ void k(float* x) { x[threadIdx.x] = 1.0f; }";
        c.compile(src, Defines::new()).unwrap();
        c.compile(src, Defines::new()).unwrap();
        t.row(vec!["1".into(), "2".into()]);
        let path = t.finish();
        std::env::remove_var("KS_BENCH_DIR");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");

        let side = path.with_file_name("unit_test_table_cache.csv");
        let side_text = std::fs::read_to_string(side).unwrap();
        let mut lines = side_text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "hits,misses,dedup_waits,evictions,hit_rate,retries,failures,quarantined,breaker_opens,fallback_generic,fallback_last_good,promotions,disk_hits,disk_misses,store_errors,tier,time_in_generic_p50,promotion_latency_p50,windows,window_iter_p95_us,sdc_detected,witness_launches,scrub_quarantined"
        );
        let vals: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(vals.len(), 23);
        let hits: u64 = vals[0].parse().unwrap();
        let misses: u64 = vals[1].parse().unwrap();
        assert!(misses >= 1, "compile should register a miss: {side_text}");
        assert!(hits >= 1, "recompile should register a hit: {side_text}");
        let rate: f64 = vals[4].parse().unwrap();
        assert!((0.0..=1.0).contains(&rate));
        // Resilience + promotion columns parse as counters (no faults
        // or background tickets in this table's window — but other
        // tests in the process may race ticket traffic, so only the
        // shape is asserted here).
        for v in &vals[5..15] {
            let _: u64 = v.parse().unwrap();
        }
        assert!(
            vals[15] == "blocking" || vals[15] == "tiered",
            "{side_text}"
        );
        // Windowed columns: p50s and the last-window p95 parse as
        // integers, and at least the baseline→finish window exists.
        for v in [vals[16], vals[17], vals[19]] {
            let _: u64 = v.parse().unwrap();
        }
        let windows: u64 = vals[18].parse().unwrap();
        assert!(windows >= 1, "{side_text}");
        // Integrity / scrub columns parse as counters (shape only —
        // other tests in the process may drive integrity traffic).
        for v in &vals[20..23] {
            let _: u64 = v.parse().unwrap();
        }
    }

    #[test]
    fn table_ticks_partition_sidecar_windows() {
        let dir = std::env::temp_dir().join("ks-bench-test-ticks");
        std::env::set_var("KS_BENCH_DIR", &dir);
        let mut t = Table::new("unit_test_ticked", "Ticked", &["a"]);
        t.tick();
        t.tick();
        t.row(vec!["1".into()]);
        let path = t.finish();
        std::env::remove_var("KS_BENCH_DIR");
        let side = path.with_file_name("unit_test_ticked_cache.csv");
        let side_text = std::fs::read_to_string(side).unwrap();
        let vals: Vec<&str> = side_text.lines().nth(1).unwrap().split(',').collect();
        let windows: u64 = vals[18].parse().unwrap();
        // Two explicit ticks + the finish tick, baseline excluded.
        assert_eq!(windows, 3, "{side_text}");
    }

    #[test]
    fn contour_marks_peak() {
        let grid = vec![vec![0.2, 0.5], vec![0.9, 1.0]];
        let s = ascii_contour(&[32, 64], &[1, 2], &grid, "threads", "rb");
        assert!(s.contains('#'));
        assert_eq!(s.matches('#').count(), 1);
    }

    #[test]
    fn infeasible_sample_marker() {
        let s = Sample::infeasible();
        assert!(s.is_infeasible());
        assert!(s.sim_ms > 1e300);
        let ok = Sample {
            sim_ms: 1.0,
            regs: 8,
            occupancy: 0.5,
            active_warps: 16,
            blocks_per_sm: 4,
            local_bytes: 0,
            shared_bytes: 0,
        };
        assert!(!ok.is_infeasible());
    }

    #[test]
    fn problem_sets_are_wellformed() {
        for (_, p) in piv_fpga_sets() {
            assert!(p.num_masks() > 0, "{p:?}");
            assert!(p.num_offsets() > 0);
        }
        for (_, p) in match_patients() {
            assert!(p.num_offsets() > 0);
        }
    }
}
