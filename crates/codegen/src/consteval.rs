//! Constant folding & propagation on the typed HIR, plus static guard
//! elimination. These fire only where operands are literal — which, for a
//! specialized kernel, is exactly where `-D` defines substituted values.

use ks_lang::hir::*;

/// Wrap-around 32-bit integer semantics matching the GPU.
fn as_i32(v: i64) -> i32 {
    v as i32
}

fn as_u32(v: i64) -> u32 {
    v as u32
}

/// Extract a constant integer (Int/UInt/Bool literal).
pub fn const_int(e: &HExpr) -> Option<i64> {
    match e {
        HExpr::IntLit { value, .. } => Some(*value),
        _ => None,
    }
}

fn const_float(e: &HExpr) -> Option<f32> {
    match e {
        HExpr::FloatLit(v) => Some(*v),
        _ => None,
    }
}

fn bool_lit(v: bool) -> HExpr {
    HExpr::IntLit {
        value: i64::from(v),
        ty: HTy::Bool,
    }
}

fn fold_binary(op: HBinOp, ty: HTy, a: &HExpr, b: &HExpr) -> Option<HExpr> {
    if ty == HTy::Float {
        let (x, y) = (const_float(a)?, const_float(b)?);
        let v = match op {
            HBinOp::Add => x + y,
            HBinOp::Sub => x - y,
            HBinOp::Mul => x * y,
            HBinOp::Div => x / y,
            _ => return None,
        };
        return Some(HExpr::FloatLit(v));
    }
    let (x, y) = (const_int(a)?, const_int(b)?);
    let v: i64 = if ty == HTy::UInt {
        let (x, y) = (as_u32(x), as_u32(y));
        let r: u32 = match op {
            HBinOp::Add => x.wrapping_add(y),
            HBinOp::Sub => x.wrapping_sub(y),
            HBinOp::Mul => x.wrapping_mul(y),
            HBinOp::Div => {
                if y == 0 {
                    return None;
                }
                x / y
            }
            HBinOp::Rem => {
                if y == 0 {
                    return None;
                }
                x % y
            }
            HBinOp::Shl => x.wrapping_shl(y & 31),
            HBinOp::Shr => x.wrapping_shr(y & 31),
            HBinOp::And => x & y,
            HBinOp::Or => x | y,
            HBinOp::Xor => x ^ y,
        };
        r as i64
    } else {
        let (x, y) = (as_i32(x), as_i32(y));
        let r: i32 = match op {
            HBinOp::Add => x.wrapping_add(y),
            HBinOp::Sub => x.wrapping_sub(y),
            HBinOp::Mul => x.wrapping_mul(y),
            HBinOp::Div => {
                if y == 0 {
                    return None;
                }
                x.wrapping_div(y)
            }
            HBinOp::Rem => {
                if y == 0 {
                    return None;
                }
                x.wrapping_rem(y)
            }
            HBinOp::Shl => x.wrapping_shl(y as u32 & 31),
            HBinOp::Shr => x.wrapping_shr(y as u32 & 31),
            HBinOp::And => x & y,
            HBinOp::Or => x | y,
            HBinOp::Xor => x ^ y,
        };
        r as i64
    };
    Some(HExpr::IntLit { value: v, ty })
}

fn fold_cmp(op: HCmp, ty: HTy, a: &HExpr, b: &HExpr) -> Option<HExpr> {
    if ty == HTy::Float {
        let (x, y) = (const_float(a)?, const_float(b)?);
        let r = match op {
            HCmp::Eq => x == y,
            HCmp::Ne => x != y,
            HCmp::Lt => x < y,
            HCmp::Le => x <= y,
            HCmp::Gt => x > y,
            HCmp::Ge => x >= y,
        };
        return Some(bool_lit(r));
    }
    let (x, y) = (const_int(a)?, const_int(b)?);
    let r = if ty == HTy::UInt {
        let (x, y) = (as_u32(x), as_u32(y));
        match op {
            HCmp::Eq => x == y,
            HCmp::Ne => x != y,
            HCmp::Lt => x < y,
            HCmp::Le => x <= y,
            HCmp::Gt => x > y,
            HCmp::Ge => x >= y,
        }
    } else {
        let (x, y) = (as_i32(x), as_i32(y));
        match op {
            HCmp::Eq => x == y,
            HCmp::Ne => x != y,
            HCmp::Lt => x < y,
            HCmp::Le => x <= y,
            HCmp::Gt => x > y,
            HCmp::Ge => x >= y,
        }
    };
    Some(bool_lit(r))
}

/// Is an integer literal equal to `v`?
fn is_int(e: &HExpr, v: i64) -> bool {
    matches!(e, HExpr::IntLit { value, .. } if *value == v)
}

fn is_float(e: &HExpr, v: f32) -> bool {
    matches!(e, HExpr::FloatLit(x) if *x == v)
}

/// Known-constant values of scalar locals at a program point.
pub type ConstEnv = std::collections::HashMap<LocalId, HExpr>;

/// Fold one expression bottom-up (no propagation environment).
pub fn fold_expr(e: &HExpr) -> HExpr {
    fold_expr_env(e, &ConstEnv::new())
}

/// Fold one expression bottom-up, substituting locals with known constant
/// values. This is constant *propagation*: `const uint stride = ARG_A *
/// ARG_B;` followed by uses of `stride` folds completely when the `ARG_*`
/// macros were specialized.
pub fn fold_expr_env(e: &HExpr, env: &ConstEnv) -> HExpr {
    match e {
        HExpr::Local(id, _) => match env.get(id) {
            Some(lit) => lit.clone(),
            None => e.clone(),
        },
        HExpr::IntLit { .. } | HExpr::FloatLit(_) | HExpr::Param(..) | HExpr::Builtin(..) => {
            e.clone()
        }
        HExpr::Unary(op, ty, x) => {
            let x = fold_expr_env(x, env);
            match (op, &x) {
                (HUnOp::Neg, HExpr::FloatLit(v)) => HExpr::FloatLit(-v),
                (HUnOp::Neg, HExpr::IntLit { value, .. }) => HExpr::IntLit {
                    value: (as_i32(*value).wrapping_neg()) as i64,
                    ty: *ty,
                },
                (HUnOp::BitNot, HExpr::IntLit { value, .. }) => HExpr::IntLit {
                    value: !value & 0xFFFF_FFFF,
                    ty: *ty,
                },
                _ => HExpr::Unary(*op, *ty, Box::new(x)),
            }
        }
        HExpr::Binary(op, ty, a, b) => {
            let a = fold_expr_env(a, env);
            let b = fold_expr_env(b, env);
            if let Some(f) = fold_binary(*op, *ty, &a, &b) {
                return f;
            }
            // Algebraic identities (loads in HIR are pure, so dropping an
            // operand is sound).
            match op {
                HBinOp::Add => {
                    if is_int(&a, 0) || is_float(&a, 0.0) {
                        return b;
                    }
                    if is_int(&b, 0) || is_float(&b, 0.0) {
                        return a;
                    }
                }
                HBinOp::Sub if (is_int(&b, 0) || is_float(&b, 0.0)) => {
                    return a;
                }
                HBinOp::Mul => {
                    if is_int(&a, 1) || is_float(&a, 1.0) {
                        return b;
                    }
                    if is_int(&b, 1) || is_float(&b, 1.0) {
                        return a;
                    }
                    if (is_int(&a, 0) || is_int(&b, 0)) && *ty != HTy::Float {
                        return HExpr::IntLit { value: 0, ty: *ty };
                    }
                }
                HBinOp::Div if (is_int(&b, 1) || is_float(&b, 1.0)) => {
                    return a;
                }
                HBinOp::Shl | HBinOp::Shr if is_int(&b, 0) => {
                    return a;
                }
                _ => {}
            }
            HExpr::Binary(*op, *ty, Box::new(a), Box::new(b))
        }
        HExpr::Cmp(op, ty, a, b) => {
            let a = fold_expr_env(a, env);
            let b = fold_expr_env(b, env);
            fold_cmp(*op, *ty, &a, &b)
                .unwrap_or_else(|| HExpr::Cmp(*op, *ty, Box::new(a), Box::new(b)))
        }
        HExpr::LogAnd(a, b) => {
            let a = fold_expr_env(a, env);
            let b = fold_expr_env(b, env);
            match (const_int(&a), const_int(&b)) {
                (Some(0), _) | (_, Some(0)) => bool_lit(false),
                (Some(_), Some(_)) => bool_lit(true),
                (Some(x), None) if x != 0 => b,
                (None, Some(x)) if x != 0 => a,
                _ => HExpr::LogAnd(Box::new(a), Box::new(b)),
            }
        }
        HExpr::LogOr(a, b) => {
            let a = fold_expr_env(a, env);
            let b = fold_expr_env(b, env);
            match (const_int(&a), const_int(&b)) {
                (Some(x), _) if x != 0 => bool_lit(true),
                (_, Some(x)) if x != 0 => bool_lit(true),
                (Some(0), Some(0)) => bool_lit(false),
                (Some(0), None) => b,
                (None, Some(0)) => a,
                _ => HExpr::LogOr(Box::new(a), Box::new(b)),
            }
        }
        HExpr::LogNot(a) => {
            let a = fold_expr_env(a, env);
            match const_int(&a) {
                Some(v) => bool_lit(v == 0),
                None => HExpr::LogNot(Box::new(a)),
            }
        }
        HExpr::Cond(c, a, b, ty) => {
            let c = fold_expr_env(c, env);
            let a = fold_expr_env(a, env);
            let b = fold_expr_env(b, env);
            match const_int(&c) {
                Some(0) => b,
                Some(_) => a,
                None => HExpr::Cond(Box::new(c), Box::new(a), Box::new(b), *ty),
            }
        }
        HExpr::Load(p, ty) => HExpr::Load(fold_place_env(p, env), *ty),
        HExpr::ConstElem(id, idx, elem) => {
            HExpr::ConstElem(*id, Box::new(fold_expr_env(idx, env)), *elem)
        }
        HExpr::TexFetch(id, idx, elem) => {
            HExpr::TexFetch(*id, Box::new(fold_expr_env(idx, env)), *elem)
        }
        HExpr::Call(f, args, ty) => {
            let args: Vec<HExpr> = args.iter().map(|a| fold_expr_env(a, env)).collect();
            // Fold pure math builtins over literals.
            let folded = match (f, args.as_slice()) {
                (BuiltinFn::Sqrtf, [HExpr::FloatLit(x)]) => Some(HExpr::FloatLit(x.sqrt())),
                (BuiltinFn::Rsqrtf, [HExpr::FloatLit(x)]) => Some(HExpr::FloatLit(1.0 / x.sqrt())),
                (BuiltinFn::Fabsf, [HExpr::FloatLit(x)]) => Some(HExpr::FloatLit(x.abs())),
                (BuiltinFn::Floorf, [HExpr::FloatLit(x)]) => Some(HExpr::FloatLit(x.floor())),
                (BuiltinFn::Fminf, [HExpr::FloatLit(x), HExpr::FloatLit(y)]) => {
                    Some(HExpr::FloatLit(x.min(*y)))
                }
                (BuiltinFn::Fmaxf, [HExpr::FloatLit(x), HExpr::FloatLit(y)]) => {
                    Some(HExpr::FloatLit(x.max(*y)))
                }
                (BuiltinFn::MinI, [a, b]) => match (const_int(a), const_int(b)) {
                    (Some(x), Some(y)) => Some(HExpr::IntLit {
                        value: as_i32(x).min(as_i32(y)) as i64,
                        ty: HTy::Int,
                    }),
                    _ => None,
                },
                (BuiltinFn::MaxI, [a, b]) => match (const_int(a), const_int(b)) {
                    (Some(x), Some(y)) => Some(HExpr::IntLit {
                        value: as_i32(x).max(as_i32(y)) as i64,
                        ty: HTy::Int,
                    }),
                    _ => None,
                },
                (BuiltinFn::AbsI, [a]) => const_int(a).map(|x| HExpr::IntLit {
                    value: as_i32(x).wrapping_abs() as i64,
                    ty: HTy::Int,
                }),
                (BuiltinFn::Mul24, [a, b]) => match (const_int(a), const_int(b)) {
                    (Some(x), Some(y)) => {
                        // 24-bit multiply: low 32 bits of (x&0xFFFFFF)*(y&0xFFFFFF)
                        let r = (x & 0xFF_FFFF).wrapping_mul(y & 0xFF_FFFF) as i32;
                        Some(HExpr::IntLit {
                            value: r as i64,
                            ty: HTy::Int,
                        })
                    }
                    _ => None,
                },
                _ => None,
            };
            folded.unwrap_or(HExpr::Call(*f, args, *ty))
        }
        HExpr::Cast { to, from, val } => {
            let v = fold_expr_env(val, env);
            match (&v, to) {
                (
                    HExpr::IntLit {
                        value,
                        ty: HTy::Int,
                    },
                    HTy::Float,
                ) => HExpr::FloatLit(as_i32(*value) as f32),
                (
                    HExpr::IntLit {
                        value,
                        ty: HTy::UInt,
                    },
                    HTy::Float,
                ) => HExpr::FloatLit(as_u32(*value) as f32),
                (
                    HExpr::IntLit {
                        value,
                        ty: HTy::Bool,
                    },
                    HTy::Float,
                ) => HExpr::FloatLit(*value as f32),
                (HExpr::FloatLit(x), HTy::Int) => HExpr::IntLit {
                    value: (*x as i32) as i64,
                    ty: HTy::Int,
                },
                (HExpr::FloatLit(x), HTy::UInt) => HExpr::IntLit {
                    value: (*x as u32) as i64,
                    ty: HTy::UInt,
                },
                (HExpr::IntLit { value, .. }, HTy::Int | HTy::UInt | HTy::Bool | HTy::Ptr(_)) => {
                    // Int↔UInt reinterpret; Int→Ptr keeps the full 64-bit
                    // value (specialized pointer constants).
                    HExpr::IntLit {
                        value: *value,
                        ty: *to,
                    }
                }
                _ => HExpr::Cast {
                    to: *to,
                    from: *from,
                    val: Box::new(v),
                },
            }
        }
        HExpr::PtrAdd { ptr, offset, elem } => {
            let p = fold_expr_env(ptr, env);
            let o = fold_expr_env(offset, env);
            if is_int(&o, 0) {
                return p;
            }
            // (p + c1) + c2 → p + (c1+c2) happens naturally after IR-level
            // address folding; here fold literal pointer + literal offset.
            if let (
                HExpr::IntLit {
                    value: pv,
                    ty: pty @ HTy::Ptr(_),
                },
                Some(ov),
            ) = (&p, const_int(&o))
            {
                return HExpr::IntLit {
                    value: pv + ov * elem.size_bytes() as i64,
                    ty: *pty,
                };
            }
            HExpr::PtrAdd {
                ptr: Box::new(p),
                offset: Box::new(o),
                elem: *elem,
            }
        }
    }
}

fn fold_place_env(p: &Place, env: &ConstEnv) -> Place {
    match p {
        Place::Local(id) => Place::Local(*id),
        Place::LocalElem(id, idx) => Place::LocalElem(*id, Box::new(fold_expr_env(idx, env))),
        Place::SharedElem(id, idx) => Place::SharedElem(*id, Box::new(fold_expr_env(idx, env))),
        Place::Deref { ptr, elem } => Place::Deref {
            ptr: Box::new(fold_expr_env(ptr, env)),
            elem: *elem,
        },
    }
}

/// Collect every scalar local assigned anywhere in `stmts`.
fn assigned_locals(stmts: &[HStmt], out: &mut std::collections::HashSet<LocalId>) {
    for s in stmts {
        match s {
            HStmt::Assign {
                place: Place::Local(id),
                ..
            } => {
                out.insert(*id);
            }
            HStmt::Assign { .. } => {}
            HStmt::If { then_s, else_s, .. } => {
                assigned_locals(then_s, out);
                assigned_locals(else_s, out);
            }
            HStmt::For {
                init, step, body, ..
            } => {
                assigned_locals(init, out);
                assigned_locals(step, out);
                assigned_locals(body, out);
            }
            HStmt::While { body, .. } | HStmt::DoWhile { body, .. } => assigned_locals(body, out),
            _ => {}
        }
    }
}

fn is_literal(e: &HExpr) -> bool {
    matches!(e, HExpr::IntLit { .. } | HExpr::FloatLit(_))
}

/// Fold a statement list; `if`s with constant conditions are resolved
/// (static guard elimination), constant-false loops drop away.
pub fn fold_stmts(stmts: &[HStmt]) -> Vec<HStmt> {
    let mut env = ConstEnv::new();
    fold_stmts_env(stmts, &mut env)
}

/// Env-threading fold: `env` tracks scalar locals whose value is a known
/// literal at the current program point.
pub fn fold_stmts_env(stmts: &[HStmt], env: &mut ConstEnv) -> Vec<HStmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            HStmt::Assign { place, value } => {
                let v = fold_expr_env(value, env);
                let place = fold_place_env(place, env);
                if let Place::Local(id) = place {
                    if is_literal(&v) {
                        env.insert(id, v.clone());
                    } else {
                        env.remove(&id);
                    }
                }
                out.push(HStmt::Assign { place, value: v });
            }
            HStmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let c = fold_expr_env(cond, env);
                match const_int(&c) {
                    Some(0) => out.extend(fold_stmts_env(else_s, env)),
                    Some(_) => out.extend(fold_stmts_env(then_s, env)),
                    None => {
                        let mut env_t = env.clone();
                        let mut env_e = env.clone();
                        let t = fold_stmts_env(then_s, &mut env_t);
                        let e = fold_stmts_env(else_s, &mut env_e);
                        // Keep only facts that hold on both paths.
                        env.retain(|k, v| env_t.get(k) == Some(v) && env_e.get(k) == Some(v));
                        out.push(HStmt::If {
                            cond: c,
                            then_s: t,
                            else_s: e,
                        });
                    }
                }
            }
            HStmt::For {
                init,
                cond,
                step,
                body,
                unroll,
            } => {
                let init = fold_stmts_env(init, env);
                // Anything assigned inside the loop is unknown during and
                // after it.
                let mut killed = std::collections::HashSet::new();
                assigned_locals(body, &mut killed);
                assigned_locals(step, &mut killed);
                for k in &killed {
                    env.remove(k);
                }
                let cond = cond.as_ref().map(|c| fold_expr_env(c, env));
                if let Some(c) = &cond {
                    if const_int(c) == Some(0) {
                        out.extend(init);
                        continue;
                    }
                }
                let mut benv = env.clone();
                let body = fold_stmts_env(body, &mut benv);
                let mut senv = env.clone();
                let step = fold_stmts_env(step, &mut senv);
                for k in &killed {
                    env.remove(k);
                }
                out.push(HStmt::For {
                    init,
                    cond,
                    step,
                    body,
                    unroll: *unroll,
                });
            }
            HStmt::While { cond, body } => {
                let mut killed = std::collections::HashSet::new();
                assigned_locals(body, &mut killed);
                for k in &killed {
                    env.remove(k);
                }
                let c = fold_expr_env(cond, env);
                if const_int(&c) == Some(0) {
                    continue;
                }
                let mut benv = env.clone();
                let body = fold_stmts_env(body, &mut benv);
                out.push(HStmt::While { cond: c, body });
            }
            HStmt::DoWhile { body, cond } => {
                let mut killed = std::collections::HashSet::new();
                assigned_locals(body, &mut killed);
                for k in &killed {
                    env.remove(k);
                }
                let mut benv = env.clone();
                let body = fold_stmts_env(body, &mut benv);
                let c = fold_expr_env(
                    cond,
                    &benv
                        .clone()
                        .into_iter()
                        .filter(|(k, _)| !killed.contains(k))
                        .collect(),
                );
                out.push(HStmt::DoWhile { body, cond: c });
            }
            HStmt::Break | HStmt::Continue | HStmt::Return | HStmt::Sync => out.push(s.clone()),
        }
    }
    out
}

/// Fold a whole kernel in place.
pub fn fold_func(f: &mut HFunc) {
    f.body = fold_stmts(&f.body);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ii(v: i64) -> HExpr {
        HExpr::IntLit {
            value: v,
            ty: HTy::Int,
        }
    }

    #[test]
    fn folds_arith() {
        let e = HExpr::Binary(HBinOp::Mul, HTy::Int, Box::new(ii(3)), Box::new(ii(7)));
        assert_eq!(fold_expr(&e), ii(21));
    }

    #[test]
    fn folds_nested_and_identity() {
        // (x * 1) + (2 * 0) → x
        let x = HExpr::Local(LocalId(0), HTy::Int);
        let e = HExpr::Binary(
            HBinOp::Add,
            HTy::Int,
            Box::new(HExpr::Binary(
                HBinOp::Mul,
                HTy::Int,
                Box::new(x.clone()),
                Box::new(ii(1)),
            )),
            Box::new(HExpr::Binary(
                HBinOp::Mul,
                HTy::Int,
                Box::new(ii(2)),
                Box::new(ii(0)),
            )),
        );
        assert_eq!(fold_expr(&e), x);
    }

    #[test]
    fn integer_division_semantics() {
        let e = HExpr::Binary(HBinOp::Div, HTy::Int, Box::new(ii(-7)), Box::new(ii(2)));
        assert_eq!(fold_expr(&e), ii(-3)); // C truncation
        let e = HExpr::Binary(HBinOp::Div, HTy::UInt, Box::new(ii(7)), Box::new(ii(2)));
        assert_eq!(
            fold_expr(&e),
            HExpr::IntLit {
                value: 3,
                ty: HTy::UInt
            }
        );
        // Division by zero does not fold (run-time trap territory).
        let e = HExpr::Binary(HBinOp::Div, HTy::Int, Box::new(ii(1)), Box::new(ii(0)));
        assert!(matches!(fold_expr(&e), HExpr::Binary(..)));
    }

    #[test]
    fn u32_wraparound() {
        let e = HExpr::Binary(
            HBinOp::Add,
            HTy::UInt,
            Box::new(HExpr::IntLit {
                value: u32::MAX as i64,
                ty: HTy::UInt,
            }),
            Box::new(HExpr::IntLit {
                value: 1,
                ty: HTy::UInt,
            }),
        );
        assert_eq!(
            fold_expr(&e),
            HExpr::IntLit {
                value: 0,
                ty: HTy::UInt
            }
        );
    }

    #[test]
    fn cmp_and_logic_fold() {
        let c = HExpr::Cmp(HCmp::Lt, HTy::Int, Box::new(ii(1)), Box::new(ii(2)));
        assert_eq!(
            fold_expr(&c),
            HExpr::IntLit {
                value: 1,
                ty: HTy::Bool
            }
        );
        let f = HExpr::LogAnd(
            Box::new(HExpr::IntLit {
                value: 0,
                ty: HTy::Bool,
            }),
            Box::new(HExpr::Cmp(
                HCmp::Eq,
                HTy::Int,
                Box::new(HExpr::Local(LocalId(0), HTy::Int)),
                Box::new(ii(1)),
            )),
        );
        assert_eq!(
            fold_expr(&f),
            HExpr::IntLit {
                value: 0,
                ty: HTy::Bool
            }
        );
    }

    #[test]
    fn guard_elimination() {
        let guard = HStmt::If {
            cond: HExpr::Cmp(HCmp::Lt, HTy::Int, Box::new(ii(5)), Box::new(ii(10))),
            then_s: vec![HStmt::Sync],
            else_s: vec![HStmt::Return],
        };
        let folded = fold_stmts(&[guard]);
        assert_eq!(folded, vec![HStmt::Sync]);
    }

    #[test]
    fn const_false_loop_keeps_init() {
        let l = HStmt::For {
            init: vec![HStmt::Sync],
            cond: Some(HExpr::IntLit {
                value: 0,
                ty: HTy::Bool,
            }),
            step: vec![],
            body: vec![HStmt::Return],
            unroll: None,
        };
        assert_eq!(fold_stmts(&[l]), vec![HStmt::Sync]);
    }

    #[test]
    fn ptr_plus_const_folds_to_address() {
        let e = HExpr::PtrAdd {
            ptr: Box::new(HExpr::IntLit {
                value: 0x1000,
                ty: HTy::Ptr(Elem::Float),
            }),
            offset: Box::new(ii(4)),
            elem: Elem::Float,
        };
        assert_eq!(
            fold_expr(&e),
            HExpr::IntLit {
                value: 0x1000 + 16,
                ty: HTy::Ptr(Elem::Float)
            }
        );
    }

    #[test]
    fn float_cast_fold() {
        let e = HExpr::Cast {
            to: HTy::Float,
            from: HTy::Int,
            val: Box::new(ii(3)),
        };
        assert_eq!(fold_expr(&e), HExpr::FloatLit(3.0));
        let e = HExpr::Cast {
            to: HTy::Int,
            from: HTy::Float,
            val: Box::new(HExpr::FloatLit(2.7)),
        };
        assert_eq!(fold_expr(&e), ii(2));
    }

    #[test]
    fn builtin_math_folds() {
        let e = HExpr::Call(BuiltinFn::Sqrtf, vec![HExpr::FloatLit(16.0)], HTy::Float);
        assert_eq!(fold_expr(&e), HExpr::FloatLit(4.0));
        let e = HExpr::Call(BuiltinFn::Mul24, vec![ii(3), ii(7)], HTy::Int);
        assert_eq!(fold_expr(&e), ii(21));
    }
}
