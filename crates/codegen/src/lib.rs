//! # ks-codegen — HIR → IR lowering with specialization-driven transforms
//!
//! This crate implements the compile-time optimizations the dissertation
//! identifies as the payoff of kernel specialization (§2.4, §4): they all
//! *require fixed values at compile time*, which is exactly what the
//! preprocessor's `-D` defines provide.
//!
//! * [`consteval`] — constant folding & propagation over the typed HIR,
//!   including static *guard elimination* (`if` with a constant condition).
//! * [`unroll`] — full unrolling of counted loops whose bounds folded to
//!   constants. Run-time-evaluated loops stay rolled and pay the loop
//!   setup/iteration/branch overhead in the simulator.
//! * [`scalarize`] — promotion of per-thread local arrays to scalar
//!   registers when (after unrolling) every index is a constant. This is
//!   *register blocking*: NVIDIA GPUs cannot indirectly address registers,
//!   so a dynamically indexed array must live in slow local memory.
//! * [`lower`] — lowering to the PTX-like `ks-ir`.

pub mod consteval;
pub mod lower;
pub mod scalarize;
pub mod unroll;

use ks_lang::hir::Program;

/// Codegen options.
#[derive(Debug, Clone)]
pub struct CodegenOptions {
    /// Maximum trip count for full loop unrolling.
    pub unroll_limit: u32,
    /// Maximum element count for local-array scalarization.
    pub scalarize_cap: u32,
    /// Apply HIR-level optimizations at all (`false` ⇒ a "-O0" build used
    /// for differential testing).
    pub optimize: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            unroll_limit: 2048,
            scalarize_cap: 256,
            optimize: true,
        }
    }
}

/// Run the HIR pipeline (fold → unroll → fold → scalarize → fold) and lower
/// to an IR module.
pub fn compile(program: &Program, opts: &CodegenOptions) -> Result<ks_ir::Module, String> {
    compile_observed(program, opts, &mut |_, _| {})
}

/// Like [`compile`], but lowers and reports the module after each HIR
/// transform stage, so a validator can compare consecutive snapshots.
/// The observer first sees `("baseline", <unoptimized lowering>)`, then one
/// call per stage that changed the program; the returned module is always
/// the final stage's lowering.
pub fn compile_observed(
    program: &Program,
    opts: &CodegenOptions,
    obs: &mut dyn FnMut(&'static str, &ks_ir::Module),
) -> Result<ks_ir::Module, String> {
    let mut prog = program.clone();
    if !opts.optimize {
        return lower::lower_program(&prog);
    }
    let mut module = lower::lower_program(&prog)?;
    obs("baseline", &module);
    type Stage<'a> = (&'static str, &'a dyn Fn(&mut Program));
    let stages: [Stage; 5] = [
        ("consteval", &|p| each(p, consteval::fold_func)),
        ("unroll", &|p| {
            for k in &mut p.kernels {
                unroll::unroll_func(k, opts.unroll_limit);
            }
        }),
        ("consteval", &|p| each(p, consteval::fold_func)),
        ("scalarize", &|p| {
            for k in &mut p.kernels {
                scalarize::scalarize_func(k, opts.scalarize_cap);
            }
        }),
        ("consteval", &|p| each(p, consteval::fold_func)),
    ];
    for (name, stage) in stages {
        stage(&mut prog);
        let next = lower::lower_program(&prog)?;
        if next != module {
            obs(name, &next);
            module = next;
        }
    }
    Ok(module)
}

fn each(p: &mut Program, f: impl Fn(&mut ks_lang::hir::HFunc)) {
    for k in &mut p.kernels {
        f(k);
    }
}
