//! Lowering: typed HIR → PTX-like IR.
//!
//! Conventions that matter for the specialization story:
//!
//! * Scalar kernel *parameters* are loaded from param space on first use —
//!   a specialized kernel whose parameters all folded away never emits
//!   those loads (cf. §2.4 "independent parameters have to be loaded ...
//!   before they can be used").
//! * Per-thread local *arrays* that survived scalarization are placed in
//!   the `local` state space (slow), since registers cannot be indirectly
//!   addressed.
//! * Constant pointers (e.g. a specialized `PTR_IN`) lower to absolute
//!   addresses in `ld`/`st` instructions, exactly like Appendix D.

use ks_ir::{
    Address, BasicBlock, BinOp, BlockId, CmpOp, ConstDecl, Function, Inst, KernelParam, Module,
    Operand, SharedDecl, Space, SpecialReg, Terminator, Ty, UnOp, VReg,
};
use ks_lang::ast::{BuiltinVar, Dim3};
use ks_lang::hir::*;
use std::collections::HashMap;

fn ir_ty(t: HTy) -> Ty {
    match t {
        HTy::Int => Ty::S32,
        HTy::UInt => Ty::U32,
        HTy::Float => Ty::F32,
        HTy::Bool => Ty::Pred,
        HTy::Ptr(_) => Ty::Ptr(Space::Global),
    }
}

fn elem_ty(e: Elem) -> Ty {
    match e {
        Elem::Int => Ty::S32,
        Elem::UInt => Ty::U32,
        Elem::Float => Ty::F32,
    }
}

/// Lower a whole program to an IR module.
pub fn lower_program(p: &Program) -> Result<Module, String> {
    let mut consts = Vec::new();
    let mut const_off = Vec::new();
    let mut off = 0u32;
    for c in &p.consts {
        const_off.push(off);
        consts.push(ConstDecl {
            name: c.name.clone(),
            offset: off,
            size_bytes: c.len * 4,
        });
        off += c.len * 4;
    }
    let mut functions = Vec::new();
    for k in &p.kernels {
        functions.push(lower_func(k, &const_off)?);
    }
    let textures = p.textures.iter().map(|t| t.name.clone()).collect();
    let m = Module {
        functions,
        consts,
        textures,
    };
    let errs = ks_ir::verify_module(&m);
    if let Some(e) = errs.first() {
        return Err(format!("internal codegen error: {e}"));
    }
    Ok(m)
}

struct Lower<'a> {
    hir: &'a HFunc,
    f: Function,
    cur: BlockId,
    /// Scalar locals → dedicated virtual register.
    local_reg: HashMap<LocalId, VReg>,
    /// Array locals → byte offset in per-thread local memory.
    local_off: HashMap<LocalId, u32>,
    shared_off: Vec<u32>,
    const_off: &'a [u32],
    param_reg: Vec<Option<VReg>>,
    param_off: Vec<u32>,
    special_reg: HashMap<(BuiltinVar, Dim3), VReg>,
    /// Number of instructions in the entry preamble (lazy param/special
    /// loads are inserted here so they dominate all uses).
    preamble_len: usize,
    /// (continue target, break target) per enclosing loop.
    loop_stack: Vec<(BlockId, BlockId)>,
    exit: BlockId,
}

fn lower_func(k: &HFunc, const_off: &[u32]) -> Result<Function, String> {
    // Parameter layout: pointers 8-byte aligned, scalars 4-byte.
    let mut params = Vec::new();
    let mut param_off = Vec::new();
    let mut off = 0u32;
    for p in &k.params {
        let (size, align) = match p.ty {
            HTy::Ptr(_) => (8, 8),
            _ => (4, 4),
        };
        off = off.div_ceil(align) * align;
        param_off.push(off);
        params.push(KernelParam {
            name: p.name.clone(),
            ty: ir_ty(p.ty),
            offset: off,
        });
        off += size;
    }
    // Shared layout.
    let mut shared = Vec::new();
    let mut shared_off = Vec::new();
    let mut soff = 0u32;
    for s in &k.shared {
        shared_off.push(soff);
        shared.push(SharedDecl {
            name: s.name.clone(),
            offset: soff,
            size_bytes: s.len * 4,
        });
        soff += s.len * 4;
    }
    // Local (spill) layout for non-scalarized arrays.
    let mut local_off = HashMap::new();
    let mut loff = 0u32;
    for (i, l) in k.locals.iter().enumerate() {
        if l.array_len > 0 {
            local_off.insert(LocalId(i as u32), loff);
            loff += l.array_len * 4;
        }
    }

    let mut f = Function {
        name: k.name.clone(),
        params,
        blocks: vec![BasicBlock {
            id: BlockId(0),
            insts: vec![],
            term: Terminator::Ret,
        }],
        vreg_types: vec![],
        shared,
        local_bytes: loff,
    };
    // One vreg per scalar local, allocated up front.
    let mut local_reg = HashMap::new();
    for (i, l) in k.locals.iter().enumerate() {
        if l.array_len == 0 {
            let r = f.new_vreg(ir_ty(l.ty));
            local_reg.insert(LocalId(i as u32), r);
        }
    }

    let mut lw = Lower {
        hir: k,
        f,
        cur: BlockId(0),
        local_reg,
        local_off,
        shared_off,
        const_off,
        param_reg: vec![None; k.params.len()],
        param_off,
        special_reg: HashMap::new(),
        preamble_len: 0,
        loop_stack: vec![],
        exit: BlockId(0), // patched below
    };
    // Dedicated exit block.
    let exit = lw.new_block();
    lw.exit = exit;
    lw.f.block_mut(exit).term = Terminator::Ret;

    lw.stmts(&k.body)?;
    // Fall-through to exit.
    let cur = lw.cur;
    lw.f.block_mut(cur).term = Terminator::Br { target: exit };
    Ok(lw.f)
}

impl<'a> Lower<'a> {
    /// Retarget the last instruction's destination to `dst` when it just
    /// defined the freshly allocated temp `v`. Returns true on success.
    fn try_retarget(&mut self, v: Operand, dst: VReg) -> bool {
        let Operand::Reg(tmp) = v else { return false };
        if tmp == dst {
            return true; // already in place
        }
        // Only fuse freshly created temporaries (highest vreg id), so no
        // other instruction can reference them yet.
        if tmp.0 as usize != self.f.num_vregs() - 1 {
            return false;
        }
        let cur = self.cur;
        let block = self.f.block_mut(cur);
        let Some(last) = block.insts.last_mut() else {
            return false;
        };
        if last.def() != Some(tmp) {
            return false;
        }
        // Don't fuse if the instruction also *reads* the temp (impossible
        // for a fresh temp, but stay defensive).
        let mut reads_tmp = false;
        last.for_each_use(|r| reads_tmp |= r == tmp);
        if reads_tmp {
            return false;
        }
        match last {
            Inst::Mov { dst: d, .. }
            | Inst::Bin { dst: d, .. }
            | Inst::Un { dst: d, .. }
            | Inst::Mad { dst: d, .. }
            | Inst::Selp { dst: d, .. }
            | Inst::Cvt { dst: d, .. }
            | Inst::Ld { dst: d, .. }
            | Inst::Special { dst: d, .. } => *d = dst,
            _ => return false,
        }
        true
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.f.blocks.len() as u32);
        self.f.blocks.push(BasicBlock {
            id,
            insts: vec![],
            term: Terminator::Ret,
        });
        id
    }

    fn emit(&mut self, i: Inst) {
        let cur = self.cur;
        self.f.block_mut(cur).insts.push(i);
        if cur == BlockId(0) {
            // Keep preamble insertion point ahead of body code only when
            // emitting into the entry block.
        }
    }

    /// Insert an instruction into the entry preamble (dominates everything).
    fn emit_preamble(&mut self, i: Inst) {
        let at = self.preamble_len;
        self.f.block_mut(BlockId(0)).insts.insert(at, i);
        self.preamble_len += 1;
    }

    fn set_term(&mut self, b: BlockId, t: Terminator) {
        self.f.block_mut(b).term = t;
    }

    fn param_vreg(&mut self, id: ParamId) -> VReg {
        if let Some(r) = self.param_reg[id.0 as usize] {
            return r;
        }
        let hp = &self.hir.params[id.0 as usize];
        let ty = ir_ty(hp.ty);
        let r = self.f.new_vreg(ty);
        let off = self.param_off[id.0 as usize];
        self.emit_preamble(Inst::Ld {
            space: Space::Param,
            ty,
            dst: r,
            addr: Address::abs(off as i64),
        });
        self.param_reg[id.0 as usize] = Some(r);
        r
    }

    fn special_vreg(&mut self, b: BuiltinVar, d: Dim3) -> VReg {
        if let Some(r) = self.special_reg.get(&(b, d)) {
            return *r;
        }
        let reg = match (b, d) {
            (BuiltinVar::ThreadIdx, Dim3::X) => SpecialReg::TidX,
            (BuiltinVar::ThreadIdx, Dim3::Y) => SpecialReg::TidY,
            (BuiltinVar::ThreadIdx, Dim3::Z) => SpecialReg::TidZ,
            (BuiltinVar::BlockIdx, Dim3::X) => SpecialReg::CtaIdX,
            (BuiltinVar::BlockIdx, Dim3::Y) => SpecialReg::CtaIdY,
            (BuiltinVar::BlockIdx, Dim3::Z) => SpecialReg::CtaIdZ,
            (BuiltinVar::BlockDim, Dim3::X) => SpecialReg::NtidX,
            (BuiltinVar::BlockDim, Dim3::Y) => SpecialReg::NtidY,
            (BuiltinVar::BlockDim, Dim3::Z) => SpecialReg::NtidZ,
            (BuiltinVar::GridDim, Dim3::X) => SpecialReg::NctaIdX,
            (BuiltinVar::GridDim, Dim3::Y) => SpecialReg::NctaIdY,
            (BuiltinVar::GridDim, Dim3::Z) => SpecialReg::NctaIdZ,
        };
        let r = self.f.new_vreg(Ty::U32);
        self.emit_preamble(Inst::Special { dst: r, reg });
        self.special_reg.insert((b, d), r);
        r
    }

    /// Evaluate a Bool expression to a predicate register.
    fn pred(&mut self, e: &HExpr) -> Result<VReg, String> {
        let o = self.expr(e)?;
        match o {
            Operand::Reg(r) => Ok(r),
            Operand::ImmI(v) => {
                // A constant predicate that survived folding: materialize.
                let r = self.f.new_vreg(Ty::Pred);
                self.emit(Inst::Setp {
                    cmp: CmpOp::Ne,
                    ty: Ty::S32,
                    dst: r,
                    a: Operand::ImmI(v),
                    b: Operand::ImmI(0),
                });
                Ok(r)
            }
            Operand::ImmF(_) => Err("float used as predicate".into()),
        }
    }

    // ---- expressions ----

    fn expr(&mut self, e: &HExpr) -> Result<Operand, String> {
        Ok(match e {
            HExpr::IntLit { value, .. } => Operand::ImmI(*value),
            HExpr::FloatLit(v) => Operand::ImmF(*v),
            HExpr::Local(id, _) => {
                Operand::Reg(*self.local_reg.get(id).ok_or("array local read as scalar")?)
            }
            HExpr::Param(id, _) => Operand::Reg(self.param_vreg(*id)),
            HExpr::Builtin(b, d) => Operand::Reg(self.special_vreg(*b, *d)),
            HExpr::Unary(op, ty, a) => {
                let t = ir_ty(*ty);
                let a = self.expr(a)?;
                let dst = self.f.new_vreg(t);
                let o = match op {
                    HUnOp::Neg => UnOp::Neg,
                    HUnOp::BitNot => UnOp::Not,
                };
                self.emit(Inst::Un {
                    op: o,
                    ty: t,
                    dst,
                    a,
                });
                Operand::Reg(dst)
            }
            HExpr::Binary(op, ty, a, b) => {
                let t = ir_ty(*ty);
                let a = self.expr(a)?;
                let b = self.expr(b)?;
                let dst = self.f.new_vreg(t);
                let o = match op {
                    HBinOp::Add => BinOp::Add,
                    HBinOp::Sub => BinOp::Sub,
                    HBinOp::Mul => BinOp::Mul,
                    HBinOp::Div => BinOp::Div,
                    HBinOp::Rem => BinOp::Rem,
                    HBinOp::Shl => BinOp::Shl,
                    HBinOp::Shr => BinOp::Shr,
                    HBinOp::And => BinOp::And,
                    HBinOp::Or => BinOp::Or,
                    HBinOp::Xor => BinOp::Xor,
                };
                self.emit(Inst::Bin {
                    op: o,
                    ty: t,
                    dst,
                    a,
                    b,
                });
                Operand::Reg(dst)
            }
            HExpr::Cmp(c, ty, a, b) => {
                let t = ir_ty(*ty);
                let a = self.expr(a)?;
                let b = self.expr(b)?;
                let dst = self.f.new_vreg(Ty::Pred);
                let cmp = match c {
                    HCmp::Eq => CmpOp::Eq,
                    HCmp::Ne => CmpOp::Ne,
                    HCmp::Lt => CmpOp::Lt,
                    HCmp::Le => CmpOp::Le,
                    HCmp::Gt => CmpOp::Gt,
                    HCmp::Ge => CmpOp::Ge,
                };
                self.emit(Inst::Setp {
                    cmp,
                    ty: t,
                    dst,
                    a,
                    b,
                });
                Operand::Reg(dst)
            }
            HExpr::LogAnd(a, b) => {
                let pa = self.pred(a)?;
                let pb = self.pred(b)?;
                let dst = self.f.new_vreg(Ty::Pred);
                self.emit(Inst::Bin {
                    op: BinOp::And,
                    ty: Ty::Pred,
                    dst,
                    a: pa.into(),
                    b: pb.into(),
                });
                Operand::Reg(dst)
            }
            HExpr::LogOr(a, b) => {
                let pa = self.pred(a)?;
                let pb = self.pred(b)?;
                let dst = self.f.new_vreg(Ty::Pred);
                self.emit(Inst::Bin {
                    op: BinOp::Or,
                    ty: Ty::Pred,
                    dst,
                    a: pa.into(),
                    b: pb.into(),
                });
                Operand::Reg(dst)
            }
            HExpr::LogNot(a) => {
                let p = self.pred(a)?;
                let dst = self.f.new_vreg(Ty::Pred);
                self.emit(Inst::Un {
                    op: UnOp::Not,
                    ty: Ty::Pred,
                    dst,
                    a: p.into(),
                });
                Operand::Reg(dst)
            }
            HExpr::Cond(c, a, b, ty) => {
                let p = self.pred(c)?;
                let t = ir_ty(*ty);
                let a = self.expr(a)?;
                let b = self.expr(b)?;
                let dst = self.f.new_vreg(t);
                self.emit(Inst::Selp {
                    ty: t,
                    dst,
                    a,
                    b,
                    pred: p,
                });
                Operand::Reg(dst)
            }
            HExpr::Load(place, ty) => self.load_place(place, *ty)?,
            HExpr::ConstElem(id, idx, elem) => {
                let base = self.const_off[id.0 as usize];
                let addr = self.elem_address(idx, base as i64)?;
                let t = elem_ty(*elem);
                let dst = self.f.new_vreg(t);
                self.emit(Inst::Ld {
                    space: Space::Const,
                    ty: t,
                    dst,
                    addr,
                });
                Operand::Reg(dst)
            }
            HExpr::TexFetch(id, idx, elem) => {
                let i = self.expr(idx)?;
                let t = elem_ty(*elem);
                let dst = self.f.new_vreg(t);
                self.emit(Inst::Tex {
                    ty: t,
                    dst,
                    tex: id.0,
                    idx: i,
                });
                Operand::Reg(dst)
            }
            HExpr::Call(fun, args, ty) => {
                let t = ir_ty(*ty);
                let vals: Result<Vec<Operand>, String> =
                    args.iter().map(|a| self.expr(a)).collect();
                let vals = vals?;
                let dst = self.f.new_vreg(t);
                match fun {
                    BuiltinFn::Sqrtf => self.emit(Inst::Un {
                        op: UnOp::Sqrt,
                        ty: t,
                        dst,
                        a: vals[0],
                    }),
                    BuiltinFn::Rsqrtf => self.emit(Inst::Un {
                        op: UnOp::Rsqrt,
                        ty: t,
                        dst,
                        a: vals[0],
                    }),
                    BuiltinFn::Fabsf | BuiltinFn::AbsI => self.emit(Inst::Un {
                        op: UnOp::Abs,
                        ty: t,
                        dst,
                        a: vals[0],
                    }),
                    BuiltinFn::Floorf => self.emit(Inst::Un {
                        op: UnOp::Floor,
                        ty: t,
                        dst,
                        a: vals[0],
                    }),
                    BuiltinFn::Fminf | BuiltinFn::MinI | BuiltinFn::MinU => self.emit(Inst::Bin {
                        op: BinOp::Min,
                        ty: t,
                        dst,
                        a: vals[0],
                        b: vals[1],
                    }),
                    BuiltinFn::Fmaxf | BuiltinFn::MaxI | BuiltinFn::MaxU => self.emit(Inst::Bin {
                        op: BinOp::Max,
                        ty: t,
                        dst,
                        a: vals[0],
                        b: vals[1],
                    }),
                    BuiltinFn::Mul24 | BuiltinFn::UMul24 => self.emit(Inst::Bin {
                        op: BinOp::Mul24,
                        ty: t,
                        dst,
                        a: vals[0],
                        b: vals[1],
                    }),
                }
                Operand::Reg(dst)
            }
            HExpr::Cast { to, from, val } => {
                let v = self.expr(val)?;
                let (tt, ft) = (ir_ty(*to), ir_ty(*from));
                if tt == ft {
                    return Ok(v);
                }
                match (*from, *to) {
                    // Reinterpreting int↔uint is free.
                    (HTy::Int, HTy::UInt) | (HTy::UInt, HTy::Int) => v,
                    (HTy::Bool, HTy::Int | HTy::UInt | HTy::Float) => {
                        let p = self.pred(val)?;
                        let dst = self.f.new_vreg(tt);
                        let (one, zero) = if *to == HTy::Float {
                            (Operand::ImmF(1.0), Operand::ImmF(0.0))
                        } else {
                            (Operand::ImmI(1), Operand::ImmI(0))
                        };
                        self.emit(Inst::Selp {
                            ty: tt,
                            dst,
                            a: one,
                            b: zero,
                            pred: p,
                        });
                        Operand::Reg(dst)
                    }
                    _ => {
                        let dst = self.f.new_vreg(tt);
                        self.emit(Inst::Cvt {
                            dst_ty: tt,
                            src_ty: ft,
                            dst,
                            src: v,
                        });
                        Operand::Reg(dst)
                    }
                }
            }
            HExpr::PtrAdd { ptr, offset, elem } => {
                let p = self.expr(ptr)?;
                let o = self.expr(offset)?;
                let pt = Ty::Ptr(Space::Global);
                match o {
                    Operand::ImmI(c) => {
                        // Constant offset: fold into a single add (or into
                        // the pointer immediate itself).
                        let byte = c * elem.size_bytes() as i64;
                        match p {
                            Operand::ImmI(pv) => Operand::ImmI(pv + byte),
                            _ => {
                                let dst = self.f.new_vreg(pt);
                                self.emit(Inst::Bin {
                                    op: BinOp::Add,
                                    ty: pt,
                                    dst,
                                    a: p,
                                    b: Operand::ImmI(byte),
                                });
                                Operand::Reg(dst)
                            }
                        }
                    }
                    _ => {
                        let scaled = self.f.new_vreg(Ty::S32);
                        self.emit(Inst::Bin {
                            op: BinOp::Mul,
                            ty: Ty::S32,
                            dst: scaled,
                            a: o,
                            b: Operand::ImmI(elem.size_bytes() as i64),
                        });
                        let dst = self.f.new_vreg(pt);
                        self.emit(Inst::Bin {
                            op: BinOp::Add,
                            ty: pt,
                            dst,
                            a: p,
                            b: scaled.into(),
                        });
                        Operand::Reg(dst)
                    }
                }
            }
        })
    }

    /// Compute an element address `base_byte_off + idx*4`.
    fn elem_address(&mut self, idx: &HExpr, base: i64) -> Result<Address, String> {
        let i = self.expr(idx)?;
        Ok(match i {
            Operand::ImmI(c) => Address::abs(base + c * 4),
            Operand::Reg(r) => {
                let scaled = self.f.new_vreg(Ty::S32);
                self.emit(Inst::Bin {
                    op: BinOp::Mul,
                    ty: Ty::S32,
                    dst: scaled,
                    a: r.into(),
                    b: Operand::ImmI(4),
                });
                Address::reg_off(scaled, base)
            }
            Operand::ImmF(_) => return Err("float index".into()),
        })
    }

    fn load_place(&mut self, p: &Place, ty: HTy) -> Result<Operand, String> {
        Ok(match p {
            Place::Local(id) => Operand::Reg(*self.local_reg.get(id).ok_or("unlowered local")?),
            Place::LocalElem(id, idx) => {
                let base = *self.local_off.get(id).ok_or("unlowered local array")? as i64;
                let addr = self.elem_address(idx, base)?;
                let t = ir_ty(ty);
                let dst = self.f.new_vreg(t);
                self.emit(Inst::Ld {
                    space: Space::Local,
                    ty: t,
                    dst,
                    addr,
                });
                Operand::Reg(dst)
            }
            Place::SharedElem(id, idx) => {
                let base = self.shared_off[id.0 as usize] as i64;
                let addr = self.elem_address(idx, base)?;
                let t = ir_ty(ty);
                let dst = self.f.new_vreg(t);
                self.emit(Inst::Ld {
                    space: Space::Shared,
                    ty: t,
                    dst,
                    addr,
                });
                Operand::Reg(dst)
            }
            Place::Deref { ptr, elem } => {
                let pv = self.expr(ptr)?;
                let t = elem_ty(*elem);
                let dst = self.f.new_vreg(t);
                let addr = match pv {
                    Operand::ImmI(a) => Address::abs(a),
                    Operand::Reg(r) => Address::reg(r),
                    Operand::ImmF(_) => return Err("float pointer".into()),
                };
                self.emit(Inst::Ld {
                    space: Space::Global,
                    ty: t,
                    dst,
                    addr,
                });
                Operand::Reg(dst)
            }
        })
    }

    // ---- statements ----

    fn stmts(&mut self, stmts: &[HStmt]) -> Result<(), String> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &HStmt) -> Result<(), String> {
        match s {
            HStmt::Assign { place, value } => {
                let v = self.expr(value)?;
                match place {
                    Place::Local(id) => {
                        let r = *self.local_reg.get(id).ok_or("unlowered local")?;
                        let ty = self.f.vreg_types[r.0 as usize];
                        // If the value was just computed into a fresh
                        // temporary by the immediately preceding
                        // instruction, retarget that instruction to write
                        // the local's register directly instead of
                        // emitting a copy (what a real register allocator
                        // does; avoids a dependent mov after every load).
                        if !self.try_retarget(v, r) {
                            self.emit(Inst::Mov { ty, dst: r, src: v });
                        }
                    }
                    Place::LocalElem(id, idx) => {
                        let base = *self.local_off.get(id).ok_or("unlowered array")? as i64;
                        let addr = self.elem_address(idx, base)?;
                        let ty = ir_ty(value.ty());
                        self.emit(Inst::St {
                            space: Space::Local,
                            ty,
                            addr,
                            src: v,
                        });
                    }
                    Place::SharedElem(id, idx) => {
                        let base = self.shared_off[id.0 as usize] as i64;
                        let addr = self.elem_address(idx, base)?;
                        let ty = ir_ty(value.ty());
                        self.emit(Inst::St {
                            space: Space::Shared,
                            ty,
                            addr,
                            src: v,
                        });
                    }
                    Place::Deref { ptr, elem } => {
                        let pv = self.expr(ptr)?;
                        let addr = match pv {
                            Operand::ImmI(a) => Address::abs(a),
                            Operand::Reg(r) => Address::reg(r),
                            Operand::ImmF(_) => return Err("float pointer".into()),
                        };
                        self.emit(Inst::St {
                            space: Space::Global,
                            ty: elem_ty(*elem),
                            addr,
                            src: v,
                        });
                    }
                }
                Ok(())
            }
            HStmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let p = self.pred(cond)?;
                let then_b = self.new_block();
                let join_b = self.new_block();
                let else_b = if else_s.is_empty() {
                    join_b
                } else {
                    self.new_block()
                };
                let cur = self.cur;
                self.set_term(
                    cur,
                    Terminator::CondBr {
                        pred: p,
                        negate: false,
                        then_t: then_b,
                        else_t: else_b,
                    },
                );
                self.cur = then_b;
                self.stmts(then_s)?;
                let end_then = self.cur;
                self.set_term(end_then, Terminator::Br { target: join_b });
                if !else_s.is_empty() {
                    self.cur = else_b;
                    self.stmts(else_s)?;
                    let end_else = self.cur;
                    self.set_term(end_else, Terminator::Br { target: join_b });
                }
                self.cur = join_b;
                Ok(())
            }
            HStmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.stmts(init)?;
                let header = self.new_block();
                let body_b = self.new_block();
                let step_b = self.new_block();
                let exit_b = self.new_block();
                let cur = self.cur;
                self.set_term(cur, Terminator::Br { target: header });
                self.cur = header;
                match cond {
                    Some(c) => {
                        let p = self.pred(c)?;
                        let h = self.cur;
                        self.set_term(
                            h,
                            Terminator::CondBr {
                                pred: p,
                                negate: false,
                                then_t: body_b,
                                else_t: exit_b,
                            },
                        );
                    }
                    None => {
                        let h = self.cur;
                        self.set_term(h, Terminator::Br { target: body_b });
                    }
                }
                self.loop_stack.push((step_b, exit_b));
                self.cur = body_b;
                self.stmts(body)?;
                let end_body = self.cur;
                self.set_term(end_body, Terminator::Br { target: step_b });
                self.cur = step_b;
                self.stmts(step)?;
                let end_step = self.cur;
                self.set_term(end_step, Terminator::Br { target: header });
                self.loop_stack.pop();
                self.cur = exit_b;
                Ok(())
            }
            HStmt::While { cond, body } => {
                let header = self.new_block();
                let body_b = self.new_block();
                let exit_b = self.new_block();
                let cur = self.cur;
                self.set_term(cur, Terminator::Br { target: header });
                self.cur = header;
                let p = self.pred(cond)?;
                let h = self.cur;
                self.set_term(
                    h,
                    Terminator::CondBr {
                        pred: p,
                        negate: false,
                        then_t: body_b,
                        else_t: exit_b,
                    },
                );
                self.loop_stack.push((header, exit_b));
                self.cur = body_b;
                self.stmts(body)?;
                let end_body = self.cur;
                self.set_term(end_body, Terminator::Br { target: header });
                self.loop_stack.pop();
                self.cur = exit_b;
                Ok(())
            }
            HStmt::DoWhile { body, cond } => {
                let body_b = self.new_block();
                let cond_b = self.new_block();
                let exit_b = self.new_block();
                let cur = self.cur;
                self.set_term(cur, Terminator::Br { target: body_b });
                self.loop_stack.push((cond_b, exit_b));
                self.cur = body_b;
                self.stmts(body)?;
                let end_body = self.cur;
                self.set_term(end_body, Terminator::Br { target: cond_b });
                self.cur = cond_b;
                let p = self.pred(cond)?;
                let c = self.cur;
                self.set_term(
                    c,
                    Terminator::CondBr {
                        pred: p,
                        negate: false,
                        then_t: body_b,
                        else_t: exit_b,
                    },
                );
                self.loop_stack.pop();
                self.cur = exit_b;
                Ok(())
            }
            HStmt::Break => {
                let (_, brk) = *self.loop_stack.last().ok_or("break outside loop")?;
                let cur = self.cur;
                self.set_term(cur, Terminator::Br { target: brk });
                self.cur = self.new_block(); // unreachable continuation
                Ok(())
            }
            HStmt::Continue => {
                let (cont, _) = *self.loop_stack.last().ok_or("continue outside loop")?;
                let cur = self.cur;
                self.set_term(cur, Terminator::Br { target: cont });
                self.cur = self.new_block();
                Ok(())
            }
            HStmt::Return => {
                let cur = self.cur;
                let exit = self.exit;
                self.set_term(cur, Terminator::Br { target: exit });
                self.cur = self.new_block();
                Ok(())
            }
            HStmt::Sync => {
                self.emit(Inst::Bar);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CodegenOptions};
    use ks_lang::frontend;

    fn lower(src: &str, defs: &[(&str, &str)], optimize: bool) -> Module {
        let defs: Vec<(String, String)> = defs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        let prog = frontend(src, &defs).unwrap();
        compile(
            &prog,
            &CodegenOptions {
                optimize,
                ..Default::default()
            },
        )
        .unwrap()
    }

    const MATHTEST: &str = r#"
        #ifndef LOOP_COUNT
        #define LOOP_COUNT loopCount
        #endif
        #ifndef ARG_A
        #define ARG_A argA
        #endif
        #ifndef ARG_B
        #define ARG_B argB
        #endif
        __global__ void mathTest(int* in, int* out, int argA, int argB, int loopCount) {
            int acc = 0;
            const unsigned int stride = ARG_A * ARG_B;
            const unsigned int offset = blockIdx.x * blockDim.x + threadIdx.x;
            for (int i = 0; i < LOOP_COUNT; i++) {
                acc += *(in + offset + i * stride);
            }
            *(out + offset) = acc;
            return;
        }
    "#;

    #[test]
    fn runtime_evaluated_kernel_has_control_flow() {
        let m = lower(MATHTEST, &[], true);
        let f = m.function("mathTest").unwrap();
        assert!(
            f.blocks.len() > 3,
            "rolled loop needs header/body/step blocks"
        );
        // Parameter loads present.
        let has_param_ld = f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Ld {
                    space: Space::Param,
                    ..
                }
            )
        });
        assert!(has_param_ld);
    }

    #[test]
    fn specialized_kernel_is_straight_line() {
        let m = lower(
            MATHTEST,
            &[("LOOP_COUNT", "5"), ("ARG_A", "3"), ("ARG_B", "7")],
            true,
        );
        let f = m.function("mathTest").unwrap();
        // Fully unrolled: no conditional branches anywhere.
        let has_condbr = f
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::CondBr { .. }));
        assert!(!has_condbr, "specialized kernel must have no control flow");
        // Exactly 5 global loads and 1 store.
        let loads = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    Inst::Ld {
                        space: Space::Global,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(loads, 5);
    }

    #[test]
    fn shared_memory_lowering() {
        let src = r#"
            __global__ void k(float* in, float* out) {
                __shared__ float tile[8][4];
                tile[threadIdx.y][threadIdx.x] = in[threadIdx.x];
                __syncthreads();
                out[threadIdx.x] = tile[0][threadIdx.x];
            }
        "#;
        let m = lower(src, &[], true);
        let f = m.function("k").unwrap();
        assert_eq!(f.shared_bytes(), 8 * 4 * 4);
        let insts: Vec<&Inst> = f.blocks.iter().flat_map(|b| &b.insts).collect();
        assert!(insts.iter().any(|i| matches!(
            i,
            Inst::St {
                space: Space::Shared,
                ..
            }
        )));
        assert!(insts.iter().any(|i| matches!(i, Inst::Bar)));
        assert!(insts.iter().any(|i| matches!(
            i,
            Inst::Ld {
                space: Space::Shared,
                ..
            }
        )));
    }

    #[test]
    fn dynamic_local_array_uses_local_space() {
        let src = r#"
            __global__ void k(float* out, int n) {
                float buf[16];
                for (int i = 0; i < n; i++) { buf[i & 15] = (float)i; }
                out[0] = buf[0];
            }
        "#;
        let m = lower(src, &[], true);
        let f = m.function("k").unwrap();
        assert_eq!(f.local_bytes, 64);
        let has_local_st = f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::St {
                    space: Space::Local,
                    ..
                }
            )
        });
        assert!(has_local_st);
    }

    #[test]
    fn scalarized_array_needs_no_local_space() {
        let src = r#"
            __global__ void k(float* in, float* out) {
                float acc[4];
                for (int r = 0; r < 4; r++) { acc[r] = in[r]; }
                out[0] = acc[0] + acc[1] + acc[2] + acc[3];
            }
        "#;
        let m = lower(src, &[], true);
        let f = m.function("k").unwrap();
        assert_eq!(f.local_bytes, 0, "register blocking: no local memory");
    }

    #[test]
    fn constant_memory_lowering() {
        let src = r#"
            __constant__ float coef[16];
            __global__ void k(float* out) {
                out[threadIdx.x] = coef[threadIdx.x];
            }
        "#;
        let m = lower(src, &[], true);
        assert_eq!(m.const_bytes(), 64);
        let f = m.function("k").unwrap();
        let has_const_ld = f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Ld {
                    space: Space::Const,
                    ..
                }
            )
        });
        assert!(has_const_ld);
    }

    #[test]
    fn specialized_pointer_becomes_absolute_address() {
        let src = r#"
            __global__ void k(float* out) {
                float* p = (float*)PTR_IN;
                out[0] = p[2];
            }
        "#;
        let m = lower(src, &[("PTR_IN", "0x10000")], true);
        let f = m.function("k").unwrap();
        let abs_load = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .find_map(|i| match i {
                Inst::Ld {
                    space: Space::Global,
                    addr,
                    ..
                } if addr.base.is_none() => Some(addr.offset),
                _ => None,
            });
        assert_eq!(abs_load, Some(0x10000 + 8));
    }

    #[test]
    fn verifier_accepts_all_lowered_modules() {
        for (src, defs) in [(MATHTEST, vec![("LOOP_COUNT", "4")]), (MATHTEST, vec![])] {
            let m = lower(src, &defs, true);
            assert!(ks_ir::verify_module(&m).is_empty());
        }
    }
}
