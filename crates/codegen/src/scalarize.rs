//! Local-array scalarization — the mechanism behind *register blocking*.
//!
//! GPUs cannot indirectly address registers (§2.4), so a per-thread array
//! can only live in registers when every access uses a compile-time-constant
//! index. After specialization + unrolling that is the case, and this pass
//! rewrites each element to its own scalar local (which lowers to a virtual
//! register). Without specialization the indices stay dynamic and the array
//! lowers to high-latency local memory — reproducing the paper's performance
//! cliff for run-time-evaluated register blocking.

use ks_lang::hir::*;
use std::collections::HashMap;

/// Scalarize every eligible local array of `f` (length ≤ `cap`).
pub fn scalarize_func(f: &mut HFunc, cap: u32) {
    let candidates: Vec<LocalId> = f
        .locals
        .iter()
        .enumerate()
        .filter(|(_, l)| l.array_len > 0 && l.array_len <= cap)
        .map(|(i, _)| LocalId(i as u32))
        .filter(|id| all_indices_const(&f.body, *id))
        .collect();

    for id in candidates {
        let (elem, len, name) = {
            let l = &f.locals[id.0 as usize];
            (l.elem, l.array_len, l.name.clone())
        };
        let ty = HTy::from_elem(elem);
        // One fresh scalar local per element.
        let mut map = HashMap::new();
        for i in 0..len {
            let nid = LocalId(f.locals.len() as u32);
            f.locals.push(HLocal {
                name: format!("{name}.{i}"),
                elem,
                ty,
                array_len: 0,
            });
            map.insert(i as i64, nid);
        }
        // Mark the original array as scalarized (len 0 ⇒ no local memory).
        f.locals[id.0 as usize].array_len = 0;
        rewrite_stmts(&mut f.body, id, &map, ty);
    }
}

fn const_idx(e: &HExpr) -> Option<i64> {
    match e {
        HExpr::IntLit { value, .. } => Some(*value),
        _ => None,
    }
}

fn all_indices_const(stmts: &[HStmt], id: LocalId) -> bool {
    fn expr_ok(e: &HExpr, id: LocalId) -> bool {
        match e {
            HExpr::Load(p, _) => place_ok(p, id),
            HExpr::Unary(_, _, a) | HExpr::LogNot(a) | HExpr::Cast { val: a, .. } => expr_ok(a, id),
            HExpr::Binary(_, _, a, b)
            | HExpr::Cmp(_, _, a, b)
            | HExpr::LogAnd(a, b)
            | HExpr::LogOr(a, b) => expr_ok(a, id) && expr_ok(b, id),
            HExpr::Cond(c, a, b, _) => expr_ok(c, id) && expr_ok(a, id) && expr_ok(b, id),
            HExpr::ConstElem(_, i, _) | HExpr::TexFetch(_, i, _) => expr_ok(i, id),
            HExpr::Call(_, args, _) => args.iter().all(|a| expr_ok(a, id)),
            HExpr::PtrAdd { ptr, offset, .. } => expr_ok(ptr, id) && expr_ok(offset, id),
            _ => true,
        }
    }
    fn place_ok(p: &Place, id: LocalId) -> bool {
        match p {
            Place::LocalElem(v, idx) if *v == id => const_idx(idx).is_some(),
            Place::LocalElem(_, idx) | Place::SharedElem(_, idx) => expr_ok(idx, id),
            Place::Deref { ptr, .. } => expr_ok(ptr, id),
            Place::Local(_) => true,
        }
    }
    fn stmt_ok(s: &HStmt, id: LocalId) -> bool {
        match s {
            HStmt::Assign { place, value } => place_ok(place, id) && expr_ok(value, id),
            HStmt::If {
                cond,
                then_s,
                else_s,
            } => {
                expr_ok(cond, id)
                    && then_s.iter().all(|s| stmt_ok(s, id))
                    && else_s.iter().all(|s| stmt_ok(s, id))
            }
            HStmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                init.iter().all(|s| stmt_ok(s, id))
                    && cond.as_ref().is_none_or(|c| expr_ok(c, id))
                    && step.iter().all(|s| stmt_ok(s, id))
                    && body.iter().all(|s| stmt_ok(s, id))
            }
            HStmt::While { cond, body } => expr_ok(cond, id) && body.iter().all(|s| stmt_ok(s, id)),
            HStmt::DoWhile { body, cond } => {
                expr_ok(cond, id) && body.iter().all(|s| stmt_ok(s, id))
            }
            _ => true,
        }
    }
    stmts.iter().all(|s| stmt_ok(s, id))
}

fn rewrite_stmts(stmts: &mut [HStmt], id: LocalId, map: &HashMap<i64, LocalId>, ty: HTy) {
    for s in stmts {
        match s {
            HStmt::Assign { place, value } => {
                rewrite_place(place, id, map);
                rewrite_expr(value, id, map, ty);
            }
            HStmt::If {
                cond,
                then_s,
                else_s,
            } => {
                rewrite_expr(cond, id, map, ty);
                rewrite_stmts(then_s, id, map, ty);
                rewrite_stmts(else_s, id, map, ty);
            }
            HStmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                rewrite_stmts(init, id, map, ty);
                if let Some(c) = cond {
                    rewrite_expr(c, id, map, ty);
                }
                rewrite_stmts(step, id, map, ty);
                rewrite_stmts(body, id, map, ty);
            }
            HStmt::While { cond, body } => {
                rewrite_expr(cond, id, map, ty);
                rewrite_stmts(body, id, map, ty);
            }
            HStmt::DoWhile { body, cond } => {
                rewrite_stmts(body, id, map, ty);
                rewrite_expr(cond, id, map, ty);
            }
            _ => {}
        }
    }
}

fn rewrite_place(p: &mut Place, id: LocalId, map: &HashMap<i64, LocalId>) {
    match p {
        Place::LocalElem(v, idx) if *v == id => {
            let i = const_idx(idx).expect("checked const");
            // Out-of-bounds constant indices keep element 0's register —
            // undefined behaviour in CUDA too; the interpreter would have
            // trapped on the memory form, so clamp deterministically.
            let nid = map
                .get(&i)
                .or_else(|| map.get(&0))
                .expect("non-empty array");
            *p = Place::Local(*nid);
        }
        Place::LocalElem(_, idx) | Place::SharedElem(_, idx) => {
            // Nested loads inside the index may reference the array.
            let _ = idx;
        }
        _ => {}
    }
}

fn rewrite_expr(e: &mut HExpr, id: LocalId, map: &HashMap<i64, LocalId>, ty: HTy) {
    match e {
        HExpr::Load(p, _) => {
            rewrite_place_rec(p, id, map, ty);
            if let Place::Local(nid) = p {
                // If this was our array element, the load becomes a scalar
                // local read with the same type.
                let nid = *nid;
                if map.values().any(|v| *v == nid) {
                    *e = HExpr::Local(nid, ty);
                }
            }
        }
        HExpr::Unary(_, _, a) | HExpr::LogNot(a) | HExpr::Cast { val: a, .. } => {
            rewrite_expr(a, id, map, ty)
        }
        HExpr::Binary(_, _, a, b)
        | HExpr::Cmp(_, _, a, b)
        | HExpr::LogAnd(a, b)
        | HExpr::LogOr(a, b) => {
            rewrite_expr(a, id, map, ty);
            rewrite_expr(b, id, map, ty);
        }
        HExpr::Cond(c, a, b, _) => {
            rewrite_expr(c, id, map, ty);
            rewrite_expr(a, id, map, ty);
            rewrite_expr(b, id, map, ty);
        }
        HExpr::ConstElem(_, i, _) | HExpr::TexFetch(_, i, _) => rewrite_expr(i, id, map, ty),
        HExpr::Call(_, args, _) => {
            for a in args {
                rewrite_expr(a, id, map, ty);
            }
        }
        HExpr::PtrAdd { ptr, offset, .. } => {
            rewrite_expr(ptr, id, map, ty);
            rewrite_expr(offset, id, map, ty);
        }
        _ => {}
    }
}

fn rewrite_place_rec(p: &mut Place, id: LocalId, map: &HashMap<i64, LocalId>, ty: HTy) {
    match p {
        Place::LocalElem(v, idx) if *v == id => {
            let i = const_idx(idx).expect("checked const");
            let nid = map
                .get(&i)
                .or_else(|| map.get(&0))
                .expect("non-empty array");
            *p = Place::Local(*nid);
        }
        Place::LocalElem(_, idx) | Place::SharedElem(_, idx) => rewrite_expr(idx, id, map, ty),
        Place::Deref { ptr, .. } => rewrite_expr(ptr, id, map, ty),
        Place::Local(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consteval::fold_func;
    use crate::unroll::unroll_func;
    use ks_lang::frontend;

    fn kernel(src: &str, defs: &[(&str, &str)]) -> HFunc {
        let defs: Vec<(String, String)> = defs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        frontend(src, &defs)
            .unwrap()
            .kernels
            .into_iter()
            .next()
            .unwrap()
    }

    /// The register-blocking pattern from the PIV kernel: an accumulator
    /// array indexed by an unrolled loop counter.
    #[test]
    fn register_blocked_accumulators_scalarize_when_specialized() {
        let src = r#"
            __global__ void k(float* in, float* out) {
                float acc[RB];
                for (int r = 0; r < RB; r++) { acc[r] = 0.0f; }
                for (int r = 0; r < RB; r++) { acc[r] += in[r]; }
                float total = 0.0f;
                for (int r = 0; r < RB; r++) { total += acc[r]; }
                out[0] = total;
            }
        "#;
        let mut f = kernel(src, &[("RB", "4")]);
        fold_func(&mut f);
        unroll_func(&mut f, 2048);
        scalarize_func(&mut f, 256);
        // Original array marked scalar; 4 new scalar locals added.
        assert_eq!(f.locals[0].array_len, 0);
        let scalars = f
            .locals
            .iter()
            .filter(|l| l.name.starts_with("acc."))
            .count();
        assert_eq!(scalars, 4);
        // No LocalElem places remain.
        fn no_elems(stmts: &[HStmt]) -> bool {
            stmts.iter().all(|s| match s {
                HStmt::Assign { place, .. } => !matches!(place, Place::LocalElem(..)),
                HStmt::If { then_s, else_s, .. } => no_elems(then_s) && no_elems(else_s),
                _ => true,
            })
        }
        assert!(no_elems(&f.body));
    }

    /// Without specialization the loop bound is a run-time parameter, the
    /// loop stays rolled, indices stay dynamic, and the array must remain
    /// in local memory.
    #[test]
    fn dynamic_indices_prevent_scalarization() {
        let src = r#"
            __global__ void k(float* in, float* out, int n) {
                float acc[8];
                for (int r = 0; r < n; r++) { acc[r & 7] += in[r]; }
                out[0] = acc[0];
            }
        "#;
        let mut f = kernel(src, &[]);
        fold_func(&mut f);
        unroll_func(&mut f, 2048);
        scalarize_func(&mut f, 256);
        assert_eq!(f.locals[0].array_len, 8, "array must stay in local memory");
    }

    #[test]
    fn cap_prevents_huge_scalarization() {
        let src = r#"
            __global__ void k(float* out) {
                float a[512];
                a[0] = 1.0f;
                out[0] = a[0];
            }
        "#;
        let mut f = kernel(src, &[]);
        scalarize_func(&mut f, 256);
        assert_eq!(f.locals[0].array_len, 512);
        scalarize_func(&mut f, 1024);
        assert_eq!(f.locals[0].array_len, 0);
    }
}
