//! Full loop unrolling for counted loops with compile-time-constant bounds.
//!
//! This is the headline specialization optimization: a `for` loop whose
//! init/bound/step folded to literals (because `LOOP_COUNT` et al. were
//! `-D`-defined) is replaced by straight-line copies of its body with the
//! induction variable substituted — producing control-flow-free PTX like
//! Appendix D. Loops with run-time bounds stay rolled and pay setup,
//! iteration, condition, and branch overhead.

use crate::consteval::{const_int, fold_stmts};
use ks_lang::hir::*;

/// Attempt to unroll every eligible loop in the kernel, to fixpoint
/// (substituting an outer induction variable can make an inner loop's
/// bounds constant).
pub fn unroll_func(f: &mut HFunc, limit: u32) {
    let locals: Vec<HTy> = f.locals.iter().map(|l| l.ty).collect();
    // Fold first so implicit conversions around literals (e.g. the `2` in
    // `s = s / 2` cast to unsigned) don't hide constant steps/bounds.
    f.body = fold_stmts(&f.body);
    let mut iterations = 0;
    loop {
        let (body, changed) = unroll_stmts(&f.body, limit, &locals);
        f.body = fold_stmts(&body);
        iterations += 1;
        if !changed || iterations > 64 {
            break;
        }
    }
}

fn unroll_stmts(stmts: &[HStmt], limit: u32, locals: &[HTy]) -> (Vec<HStmt>, bool) {
    let mut out = Vec::with_capacity(stmts.len());
    let mut changed = false;
    for s in stmts {
        match s {
            HStmt::For {
                init,
                cond,
                step,
                body,
                unroll,
            } => {
                if let Some(plan) = plan_unroll(init, cond.as_ref(), step, body, limit, *unroll) {
                    changed = true;
                    emit_unrolled(&plan, body, locals, &mut out);
                } else {
                    let (b, c) = unroll_stmts(body, limit, locals);
                    changed |= c;
                    out.push(HStmt::For {
                        init: init.clone(),
                        cond: cond.clone(),
                        step: step.clone(),
                        body: b,
                        unroll: *unroll,
                    });
                }
            }
            HStmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let (t, c1) = unroll_stmts(then_s, limit, locals);
                let (e, c2) = unroll_stmts(else_s, limit, locals);
                changed |= c1 | c2;
                out.push(HStmt::If {
                    cond: cond.clone(),
                    then_s: t,
                    else_s: e,
                });
            }
            HStmt::While { cond, body } => {
                let (b, c) = unroll_stmts(body, limit, locals);
                changed |= c;
                out.push(HStmt::While {
                    cond: cond.clone(),
                    body: b,
                });
            }
            HStmt::DoWhile { body, cond } => {
                let (b, c) = unroll_stmts(body, limit, locals);
                changed |= c;
                out.push(HStmt::DoWhile {
                    body: b,
                    cond: cond.clone(),
                });
            }
            other => out.push(other.clone()),
        }
    }
    (out, changed)
}

struct UnrollPlan {
    var: LocalId,
    var_ty: HTy,
    /// The literal value of the induction variable at each iteration.
    values: Vec<i64>,
}

/// Decide whether a loop can be fully unrolled. Requirements:
/// * init is exactly `var = <const>`,
/// * cond is `var <cmp> <const>` (or reversed),
/// * step is exactly `var = var + <const>` / `var - <const>`,
/// * the body does not reassign `var`, and has no `break`/`continue`
///   at this nesting level, no `return`,
/// * the trip count is positive and ≤ `limit` (a `#pragma unroll` lifts
///   the limit).
fn plan_unroll(
    init: &[HStmt],
    cond: Option<&HExpr>,
    step: &[HStmt],
    body: &[HStmt],
    limit: u32,
    pragma: Option<Option<u32>>,
) -> Option<UnrollPlan> {
    let [HStmt::Assign {
        place: Place::Local(var),
        value: init_v,
    }] = init
    else {
        return None;
    };
    let var = *var;
    let start = const_int(init_v)?;
    let cond = cond?;
    let HExpr::Cmp(cmp, cmp_ty, lhs, rhs) = cond else {
        return None;
    };
    // Normalize to `var <cmp> bound`.
    let (cmp, bound) = match (lhs.as_ref(), rhs.as_ref()) {
        (HExpr::Local(v, _), b) if *v == var => (*cmp, const_int(b)?),
        (b, HExpr::Local(v, _)) if *v == var => (swap_cmp(*cmp), const_int(b)?),
        _ => return None,
    };
    let [HStmt::Assign {
        place: Place::Local(sv),
        value: step_v,
    }] = step
    else {
        return None;
    };
    if *sv != var {
        return None;
    }
    // Arithmetic (i += c) and geometric (s /= 2, s >>= 1, s *= 2) steps —
    // the latter cover reduction-tree loops (§2.2).
    #[derive(Clone, Copy)]
    enum StepFn {
        Add(i64),
        Mul(i64),
        Div(i64),
        Shr(i64),
        Shl(i64),
    }
    let step_fn = match step_v {
        HExpr::Binary(op, _, a, b) => match (op, a.as_ref(), b.as_ref()) {
            (HBinOp::Add, HExpr::Local(v, _), d) if *v == var => StepFn::Add(const_int(d)?),
            (HBinOp::Add, d, HExpr::Local(v, _)) if *v == var => StepFn::Add(const_int(d)?),
            (HBinOp::Sub, HExpr::Local(v, _), d) if *v == var => StepFn::Add(-const_int(d)?),
            (HBinOp::Mul, HExpr::Local(v, _), d) if *v == var => StepFn::Mul(const_int(d)?),
            (HBinOp::Mul, d, HExpr::Local(v, _)) if *v == var => StepFn::Mul(const_int(d)?),
            (HBinOp::Div, HExpr::Local(v, _), d) if *v == var => StepFn::Div(const_int(d)?),
            (HBinOp::Shr, HExpr::Local(v, _), d) if *v == var => StepFn::Shr(const_int(d)?),
            (HBinOp::Shl, HExpr::Local(v, _), d) if *v == var => StepFn::Shl(const_int(d)?),
            _ => return None,
        },
        _ => return None,
    };
    match step_fn {
        StepFn::Add(0) | StepFn::Mul(1) | StepFn::Shr(0) | StepFn::Shl(0) => return None,
        StepFn::Mul(0) | StepFn::Div(0) => return None,
        StepFn::Div(1) => return None,
        _ => {}
    }
    if !body_allows_unroll(body, var) {
        return None;
    }
    // Simulate the loop counter.
    let unsigned = *cmp_ty == HTy::UInt;
    let effective_limit = if pragma.is_some() {
        limit.max(65536)
    } else {
        limit
    };
    let mut values = Vec::new();
    let mut v = start;
    loop {
        let cont = eval_cmp(cmp, v, bound, unsigned);
        if !cont {
            break;
        }
        values.push(v);
        if values.len() as u32 > effective_limit {
            return None;
        }
        let next = if unsigned {
            let u = v as u32;
            let r = match step_fn {
                StepFn::Add(d) => u.wrapping_add(d as u32),
                StepFn::Mul(d) => u.wrapping_mul(d as u32),
                StepFn::Div(d) => u / d as u32,
                StepFn::Shr(d) => u.wrapping_shr(d as u32 & 31),
                StepFn::Shl(d) => u.wrapping_shl(d as u32 & 31),
            };
            r as i64
        } else {
            let i = v as i32;
            let r = match step_fn {
                StepFn::Add(d) => i.wrapping_add(d as i32),
                StepFn::Mul(d) => i.wrapping_mul(d as i32),
                StepFn::Div(d) => i.wrapping_div(d as i32),
                StepFn::Shr(d) => i.wrapping_shr(d as u32 & 31),
                StepFn::Shl(d) => i.wrapping_shl(d as u32 & 31),
            };
            r as i64
        };
        if next == v {
            // Degenerate step (e.g. 0 / 2): cannot make progress.
            return None;
        }
        v = next;
    }
    let var_ty = HTy::Int; // the final-value assignment type; refined below
    Some(UnrollPlan {
        var,
        var_ty,
        values,
    })
}

fn swap_cmp(c: HCmp) -> HCmp {
    match c {
        HCmp::Lt => HCmp::Gt,
        HCmp::Le => HCmp::Ge,
        HCmp::Gt => HCmp::Lt,
        HCmp::Ge => HCmp::Le,
        other => other,
    }
}

fn eval_cmp(c: HCmp, a: i64, b: i64, unsigned: bool) -> bool {
    if unsigned {
        let (a, b) = (a as u32, b as u32);
        match c {
            HCmp::Eq => a == b,
            HCmp::Ne => a != b,
            HCmp::Lt => a < b,
            HCmp::Le => a <= b,
            HCmp::Gt => a > b,
            HCmp::Ge => a >= b,
        }
    } else {
        let (a, b) = (a as i32, b as i32);
        match c {
            HCmp::Eq => a == b,
            HCmp::Ne => a != b,
            HCmp::Lt => a < b,
            HCmp::Le => a <= b,
            HCmp::Gt => a > b,
            HCmp::Ge => a >= b,
        }
    }
}

/// The body may not reassign the induction variable, and may not contain
/// `break`/`continue` belonging to this loop, nor `return`.
fn body_allows_unroll(body: &[HStmt], var: LocalId) -> bool {
    fn check(stmts: &[HStmt], var: LocalId, top_level_loop: bool) -> bool {
        for s in stmts {
            match s {
                HStmt::Assign { place, .. } => {
                    if matches!(place, Place::Local(v) | Place::LocalElem(v, _) if *v == var) {
                        return false;
                    }
                }
                HStmt::Break | HStmt::Continue => {
                    if top_level_loop {
                        return false;
                    }
                }
                HStmt::Return => return false,
                HStmt::If { then_s, else_s, .. } => {
                    if !check(then_s, var, top_level_loop) || !check(else_s, var, top_level_loop) {
                        return false;
                    }
                }
                // Inner loops own their breaks/continues.
                HStmt::For {
                    init, step, body, ..
                } => {
                    if !check(init, var, top_level_loop)
                        || !check(step, var, false)
                        || !check(body, var, false)
                    {
                        return false;
                    }
                }
                HStmt::While { body, .. } | HStmt::DoWhile { body, .. } => {
                    if !check(body, var, false) {
                        return false;
                    }
                }
                HStmt::Sync => {}
            }
        }
        true
    }
    check(body, var, true)
}

fn emit_unrolled(plan: &UnrollPlan, body: &[HStmt], locals: &[HTy], out: &mut Vec<HStmt>) {
    let ty = locals
        .get(plan.var.0 as usize)
        .copied()
        .unwrap_or(plan.var_ty);
    for &v in &plan.values {
        let mut copy = body.to_vec();
        subst_stmts(&mut copy, plan.var, v, ty);
        out.extend(copy);
    }
}

fn subst_stmts(stmts: &mut [HStmt], var: LocalId, value: i64, ty: HTy) {
    for s in stmts {
        match s {
            HStmt::Assign { place, value: v } => {
                subst_place(place, var, value, ty);
                subst_expr(v, var, value, ty);
            }
            HStmt::If {
                cond,
                then_s,
                else_s,
            } => {
                subst_expr(cond, var, value, ty);
                subst_stmts(then_s, var, value, ty);
                subst_stmts(else_s, var, value, ty);
            }
            HStmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                subst_stmts(init, var, value, ty);
                if let Some(c) = cond {
                    subst_expr(c, var, value, ty);
                }
                subst_stmts(step, var, value, ty);
                subst_stmts(body, var, value, ty);
            }
            HStmt::While { cond, body } => {
                subst_expr(cond, var, value, ty);
                subst_stmts(body, var, value, ty);
            }
            HStmt::DoWhile { body, cond } => {
                subst_stmts(body, var, value, ty);
                subst_expr(cond, var, value, ty);
            }
            HStmt::Break | HStmt::Continue | HStmt::Return | HStmt::Sync => {}
        }
    }
}

fn subst_place(p: &mut Place, var: LocalId, value: i64, ty: HTy) {
    match p {
        Place::Local(_) => {}
        Place::LocalElem(_, idx) | Place::SharedElem(_, idx) => subst_expr(idx, var, value, ty),
        Place::Deref { ptr, .. } => subst_expr(ptr, var, value, ty),
    }
}

fn subst_expr(e: &mut HExpr, var: LocalId, value: i64, ty: HTy) {
    match e {
        HExpr::Local(v, _) if *v == var => {
            *e = HExpr::IntLit { value, ty };
        }
        HExpr::IntLit { .. }
        | HExpr::FloatLit(_)
        | HExpr::Local(..)
        | HExpr::Param(..)
        | HExpr::Builtin(..) => {}
        HExpr::Unary(_, _, a) | HExpr::LogNot(a) => subst_expr(a, var, value, ty),
        HExpr::Binary(_, _, a, b)
        | HExpr::Cmp(_, _, a, b)
        | HExpr::LogAnd(a, b)
        | HExpr::LogOr(a, b) => {
            subst_expr(a, var, value, ty);
            subst_expr(b, var, value, ty);
        }
        HExpr::Cond(c, a, b, _) => {
            subst_expr(c, var, value, ty);
            subst_expr(a, var, value, ty);
            subst_expr(b, var, value, ty);
        }
        HExpr::Load(p, _) => subst_place(p, var, value, ty),
        HExpr::ConstElem(_, idx, _) | HExpr::TexFetch(_, idx, _) => subst_expr(idx, var, value, ty),
        HExpr::Call(_, args, _) => {
            for a in args {
                subst_expr(a, var, value, ty);
            }
        }
        HExpr::Cast { val, .. } => subst_expr(val, var, value, ty),
        HExpr::PtrAdd { ptr, offset, .. } => {
            subst_expr(ptr, var, value, ty);
            subst_expr(offset, var, value, ty);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_lang::frontend;

    fn kernel(src: &str, defs: &[(&str, &str)]) -> HFunc {
        let defs: Vec<(String, String)> = defs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        frontend(src, &defs)
            .unwrap()
            .kernels
            .into_iter()
            .next()
            .unwrap()
    }

    fn count_loops(stmts: &[HStmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                HStmt::For { body, .. }
                | HStmt::While { body, .. }
                | HStmt::DoWhile { body, .. } => 1 + count_loops(body),
                HStmt::If { then_s, else_s, .. } => count_loops(then_s) + count_loops(else_s),
                _ => 0,
            })
            .sum()
    }

    fn count_assigns(stmts: &[HStmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                HStmt::Assign { .. } => 1,
                HStmt::For {
                    body, init, step, ..
                } => count_assigns(body) + count_assigns(init) + count_assigns(step),
                HStmt::If { then_s, else_s, .. } => count_assigns(then_s) + count_assigns(else_s),
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn specialized_loop_fully_unrolls() {
        let src = r#"
            __global__ void k(int* out) {
                int acc = 0;
                for (int i = 0; i < LOOP_COUNT; i++) { acc += i; }
                out[threadIdx.x] = acc;
            }
        "#;
        let mut f = kernel(src, &[("LOOP_COUNT", "5")]);
        unroll_func(&mut f, 2048);
        assert_eq!(count_loops(&f.body), 0);
        // acc init + 5 accumulations + the store-index assigns: at least 6
        assert!(count_assigns(&f.body) >= 6);
    }

    #[test]
    fn runtime_loop_stays_rolled() {
        let src = r#"
            __global__ void k(int* out, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) { acc += i; }
                out[threadIdx.x] = acc;
            }
        "#;
        let mut f = kernel(src, &[]);
        unroll_func(&mut f, 2048);
        assert_eq!(count_loops(&f.body), 1);
    }

    #[test]
    fn nested_loops_unroll_inside_out() {
        let src = r#"
            __global__ void k(int* out) {
                int acc = 0;
                for (int i = 0; i < 3; i++) {
                    for (int j = 0; j < 4; j++) { acc += i * j; }
                }
                out[0] = acc;
            }
        "#;
        let mut f = kernel(src, &[]);
        unroll_func(&mut f, 2048);
        assert_eq!(count_loops(&f.body), 0);
    }

    #[test]
    fn trip_limit_respected() {
        let src = r#"
            __global__ void k(int* out) {
                int acc = 0;
                for (int i = 0; i < 100; i++) { acc += i; }
                out[0] = acc;
            }
        "#;
        let mut f = kernel(src, &[]);
        unroll_func(&mut f, 10);
        assert_eq!(
            count_loops(&f.body),
            1,
            "loop over the limit must stay rolled"
        );
    }

    #[test]
    fn pragma_unroll_lifts_the_limit() {
        let src = r#"
            __global__ void k(int* out) {
                int acc = 0;
                #pragma unroll
                for (int i = 0; i < 100; i++) { acc += i; }
                out[0] = acc;
            }
        "#;
        let mut f = kernel(src, &[]);
        unroll_func(&mut f, 10); // limit below the trip count
        assert_eq!(count_loops(&f.body), 0, "#pragma unroll must force it");
    }

    #[test]
    fn break_prevents_unrolling() {
        let src = r#"
            __global__ void k(int* out, int n) {
                int acc = 0;
                for (int i = 0; i < 8; i++) { if (i == n) { break; } acc += i; }
                out[0] = acc;
            }
        "#;
        let mut f = kernel(src, &[]);
        unroll_func(&mut f, 2048);
        assert_eq!(count_loops(&f.body), 1);
    }

    #[test]
    fn downward_counting_loop() {
        let src = r#"
            __global__ void k(int* out) {
                int acc = 0;
                for (int i = 8; i > 0; i = i - 2) { acc += i; }
                out[0] = acc;
            }
        "#;
        let mut f = kernel(src, &[]);
        unroll_func(&mut f, 2048);
        assert_eq!(count_loops(&f.body), 0);
        // 8+6+4+2 = 20 iterations worth of adds present.
    }

    #[test]
    fn unsigned_reduction_tree_loop_unrolls() {
        // for (s = N/2; s > 0; s >>= 1)-style loops (reduction trees, §2.2)
        // unroll with geometric induction: 8, 4, 2, 1 → 4 iterations.
        let src = r#"
            __global__ void k(int* out) {
                int acc = 0;
                for (unsigned int s = 8u; s > 0u; s = s >> 1) { acc += 1; }
                out[0] = acc;
            }
        "#;
        let mut f = kernel(src, &[]);
        unroll_func(&mut f, 2048);
        assert_eq!(count_loops(&f.body), 0);
        // Also the division form.
        let src2 = r#"
            __global__ void k(int* out) {
                int acc = 0;
                for (unsigned int s = 64u; s > 0u; s = s / 2) { acc += (int)s; }
                out[0] = acc;
            }
        "#;
        let mut f2 = kernel(src2, &[]);
        unroll_func(&mut f2, 2048);
        assert_eq!(count_loops(&f2.body), 0);
        // A runtime-bounded geometric loop stays rolled.
        let src3 = r#"
            __global__ void k(int* out, int n) {
                int acc = 0;
                for (unsigned int s = (unsigned int)n; s > 0u; s = s / 2) { acc += 1; }
                out[0] = acc;
            }
        "#;
        let mut f3 = kernel(src3, &[]);
        unroll_func(&mut f3, 2048);
        assert_eq!(count_loops(&f3.body), 1);
    }

    #[test]
    fn inner_loop_with_outer_dependent_bound_unrolls_after_outer() {
        let src = r#"
            __global__ void k(int* out) {
                int acc = 0;
                for (int i = 0; i < 3; i++) {
                    for (int j = 0; j < i + 1; j++) { acc += j; }
                }
                out[0] = acc;
            }
        "#;
        let mut f = kernel(src, &[]);
        unroll_func(&mut f, 2048);
        assert_eq!(count_loops(&f.body), 0);
    }
}
