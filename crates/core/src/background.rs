//! Background (async) compile tier: a bounded worker pool behind
//! [`Compiler::spawn_compile`].
//!
//! The blocking [`Compiler::compile`] path pays the full §4.3
//! specialization cost up front. The async tier makes that cost
//! latency-invisible: `spawn_compile` enqueues the job and returns a
//! [`CompileTicket`] immediately; a process-wide pool of worker threads
//! drains the queue by calling straight back into `Compiler::compile`.
//! Because the workers go through the same sharded single-flight cache,
//! a ticket and a blocking call for the same canonical key still cost
//! exactly one compilation — whichever starts first leads, the other
//! joins the flight (or hits the cache).
//!
//! Tickets are cancellable: a cancelled job is dropped at dequeue and
//! its ticket resolves with a `CompileError` so waiters never hang.
//! GPU-PF uses this to supersede a stale promotion when a module is
//! re-dirtied mid-flight.
//!
//! Accounting is exact, in the house style: every ticket resolves as
//! completed, failed, or cancelled, and at quiescence
//! `spawned == completed + failed + cancelled` both on the per-compiler
//! [`AsyncStats`] and on the `ks_core.async.*` registry counters
//! (asserted by `ks-prof --selfcheck`).

use crate::{Binary, CompileError, Compiler, Defines};
use ks_store::Fingerprint;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Instant;

/// Pre-resolved `ks_core.async.*` registry handles.
struct AsyncTrace {
    spawned: ks_trace::Counter,
    completed: ks_trace::Counter,
    failed: ks_trace::Counter,
    cancelled: ks_trace::Counter,
    queue_wait_us: ks_trace::Histogram,
}

fn async_trace() -> &'static AsyncTrace {
    static TC: OnceLock<AsyncTrace> = OnceLock::new();
    TC.get_or_init(|| {
        let r = ks_trace::registry();
        AsyncTrace {
            spawned: r.counter(ks_trace::names::ASYNC_SPAWNED),
            completed: r.counter(ks_trace::names::ASYNC_COMPLETED),
            failed: r.counter(ks_trace::names::ASYNC_FAILED),
            cancelled: r.counter(ks_trace::names::ASYNC_CANCELLED),
            queue_wait_us: r.histogram(ks_trace::names::ASYNC_QUEUE_WAIT_US),
        }
    })
}

/// Per-compiler async-tier counters. At quiescence
/// `spawned == completed + failed + cancelled`; the same deltas appear
/// on the `ks_core.async.*` registry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncStats {
    /// Tickets created by [`Compiler::spawn_compile`].
    pub spawned: u64,
    /// Tickets resolved with a binary.
    pub completed: u64,
    /// Tickets resolved with a `CompileError` (including worker-site
    /// injected faults and jobs whose compiler was dropped).
    pub failed: u64,
    /// Tickets cancelled before their job compiled.
    pub cancelled: u64,
}

impl std::fmt::Display for AsyncStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} spawned / {} completed / {} failed / {} cancelled",
            self.spawned, self.completed, self.failed, self.cancelled
        )
    }
}

/// Owned by each [`Compiler`], shared with its in-flight jobs so
/// accounting stays exact even if the compiler is dropped mid-flight.
#[derive(Default)]
pub(crate) struct AsyncStatsCell {
    spawned: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
}

impl AsyncStatsCell {
    pub(crate) fn snapshot(&self) -> AsyncStats {
        AsyncStats {
            spawned: self.spawned.load(Ordering::Acquire),
            completed: self.completed.load(Ordering::Acquire),
            failed: self.failed.load(Ordering::Acquire),
            cancelled: self.cancelled.load(Ordering::Acquire),
        }
    }
}

enum TicketOutcome {
    Completed,
    Failed,
    Cancelled,
}

struct TicketState {
    result: Option<Result<Arc<Binary>, CompileError>>,
}

struct TicketInner {
    key: Fingerprint,
    state: Mutex<TicketState>,
    ready: Condvar,
}

impl TicketInner {
    /// Resolve the ticket exactly once; later fulfills are no-ops
    /// (a job can race its own cancellation). Returns whether this call
    /// was the one that resolved it.
    fn fulfill(
        &self,
        stats: &AsyncStatsCell,
        outcome: TicketOutcome,
        result: Result<Arc<Binary>, CompileError>,
    ) -> bool {
        let mut st = self.state.lock();
        if st.result.is_some() {
            return false;
        }
        st.result = Some(result);
        drop(st);
        let t = async_trace();
        match outcome {
            TicketOutcome::Completed => {
                stats.completed.fetch_add(1, Ordering::AcqRel);
                t.completed.inc();
            }
            TicketOutcome::Failed => {
                stats.failed.fetch_add(1, Ordering::AcqRel);
                t.failed.inc();
            }
            TicketOutcome::Cancelled => {
                stats.cancelled.fetch_add(1, Ordering::AcqRel);
                t.cancelled.inc();
            }
        }
        self.ready.notify_all();
        true
    }
}

/// Handle to one background compilation. Cheap to clone; all clones
/// observe the same resolution.
#[derive(Clone)]
pub struct CompileTicket {
    inner: Arc<TicketInner>,
    stats: Arc<AsyncStatsCell>,
}

impl CompileTicket {
    /// The canonical cache key the job compiles under — the same key a
    /// blocking [`Compiler::compile`] of identical inputs would use.
    pub fn key(&self) -> Fingerprint {
        self.inner.key
    }

    /// True once a result (success, failure, or cancellation) is in.
    pub fn is_done(&self) -> bool {
        self.inner.state.lock().result.is_some()
    }

    /// Cancel the ticket: it resolves *immediately* with a "cancelled"
    /// `CompileError`, and the queued job is dropped at dequeue without
    /// compiling. A job already mid-compile still finishes into the
    /// shared cache (the work is never wasted), but this ticket's
    /// resolution stays "cancelled". Returns false if a result had
    /// already landed (too late to cancel).
    pub fn cancel(&self) -> bool {
        self.inner.fulfill(
            &self.stats,
            TicketOutcome::Cancelled,
            Err(CompileError {
                message: "async compile cancelled".to_string(),
                command_line: String::new(),
            }),
        )
    }

    /// The result, if the job has resolved (non-blocking).
    pub fn try_result(&self) -> Option<Result<Arc<Binary>, CompileError>> {
        self.inner.state.lock().result.clone()
    }

    /// Block until the job resolves and return its result. A ticket
    /// whose result slot is somehow absent after wakeup (a resolution
    /// bug, not a normal outcome) surfaces as a `CompileError` rather
    /// than unwinding into the waiting thread.
    pub fn wait(&self) -> Result<Arc<Binary>, CompileError> {
        let mut st = self.inner.state.lock();
        while st.result.is_none() {
            st = self.inner.ready.wait(st);
        }
        st.result.clone().unwrap_or_else(|| {
            Err(CompileError {
                message: "async compile ticket woke without a result".to_string(),
                command_line: String::new(),
            })
        })
    }
}

struct Job {
    /// Weak: a queued job must not keep a dropped compiler (and its
    /// cache) alive. Stats are held strongly so accounting survives.
    compiler: Weak<Compiler>,
    stats: Arc<AsyncStatsCell>,
    source: String,
    defines: Defines,
    identity: String,
    ticket: Arc<TicketInner>,
    enqueued: Instant,
}

/// The process-wide bounded worker pool. Threads are started lazily on
/// first use and park on the queue condvar when idle; the process-wide
/// scope bounds background compile concurrency globally, not per
/// compiler, which is the production-correct knob (one machine, one
/// compile budget).
struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// Worker count: `KS_ASYNC_WORKERS` if set (clamped to 1..=64), else
/// half the available parallelism, at least 1, at most 8 — background
/// specialization should never starve the foreground launch path.
fn worker_count() -> usize {
    if let Ok(v) = std::env::var("KS_ASYNC_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, 64);
        }
    }
    let avail = std::thread::available_parallelism().map_or(2, |n| n.get());
    (avail / 2).clamp(1, 8)
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        for i in 0..worker_count() {
            std::thread::Builder::new()
                .name(format!("ks-async-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("spawn async compile worker");
        }
        pool
    })
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut q = pool.queue.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = pool.available.wait(q);
            }
        };
        // Backstop: a panicking job must never kill a pool worker (the
        // pool is process-wide and never respawns). `run_job` already
        // converts compile panics into failed tickets; this catches
        // anything else.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(job)));
    }
}

fn run_job(job: Job) {
    async_trace()
        .queue_wait_us
        .record_duration_us(job.enqueued.elapsed());
    // A cancelled (or otherwise already-resolved) ticket's job is
    // dropped here without compiling; cancel() did the accounting.
    if job.ticket.state.lock().result.is_some() {
        return;
    }
    let Some(compiler) = job.compiler.upgrade() else {
        job.ticket.fulfill(
            &job.stats,
            TicketOutcome::Failed,
            Err(CompileError {
                message: "async compile abandoned: compiler dropped".to_string(),
                command_line: job.defines.command_line(),
            }),
        );
        return;
    };
    // Worker-site fault point: a plan can kill the job here (dropped
    // worker analogue) without the compile site ever seeing it.
    let plan = compiler.fault_plan.clone().or_else(ks_fault::active);
    if let Some(plan) = plan {
        if let Some(fault) = plan.check_worker(
            &job.identity,
            job.ticket.key.lo64(),
            &job.defines.command_line(),
        ) {
            job.ticket.fulfill(
                &job.stats,
                TicketOutcome::Failed,
                Err(CompileError {
                    message: fault.message(),
                    command_line: job.defines.command_line(),
                }),
            );
            return;
        }
    }
    // The real work: straight through the single-flight cache, so this
    // dedups against blocking callers and other tickets for the key.
    // Panics (worker-site injected or genuine) become failed tickets
    // through the normal accounting instead of unwinding the worker.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compiler.compile(&job.source, &job.defines)
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic payload".to_string());
        Err(CompileError {
            message: format!("async compile panicked: {msg}"),
            command_line: job.defines.command_line(),
        })
    });
    let outcome = if result.is_ok() {
        TicketOutcome::Completed
    } else {
        TicketOutcome::Failed
    };
    job.ticket.fulfill(&job.stats, outcome, result);
}

/// Enqueue a background compile for `compiler`. Called from
/// [`Compiler::spawn_compile`].
pub(crate) fn spawn(
    compiler: &Arc<Compiler>,
    stats: Arc<AsyncStatsCell>,
    key: Fingerprint,
    source: &str,
    defines: &Defines,
) -> CompileTicket {
    let inner = Arc::new(TicketInner {
        key,
        state: Mutex::new(TicketState { result: None }),
        ready: Condvar::new(),
    });
    stats.spawned.fetch_add(1, Ordering::AcqRel);
    async_trace().spawned.inc();
    // Invalid defines resolve immediately: they would never reach the
    // cache on the blocking path either.
    if let Some(msg) = defines.invalid() {
        inner.fulfill(
            &stats,
            TicketOutcome::Failed,
            Err(CompileError {
                message: msg.to_string(),
                command_line: defines.command_line(),
            }),
        );
        return CompileTicket { inner, stats };
    }
    // Fast path: a committed result — in memory or in the persistent
    // store — resolves the ticket immediately, without occupying a
    // worker slot. Counted as a normal request + cache hit, so the
    // `hits + misses == requests` registry parity holds exactly as it
    // does for the blocking path.
    if let Some(bin) = compiler.cache.try_get(key, compiler.store.as_ref()) {
        compiler.metrics.requests.inc();
        inner.fulfill(&stats, TicketOutcome::Completed, Ok(bin));
        return CompileTicket { inner, stats };
    }
    let identity = ks_fault::kernel_names(source)
        .into_iter()
        .next()
        .unwrap_or_else(|| "?".to_string());
    let job = Job {
        compiler: Arc::downgrade(compiler),
        stats: stats.clone(),
        source: source.to_string(),
        defines: defines.clone(),
        identity,
        ticket: inner.clone(),
        enqueued: Instant::now(),
    };
    let p = pool();
    p.queue.lock().push_back(job);
    p.available.notify_one();
    CompileTicket { inner, stats }
}
