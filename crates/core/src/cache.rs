//! Sharded, single-flight binary cache.
//!
//! §4.3's amortization argument only holds if the cache is correct under
//! concurrency: N threads requesting the same specialization must cost
//! *one* compilation, and requests for distinct keys must not serialize
//! behind each other. This module provides both:
//!
//! * **Sharding** — the key space is split across independently locked
//!   shards, so compilations of distinct keys proceed fully in parallel.
//! * **Single-flight** — the first thread to miss on a key becomes the
//!   *leader* and compiles; every concurrent request for the same key
//!   blocks on an in-flight slot and receives the leader's `Arc<Binary>`.
//!   Exactly one miss is recorded; the followers count as hits (their
//!   wait is tracked separately as dedup time).
//! * **Bounded capacity** — an optional LRU bound with eviction
//!   accounting, for long-running services that sweep huge define spaces.
//!
//! Statistics are atomics, updated exactly once per `compile()` call, so
//! `hits + misses` equals the number of successful calls under arbitrary
//! interleavings (the seed kept stats under a separate mutex from the
//! cache map, which let the two disagree).

use crate::{Binary, CacheStats, CompileError};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Pre-resolved handles into the process-wide ks-trace registry. Every
/// increment below pairs a local [`Counters`] atomic with the matching
/// registry counter, so `CacheStats` and the exported metrics agree
/// exactly (for a single compiler; the registry aggregates across
/// compilers).
struct TraceCounters {
    hits: ks_trace::Counter,
    misses: ks_trace::Counter,
    evictions: ks_trace::Counter,
    dedup_waits: ks_trace::Counter,
}

fn trace_counters() -> &'static TraceCounters {
    static HANDLES: OnceLock<TraceCounters> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let r = ks_trace::registry();
        TraceCounters {
            hits: r.counter(ks_trace::names::CACHE_HITS),
            misses: r.counter(ks_trace::names::CACHE_MISSES),
            evictions: r.counter(ks_trace::names::CACHE_EVICTIONS),
            dedup_waits: r.counter(ks_trace::names::CACHE_DEDUP_WAITS),
        }
    })
}

pub(crate) type CompileResult = Result<Arc<Binary>, CompileError>;

/// Default shard count (capped by capacity when one is set, so the
/// per-shard capacity slices stay ≥ 1 and the global bound is exact).
const DEFAULT_SHARDS: usize = 16;

/// One in-flight compilation. The leader fulfills the slot; followers
/// block on the condvar and clone the result.
struct InFlight {
    slot: Mutex<Option<CompileResult>>,
    ready: Condvar,
}

impl InFlight {
    fn new() -> InFlight {
        InFlight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn wait(&self) -> CompileResult {
        let guard = self.ready.wait_while(self.slot.lock(), |r| r.is_none());
        guard.clone().expect("in-flight slot fulfilled")
    }

    fn fulfill(&self, result: CompileResult) {
        *self.slot.lock() = Some(result);
        self.ready.notify_all();
    }
}

struct Entry {
    bin: Arc<Binary>,
    /// Global LRU stamp (larger = more recently used).
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    inflight: HashMap<u64, Arc<InFlight>>,
    /// This shard's slice of the global capacity (None = unbounded).
    capacity: Option<usize>,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    dedup_waits: AtomicU64,
    compile_micros: AtomicU64,
    dedup_wait_micros: AtomicU64,
}

pub(crate) struct BinaryCache {
    shards: Box<[Mutex<Shard>]>,
    tick: AtomicU64,
    counters: Counters,
}

/// What the probe decided this call is.
enum Claim {
    Hit(Arc<Binary>),
    /// Another thread is compiling this key; wait for it.
    Follow(Arc<InFlight>),
    /// This thread registered the in-flight slot and must compile.
    Lead(Arc<InFlight>),
}

impl BinaryCache {
    pub(crate) fn new(capacity: Option<usize>) -> BinaryCache {
        let n = match capacity {
            // Capacity is distributed across shards; never more shards
            // than capacity so each shard holds at least one entry and
            // the per-shard bounds sum to exactly `cap`.
            Some(cap) => DEFAULT_SHARDS.min(cap.max(1)),
            None => DEFAULT_SHARDS,
        };
        let shards: Box<[Mutex<Shard>]> = (0..n)
            .map(|i| {
                Mutex::new(Shard {
                    capacity: capacity.map(|cap| cap / n + usize::from(i < cap % n)),
                    ..Shard::default()
                })
            })
            .collect();
        BinaryCache {
            shards,
            tick: AtomicU64::new(0),
            counters: Counters::default(),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    fn stamp(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Cached entries across all shards.
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            dedup_waits: self.counters.dedup_waits.load(Ordering::Relaxed),
            total_compile_micros: self.counters.compile_micros.load(Ordering::Relaxed),
            total_dedup_wait_micros: self.counters.dedup_wait_micros.load(Ordering::Relaxed),
        }
    }

    /// The single-flight fast path: return the cached binary for `key`,
    /// join an in-flight compilation of it, or run `compile` as the
    /// leader and publish the result to the cache and all followers.
    pub(crate) fn get_or_compile(
        &self,
        key: u64,
        compile: impl FnOnce() -> CompileResult,
    ) -> CompileResult {
        let claim = {
            let mut shard = self.shard(key).lock();
            if let Some(e) = shard.entries.get_mut(&key) {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                Claim::Hit(e.bin.clone())
            } else if let Some(f) = shard.inflight.get(&key) {
                Claim::Follow(f.clone())
            } else {
                let f = Arc::new(InFlight::new());
                shard.inflight.insert(key, f.clone());
                Claim::Lead(f)
            }
        };
        match claim {
            Claim::Hit(bin) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                trace_counters().hits.inc();
                Ok(bin)
            }
            Claim::Follow(flight) => {
                let t0 = Instant::now();
                let result = flight.wait();
                self.counters.dedup_waits.fetch_add(1, Ordering::Relaxed);
                trace_counters().dedup_waits.inc();
                self.counters
                    .dedup_wait_micros
                    .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                // Duplicate-compile suppression is a hit, not a miss: the
                // §4.3 overhead was paid once, by the leader.
                if result.is_ok() {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    trace_counters().hits.inc();
                }
                result
            }
            Claim::Lead(flight) => {
                // If `compile` panics, the guard removes the in-flight
                // slot and feeds followers an error instead of deadlock.
                let guard = FlightGuard {
                    cache: self,
                    key,
                    flight: &flight,
                };
                let result = compile();
                std::mem::forget(guard);
                {
                    let mut shard = self.shard(key).lock();
                    shard.inflight.remove(&key);
                    if let Ok(bin) = &result {
                        self.counters.misses.fetch_add(1, Ordering::Relaxed);
                        trace_counters().misses.inc();
                        self.counters
                            .compile_micros
                            .fetch_add(bin.compile_time.as_micros() as u64, Ordering::Relaxed);
                        let stamp = self.stamp();
                        shard.entries.insert(
                            key,
                            Entry {
                                bin: bin.clone(),
                                last_used: stamp,
                            },
                        );
                        if let Some(cap) = shard.capacity {
                            while shard.entries.len() > cap {
                                let lru = shard
                                    .entries
                                    .iter()
                                    .min_by_key(|(_, e)| e.last_used)
                                    .map(|(k, _)| *k)
                                    .expect("nonempty over capacity");
                                shard.entries.remove(&lru);
                                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                                trace_counters().evictions.inc();
                            }
                        }
                    }
                }
                flight.fulfill(result.clone());
                result
            }
        }
    }
}

/// Panic guard for the leader path: on unwind, unregister the in-flight
/// slot and wake followers with an error so they don't block forever.
struct FlightGuard<'a> {
    cache: &'a BinaryCache,
    key: u64,
    flight: &'a Arc<InFlight>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.cache.shard(self.key).lock().inflight.remove(&self.key);
        self.flight.fulfill(Err(CompileError {
            message: "compilation panicked in another thread".to_string(),
            command_line: String::new(),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_binary() -> Arc<Binary> {
        Arc::new(Binary {
            module: ks_ir::Module::default(),
            ptx: String::new(),
            regalloc: HashMap::new(),
            defines: crate::Defines::new(),
            device: "test".to_string(),
            compile_time: std::time::Duration::from_micros(10),
            diagnostics: Vec::new(),
            metrics: crate::CompileMetrics::default(),
        })
    }

    #[test]
    fn capacity_slices_sum_exactly() {
        for cap in [1usize, 2, 3, 7, 16, 17, 100] {
            let c = BinaryCache::new(Some(cap));
            let total: usize = c.shards.iter().map(|s| s.lock().capacity.unwrap()).sum();
            assert_eq!(total, cap, "capacity {cap}");
            assert!(c.shards.len() <= cap.clamp(1, DEFAULT_SHARDS));
            assert!(c.shards.iter().all(|s| s.lock().capacity.unwrap() >= 1));
        }
    }

    #[test]
    fn leader_panic_unblocks_followers() {
        let cache = Arc::new(BinaryCache::new(None));
        let c2 = cache.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let leader = std::thread::spawn(move || {
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compile(42, || {
                    tx.send(()).unwrap();
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    panic!("boom")
                })
            }));
            assert!(res.is_err());
        });
        // Only probe once the leader holds the in-flight slot.
        rx.recv().unwrap();
        // Either we join the doomed flight and get the panic error, or we
        // probe after cleanup and become the new leader ourselves.
        if let Err(e) = cache.get_or_compile(42, || Ok(dummy_binary())) {
            assert!(e.message.contains("panicked"), "{e}");
        }
        leader.join().unwrap();
    }
}
