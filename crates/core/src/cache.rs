//! Sharded, single-flight binary cache.
//!
//! §4.3's amortization argument only holds if the cache is correct under
//! concurrency: N threads requesting the same specialization must cost
//! *one* compilation, and requests for distinct keys must not serialize
//! behind each other. This module provides both:
//!
//! * **Sharding** — the key space is split across independently locked
//!   shards, so compilations of distinct keys proceed fully in parallel.
//! * **Single-flight** — the first thread to miss on a key becomes the
//!   *leader* and compiles; every concurrent request for the same key
//!   blocks on an in-flight slot and receives the leader's `Arc<Binary>`.
//!   Exactly one miss is recorded; the followers count as hits (their
//!   wait is tracked separately as dedup time).
//! * **Bounded capacity** — an optional LRU bound with eviction
//!   accounting, for long-running services that sweep huge define spaces.
//!
//! Statistics are atomics, updated exactly once per `compile()` call, so
//! `hits + misses` equals the number of successful calls under arbitrary
//! interleavings (the seed kept stats under a separate mutex from the
//! cache map, which let the two disagree).

use crate::store::StoreTier;
use crate::{Binary, CacheStats, CompileError, ResilienceConfig};
use ks_store::Fingerprint;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Pre-resolved handles into the ks-trace registry. Every increment
/// below pairs a local [`Counters`] atomic with the matching registry
/// counter, so `CacheStats` and the exported metrics agree exactly (for
/// a single compiler; the registry aggregates across compilers). Built
/// from a [`ks_trace::Scope`] so a labeled compiler's cache traffic is
/// published under its label set too — scoped handles chain into the
/// unlabeled globals, keeping the registry-wide invariants exact.
struct TraceCounters {
    hits: ks_trace::Counter,
    misses: ks_trace::Counter,
    evictions: ks_trace::Counter,
    dedup_waits: ks_trace::Counter,
    failures: ks_trace::Counter,
    quarantined: ks_trace::Counter,
    retries: ks_trace::Counter,
    breaker_opens: ks_trace::Counter,
    disk_hits: ks_trace::Counter,
    disk_misses: ks_trace::Counter,
    store_errors: ks_trace::Counter,
}

impl TraceCounters {
    fn from_scope(scope: &ks_trace::Scope<'_>) -> TraceCounters {
        TraceCounters {
            hits: scope.counter(ks_trace::names::CACHE_HITS),
            misses: scope.counter(ks_trace::names::CACHE_MISSES),
            evictions: scope.counter(ks_trace::names::CACHE_EVICTIONS),
            dedup_waits: scope.counter(ks_trace::names::CACHE_DEDUP_WAITS),
            failures: scope.counter(ks_trace::names::CACHE_FAILURES),
            quarantined: scope.counter(ks_trace::names::CACHE_QUARANTINED),
            retries: scope.counter(ks_trace::names::COMPILE_RETRIES),
            breaker_opens: scope.counter(ks_trace::names::BREAKER_OPEN),
            disk_hits: scope.counter(ks_trace::names::STORE_DISK_HITS),
            disk_misses: scope.counter(ks_trace::names::STORE_DISK_MISSES),
            store_errors: scope.counter(ks_trace::names::STORE_ERRORS),
        }
    }
}

pub(crate) type CompileResult = Result<Arc<Binary>, CompileError>;

/// Default shard count (capped by capacity when one is set, so the
/// per-shard capacity slices stay ≥ 1 and the global bound is exact).
const DEFAULT_SHARDS: usize = 16;

/// One in-flight compilation. The leader fulfills the slot; followers
/// block on the condvar and clone the result.
struct InFlight {
    slot: Mutex<Option<CompileResult>>,
    ready: Condvar,
}

impl InFlight {
    fn new() -> InFlight {
        InFlight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn wait(&self) -> CompileResult {
        let guard = self.ready.wait_while(self.slot.lock(), |r| r.is_none());
        guard.clone().expect("in-flight slot fulfilled")
    }

    fn fulfill(&self, result: CompileResult) {
        *self.slot.lock() = Some(result);
        self.ready.notify_all();
    }
}

struct Entry {
    bin: Arc<Binary>,
    /// Global LRU stamp (larger = more recently used).
    last_used: u64,
}

/// Quarantine record for a key whose last compile failed. Lives in a
/// map *separate* from `entries`, so failed keys never occupy LRU
/// capacity and can never be served as hits. Cleared on the next
/// successful compile of the key.
struct FailedEntry {
    err: CompileError,
    /// Fast-fail with `err` until this instant; afterwards the next
    /// call becomes a fresh leader (the breaker's half-open probe).
    until: Instant,
    /// Consecutive failed flights of this key (resets on success);
    /// drives the circuit breaker.
    consecutive: u32,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<Fingerprint, Entry>,
    inflight: HashMap<Fingerprint, Arc<InFlight>>,
    failed: HashMap<Fingerprint, FailedEntry>,
    /// This shard's slice of the global capacity (None = unbounded).
    capacity: Option<usize>,
}

impl Shard {
    /// The quarantine error to fast-fail with, if `key` is quarantined
    /// and the window hasn't lapsed.
    fn quarantined_error(&self, key: Fingerprint, res: &ResilienceConfig) -> Option<CompileError> {
        let fe = self.failed.get(&key)?;
        if Instant::now() >= fe.until {
            return None;
        }
        let breaker = res.breaker_threshold > 0 && fe.consecutive >= res.breaker_threshold;
        Some(if breaker {
            CompileError {
                message: format!(
                    "circuit breaker open ({} consecutive failures): {}",
                    fe.consecutive, fe.err.message
                ),
                command_line: fe.err.command_line.clone(),
            }
        } else {
            fe.err.clone()
        })
    }
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    dedup_waits: AtomicU64,
    compile_micros: AtomicU64,
    dedup_wait_micros: AtomicU64,
    failures: AtomicU64,
    quarantined: AtomicU64,
    retries: AtomicU64,
    breaker_opens: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    store_errors: AtomicU64,
}

pub(crate) struct BinaryCache {
    shards: Box<[Mutex<Shard>]>,
    tick: AtomicU64,
    counters: Counters,
    trace: TraceCounters,
}

/// What the probe decided this call is.
enum Claim {
    Hit(Arc<Binary>),
    /// Another thread is compiling this key; wait for it.
    Follow(Arc<InFlight>),
    /// This thread registered the in-flight slot and must compile.
    Lead(Arc<InFlight>),
    /// The key is quarantined (recent failure / open breaker): serve
    /// the recorded error without compiling.
    FastFail(CompileError),
}

impl BinaryCache {
    pub(crate) fn new(capacity: Option<usize>) -> BinaryCache {
        let n = match capacity {
            // Capacity is distributed across shards; never more shards
            // than capacity so each shard holds at least one entry and
            // the per-shard bounds sum to exactly `cap`.
            Some(cap) => DEFAULT_SHARDS.min(cap.max(1)),
            None => DEFAULT_SHARDS,
        };
        let shards: Box<[Mutex<Shard>]> = (0..n)
            .map(|i| {
                Mutex::new(Shard {
                    capacity: capacity.map(|cap| cap / n + usize::from(i < cap % n)),
                    ..Shard::default()
                })
            })
            .collect();
        BinaryCache {
            shards,
            tick: AtomicU64::new(0),
            counters: Counters::default(),
            trace: TraceCounters::from_scope(&ks_trace::registry().scoped(&[])),
        }
    }

    /// Re-point the registry handles at a labeled scope
    /// ([`crate::Compiler::with_metric_labels`]). Configure before
    /// compiling; already-published increments stay where they landed.
    pub(crate) fn set_metric_scope(&mut self, scope: &ks_trace::Scope<'_>) {
        self.trace = TraceCounters::from_scope(scope);
    }

    fn shard(&self, key: Fingerprint) -> &Mutex<Shard> {
        &self.shards[(key.lo64() % self.shards.len() as u64) as usize]
    }

    fn stamp(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Cached entries across all shards.
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            dedup_waits: self.counters.dedup_waits.load(Ordering::Relaxed),
            total_compile_micros: self.counters.compile_micros.load(Ordering::Relaxed),
            total_dedup_wait_micros: self.counters.dedup_wait_micros.load(Ordering::Relaxed),
            failures: self.counters.failures.load(Ordering::Relaxed),
            quarantined: self.counters.quarantined.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            breaker_opens: self.counters.breaker_opens.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.counters.disk_misses.load(Ordering::Relaxed),
            store_errors: self.counters.store_errors.load(Ordering::Relaxed),
        }
    }

    fn count_hit(&self) {
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        self.trace.hits.inc();
    }

    fn count_disk_hit(&self) {
        self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
        self.trace.disk_hits.inc();
    }

    fn count_store_error(&self) {
        self.counters.store_errors.fetch_add(1, Ordering::Relaxed);
        self.trace.store_errors.inc();
    }

    /// Insert a committed binary and enforce the LRU bound. Caller holds
    /// the shard lock.
    fn insert_entry_locked(&self, shard: &mut Shard, key: Fingerprint, bin: Arc<Binary>) {
        let stamp = self.stamp();
        shard.entries.insert(
            key,
            Entry {
                bin,
                last_used: stamp,
            },
        );
        if let Some(cap) = shard.capacity {
            while shard.entries.len() > cap {
                let lru = shard
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                    .expect("nonempty over capacity");
                shard.entries.remove(&lru);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                self.trace.evictions.inc();
            }
        }
    }

    /// Probe for an already-committed result — memory first, then the
    /// persistent tier — without joining or creating a flight. Used by
    /// the async tier's spawn fast path so tickets resolve from disk
    /// hits without occupying a worker slot. Returns `None` when the key
    /// is uncompiled, in flight, or quarantined; those paths keep their
    /// normal worker accounting. A probe miss moves no counters (the
    /// eventual leader records its own `disk_misses`).
    pub(crate) fn try_get(
        &self,
        key: Fingerprint,
        store: Option<&StoreTier>,
    ) -> Option<Arc<Binary>> {
        {
            let mut shard = self.shard(key).lock();
            if let Some(e) = shard.entries.get_mut(&key) {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                let bin = e.bin.clone();
                drop(shard);
                self.count_hit();
                return Some(bin);
            }
            if shard.inflight.contains_key(&key) || shard.failed.contains_key(&key) {
                return None;
            }
        }
        // Disk probe outside the shard lock: a racing leader at worst
        // duplicates the read, never the compile.
        match store?.load(key) {
            Ok(Some(bin)) => {
                let mut shard = self.shard(key).lock();
                if let Some(e) = shard.entries.get_mut(&key) {
                    // A leader committed while we read the disk; serve
                    // its entry so `Arc` identity stays canonical.
                    e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                    let cached = e.bin.clone();
                    drop(shard);
                    self.count_hit();
                    return Some(cached);
                }
                shard.failed.remove(&key);
                self.insert_entry_locked(&mut shard, key, bin.clone());
                drop(shard);
                self.count_hit();
                self.count_disk_hit();
                Some(bin)
            }
            Ok(None) => None,
            Err(_) => {
                self.count_store_error();
                None
            }
        }
    }

    /// The single-flight fast path: return the cached binary for `key`,
    /// join an in-flight compilation of it, fast-fail from quarantine,
    /// or run `compile` as the leader — with bounded retries under the
    /// resilience policy — and publish the result to the cache and all
    /// followers.
    ///
    /// Accounting invariants, under arbitrary interleavings:
    /// * `hits + misses` == calls that returned `Ok` (a disk hit counts
    ///   as a hit, itemized in `disk_hits`);
    /// * `failures` == calls that returned `Err` (with `quarantined`
    ///   itemizing the fast-fail subset);
    /// * a retry wave happens at most once per flight, no matter how
    ///   many followers piled onto the key.
    ///
    /// With `store` attached the leader is a read-through/write-through
    /// tier: it probes the persistent store before compiling (a hit
    /// skips the compile entirely) and persists fresh compiles after
    /// committing them. Store failures in either direction count in
    /// `store_errors` and degrade to plain compilation — never a panic,
    /// never a failed call.
    pub(crate) fn get_or_compile(
        &self,
        key: Fingerprint,
        res: &ResilienceConfig,
        store: Option<&StoreTier>,
        compile: impl Fn() -> CompileResult,
    ) -> CompileResult {
        let claim = {
            let mut shard = self.shard(key).lock();
            if let Some(e) = shard.entries.get_mut(&key) {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                Claim::Hit(e.bin.clone())
            } else if let Some(f) = shard.inflight.get(&key) {
                Claim::Follow(f.clone())
            } else if let Some(err) = shard.quarantined_error(key, res) {
                Claim::FastFail(err)
            } else {
                let f = Arc::new(InFlight::new());
                shard.inflight.insert(key, f.clone());
                Claim::Lead(f)
            }
        };
        match claim {
            Claim::Hit(bin) => {
                self.count_hit();
                Ok(bin)
            }
            Claim::FastFail(err) => {
                self.counters.failures.fetch_add(1, Ordering::Relaxed);
                self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                self.trace.failures.inc();
                self.trace.quarantined.inc();
                Err(err)
            }
            Claim::Follow(flight) => {
                let t0 = Instant::now();
                let result = flight.wait();
                self.counters.dedup_waits.fetch_add(1, Ordering::Relaxed);
                self.trace.dedup_waits.inc();
                self.counters
                    .dedup_wait_micros
                    .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                // Duplicate-compile suppression is a hit, not a miss: the
                // §4.3 overhead was paid once, by the leader. A failed
                // flight fails every follower, itemized per caller.
                if result.is_ok() {
                    self.count_hit();
                } else {
                    self.counters.failures.fetch_add(1, Ordering::Relaxed);
                    self.trace.failures.inc();
                }
                result
            }
            Claim::Lead(flight) => {
                // If an attempt panics (and `catch_panics` is off), the
                // guard removes the in-flight slot, quarantines the key,
                // and feeds followers an error instead of deadlock.
                let guard = FlightGuard {
                    cache: self,
                    key,
                    flight: &flight,
                    res,
                };
                // Read-through: probe the persistent tier before paying
                // for a compile. Any store error degrades to compiling.
                let mut from_disk = false;
                let mut result = match store.map(|s| s.load(key)) {
                    Some(Ok(Some(bin))) => {
                        from_disk = true;
                        Ok(bin)
                    }
                    Some(Ok(None)) => {
                        self.counters.disk_misses.fetch_add(1, Ordering::Relaxed);
                        self.trace.disk_misses.inc();
                        run_attempt(&compile, res)
                    }
                    Some(Err(_)) => {
                        self.count_store_error();
                        run_attempt(&compile, res)
                    }
                    None => run_attempt(&compile, res),
                };
                let mut attempt = 0u32;
                while result.is_err() && attempt < res.max_retries {
                    attempt += 1;
                    let _retry = ks_trace::span_fields("compile-retry", || {
                        vec![
                            ("attempt".to_string(), attempt.to_string()),
                            ("key".to_string(), key.to_string()),
                        ]
                    });
                    let delay = res.backoff(key.lo64(), attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    self.counters.retries.fetch_add(1, Ordering::Relaxed);
                    self.trace.retries.inc();
                    result = run_attempt(&compile, res);
                }
                std::mem::forget(guard);
                {
                    let mut shard = self.shard(key).lock();
                    shard.inflight.remove(&key);
                    match &result {
                        Ok(bin) => {
                            shard.failed.remove(&key);
                            if from_disk {
                                // The §4.3 overhead was avoided: a disk
                                // hit is a hit, not a miss, and adds no
                                // compile time.
                                self.count_hit();
                                self.count_disk_hit();
                            } else {
                                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                                self.trace.misses.inc();
                                self.counters.compile_micros.fetch_add(
                                    bin.compile_time.as_micros() as u64,
                                    Ordering::Relaxed,
                                );
                            }
                            self.insert_entry_locked(&mut shard, key, bin.clone());
                        }
                        Err(e) => {
                            self.counters.failures.fetch_add(1, Ordering::Relaxed);
                            self.trace.failures.inc();
                            self.record_failure_locked(&mut shard, key, e, res);
                        }
                    }
                }
                flight.fulfill(result.clone());
                // Write-through: persist fresh compiles after followers
                // are unblocked. A failed write is counted and ignored —
                // the in-memory result is already committed.
                if !from_disk {
                    if let (Ok(bin), Some(s)) = (&result, store) {
                        if s.save(key, bin).is_err() {
                            self.count_store_error();
                        }
                    }
                }
                result
            }
        }
    }

    /// Record a failed flight: refresh the quarantine record, bump the
    /// consecutive-failure count, and (re)open the breaker when the
    /// count reaches the threshold. Caller holds the shard lock.
    fn record_failure_locked(
        &self,
        shard: &mut Shard,
        key: Fingerprint,
        err: &CompileError,
        res: &ResilienceConfig,
    ) {
        let now = Instant::now();
        let fe = shard.failed.entry(key).or_insert(FailedEntry {
            err: err.clone(),
            until: now,
            consecutive: 0,
        });
        fe.err = err.clone();
        fe.consecutive += 1;
        let breaker = res.breaker_threshold > 0 && fe.consecutive >= res.breaker_threshold;
        if breaker {
            fe.until = now + res.breaker_cooldown;
            self.counters.breaker_opens.fetch_add(1, Ordering::Relaxed);
            self.trace.breaker_opens.inc();
        } else {
            fe.until = now + res.quarantine_ttl;
        }
    }
}

/// Run one compile attempt, optionally converting panics into
/// `CompileError`s so the retry policy can treat them like any failure.
fn run_attempt(compile: &impl Fn() -> CompileResult, res: &ResilienceConfig) -> CompileResult {
    if !res.catch_panics {
        return compile();
    }
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(compile)) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic payload".to_string());
            Err(CompileError {
                message: format!("compilation panicked: {msg}"),
                command_line: String::new(),
            })
        }
    }
}

/// Panic guard for the leader path: on unwind, unregister the in-flight
/// slot, quarantine the key, and wake followers with an error so they
/// don't block forever.
struct FlightGuard<'a> {
    cache: &'a BinaryCache,
    key: Fingerprint,
    flight: &'a Arc<InFlight>,
    res: &'a ResilienceConfig,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let err = CompileError {
            message: "compilation panicked in another thread".to_string(),
            command_line: String::new(),
        };
        {
            let mut shard = self.cache.shard(self.key).lock();
            shard.inflight.remove(&self.key);
            self.cache.counters.failures.fetch_add(1, Ordering::Relaxed);
            self.cache.trace.failures.inc();
            self.cache
                .record_failure_locked(&mut shard, self.key, &err, self.res);
        }
        self.flight.fulfill(Err(err));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_binary() -> Arc<Binary> {
        Arc::new(Binary {
            module: ks_ir::Module::default(),
            ptx: String::new(),
            regalloc: HashMap::new(),
            defines: crate::Defines::new(),
            device: "test".to_string(),
            compile_time: std::time::Duration::from_micros(10),
            diagnostics: Vec::new(),
            metrics: crate::CompileMetrics::default(),
            verification: Vec::new(),
        })
    }

    #[test]
    fn capacity_slices_sum_exactly() {
        for cap in [1usize, 2, 3, 7, 16, 17, 100] {
            let c = BinaryCache::new(Some(cap));
            let total: usize = c.shards.iter().map(|s| s.lock().capacity.unwrap()).sum();
            assert_eq!(total, cap, "capacity {cap}");
            assert!(c.shards.len() <= cap.clamp(1, DEFAULT_SHARDS));
            assert!(c.shards.iter().all(|s| s.lock().capacity.unwrap() >= 1));
        }
    }

    #[test]
    fn leader_panic_unblocks_followers() {
        let cache = Arc::new(BinaryCache::new(None));
        let c2 = cache.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let key = Fingerprint::from_u128(42);
        let leader = std::thread::spawn(move || {
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compile(key, &ResilienceConfig::default(), None, || {
                    tx.send(()).unwrap();
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    panic!("boom")
                })
            }));
            assert!(res.is_err());
        });
        // Only probe once the leader holds the in-flight slot.
        rx.recv().unwrap();
        // Either we join the doomed flight and get the panic error, or we
        // probe after cleanup and become the new leader ourselves.
        if let Err(e) = cache.get_or_compile(key, &ResilienceConfig::default(), None, || {
            Ok(dummy_binary())
        }) {
            assert!(e.message.contains("panicked"), "{e}");
        }
        leader.join().unwrap();
    }
}
