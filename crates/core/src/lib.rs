//! # ks-core — the kernel specialization engine
//!
//! The dissertation's primary contribution as an API (§4): write a CUDA-C
//! kernel once *in terms of undefined constants*, then, at run time — once
//! problem and hardware parameters are known — compile a binary customized
//! for exactly those values:
//!
//! ```
//! use ks_core::{Compiler, Defines};
//! use ks_sim::DeviceConfig;
//!
//! let src = r#"
//!     #ifndef COUNT
//!     #define COUNT count   // run-time evaluated fallback
//!     #endif
//!     __global__ void k(float* out, int count) {
//!         float acc = 0.0f;
//!         for (int i = 0; i < COUNT; i++) { acc += 1.0f; }
//!         out[threadIdx.x] = acc;
//!     }
//! "#;
//! let compiler = Compiler::new(DeviceConfig::tesla_c1060());
//! // Run-time evaluated build: no defines.
//! let re = compiler.compile(src, &Defines::new()).unwrap();
//! // Specialized build: `-D COUNT=8`.
//! let sk = compiler.compile(src, Defines::new().def("COUNT", 8)).unwrap();
//! assert!(sk.static_insts("k") < re.static_insts("k"));
//! ```
//!
//! The engine mirrors the GPU-PF behaviour described in §4.3/§4.4:
//! compiled binaries are **cached** keyed by (source, defines, device), so
//! re-encountering a parameter set loads the previous binary ("with speed
//! similar to loading a dynamically linked shared object"), and compile
//! overhead is tracked so applications can report it.

pub use ks_analysis::{AnalysisConfig, Diagnostic};
use ks_codegen::CodegenOptions;
use ks_sim::{DeviceConfig, RegAlloc};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An ordered set of `-D NAME=value` definitions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Defines {
    items: Vec<(String, String)>,
}

impl Defines {
    pub fn new() -> Defines {
        Defines::default()
    }

    /// `-D NAME=<int>`.
    pub fn def(mut self, name: &str, value: impl std::fmt::Display) -> Defines {
        self.items.retain(|(n, _)| n != name);
        self.items.push((name.to_string(), value.to_string()));
        self
    }

    /// `-D NAME` (defined as 1, like nvcc).
    pub fn flag(mut self, name: &str) -> Defines {
        self.items.retain(|(n, _)| n != name);
        self.items.push((name.to_string(), String::new()));
        self
    }

    /// A pointer constant, rendered as a hexadecimal literal the kernel can
    /// cast: `-D PTR_IN=0x200ca0200` (§4, footnote 1).
    pub fn ptr(self, name: &str, addr: u64) -> Defines {
        self.def(name, format!("{addr:#x}"))
    }

    /// A single-precision float constant (§4 footnote 1: floating-point
    /// values can be specified on the command line), rendered with an `f`
    /// suffix so it lexes as `float`.
    pub fn f32(self, name: &str, value: f32) -> Defines {
        self.def(name, format!("{value:?}f"))
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn items(&self) -> &[(String, String)] {
        &self.items
    }

    /// Render the nvcc-style command-line fragment (for logs).
    pub fn command_line(&self) -> String {
        self.items
            .iter()
            .map(|(n, v)| {
                if v.is_empty() {
                    format!("-D {n}")
                } else {
                    format!("-D {n}={v}")
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A compiled kernel module: the analogue of a loaded `.cubin`.
#[derive(Debug)]
pub struct Binary {
    pub module: ks_ir::Module,
    /// PTX-like listing (Appendices C/D style), for inspection.
    pub ptx: String,
    /// Per-kernel register allocation results.
    pub regalloc: HashMap<String, RegAlloc>,
    pub defines: Defines,
    pub device: String,
    /// Wall-clock cost of this compilation (the §4.3 trade-off).
    pub compile_time: Duration,
    /// Non-deny analysis diagnostics (deny-level findings abort the
    /// compile instead). Empty unless the compiler carries an
    /// [`AnalysisConfig`].
    pub diagnostics: Vec<ks_analysis::Diagnostic>,
}

impl Binary {
    /// Physical registers per thread for a kernel.
    pub fn regs_per_thread(&self, kernel: &str) -> u32 {
        self.regalloc
            .get(kernel)
            .map(|r| r.gpr_count.max(2))
            .unwrap_or(0)
    }

    /// Static instruction count of a kernel.
    pub fn static_insts(&self, kernel: &str) -> usize {
        self.module
            .function(kernel)
            .map(|f| f.static_inst_count())
            .unwrap_or(0)
    }

    /// Static shared-memory bytes per block.
    pub fn shared_bytes(&self, kernel: &str) -> u32 {
        self.module
            .function(kernel)
            .map(|f| f.shared_bytes())
            .unwrap_or(0)
    }

    /// Per-thread local (spill) memory.
    pub fn local_bytes(&self, kernel: &str) -> u32 {
        self.module
            .function(kernel)
            .map(|f| f.local_bytes)
            .unwrap_or(0)
    }
}

/// A compile-time error, annotated with the defines in play.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    pub message: String,
    pub command_line: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error [{}]: {}", self.command_line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Cache statistics (hits mean the §4.3 overhead was avoided entirely).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub total_compile_micros: u64,
}

/// The run-time kernel compiler with binary caching.
pub struct Compiler {
    device: DeviceConfig,
    options: CodegenOptions,
    opt_config: ks_opt::OptConfig,
    analysis: Option<AnalysisConfig>,
    cache: Mutex<HashMap<u64, Arc<Binary>>>,
    stats: Mutex<CacheStats>,
}

impl Compiler {
    pub fn new(device: DeviceConfig) -> Compiler {
        Compiler {
            device,
            options: CodegenOptions::default(),
            opt_config: ks_opt::OptConfig::default(),
            analysis: None,
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    pub fn with_options(device: DeviceConfig, options: CodegenOptions) -> Compiler {
        Compiler {
            options,
            ..Compiler::new(device)
        }
    }

    /// Full control over HIR-level and IR-level passes (ablation studies).
    pub fn with_passes(
        device: DeviceConfig,
        options: CodegenOptions,
        opt_config: ks_opt::OptConfig,
    ) -> Compiler {
        Compiler {
            options,
            opt_config,
            ..Compiler::new(device)
        }
    }

    /// Attach an [`AnalysisConfig`]: every compile then runs the ks-analysis
    /// suite, records warnings on the [`Binary`], turns deny-level findings
    /// into [`CompileError`]s, and verifies the IR after lowering and after
    /// each optimization pass even in release builds.
    pub fn with_analysis(mut self, cfg: AnalysisConfig) -> Compiler {
        self.analysis = Some(cfg);
        self
    }

    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    pub fn cache_stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    fn cache_key(&self, source: &str, defines: &Defines) -> u64 {
        let mut h = DefaultHasher::new();
        source.hash(&mut h);
        defines.hash(&mut h);
        self.device.cc_major.hash(&mut h);
        self.device.cc_minor.hash(&mut h);
        self.options.unroll_limit.hash(&mut h);
        self.options.scalarize_cap.hash(&mut h);
        self.options.optimize.hash(&mut h);
        self.opt_config.hash(&mut h);
        if let Some(a) = &self.analysis {
            a.hash_into(&mut h);
        }
        h.finish()
    }

    /// Compile `source` with the given defines, or return the cached
    /// binary for an identical (source, defines, device) combination.
    pub fn compile(
        &self,
        source: &str,
        defines: impl std::borrow::Borrow<Defines>,
    ) -> Result<Arc<Binary>, CompileError> {
        let defines = defines.borrow();
        let key = self.cache_key(source, defines);
        if let Some(hit) = self.cache.lock().get(&key) {
            self.stats.lock().hits += 1;
            return Ok(hit.clone());
        }
        let start = Instant::now();
        let bin = self.compile_uncached(source, defines)?;
        let elapsed = start.elapsed();
        let bin = Arc::new(Binary {
            compile_time: elapsed,
            ..bin
        });
        {
            let mut s = self.stats.lock();
            s.misses += 1;
            s.total_compile_micros += elapsed.as_micros() as u64;
        }
        self.cache.lock().insert(key, bin.clone());
        Ok(bin)
    }

    fn compile_uncached(&self, source: &str, defines: &Defines) -> Result<Binary, CompileError> {
        let err = |message: String| CompileError {
            message,
            command_line: format!(
                "nvcc -arch=sm_{}{} {}",
                self.device.cc_major,
                self.device.cc_minor,
                defines.command_line()
            ),
        };
        // Built-in architecture macro, so kernels can `#if __CUDA_ARCH__ >= 200`
        // exactly like the OpenCV example (§2.6).
        let mut all_defines: Vec<(String, String)> = vec![(
            "__CUDA_ARCH__".to_string(),
            format!("{}{}0", self.device.cc_major, self.device.cc_minor),
        )];
        all_defines.extend(defines.items().iter().cloned());

        let program = ks_lang::frontend(source, &all_defines).map_err(|e| err(e.to_string()))?;
        let mut module = ks_codegen::compile(&program, &self.options).map_err(&err)?;

        // Sanitizer: verify the IR after lowering and after every pass
        // application, attributing any breakage to the pass that caused
        // it. Always on in debug builds; opt-in via `with_analysis` in
        // release builds (the final whole-module verify below is
        // unconditional).
        let sanitize = cfg!(debug_assertions) || self.analysis.is_some();
        if sanitize {
            if let Some(e) = ks_ir::verify_module(&module).first() {
                return Err(err(format!("verification failed after lowering: {e}")));
            }
            let mut broken: Option<(&'static str, String)> = None;
            for f in module.functions.iter_mut() {
                ks_opt::optimize_with_observer(f, &self.opt_config, &mut |pass, f| {
                    if broken.is_none() {
                        if let Some(e) = ks_ir::verify_function(f).first() {
                            broken = Some((pass, e.to_string()));
                        }
                    }
                });
                if let Some((pass, e)) = broken.take() {
                    return Err(err(format!("verification failed after pass `{pass}`: {e}")));
                }
            }
        } else {
            ks_opt::optimize_module_with(&mut module, &self.opt_config);
        }
        let verify = ks_ir::verify_module(&module);
        if let Some(e) = verify.first() {
            return Err(err(format!("post-optimization verification failed: {e}")));
        }

        // Static-analysis suite (racecheck, barrier divergence, bounds,
        // memory lints): deny-level findings fail the compile like any
        // other error; the rest ride along on the binary.
        let mut diagnostics = Vec::new();
        if let Some(acfg) = &self.analysis {
            let report = ks_analysis::analyze_module(&module, &self.device, acfg);
            if report.has_denials() {
                return Err(err(format!("analysis failed:\n{}", report.render())));
            }
            diagnostics = report.diagnostics;
        }

        let mut regalloc = HashMap::new();
        for f in &module.functions {
            regalloc.insert(f.name.clone(), ks_sim::allocate(f));
        }
        let ptx = ks_ir::printer::print_module(&module);
        Ok(Binary {
            module,
            ptx,
            regalloc,
            defines: defines.clone(),
            device: self.device.name.clone(),
            compile_time: Duration::ZERO,
            diagnostics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MATHTEST: &str = r#"
        // Appendix-B-style flexibly specializable kernel.
        #ifndef LOOP_COUNT
        #define LOOP_COUNT loopCount
        #endif
        #ifndef ARG_A
        #define ARG_A argA
        #endif
        #ifndef ARG_B
        #define ARG_B argB
        #endif
        #ifndef BLOCK_DIM_X
        #define BLOCK_DIM_X blockDim.x
        #endif
        __global__ void mathTest(int* in, int* out, int argA, int argB, int loopCount) {
            int acc = 0;
            const unsigned int stride = ARG_A * ARG_B;
            const unsigned int offset = blockIdx.x * BLOCK_DIM_X + threadIdx.x;
            for (int i = 0; i < LOOP_COUNT; i++) {
                acc += *(in + offset + i * stride);
            }
            *(out + offset) = acc;
            return;
        }
    "#;

    #[test]
    fn re_vs_sk_static_shape() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let re = c.compile(MATHTEST, Defines::new()).unwrap();
        let sk = c
            .compile(
                MATHTEST,
                Defines::new()
                    .def("LOOP_COUNT", 5)
                    .def("ARG_A", 3)
                    .def("ARG_B", 7)
                    .def("BLOCK_DIM_X", 128),
            )
            .unwrap();
        // Specialized: single basic block (no control flow), fewer regs.
        let f_sk = sk.module.function("mathTest").unwrap();
        let reachable = f_sk
            .blocks
            .iter()
            .filter(|b| !b.insts.is_empty() || !matches!(b.term, ks_ir::Terminator::Ret))
            .count();
        assert!(
            reachable <= 3,
            "specialized kernel should be nearly straight-line"
        );
        assert!(
            sk.regs_per_thread("mathTest") < re.regs_per_thread("mathTest"),
            "specialization must reduce register usage ({} vs {})",
            sk.regs_per_thread("mathTest"),
            re.regs_per_thread("mathTest")
        );
        // The RE PTX has condition checks; SK has none. SK keeps only the
        // two pointer parameter loads (in/out were not specialized here),
        // while RE also loads the three scalar parameters.
        let count = |s: &str, pat: &str| s.matches(pat).count();
        assert!(re.ptx.contains("setp"));
        assert!(!sk.ptx.contains("setp"));
        assert_eq!(count(&re.ptx, "ld.param"), 5);
        assert_eq!(count(&sk.ptx, "ld.param"), 2);
    }

    #[test]
    fn cache_hits_on_identical_parameters() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let d = Defines::new().def("LOOP_COUNT", 4);
        let b1 = c.compile(MATHTEST, &d).unwrap();
        let b2 = c.compile(MATHTEST, &d).unwrap();
        assert!(Arc::ptr_eq(&b1, &b2), "second compile must be a cache hit");
        let s = c.cache_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        // Different parameters miss.
        let _ = c
            .compile(MATHTEST, Defines::new().def("LOOP_COUNT", 8))
            .unwrap();
        assert_eq!(c.cache_stats().misses, 2);
    }

    #[test]
    fn defines_builder_and_command_line() {
        let d = Defines::new()
            .def("A", 3)
            .flag("FAST")
            .ptr("PTR_IN", 0x200ca0200);
        assert_eq!(d.command_line(), "-D A=3 -D FAST -D PTR_IN=0x200ca0200");
        // Redefinition replaces.
        let d = d.def("A", 9);
        assert!(d.command_line().contains("A=9"));
        assert!(!d.command_line().contains("A=3"));
    }

    #[test]
    fn float_defines_specialize_scaling_factors() {
        let src = r#"
            #ifndef SCALE
            #define SCALE scale
            #endif
            __global__ void k(float* out, float scale) {
                out[threadIdx.x] = (float)threadIdx.x * SCALE;
            }
        "#;
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let sk = c.compile(src, Defines::new().f32("SCALE", 2.5)).unwrap();
        // The constant must appear as a float immediate in the PTX.
        assert!(
            sk.ptx.contains(&format!("0f{:08X}", 2.5f32.to_bits())),
            "{}",
            sk.ptx
        );
        // RE build keeps the parameter load instead.
        let re = c.compile(src, Defines::new()).unwrap();
        assert!(re.ptx.matches("ld.param").count() > sk.ptx.matches("ld.param").count());
    }

    #[test]
    fn cuda_arch_macro_selects_per_device() {
        let src = r#"
            __global__ void k(int* out) {
            #if __CUDA_ARCH__ >= 200
                out[0] = 200;
            #else
                out[0] = 130;
            #endif
            }
        "#;
        let c1 = Compiler::new(DeviceConfig::tesla_c1060());
        let c2 = Compiler::new(DeviceConfig::tesla_c2070());
        let b1 = c1.compile(src, Defines::new()).unwrap();
        let b2 = c2.compile(src, Defines::new()).unwrap();
        let find_store_imm = |b: &Binary| {
            b.module.function("k").unwrap().blocks[0]
                .insts
                .iter()
                .find_map(|i| match i {
                    ks_ir::Inst::St {
                        src: ks_ir::Operand::ImmI(v),
                        ..
                    } => Some(*v),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(find_store_imm(&b1), 130);
        assert_eq!(find_store_imm(&b2), 200);
    }

    #[test]
    fn analysis_denials_fail_the_compile() {
        let src = r#"
            __global__ void k(float* out) {
                __shared__ float s[64];
                int t = (int)threadIdx.x;
                s[t] = 1.0f;
                if (t < 16) {
                    __syncthreads();
                }
                out[t] = s[t];
            }
        "#;
        // Without analysis the kernel compiles.
        let plain = Compiler::new(DeviceConfig::tesla_c2070());
        assert!(plain.compile(src, Defines::new()).is_ok());
        // With it, the divergent barrier is a KSA002 deny.
        let c = Compiler::new(DeviceConfig::tesla_c2070())
            .with_analysis(ks_analysis::AnalysisConfig::default());
        let e = c.compile(src, Defines::new()).unwrap_err();
        assert!(e.message.contains("KSA002"), "{}", e.message);
        // Demoted to a warning, it compiles and rides on the binary.
        let c =
            Compiler::new(DeviceConfig::tesla_c2070()).with_analysis(ks_analysis::AnalysisConfig {
                levels: vec![(
                    ks_analysis::LintCode::BarrierDivergence,
                    ks_analysis::Severity::Warn,
                )],
                ..Default::default()
            });
        let bin = c.compile(src, Defines::new()).unwrap();
        assert_eq!(bin.diagnostics.len(), 1);
        assert_eq!(
            bin.diagnostics[0].code,
            ks_analysis::LintCode::BarrierDivergence
        );
    }

    #[test]
    fn analysis_config_is_part_of_the_cache_key() {
        // Same source, different analysis geometry: must not share a
        // cache slot (diagnostics depend on it).
        let c = Compiler::new(DeviceConfig::tesla_c1060())
            .with_analysis(ks_analysis::AnalysisConfig::default());
        let _ = c.compile(MATHTEST, Defines::new()).unwrap();
        assert_eq!(c.cache_stats().misses, 1);
        let c2 =
            Compiler::new(DeviceConfig::tesla_c1060()).with_analysis(ks_analysis::AnalysisConfig {
                block_dim: Some((32, 1, 1)),
                ..Default::default()
            });
        // Keys differ across configs even though source and defines match.
        assert_ne!(
            c.cache_key(MATHTEST, &Defines::new()),
            c2.cache_key(MATHTEST, &Defines::new())
        );
    }

    #[test]
    fn compile_errors_carry_command_line() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let err = c.compile("__global__ void k(int* o) { o[0] = wat; }", Defines::new());
        let e = err.unwrap_err();
        assert!(e.message.contains("wat"));
        assert!(e.command_line.contains("nvcc"));
    }

    #[test]
    fn dynamically_sized_constant_memory() {
        // §4.1: specialization converts fixed-size constant declarations to
        // dynamically sized ones.
        let src = r#"
            #ifndef KSIZE
            #define KSIZE 32
            #endif
            __constant__ float filt[KSIZE];
            __global__ void k(float* o) { o[threadIdx.x] = filt[threadIdx.x]; }
        "#;
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let small = c.compile(src, Defines::new().def("KSIZE", 8)).unwrap();
        let big = c.compile(src, Defines::new().def("KSIZE", 4096)).unwrap();
        assert_eq!(small.module.const_bytes(), 32);
        assert_eq!(big.module.const_bytes(), 16384);
        // Exceeding the 64 KB limit is a compile error, as on real CUDA.
        assert!(c.compile(src, Defines::new().def("KSIZE", 20000)).is_err());
    }
}
