//! # ks-core — the kernel specialization engine
//!
//! The dissertation's primary contribution as an API (§4): write a CUDA-C
//! kernel once *in terms of undefined constants*, then, at run time — once
//! problem and hardware parameters are known — compile a binary customized
//! for exactly those values:
//!
//! ```
//! use ks_core::{Compiler, Defines};
//! use ks_sim::DeviceConfig;
//!
//! let src = r#"
//!     #ifndef COUNT
//!     #define COUNT count   // run-time evaluated fallback
//!     #endif
//!     __global__ void k(float* out, int count) {
//!         float acc = 0.0f;
//!         for (int i = 0; i < COUNT; i++) { acc += 1.0f; }
//!         out[threadIdx.x] = acc;
//!     }
//! "#;
//! let compiler = Compiler::new(DeviceConfig::tesla_c1060());
//! // Run-time evaluated build: no defines.
//! let re = compiler.compile(src, &Defines::new()).unwrap();
//! // Specialized build: `-D COUNT=8`.
//! let sk = compiler.compile(src, Defines::new().def("COUNT", 8)).unwrap();
//! assert!(sk.static_insts("k") < re.static_insts("k"));
//! ```
//!
//! The engine mirrors the GPU-PF behaviour described in §4.3/§4.4:
//! compiled binaries are **cached** keyed by (source, defines, device,
//! passes), so re-encountering a parameter set loads the previous binary
//! ("with speed similar to loading a dynamically linked shared object"),
//! and compile overhead is tracked — per phase, via [`CompileMetrics`] —
//! so applications can report it.
//!
//! The cache is a **sharded, single-flight concurrent compile service**
//! (see [`cache`]): concurrent requests for the same key block on one
//! compilation and all receive the same `Arc<Binary>` (exactly one miss),
//! distinct keys compile fully in parallel, and [`Compiler::compile_batch`]
//! / [`Compiler::precompile`] fan a whole sweep's variant set out across
//! threads. Define *order* never affects the cache key: `cache_key`
//! canonicalizes the define set, so `.def("A",1).def("B",2)` and
//! `.def("B",2).def("A",1)` share a slot.

pub use ks_analysis::{AnalysisConfig, Diagnostic};
use ks_codegen::CodegenOptions;
use ks_sim::{DeviceConfig, RegAlloc};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

mod background;
mod cache;
mod metrics;
mod store;

pub use background::{AsyncStats, CompileTicket};
pub use ks_store::{Fingerprint, ScrubReport, StableHasher, StoreError};
pub use metrics::CompileMetrics;
pub use store::{BINARY_SCHEMA_VERSION, PASS_PIPELINE};

/// Pre-resolved ks-trace registry handles for the compile pipeline.
/// Counters and histograms are always on (atomic updates only); spans
/// are separately gated by `ks_trace::set_enabled`. Built from a
/// [`ks_trace::Scope`] — unlabeled by default, or a labeled view when
/// the compiler was configured with [`Compiler::with_metric_labels`];
/// scoped handles chain into the unlabeled globals, so the registry-
/// wide `hits + misses == requests` style invariants stay exact.
struct TraceMetrics {
    requests: ks_trace::Counter,
    phases: [(&'static str, ks_trace::Histogram); 8],
    verify_checks: ks_trace::Counter,
    verify_diffs: ks_trace::Counter,
    verify_inconclusive: ks_trace::Counter,
}

impl TraceMetrics {
    fn from_scope(scope: &ks_trace::Scope<'_>) -> TraceMetrics {
        let phase = |name| scope.histogram(&ks_trace::names::compile_phase_us(name));
        TraceMetrics {
            requests: scope.counter(ks_trace::names::COMPILE_REQUESTS),
            phases: [
                ("preproc", phase("preproc")),
                ("parse", phase("parse")),
                ("sema", phase("sema")),
                ("lower", phase("lower")),
                ("opt", phase("opt")),
                ("analysis", phase("analysis")),
                ("verify", phase("verify")),
                ("regalloc", phase("regalloc")),
            ],
            verify_checks: scope.counter(ks_trace::names::VERIFY_CHECKS),
            verify_diffs: scope.counter(ks_trace::names::VERIFY_DIFFS),
            verify_inconclusive: scope.counter(ks_trace::names::VERIFY_INCONCLUSIVE),
        }
    }
    /// Publish one successful (miss-path) compilation's phase breakdown.
    fn record_phases(&self, m: &CompileMetrics) {
        for (name, hist) in &self.phases {
            let d = match *name {
                "preproc" => m.preproc,
                "parse" => m.parse,
                "sema" => m.sema,
                "lower" => m.lower,
                "opt" => m.opt,
                "analysis" => m.analysis,
                "verify" => m.verify,
                _ => m.regalloc,
            };
            hist.record_duration_us(d);
        }
    }
}

/// An ordered set of `-D NAME=value` definitions.
///
/// Insertion order is preserved for [`Defines::command_line`] (a faithful
/// `-D` echo), but does **not** affect caching: the compiler hashes a
/// canonical (name-sorted) view of the set.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Defines {
    items: Vec<(String, String)>,
    /// Invalid definitions (e.g. a non-finite f32) as `(name, message)`,
    /// tracked **per name**: redefining a name with a valid value
    /// replaces the offending entry and clears its marker, while other
    /// names' markers stand. Recorded here so the fluent builder stays
    /// infallible; surfaced as a [`CompileError`] the moment the defines
    /// reach [`Compiler::compile`], *before* the bad token can produce a
    /// confusing downstream lex error.
    invalid: Vec<(String, String)>,
}

impl Defines {
    pub fn new() -> Defines {
        Defines::default()
    }

    /// `-D NAME=<int>`.
    pub fn def(mut self, name: &str, value: impl std::fmt::Display) -> Defines {
        self.items.retain(|(n, _)| n != name);
        self.invalid.retain(|(n, _)| n != name);
        self.items.push((name.to_string(), value.to_string()));
        self
    }

    /// `-D NAME` (defined as 1, like nvcc).
    pub fn flag(mut self, name: &str) -> Defines {
        self.items.retain(|(n, _)| n != name);
        self.invalid.retain(|(n, _)| n != name);
        self.items.push((name.to_string(), String::new()));
        self
    }

    /// A pointer constant, rendered as a hexadecimal literal the kernel can
    /// cast: `-D PTR_IN=0x200ca0200` (§4, footnote 1).
    pub fn ptr(self, name: &str, addr: u64) -> Defines {
        self.def(name, format!("{addr:#x}"))
    }

    /// A single-precision float constant (§4 footnote 1: floating-point
    /// values can be specified on the command line), rendered with an `f`
    /// suffix so it lexes as `float`. Non-finite values (NaN, ±inf) have
    /// no float-literal spelling; they are rejected with a clear error at
    /// compile time instead of failing to lex downstream.
    pub fn f32(mut self, name: &str, value: f32) -> Defines {
        if !value.is_finite() {
            // The bad entry replaces any earlier definition (valid or
            // invalid) of the same name, exactly like a valid redefine.
            self.items.retain(|(n, _)| n != name);
            self.invalid.retain(|(n, _)| n != name);
            self.invalid.push((
                name.to_string(),
                format!(
                    "invalid define `-D {name}={value}`: f32 defines must be \
                     finite ({value} has no float-literal spelling)"
                ),
            ));
            return self;
        }
        self.def(name, format!("{value:?}f"))
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn items(&self) -> &[(String, String)] {
        &self.items
    }

    /// The first invalid definition still in effect, if any. A marker is
    /// cleared when its name is later redefined with a valid value (the
    /// offending entry no longer exists); markers for other names stand.
    pub fn invalid(&self) -> Option<&str> {
        self.invalid.first().map(|(_, msg)| msg.as_str())
    }

    /// Render the nvcc-style command-line fragment (for logs).
    pub fn command_line(&self) -> String {
        self.items
            .iter()
            .map(|(n, v)| {
                if v.is_empty() {
                    format!("-D {n}")
                } else {
                    format!("-D {n}={v}")
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A compiled kernel module: the analogue of a loaded `.cubin`.
#[derive(Debug)]
pub struct Binary {
    pub module: ks_ir::Module,
    /// PTX-like listing (Appendices C/D style), for inspection.
    pub ptx: String,
    /// Per-kernel register allocation results.
    pub regalloc: HashMap<String, RegAlloc>,
    pub defines: Defines,
    pub device: String,
    /// Wall-clock cost of this compilation (the §4.3 trade-off).
    pub compile_time: Duration,
    /// Per-phase breakdown of `compile_time`.
    pub metrics: CompileMetrics,
    /// Non-deny analysis diagnostics (deny-level findings abort the
    /// compile instead). Empty unless the compiler carries an
    /// [`AnalysisConfig`].
    pub diagnostics: Vec<ks_analysis::Diagnostic>,
    /// Translation-validation findings (KSV codes). Empty unless the
    /// compiler carries a [`ValidationConfig`]; with `deny` set (the
    /// default) error findings abort the compile, so only warnings —
    /// KSV101 inconclusive outcomes — appear here.
    pub verification: Vec<ks_verify::Finding>,
}

impl Binary {
    /// Physical registers per thread for a kernel.
    pub fn regs_per_thread(&self, kernel: &str) -> u32 {
        self.regalloc
            .get(kernel)
            .map(|r| r.gpr_count.max(2))
            .unwrap_or(0)
    }

    /// Static instruction count of a kernel.
    pub fn static_insts(&self, kernel: &str) -> usize {
        self.module
            .function(kernel)
            .map(|f| f.static_inst_count())
            .unwrap_or(0)
    }

    /// Static shared-memory bytes per block.
    pub fn shared_bytes(&self, kernel: &str) -> u32 {
        self.module
            .function(kernel)
            .map(|f| f.shared_bytes())
            .unwrap_or(0)
    }

    /// Per-thread local (spill) memory.
    pub fn local_bytes(&self, kernel: &str) -> u32 {
        self.module
            .function(kernel)
            .map(|f| f.local_bytes)
            .unwrap_or(0)
    }
}

/// A compile-time error, annotated with the defines in play.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    pub message: String,
    pub command_line: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error [{}]: {}", self.command_line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Cache statistics (hits mean the §4.3 overhead was avoided entirely).
///
/// Counters are maintained atomically in the same operation that probes
/// or fills the cache, so at quiescence `hits + misses` equals the number
/// of successful [`Compiler::compile`] calls under arbitrary thread
/// interleavings. Requests deduplicated by single-flight count as hits
/// (the overhead was paid once, by the leader); their blocked time is
/// itemized in `dedup_waits` / `total_dedup_wait_micros`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries dropped by LRU eviction (bounded caches only).
    pub evictions: u64,
    /// Calls that blocked on another thread's in-flight compilation of
    /// the same key (each also counted as a hit on success).
    pub dedup_waits: u64,
    pub total_compile_micros: u64,
    /// Total time calls spent blocked on in-flight compilations.
    pub total_dedup_wait_micros: u64,
    /// Cache-path calls that returned an error: failed leaders (after
    /// exhausting retries), followers of a failed flight, and
    /// quarantine fast-fails. Itemized *outside* the success invariant —
    /// `hits + misses` still equals successful compile calls. Pre-cache
    /// rejections (invalid defines) are not cache traffic and don't
    /// count.
    pub failures: u64,
    /// Calls served an error straight from a quarantined (recently
    /// failed) entry, without re-compiling. Quarantined entries never
    /// occupy LRU capacity. Each is also counted in `failures`.
    pub quarantined: u64,
    /// Retry attempts after a leader failure (bounded by
    /// [`ResilienceConfig::max_retries`] per flight).
    pub retries: u64,
    /// Circuit-breaker open transitions: the Kth consecutive failure of
    /// one key, and every failed half-open probe after it.
    pub breaker_opens: u64,
    /// Calls served from the persistent artifact store attached with
    /// [`Compiler::with_store`]. Each is *also* counted as a hit — the
    /// compile overhead was avoided — so `hits - disk_hits` is the
    /// memory-only hit count.
    pub disk_hits: u64,
    /// Leader compiles that probed an attached store and found no
    /// record (the compile then ran and was written through).
    pub disk_misses: u64,
    /// Store read/write failures degraded to plain recompilation:
    /// corrupt, truncated, or unreadable records, and failed writes.
    /// Never a panic, never a failed compile call.
    pub store_errors: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses / {} evictions / {} dedup-waits / \
             {} failures / {} quarantined / {} retries / {} breaker-opens / \
             {} disk-hits / {} disk-misses / {} store-errors / \
             compile {:.1?} / dedup-wait {:.1?}",
            self.hits,
            self.misses,
            self.evictions,
            self.dedup_waits,
            self.failures,
            self.quarantined,
            self.retries,
            self.breaker_opens,
            self.disk_hits,
            self.disk_misses,
            self.store_errors,
            Duration::from_micros(self.total_compile_micros),
            Duration::from_micros(self.total_dedup_wait_micros),
        )
    }
}

/// Resilience policy for the compile service: bounded retry with seeded
/// exponential backoff, a cooperative per-compile deadline, failure
/// quarantine, and a per-variant circuit breaker. The default is the
/// pre-resilience behaviour — no retries, no quarantine, breaker off,
/// panics propagate — so existing callers are unchanged until they opt
/// in via [`Compiler::with_resilience`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Extra compile attempts after a failed leader attempt (0 = fail
    /// fast). Retries happen inside the single-flight slot, so N
    /// followers of a failing key still cost one retry wave.
    pub max_retries: u32,
    /// Backoff before retry k is `base * 2^(k-1)` (capped), scaled by a
    /// deterministic jitter factor in `[0.5, 1.5)` drawn from
    /// `(jitter_seed, key, attempt)`.
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
    pub jitter_seed: u64,
    /// Cooperative per-attempt deadline: an attempt whose wall-clock
    /// exceeds the budget is reported as a failure even if the pipeline
    /// eventually produced a binary (the service would have abandoned
    /// the wait).
    pub compile_timeout: Option<Duration>,
    /// Consecutive failures of one key that trip its breaker
    /// (0 = breaker disabled). While open, calls fast-fail with a
    /// breaker error until `breaker_cooldown` elapses; the next call
    /// after cooldown is the half-open probe.
    pub breaker_threshold: u32,
    pub breaker_cooldown: Duration,
    /// How long a failed key fast-fails with its recorded error before
    /// a fresh compile is attempted (zero = failures are not
    /// quarantined; every call re-attempts).
    pub quarantine_ttl: Duration,
    /// Convert leader panics into `CompileError`s (and retry them like
    /// any failure) instead of unwinding into the caller.
    pub catch_panics: bool,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            max_retries: 0,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(16),
            jitter_seed: 0x5EED,
            compile_timeout: None,
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_millis(100),
            quarantine_ttl: Duration::ZERO,
            catch_panics: false,
        }
    }
}

impl ResilienceConfig {
    /// The delay before retry `attempt` (1-based) of `key`:
    /// exponential, capped, with deterministic jitter in `[0.5, 1.5)`.
    pub fn backoff(&self, key: u64, attempt: u32) -> Duration {
        if self.backoff_base.is_zero() || attempt == 0 {
            return Duration::ZERO;
        }
        let exp = self
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = exp.min(self.backoff_cap);
        let roll = splitmix64(self.jitter_seed ^ key ^ u64::from(attempt));
        let frac = (roll % 1_000_000) as f64 / 1_000_000.0;
        capped.mul_f64(0.5 + frac)
    }
}

/// Feed every [`AnalysisConfig`] field that affects analysis results
/// into the stable hasher, mirroring `AnalysisConfig::hash_into`'s field
/// list but with explicit tags and widths (the generic `hash_into` goes
/// through `std::hash::Hasher`, whose compound-type encodings make no
/// cross-release stability promise).
fn feed_analysis(h: &mut StableHasher, a: &AnalysisConfig) {
    match a.block_dim {
        None => {
            h.u8(0);
        }
        Some((x, y, z)) => {
            h.u8(1).u32(x).u32(y).u32(z);
        }
    }
    h.u32(a.grid_dim.0).u32(a.grid_dim.1).u32(a.grid_dim.2);
    h.u32(a.block_idx.0).u32(a.block_idx.1).u32(a.block_idx.2);
    h.u32(a.dynamic_shared);
    h.usize(a.param_assumptions.len());
    for (name, value) in &a.param_assumptions {
        h.str(name);
        match value {
            ks_analysis::ParamValue::Int(v) => {
                h.u8(0).i64(*v);
            }
            ks_analysis::ParamValue::F32(v) => {
                h.u8(1).f32_bits(*v);
            }
        }
    }
    h.u64(a.max_steps);
    h.usize(a.levels.len());
    for (code, severity) in &a.levels {
        h.str(code.code());
        h.u8(match severity {
            ks_analysis::Severity::Allow => 0,
            ks_analysis::Severity::Warn => 1,
            ks_analysis::Severity::Deny => 2,
        });
    }
    h.u64(a.bank_conflict_threshold.to_bits());
    h.u64(a.coalescing_slack.to_bits());
}

/// SplitMix64 finalizer (same mixer ks-fault uses): deterministic jitter
/// as a pure function of (seed, key, attempt).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Translation-validation policy for [`Compiler::with_validation`].
///
/// When attached, every miss-path compilation symbolically summarizes each
/// kernel before and after every HIR transform stage and every IR
/// optimization pass, and compares the summaries ([`ks_verify`]). A diff
/// means a pass changed observable behavior — a miscompile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationConfig {
    /// Evaluation budgets for the symbolic summaries.
    pub limits: ks_verify::Limits,
    /// Fail the compile on any error finding (KSV001/KSV003). When false,
    /// findings ride along on [`Binary::verification`] instead.
    pub deny: bool,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            limits: ks_verify::Limits::default(),
            deny: true,
        }
    }
}

/// The run-time kernel compiler with a sharded, single-flight binary
/// cache. Shareable across threads (`&Compiler` is all any API needs);
/// concurrent compiles of distinct keys run fully in parallel, while
/// concurrent requests for the same key cost exactly one compilation.
pub struct Compiler {
    device: DeviceConfig,
    options: CodegenOptions,
    opt_config: ks_opt::OptConfig,
    analysis: Option<AnalysisConfig>,
    validation: Option<ValidationConfig>,
    cache: cache::BinaryCache,
    /// Persistent artifact tier below the in-memory cache
    /// ([`Compiler::with_store`]); lookups read through it, fresh
    /// compiles write through to it.
    store: Option<store::StoreTier>,
    resilience: ResilienceConfig,
    fault_plan: Option<Arc<ks_fault::FaultPlan>>,
    /// Async-tier accounting, shared with in-flight background jobs so
    /// `spawned == completed + failed + cancelled` holds at quiescence
    /// even if the compiler is dropped mid-flight.
    async_stats: Arc<background::AsyncStatsCell>,
    /// Label set for scoped metric publication
    /// ([`Compiler::with_metric_labels`]); empty = unlabeled globals.
    metric_labels: Vec<(String, String)>,
    metrics: TraceMetrics,
}

impl Compiler {
    pub fn new(device: DeviceConfig) -> Compiler {
        Compiler {
            device,
            options: CodegenOptions::default(),
            opt_config: ks_opt::OptConfig::default(),
            analysis: None,
            validation: None,
            cache: cache::BinaryCache::new(None),
            store: None,
            resilience: ResilienceConfig::default(),
            fault_plan: None,
            async_stats: Arc::new(background::AsyncStatsCell::default()),
            metric_labels: Vec::new(),
            metrics: TraceMetrics::from_scope(&ks_trace::registry().scoped(&[])),
        }
    }

    /// Publish this compiler's metrics under a labeled scope — e.g.
    /// `[("service", "pf")]` registers `ks_core.compile.requests{service=pf}`
    /// alongside the unlabeled global (scoped handles chain into the
    /// globals, so aggregates and invariants are unchanged). Configure
    /// before compiling; increments already published stay where they
    /// landed.
    pub fn with_metric_labels(mut self, labels: &[(&str, &str)]) -> Compiler {
        self.metric_labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let scope = self.metric_scope();
        self.metrics = TraceMetrics::from_scope(&scope);
        self.cache.set_metric_scope(&scope);
        self
    }

    /// The label set metrics are published under (empty = unlabeled).
    pub fn metric_labels(&self) -> &[(String, String)] {
        &self.metric_labels
    }

    /// The ks-trace scope this compiler publishes into.
    fn metric_scope(&self) -> ks_trace::Scope<'static> {
        let labels: Vec<(&str, &str)> = self
            .metric_labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        ks_trace::registry().scoped(&labels)
    }

    /// The end-to-end compile latency histogram for one variant:
    /// `ks_core.compile.total_us{variant=...}` (plus this compiler's
    /// labels), chained so a record also lands in the per-compiler and
    /// global aggregates. Only touched on the miss path, where the
    /// registry lookup is noise next to the compile itself.
    fn variant_total_us(&self, defines: &Defines) -> ks_trace::Histogram {
        let cl = defines.command_line();
        let variant = if cl.is_empty() {
            "generic"
        } else {
            cl.as_str()
        };
        self.metric_scope()
            .scoped(&[("variant", variant)])
            .histogram(ks_trace::names::COMPILE_TOTAL_US)
    }

    pub fn with_options(device: DeviceConfig, options: CodegenOptions) -> Compiler {
        Compiler {
            options,
            ..Compiler::new(device)
        }
    }

    /// Full control over HIR-level and IR-level passes (ablation studies).
    pub fn with_passes(
        device: DeviceConfig,
        options: CodegenOptions,
        opt_config: ks_opt::OptConfig,
    ) -> Compiler {
        Compiler {
            options,
            opt_config,
            ..Compiler::new(device)
        }
    }

    /// Attach an [`AnalysisConfig`]: every compile then runs the ks-analysis
    /// suite, records warnings on the [`Binary`], turns deny-level findings
    /// into [`CompileError`]s, and verifies the IR after lowering and after
    /// each optimization pass even in release builds.
    pub fn with_analysis(mut self, cfg: AnalysisConfig) -> Compiler {
        self.analysis = Some(cfg);
        self
    }

    /// Attach a [`ValidationConfig`]: every miss-path compile then runs
    /// translation validation over the HIR stages and IR passes, failing
    /// the compile on any diff (when `cfg.deny`) and recording the rest on
    /// [`Binary::verification`]. Expect a multiple of the plain compile
    /// time — this is a debugging/CI tool, not a hot-path default.
    pub fn with_validation(mut self, cfg: ValidationConfig) -> Compiler {
        self.validation = Some(cfg);
        self
    }

    /// Bound the binary cache to `capacity` entries with LRU eviction
    /// (eviction counts land in [`CacheStats::evictions`]). Unbounded by
    /// default. Configure before compiling: this replaces the cache, so
    /// any already-cached binaries are dropped.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Compiler {
        self.cache = cache::BinaryCache::new(Some(capacity.max(1)));
        self.cache.set_metric_scope(&self.metric_scope());
        self
    }

    /// Attach a persistent, content-addressed artifact store rooted at
    /// `dir` (created if absent). The store becomes a read-through /
    /// write-through tier below the in-memory cache: lookups probe
    /// memory, then disk, then compile, and a fresh compile populates
    /// both — so a later process with the same store directory warm-
    /// starts every previously compiled variant without paying the §4.3
    /// overhead again. Records are keyed by the stable 128-bit cache
    /// fingerprint and carry a format version and payload checksum;
    /// unreadable or corrupt records degrade to recompilation (counted
    /// in [`CacheStats::store_errors`]), never a panic.
    pub fn with_store(
        mut self,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<Compiler, StoreError> {
        self.store = Some(store::StoreTier::open(dir)?);
        Ok(self)
    }

    /// [`Compiler::with_store`], preceded by a full-payload integrity
    /// scrub of the directory: every record is re-validated end to end
    /// (header fields *and* payload checksum) and corrupt records are
    /// moved into `quarantine/` **before** the store goes live, so a
    /// bit-rotted record becomes a clean recompile instead of a
    /// `store_errors` hit on the warm-start path. The walk publishes
    /// `ks_store.scrub.*` counters under this compiler's metric labels
    /// and returns the typed [`ScrubReport`] alongside the compiler.
    /// The offline equivalent is the `ks-store-scrub` binary.
    pub fn with_store_scrubbed(
        self,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<(Compiler, ks_store::ScrubReport), StoreError> {
        let compiler = self.with_store(dir)?;
        let report = compiler
            .scrub_store()
            .expect("store attached on the previous line")?;
        Ok((compiler, report))
    }

    /// Scrub the attached artifact store now (`None` when no store is
    /// attached): full-payload checksum walk, corrupt records moved to
    /// `quarantine/`, `ks_store.scrub.*` counters published under this
    /// compiler's labels. Safe to run while the store is live — records
    /// are immutable once published and the walk never touches valid
    /// ones.
    pub fn scrub_store(&self) -> Option<Result<ks_store::ScrubReport, StoreError>> {
        let tier = self.store.as_ref()?;
        Some(tier.scrub().inspect(|report| {
            let scope = self.metric_scope();
            scope
                .counter(ks_trace::names::STORE_SCRUB_SCANNED)
                .add(report.scanned as u64);
            scope
                .counter(ks_trace::names::STORE_SCRUB_QUARANTINED)
                .add(report.quarantined.len() as u64);
        }))
    }

    /// Root directory of the attached artifact store, if any.
    pub fn store_path(&self) -> Option<&std::path::Path> {
        self.store.as_ref().map(|s| s.root())
    }

    /// Attach a resilience policy: bounded retry with seeded backoff,
    /// per-compile deadline, failure quarantine, and the per-variant
    /// circuit breaker. See [`ResilienceConfig`].
    pub fn with_resilience(mut self, cfg: ResilienceConfig) -> Compiler {
        self.resilience = cfg;
        self
    }

    /// Attach a [`ks_fault::FaultPlan`] consulted on every compile
    /// attempt (takes precedence over any process-wide
    /// [`ks_fault::install`]ed plan). Used by fault drills and tests.
    pub fn with_fault_plan(mut self, plan: Arc<ks_fault::FaultPlan>) -> Compiler {
        self.fault_plan = Some(plan);
        self
    }

    /// The active resilience policy.
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of binaries currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    fn nvcc_line(&self, defines: &Defines) -> String {
        format!(
            "nvcc -arch=sm_{}{} {}",
            self.device.cc_major,
            self.device.cc_minor,
            defines.command_line()
        )
    }

    /// The stable 128-bit cache key: a fingerprint over the canonical
    /// `(source, sorted defines, device, options, passes, analysis,
    /// validation)` tuple, prefixed by the store format, binary schema,
    /// and pass-pipeline versions so any encoding or pipeline change
    /// makes old persisted artifacts unreachable instead of wrongly
    /// reusable.
    ///
    /// Computed with [`ks_store::StableHasher`] — never `DefaultHasher`,
    /// whose output is explicitly unstable across Rust releases — so the
    /// key is safe to escape the process as the on-disk identity of a
    /// compiled artifact. A regression test pins exact key values.
    ///
    /// Public so layers above can *name* a variant canonically: gpu-pf
    /// stamps it on every bound binary (keyed launch-fault checks,
    /// `Degradation`/`IntegrityViolation` records, quarantine reports)
    /// and `ks-store-scrub` postmortems match record file names back to
    /// the `-D` configuration that produced them.
    pub fn cache_key(&self, source: &str, defines: &Defines) -> Fingerprint {
        let mut h = StableHasher::new();
        h.str("ks-core.cache-key.v1");
        h.u32(ks_store::FORMAT_VERSION);
        h.u32(store::BINARY_SCHEMA_VERSION);
        h.str(store::PASS_PIPELINE);
        h.str(source);
        // Canonicalize: hash the define set sorted by name (names are
        // unique, so the order is total), never the insertion order —
        // `.def("A",1).def("B",2)` and `.def("B",2).def("A",1)` are the
        // same `-D` set and must share a cache slot.
        let mut items: Vec<&(String, String)> = defines.items.iter().collect();
        items.sort();
        h.usize(items.len());
        for (name, value) in items {
            h.str(name);
            h.str(value);
        }
        h.str(&self.device.name);
        h.u32(self.device.cc_major);
        h.u32(self.device.cc_minor);
        h.u32(self.options.unroll_limit);
        h.u32(self.options.scalarize_cap);
        h.bool(self.options.optimize);
        h.bool(self.opt_config.constfold);
        h.bool(self.opt_config.strength);
        h.bool(self.opt_config.addrfold);
        h.bool(self.opt_config.cse);
        h.bool(self.opt_config.dce);
        match &self.analysis {
            None => {
                h.u8(0);
            }
            Some(a) => {
                h.u8(1);
                feed_analysis(&mut h, a);
            }
        }
        match &self.validation {
            None => {
                h.u8(0);
            }
            Some(v) => {
                // A validation failure is a compile failure, so the
                // outcome depends on the config: key it.
                h.u8(1);
                h.usize(v.limits.max_paths);
                h.usize(v.limits.max_steps);
                h.u32(v.limits.max_forks_per_site);
                h.bool(v.deny);
            }
        }
        h.finish()
    }

    /// Compile `source` with the given defines, or return the cached
    /// binary for an identical (source, defines, device, passes)
    /// combination. Concurrent calls with the same key block on a single
    /// compilation and all receive the same `Arc<Binary>`.
    pub fn compile(
        &self,
        source: &str,
        defines: impl std::borrow::Borrow<Defines>,
    ) -> Result<Arc<Binary>, CompileError> {
        let defines = defines.borrow();
        if let Some(msg) = defines.invalid() {
            return Err(CompileError {
                message: msg.to_string(),
                command_line: self.nvcc_line(defines),
            });
        }
        let key = self.cache_key(source, defines);
        let _lookup = ks_trace::span_fields("cache-lookup", || {
            vec![
                ("device".to_string(), self.device.name.clone()),
                ("defines".to_string(), defines.command_line()),
            ]
        });
        // Fault plans are consulted per *attempt* (inside the retry
        // loop), so transient injected faults clear under retry. The
        // compiler-local plan wins over the process-wide one.
        let plan = self.fault_plan.clone().or_else(ks_fault::active);
        let identity = plan.as_ref().map(|_| {
            ks_fault::kernel_names(source)
                .into_iter()
                .next()
                .unwrap_or_else(|| "?".to_string())
        });
        let store = self.store.as_ref();
        let result = self.cache.get_or_compile(key, &self.resilience, store, || {
            if let (Some(plan), Some(id)) = (&plan, &identity) {
                if let Some(fault) = plan.check_compile(id, key.lo64(), &defines.command_line()) {
                    if fault.kind == ks_fault::FaultKind::CompilePanic {
                        panic!("{}", fault.message());
                    }
                    return Err(CompileError {
                        message: fault.message(),
                        command_line: self.nvcc_line(defines),
                    });
                }
            }
            // The miss path: this span's children are the per-phase
            // spans recorded inside `compile_uncached`, so the phase
            // durations account for the compile span end to end.
            let _compile = ks_trace::span_fields("compile", || {
                vec![
                    ("device".to_string(), self.device.name.clone()),
                    ("defines".to_string(), defines.command_line()),
                ]
            });
            let start = Instant::now();
            let result = self.compile_uncached(source, defines).map(|mut bin| {
                let elapsed = start.elapsed();
                bin.compile_time = elapsed;
                bin.metrics.total = elapsed;
                // Total latency is recorded through a per-variant
                // scope (labeled by the define set), whose handle chain
                // also covers this compiler's scope and the unlabeled
                // global — one record, every level of the roll-up.
                self.variant_total_us(defines).record_duration_us(elapsed);
                self.metrics.record_phases(&bin.metrics);
                Arc::new(bin)
            });
            // Cooperative deadline: the work already ran, but a service
            // with a compile budget would have abandoned the wait, so
            // report the attempt as failed (and let the retry policy or
            // the caller's fallback take over).
            if let (Ok(_), Some(budget)) = (&result, self.resilience.compile_timeout) {
                let elapsed = start.elapsed();
                if elapsed > budget {
                    return Err(CompileError {
                        message: format!(
                            "compile deadline exceeded: {elapsed:.1?} > budget {budget:.1?}"
                        ),
                        command_line: self.nvcc_line(defines),
                    });
                }
            }
            result
        });
        if result.is_ok() {
            self.metrics.requests.inc();
        }
        result
    }

    /// Compile a batch of jobs in parallel (rayon), preserving order.
    /// Single-flight dedup applies across the batch and against any
    /// concurrent [`Compiler::compile`] callers, so duplicate jobs cost
    /// one compilation.
    pub fn compile_batch(
        &self,
        jobs: &[(&str, Defines)],
    ) -> Vec<Result<Arc<Binary>, CompileError>> {
        use rayon::prelude::*;
        jobs.par_iter()
            .map(|(source, defines)| self.compile(source, defines))
            .collect()
    }

    /// Warm the cache with every job in parallel, failing on the first
    /// compile error. Sweep drivers call this before walking a grid so
    /// the walk itself is all cache hits.
    pub fn precompile(&self, jobs: &[(&str, Defines)]) -> Result<(), CompileError> {
        use rayon::prelude::*;
        jobs.par_iter()
            .try_for_each(|(source, defines)| self.compile(source, defines).map(drop))
    }

    /// Enqueue a background compile and return immediately with a
    /// [`CompileTicket`]. The job runs on the bounded async worker pool
    /// and goes through the same single-flight cache as
    /// [`Compiler::compile`], so a ticket and a blocking call for the
    /// same canonical key cost exactly one compilation. Poll with
    /// [`CompileTicket::try_result`], block with [`CompileTicket::wait`],
    /// or [`CompileTicket::cancel`] to supersede the job.
    ///
    /// Requires `Arc<Compiler>`: the queued job holds only a weak
    /// reference, so dropping every other handle resolves outstanding
    /// tickets with an error instead of leaking the compiler.
    pub fn spawn_compile(
        self: &Arc<Self>,
        source: &str,
        defines: impl std::borrow::Borrow<Defines>,
    ) -> CompileTicket {
        let defines = defines.borrow();
        let key = self.cache_key(source, defines);
        background::spawn(self, self.async_stats.clone(), key, source, defines)
    }

    /// Async-tier counters for this compiler (exact; see [`AsyncStats`]).
    pub fn async_stats(&self) -> AsyncStats {
        self.async_stats.snapshot()
    }

    fn compile_uncached(&self, source: &str, defines: &Defines) -> Result<Binary, CompileError> {
        let err = |message: String| CompileError {
            message,
            command_line: self.nvcc_line(defines),
        };
        let mut metrics = CompileMetrics::default();
        // Built-in architecture macro, so kernels can `#if __CUDA_ARCH__ >= 200`
        // exactly like the OpenCV example (§2.6).
        let mut all_defines: Vec<(String, String)> = vec![(
            "__CUDA_ARCH__".to_string(),
            format!("{}{}0", self.device.cc_major, self.device.cc_minor),
        )];
        all_defines.extend(defines.items().iter().cloned());

        let sp = ks_trace::span("preprocess");
        let t = Instant::now();
        let toks = ks_lang::lexer::lex(source).map_err(|e| err(e.to_string()))?;
        let pp =
            ks_lang::preproc::preprocess(toks, &all_defines).map_err(|e| err(e.to_string()))?;
        metrics.preproc = t.elapsed();
        drop(sp);
        let sp = ks_trace::span("parse");
        let t = Instant::now();
        let unit = ks_lang::parser::parse(pp).map_err(|e| err(e.to_string()))?;
        metrics.parse = t.elapsed();
        drop(sp);
        let sp = ks_trace::span("sema");
        let t = Instant::now();
        let program = ks_lang::sema::check(&unit).map_err(|e| err(e.to_string()))?;
        metrics.sema = t.elapsed();
        drop(sp);

        let sp = ks_trace::span("lower");
        let t = Instant::now();
        // With validation on, capture a lowered snapshot after every HIR
        // transform stage so consecutive stages can be compared.
        let mut hir_snaps: Vec<(&'static str, ks_ir::Module)> = Vec::new();
        let mut module = if self.validation.is_some() {
            ks_codegen::compile_observed(&program, &self.options, &mut |stage, m| {
                hir_snaps.push((stage, m.clone()));
            })
            .map_err(&err)?
        } else {
            ks_codegen::compile(&program, &self.options).map_err(&err)?
        };
        metrics.lower = t.elapsed();
        drop(sp);

        // Translation validation, part 1: each HIR stage against its
        // predecessor ("codegen.unroll" = unroll's output vs its input).
        let mut vreport = ks_verify::VerifyReport::default();
        if let Some(vcfg) = &self.validation {
            let sp = ks_trace::span("verify-codegen");
            let t = Instant::now();
            let envs = ks_verify::default_envs();
            for w in hir_snaps.windows(2) {
                vreport.merge(ks_verify::check_modules(
                    &w[0].1,
                    &w[1].1,
                    &envs,
                    vcfg.limits,
                    &format!("codegen.{}", w[1].0),
                ));
            }
            metrics.verify = t.elapsed();
            drop(sp);
        }
        drop(hir_snaps);

        // Sanitizer: verify the IR after lowering and after every pass
        // application, attributing any breakage to the pass that caused
        // it. Always on in debug builds; opt-in via `with_analysis` in
        // release builds (the final whole-module verify below is
        // unconditional).
        let sanitize = cfg!(debug_assertions) || self.analysis.is_some();
        let sp = ks_trace::span("opt");
        let t = Instant::now();
        let mut verify_in_opt = Duration::ZERO;
        if sanitize || self.validation.is_some() {
            if let Some(e) = ks_ir::verify_module(&module).first() {
                return Err(err(format!("verification failed after lowering: {e}")));
            }
            // Translation validation, part 2: each IR pass against the
            // function it received. Summarization only needs the module
            // for const/texture naming, so a functions-less clone serves
            // as context while the real functions are mutated in place.
            let envs = self.validation.as_ref().map(|_| ks_verify::default_envs());
            let vctx = self.validation.as_ref().map(|_| ks_ir::Module {
                functions: vec![],
                consts: module.consts.clone(),
                textures: module.textures.clone(),
            });
            let mut broken: Option<(&'static str, String)> = None;
            for f in module.functions.iter_mut() {
                // `last` tracks the start of the current pass window:
                // everything since the previous observed pass (including
                // that pass's verification) attributes to this pass.
                let mut last = Instant::now();
                let mut prev_fn = self.validation.as_ref().map(|_| f.clone());
                ks_opt::optimize_with_observer(f, &self.opt_config, &mut |pass, f| {
                    if ks_trace::enabled() {
                        ks_trace::complete_span(&format!("opt-pass.{pass}"), last);
                    }
                    if sanitize && broken.is_none() {
                        if let Some(e) = ks_ir::verify_function(f).first() {
                            broken = Some((pass, e.to_string()));
                        }
                    }
                    if let (Some(vcfg), Some(prev), Some(envs), Some(ctx)) =
                        (&self.validation, &mut prev_fn, &envs, &vctx)
                    {
                        let tv = Instant::now();
                        vreport.merge(ks_verify::check_function_pair(
                            prev,
                            ctx,
                            f,
                            ctx,
                            envs,
                            vcfg.limits,
                            &format!("opt.{pass}"),
                        ));
                        *prev = f.clone();
                        verify_in_opt += tv.elapsed();
                    }
                    last = Instant::now();
                });
                if let Some((pass, e)) = broken.take() {
                    return Err(err(format!("verification failed after pass `{pass}`: {e}")));
                }
            }
        } else if ks_trace::enabled() {
            // Tracing wants per-pass attribution; the observer route
            // costs one clock read per applied pass, which is only paid
            // while spans are being collected.
            for f in module.functions.iter_mut() {
                let mut last = Instant::now();
                ks_opt::optimize_with_observer(f, &self.opt_config, &mut |pass, _| {
                    ks_trace::complete_span(&format!("opt-pass.{pass}"), last);
                    last = Instant::now();
                });
            }
        } else {
            ks_opt::optimize_module_with(&mut module, &self.opt_config);
        }
        metrics.opt = t.elapsed().saturating_sub(verify_in_opt);
        metrics.verify += verify_in_opt;
        drop(sp);

        // Finalize translation validation: publish counters, then fail the
        // compile on any diff when the policy denies.
        if let Some(vcfg) = &self.validation {
            let tm = &self.metrics;
            tm.verify_checks.add(vreport.checks as u64);
            tm.verify_diffs.add(vreport.error_count() as u64);
            tm.verify_inconclusive.add(vreport.warning_count() as u64);
            if vcfg.deny {
                if let Some(f) = vreport.findings.iter().find(|f| f.is_error()) {
                    return Err(err(format!("translation validation failed: {f}")));
                }
            }
        }

        let sp = ks_trace::span("analysis");
        let t = Instant::now();
        let verify = ks_ir::verify_module(&module);
        if let Some(e) = verify.first() {
            return Err(err(format!("post-optimization verification failed: {e}")));
        }

        // Static-analysis suite (racecheck, barrier divergence, bounds,
        // memory lints): deny-level findings fail the compile like any
        // other error; the rest ride along on the binary.
        let mut diagnostics = Vec::new();
        if let Some(acfg) = &self.analysis {
            let report = ks_analysis::analyze_module(&module, &self.device, acfg);
            if report.has_denials() {
                return Err(err(format!("analysis failed:\n{}", report.render())));
            }
            diagnostics = report.diagnostics;
        }
        metrics.analysis = t.elapsed();
        drop(sp);

        let sp = ks_trace::span("regalloc");
        let t = Instant::now();
        let mut regalloc = HashMap::new();
        for f in &module.functions {
            regalloc.insert(f.name.clone(), ks_sim::allocate(f));
        }
        metrics.regalloc = t.elapsed();
        drop(sp);
        let sp = ks_trace::span("print");
        let ptx = ks_ir::printer::print_module(&module);
        drop(sp);
        Ok(Binary {
            module,
            ptx,
            regalloc,
            defines: defines.clone(),
            device: self.device.name.clone(),
            compile_time: Duration::ZERO,
            metrics,
            diagnostics,
            verification: vreport.findings,
        })
    }

    /// Check RE→SK specialization equivalence for `source` under
    /// `defines`: compiles both the generic (no-defines) and specialized
    /// modules through the normal cached pipeline, then compares the
    /// generic kernel's symbolic summary *evaluated under the bindings the
    /// defines imply* against the specialized kernel's. Returns the full
    /// report; callers decide whether findings are fatal.
    pub fn validate_specialization(
        &self,
        source: &str,
        defines: &Defines,
    ) -> Result<ks_verify::VerifyReport, CompileError> {
        let re = self.compile(source, Defines::new())?;
        let sk = self.compile(source, defines)?;
        let limits = self.validation.map(|v| v.limits).unwrap_or_default();
        let report = ks_verify::check_specialization(
            &re.module,
            &sk.module,
            source,
            defines.items(),
            limits,
        );
        let tm = &self.metrics;
        tm.verify_checks.add(report.checks as u64);
        tm.verify_diffs.add(report.error_count() as u64);
        tm.verify_inconclusive.add(report.warning_count() as u64);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MATHTEST: &str = r#"
        // Appendix-B-style flexibly specializable kernel.
        #ifndef LOOP_COUNT
        #define LOOP_COUNT loopCount
        #endif
        #ifndef ARG_A
        #define ARG_A argA
        #endif
        #ifndef ARG_B
        #define ARG_B argB
        #endif
        #ifndef BLOCK_DIM_X
        #define BLOCK_DIM_X blockDim.x
        #endif
        __global__ void mathTest(int* in, int* out, int argA, int argB, int loopCount) {
            int acc = 0;
            const unsigned int stride = ARG_A * ARG_B;
            const unsigned int offset = blockIdx.x * BLOCK_DIM_X + threadIdx.x;
            for (int i = 0; i < LOOP_COUNT; i++) {
                acc += *(in + offset + i * stride);
            }
            *(out + offset) = acc;
            return;
        }
    "#;

    #[test]
    fn re_vs_sk_static_shape() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let re = c.compile(MATHTEST, Defines::new()).unwrap();
        let sk = c
            .compile(
                MATHTEST,
                Defines::new()
                    .def("LOOP_COUNT", 5)
                    .def("ARG_A", 3)
                    .def("ARG_B", 7)
                    .def("BLOCK_DIM_X", 128),
            )
            .unwrap();
        // Specialized: single basic block (no control flow), fewer regs.
        let f_sk = sk.module.function("mathTest").unwrap();
        let reachable = f_sk
            .blocks
            .iter()
            .filter(|b| !b.insts.is_empty() || !matches!(b.term, ks_ir::Terminator::Ret))
            .count();
        assert!(
            reachable <= 3,
            "specialized kernel should be nearly straight-line"
        );
        assert!(
            sk.regs_per_thread("mathTest") < re.regs_per_thread("mathTest"),
            "specialization must reduce register usage ({} vs {})",
            sk.regs_per_thread("mathTest"),
            re.regs_per_thread("mathTest")
        );
        // The RE PTX has condition checks; SK has none. SK keeps only the
        // two pointer parameter loads (in/out were not specialized here),
        // while RE also loads the three scalar parameters.
        let count = |s: &str, pat: &str| s.matches(pat).count();
        assert!(re.ptx.contains("setp"));
        assert!(!sk.ptx.contains("setp"));
        assert_eq!(count(&re.ptx, "ld.param"), 5);
        assert_eq!(count(&sk.ptx, "ld.param"), 2);
    }

    #[test]
    fn labeled_compiler_publishes_scoped_metrics() {
        // Labels unique to this test: the registry is process-global
        // and other tests move the unlabeled aggregates concurrently.
        let c = Compiler::new(DeviceConfig::tesla_c1060())
            .with_metric_labels(&[("service", "core-lbl-test")]);
        let r = ks_trace::registry();
        c.compile(MATHTEST, Defines::new()).unwrap();
        c.compile(MATHTEST, Defines::new().def("LOOP_COUNT", 5))
            .unwrap();
        c.compile(MATHTEST, Defines::new()).unwrap(); // cache hit
        assert_eq!(
            r.counter_value("ks_core.compile.requests{service=core-lbl-test}"),
            3
        );
        assert_eq!(
            r.counter_value("ks_core.cache.hits{service=core-lbl-test}"),
            1
        );
        assert_eq!(
            r.counter_value("ks_core.cache.misses{service=core-lbl-test}"),
            2
        );
        // Per-variant latency: one miss per variant cell, chained
        // through the compiler scope.
        let generic = r
            .histogram("ks_core.compile.total_us{service=core-lbl-test,variant=generic}")
            .snapshot();
        assert_eq!(generic.count, 1);
        let spec = r
            .histogram("ks_core.compile.total_us{service=core-lbl-test,variant=-D_LOOP_COUNT_5}")
            .snapshot();
        assert_eq!(spec.count, 1);
        let svc = r
            .histogram("ks_core.compile.total_us{service=core-lbl-test}")
            .snapshot();
        assert_eq!(svc.count, 2);
        assert_eq!(svc.sum, generic.sum + spec.sum);
        // Scoped cells mirror the compiler's own stats exactly.
        let stats = c.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn cache_hits_on_identical_parameters() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let d = Defines::new().def("LOOP_COUNT", 4);
        let b1 = c.compile(MATHTEST, &d).unwrap();
        let b2 = c.compile(MATHTEST, &d).unwrap();
        assert!(Arc::ptr_eq(&b1, &b2), "second compile must be a cache hit");
        let s = c.cache_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        // Different parameters miss.
        let _ = c
            .compile(MATHTEST, Defines::new().def("LOOP_COUNT", 8))
            .unwrap();
        assert_eq!(c.cache_stats().misses, 2);
    }

    #[test]
    fn define_order_is_canonicalized_in_the_cache_key() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let forward = Defines::new().def("ARG_A", 3).def("ARG_B", 7);
        let backward = Defines::new().def("ARG_B", 7).def("ARG_A", 3);
        // Semantically identical `-D` sets: same key, and the second
        // compile is a hit, not a spurious recompile.
        assert_eq!(
            c.cache_key(MATHTEST, &forward),
            c.cache_key(MATHTEST, &backward)
        );
        let b1 = c.compile(MATHTEST, &forward).unwrap();
        let b2 = c.compile(MATHTEST, &backward).unwrap();
        assert!(Arc::ptr_eq(&b1, &b2));
        assert_eq!(c.cache_stats().misses, 1);
        assert_eq!(c.cache_stats().hits, 1);
        // The command line still echoes insertion order faithfully.
        assert_eq!(forward.command_line(), "-D ARG_A=3 -D ARG_B=7");
        assert_eq!(backward.command_line(), "-D ARG_B=7 -D ARG_A=3");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 24, ..Default::default()
        })]

        /// Any permutation of the same define set yields the same cache
        /// key — and therefore a cache hit, never a spurious recompile.
        #[test]
        fn define_permutations_share_a_cache_slot(
            values in proptest::collection::vec(0i64..1000, 2..6),
            shuffle_seed in 0u64..10_000,
        ) {
            let names = ["ARG_A", "ARG_B", "LOOP_COUNT", "BLOCK_DIM_X", "EXTRA"];
            let pairs: Vec<(&str, i64)> = names
                .iter()
                .zip(values.iter())
                .map(|(n, v)| (*n, *v))
                .collect();
            // Fisher–Yates with a tiny deterministic LCG.
            let mut shuffled = pairs.clone();
            let mut state = shuffle_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            for i in (1..shuffled.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                shuffled.swap(i, (state % (i as u64 + 1)) as usize);
            }
            let build = |pairs: &[(&str, i64)]| {
                pairs.iter().fold(Defines::new(), |d, (n, v)| d.def(n, v))
            };
            let (a, b) = (build(&pairs), build(&shuffled));
            let c = Compiler::new(DeviceConfig::tesla_c1060());
            proptest::prop_assert_eq!(c.cache_key(MATHTEST, &a), c.cache_key(MATHTEST, &b));
            let b1 = c.compile(MATHTEST, &a).unwrap();
            let b2 = c.compile(MATHTEST, &b).unwrap();
            proptest::prop_assert!(Arc::ptr_eq(&b1, &b2), "permutation caused a recompile");
            proptest::prop_assert_eq!(c.cache_stats().misses, 1);
        }
    }

    #[test]
    fn defines_builder_and_command_line() {
        let d = Defines::new()
            .def("A", 3)
            .flag("FAST")
            .ptr("PTR_IN", 0x200ca0200);
        assert_eq!(d.command_line(), "-D A=3 -D FAST -D PTR_IN=0x200ca0200");
        // Redefinition replaces.
        let d = d.def("A", 9);
        assert!(d.command_line().contains("A=9"));
        assert!(!d.command_line().contains("A=3"));
    }

    #[test]
    fn float_defines_specialize_scaling_factors() {
        let src = r#"
            #ifndef SCALE
            #define SCALE scale
            #endif
            __global__ void k(float* out, float scale) {
                out[threadIdx.x] = (float)threadIdx.x * SCALE;
            }
        "#;
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let sk = c.compile(src, Defines::new().f32("SCALE", 2.5)).unwrap();
        // The constant must appear as a float immediate in the PTX.
        assert!(
            sk.ptx.contains(&format!("0f{:08X}", 2.5f32.to_bits())),
            "{}",
            sk.ptx
        );
        // RE build keeps the parameter load instead.
        let re = c.compile(src, Defines::new()).unwrap();
        assert!(re.ptx.matches("ld.param").count() > sk.ptx.matches("ld.param").count());
    }

    #[test]
    fn non_finite_f32_defines_are_rejected_up_front() {
        let src = r#"
            #ifndef SCALE
            #define SCALE scale
            #endif
            __global__ void k(float* out, float scale) {
                out[threadIdx.x] = (float)threadIdx.x * SCALE;
            }
        "#;
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let d = Defines::new().f32("SCALE", bad);
            assert!(d.invalid().is_some(), "{bad} must poison the builder");
            let e = c.compile(src, &d).unwrap_err();
            assert!(
                e.message.contains("SCALE") && e.message.contains("finite"),
                "unclear error for {bad}: {e}"
            );
        }
        // Rejected before any caching: no stats movement.
        assert_eq!(c.cache_stats(), CacheStats::default());
        // A finite value after a non-finite one *replaces* the offending
        // entry, so the marker clears and the set compiles.
        let d = Defines::new().f32("SCALE", f32::NAN).f32("SCALE", 1.0);
        assert!(d.invalid().is_none(), "redefinition must clear the marker");
        assert!(c.compile(src, &d).is_ok());
    }

    #[test]
    fn invalid_define_markers_are_per_name() {
        // Valid then invalid: the invalid entry replaces the valid one.
        let d = Defines::new().f32("S", 1.0).f32("S", f32::NAN);
        assert!(d.invalid().is_some());
        assert!(
            !d.command_line().contains("S="),
            "the replaced valid entry must not linger: {}",
            d.command_line()
        );
        // Invalid then valid: the offending entry was replaced; cleared.
        let d = d.f32("S", 2.0);
        assert!(d.invalid().is_none());
        assert!(d.command_line().contains("S=2"));
        // def() and flag() replacements clear a marker too.
        assert!(Defines::new()
            .f32("S", f32::INFINITY)
            .def("S", 3)
            .invalid()
            .is_none());
        assert!(Defines::new()
            .f32("S", f32::NEG_INFINITY)
            .flag("S")
            .invalid()
            .is_none());
        // Distinct names track independently: clearing one does not
        // silently forgive another.
        let d = Defines::new()
            .f32("A", f32::NAN)
            .f32("B", f32::NAN)
            .f32("A", 1.0);
        assert!(d.invalid().is_some(), "B's marker must survive A's clear");
        assert!(d.invalid().unwrap().contains('B'));
        assert!(d.f32("B", 1.0).invalid().is_none());
    }

    /// Pins exact key values for fixed inputs. These keys are the
    /// on-disk identity of persisted artifacts: if this test fails, the
    /// fingerprint computation changed and every existing store written
    /// by a previous build is orphaned. Either revert the change or
    /// accept the invalidation *deliberately* by bumping the domain tag
    /// in `cache_key` and re-pinning.
    #[test]
    fn cache_keys_are_pinned_for_fixed_inputs() {
        let src = "__global__ void k(int* o) { o[0] = 1; }";
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let c2 = Compiler::new(DeviceConfig::tesla_c2070());
        let keys = [
            c.cache_key(src, &Defines::new()).to_hex(),
            c.cache_key(src, &Defines::new().def("A", 1).def("B", 2))
                .to_hex(),
            c2.cache_key(src, &Defines::new()).to_hex(),
        ];
        assert_eq!(
            keys,
            [
                "f67b81dd2904aa1bcb6f6575a3ace48a".to_string(),
                "7eb9abd86c740598a889bfde8f304aee".to_string(),
                "5386e440d87047af2a43bf7843aff400".to_string(),
            ]
        );
    }

    #[test]
    fn cuda_arch_macro_selects_per_device() {
        let src = r#"
            __global__ void k(int* out) {
            #if __CUDA_ARCH__ >= 200
                out[0] = 200;
            #else
                out[0] = 130;
            #endif
            }
        "#;
        let c1 = Compiler::new(DeviceConfig::tesla_c1060());
        let c2 = Compiler::new(DeviceConfig::tesla_c2070());
        let b1 = c1.compile(src, Defines::new()).unwrap();
        let b2 = c2.compile(src, Defines::new()).unwrap();
        let find_store_imm = |b: &Binary| {
            b.module.function("k").unwrap().blocks[0]
                .insts
                .iter()
                .find_map(|i| match i {
                    ks_ir::Inst::St {
                        src: ks_ir::Operand::ImmI(v),
                        ..
                    } => Some(*v),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(find_store_imm(&b1), 130);
        assert_eq!(find_store_imm(&b2), 200);
    }

    #[test]
    fn analysis_denials_fail_the_compile() {
        let src = r#"
            __global__ void k(float* out) {
                __shared__ float s[64];
                int t = (int)threadIdx.x;
                s[t] = 1.0f;
                if (t < 16) {
                    __syncthreads();
                }
                out[t] = s[t];
            }
        "#;
        // Without analysis the kernel compiles.
        let plain = Compiler::new(DeviceConfig::tesla_c2070());
        assert!(plain.compile(src, Defines::new()).is_ok());
        // With it, the divergent barrier is a KSA002 deny.
        let c = Compiler::new(DeviceConfig::tesla_c2070())
            .with_analysis(ks_analysis::AnalysisConfig::default());
        let e = c.compile(src, Defines::new()).unwrap_err();
        assert!(e.message.contains("KSA002"), "{}", e.message);
        // Demoted to a warning, it compiles and rides on the binary.
        let c =
            Compiler::new(DeviceConfig::tesla_c2070()).with_analysis(ks_analysis::AnalysisConfig {
                levels: vec![(
                    ks_analysis::LintCode::BarrierDivergence,
                    ks_analysis::Severity::Warn,
                )],
                ..Default::default()
            });
        let bin = c.compile(src, Defines::new()).unwrap();
        assert_eq!(bin.diagnostics.len(), 1);
        assert_eq!(
            bin.diagnostics[0].code,
            ks_analysis::LintCode::BarrierDivergence
        );
    }

    #[test]
    fn analysis_config_is_part_of_the_cache_key() {
        // Same source, different analysis geometry: must not share a
        // cache slot (diagnostics depend on it).
        let c = Compiler::new(DeviceConfig::tesla_c1060())
            .with_analysis(ks_analysis::AnalysisConfig::default());
        let _ = c.compile(MATHTEST, Defines::new()).unwrap();
        assert_eq!(c.cache_stats().misses, 1);
        let c2 =
            Compiler::new(DeviceConfig::tesla_c1060()).with_analysis(ks_analysis::AnalysisConfig {
                block_dim: Some((32, 1, 1)),
                ..Default::default()
            });
        // Keys differ across configs even though source and defines match.
        assert_ne!(
            c.cache_key(MATHTEST, &Defines::new()),
            c2.cache_key(MATHTEST, &Defines::new())
        );
    }

    #[test]
    fn compile_errors_carry_command_line() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let err = c.compile("__global__ void k(int* o) { o[0] = wat; }", Defines::new());
        let e = err.unwrap_err();
        assert!(e.message.contains("wat"));
        assert!(e.command_line.contains("nvcc"));
    }

    #[test]
    fn metrics_cover_the_pipeline_phases() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let bin = c
            .compile(MATHTEST, Defines::new().def("LOOP_COUNT", 8))
            .unwrap();
        let m = &bin.metrics;
        assert_eq!(m.total, bin.compile_time);
        assert!(m.total > Duration::ZERO);
        // The itemized phases never exceed the end-to-end wall clock.
        let itemized = m.preproc + m.parse + m.sema + m.lower + m.opt + m.analysis + m.regalloc;
        assert!(
            itemized <= m.total,
            "phases {itemized:?} exceed total {:?}",
            m.total
        );
        assert!(m.summary().contains("preproc"));
    }

    #[test]
    fn compile_batch_preserves_order_and_dedupes() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let jobs: Vec<(&str, Defines)> = vec![
            (MATHTEST, Defines::new().def("LOOP_COUNT", 2)),
            (MATHTEST, Defines::new().def("LOOP_COUNT", 3)),
            // Duplicate of the first job: must not cost a second compile.
            (MATHTEST, Defines::new().def("LOOP_COUNT", 2)),
            ("__global__ void k(int* o) { o[0] = wat; }", Defines::new()),
        ];
        let results = c.compile_batch(&jobs);
        assert_eq!(results.len(), 4);
        assert!(results[0].is_ok() && results[1].is_ok() && results[2].is_ok());
        assert!(Arc::ptr_eq(
            results[0].as_ref().unwrap(),
            results[2].as_ref().unwrap()
        ));
        assert!(results[3].is_err(), "bad job must fail in place");
        let s = c.cache_stats();
        assert_eq!(s.misses, 2, "duplicate job must dedup, got {s}");
        // precompile over the good jobs is now free (all hits).
        let good = &jobs[..3];
        let before = c.cache_stats();
        c.precompile(good).unwrap();
        let after = c.cache_stats();
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.hits, before.hits + 3);
    }

    #[test]
    fn cache_capacity_bounds_entries_with_lru_eviction() {
        let c = Compiler::new(DeviceConfig::tesla_c1060()).with_cache_capacity(3);
        for i in 0..8 {
            let _ = c
                .compile(MATHTEST, Defines::new().def("LOOP_COUNT", i + 1))
                .unwrap();
        }
        let s = c.cache_stats();
        assert_eq!(s.misses, 8);
        assert!(c.cache_len() <= 3, "capacity exceeded: {}", c.cache_len());
        assert_eq!(s.evictions, 8 - c.cache_len() as u64);
    }

    #[test]
    fn dynamically_sized_constant_memory() {
        // §4.1: specialization converts fixed-size constant declarations to
        // dynamically sized ones.
        let src = r#"
            #ifndef KSIZE
            #define KSIZE 32
            #endif
            __constant__ float filt[KSIZE];
            __global__ void k(float* o) { o[threadIdx.x] = filt[threadIdx.x]; }
        "#;
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let small = c.compile(src, Defines::new().def("KSIZE", 8)).unwrap();
        let big = c.compile(src, Defines::new().def("KSIZE", 4096)).unwrap();
        assert_eq!(small.module.const_bytes(), 32);
        assert_eq!(big.module.const_bytes(), 16384);
        // Exceeding the 64 KB limit is a compile error, as on real CUDA.
        assert!(c.compile(src, Defines::new().def("KSIZE", 20000)).is_err());
    }
}
