//! Per-phase compile timing (§4.3 overhead accounting, broken down).
//!
//! Every [`Binary`](crate::Binary) carries the wall-clock cost of each
//! pipeline phase, so consumers — GPU-PF refresh logs, the bench sweep
//! drivers, `ks-tune` — can attribute compile overhead instead of only
//! reporting a single total.

use std::time::Duration;

/// Wall-clock timing of each compilation phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileMetrics {
    /// Lexing + preprocessing (`-D` substitution, `#if` evaluation).
    pub preproc: Duration,
    /// Parsing to an AST.
    pub parse: Duration,
    /// Semantic analysis producing the typed HIR.
    pub sema: Duration,
    /// AST→IR lowering (incl. unrolling and guard elimination).
    pub lower: Duration,
    /// IR optimization passes (incl. per-pass verification when the
    /// sanitizer is on).
    pub opt: Duration,
    /// IR verification + static-analysis suite.
    pub analysis: Duration,
    /// Translation validation (symbolic summaries + comparison), zero
    /// unless the compiler carries a `ValidationConfig`.
    pub verify: Duration,
    /// Register allocation across all kernels.
    pub regalloc: Duration,
    /// End-to-end wall clock (equals `Binary::compile_time`; includes
    /// phases not itemized above, e.g. PTX printing).
    pub total: Duration,
}

impl CompileMetrics {
    /// One-line breakdown for logs, e.g.
    /// `preproc 12.3µs · parse 40.1µs · … · total 139.0µs`.
    pub fn summary(&self) -> String {
        let phases = [
            ("preproc", self.preproc),
            ("parse", self.parse),
            ("sema", self.sema),
            ("lower", self.lower),
            ("opt", self.opt),
            ("analysis", self.analysis),
            ("verify", self.verify),
            ("regalloc", self.regalloc),
            ("total", self.total),
        ];
        phases
            .iter()
            .map(|(name, d)| format!("{name} {d:.1?}"))
            .collect::<Vec<_>>()
            .join(" · ")
    }
}

impl std::fmt::Display for CompileMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_names_every_phase() {
        let m = CompileMetrics {
            preproc: Duration::from_micros(12),
            total: Duration::from_micros(139),
            ..Default::default()
        };
        let s = m.summary();
        for phase in [
            "preproc", "parse", "sema", "lower", "opt", "analysis", "verify", "regalloc", "total",
        ] {
            assert!(s.contains(phase), "missing {phase} in {s}");
        }
        assert_eq!(m.to_string(), s);
    }
}
