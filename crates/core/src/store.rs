//! Persistent artifact tier: `Binary` (de)serialization over the
//! ks-store record format, and the read-through/write-through glue the
//! cache uses.
//!
//! The payload encoding is hand-rolled over [`ks_store::ByteWriter`] /
//! [`ks_store::ByteReader`]: little-endian, length-prefixed strings,
//! explicit `u8` tags for every enum. Serialization is deterministic
//! (the `regalloc` map is emitted name-sorted), so the same `Binary`
//! always produces the same record bytes — which is what lets the CI
//! store tier assert byte-identical reloads across process restarts.
//!
//! Decoding never panics on payload content: every structural problem
//! is a typed [`StoreError`] that the cache counts as `store_errors`
//! and degrades to a recompile.

use crate::{Binary, CompileMetrics, Defines};
use ks_sim::RegAlloc;
use ks_store::{ByteReader, ByteWriter, Fingerprint, Store, StoreError};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Version of the `Binary` payload encoding below. Folded into both the
/// record payload (checked on load) and the cache-key fingerprint (so a
/// bump simply makes old records unreachable rather than unreadable
/// errors).
pub const BINARY_SCHEMA_VERSION: u32 = 1;

/// Canonical description of the fixed pass pipeline, folded into every
/// cache-key fingerprint. The HIR stage list mirrors
/// `ks_codegen::compile_observed` and the IR pass list mirrors
/// `ks_opt::optimize_with_observer`; reordering, adding, or removing a
/// stage must change this string so stale artifacts are invalidated.
/// (Per-pass *toggles* are fingerprinted separately via `OptConfig` /
/// `CodegenOptions`.)
pub const PASS_PIPELINE: &str =
    "hir:consteval,unroll,consteval,scalarize,consteval;ir:constfold,strength,addrfold,cse,dce";

/// The persistent tier a [`crate::Compiler`] consults between its
/// in-memory cache and a real compile.
pub(crate) struct StoreTier {
    store: Store,
}

impl StoreTier {
    pub(crate) fn open(dir: impl Into<std::path::PathBuf>) -> Result<StoreTier, StoreError> {
        Ok(StoreTier {
            store: Store::open(dir)?,
        })
    }

    pub(crate) fn root(&self) -> &Path {
        self.store.root()
    }

    /// Load and decode the binary persisted under `fp`, if any.
    pub(crate) fn load(&self, fp: Fingerprint) -> Result<Option<Arc<Binary>>, StoreError> {
        match self.store.load(fp)? {
            None => Ok(None),
            Some(payload) => Ok(Some(Arc::new(deserialize_binary(&payload)?))),
        }
    }

    /// Persist `bin` under `fp` (no-op if a record already exists).
    pub(crate) fn save(&self, fp: Fingerprint, bin: &Binary) -> Result<(), StoreError> {
        self.store.save(fp, &serialize_binary(bin)).map(drop)
    }

    /// Full-payload integrity walk over the underlying store; corrupt
    /// records move to `quarantine/`. See [`ks_store::Store::scrub`].
    pub(crate) fn scrub(&self) -> Result<ks_store::ScrubReport, StoreError> {
        self.store.scrub()
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_duration(w: &mut ByteWriter, d: Duration) {
    w.u64(d.as_nanos().min(u128::from(u64::MAX)) as u64);
}

fn put_ty(w: &mut ByteWriter, ty: ks_ir::Ty) {
    match ty {
        ks_ir::Ty::S32 => w.u8(0),
        ks_ir::Ty::U32 => w.u8(1),
        ks_ir::Ty::F32 => w.u8(2),
        ks_ir::Ty::Pred => w.u8(3),
        ks_ir::Ty::Ptr(s) => {
            w.u8(4);
            put_space(w, s);
        }
    }
}

fn put_space(w: &mut ByteWriter, s: ks_ir::Space) {
    w.u8(match s {
        ks_ir::Space::Global => 0,
        ks_ir::Space::Shared => 1,
        ks_ir::Space::Const => 2,
        ks_ir::Space::Local => 3,
        ks_ir::Space::Param => 4,
    });
}

fn put_operand(w: &mut ByteWriter, o: ks_ir::Operand) {
    match o {
        ks_ir::Operand::Reg(r) => {
            w.u8(0);
            w.u32(r.0);
        }
        ks_ir::Operand::ImmI(v) => {
            w.u8(1);
            w.i64(v);
        }
        ks_ir::Operand::ImmF(v) => {
            w.u8(2);
            w.f32_bits(v);
        }
    }
}

fn put_address(w: &mut ByteWriter, a: ks_ir::Address) {
    match a.base {
        None => w.u8(0),
        Some(r) => {
            w.u8(1);
            w.u32(r.0);
        }
    }
    w.i64(a.offset);
}

fn bin_op_tag(op: ks_ir::BinOp) -> u8 {
    use ks_ir::BinOp::*;
    match op {
        Add => 0,
        Sub => 1,
        Mul => 2,
        Mul24 => 3,
        Div => 4,
        Rem => 5,
        Min => 6,
        Max => 7,
        And => 8,
        Or => 9,
        Xor => 10,
        Shl => 11,
        Shr => 12,
    }
}

fn un_op_tag(op: ks_ir::UnOp) -> u8 {
    use ks_ir::UnOp::*;
    match op {
        Neg => 0,
        Not => 1,
        Abs => 2,
        Sqrt => 3,
        Rsqrt => 4,
        Floor => 5,
    }
}

fn cmp_op_tag(op: ks_ir::CmpOp) -> u8 {
    use ks_ir::CmpOp::*;
    match op {
        Eq => 0,
        Ne => 1,
        Lt => 2,
        Le => 3,
        Gt => 4,
        Ge => 5,
    }
}

fn special_reg_tag(r: ks_ir::SpecialReg) -> u8 {
    use ks_ir::SpecialReg::*;
    match r {
        TidX => 0,
        TidY => 1,
        TidZ => 2,
        CtaIdX => 3,
        CtaIdY => 4,
        CtaIdZ => 5,
        NtidX => 6,
        NtidY => 7,
        NtidZ => 8,
        NctaIdX => 9,
        NctaIdY => 10,
        NctaIdZ => 11,
    }
}

fn put_inst(w: &mut ByteWriter, inst: &ks_ir::Inst) {
    use ks_ir::Inst;
    match inst {
        Inst::Mov { ty, dst, src } => {
            w.u8(0);
            put_ty(w, *ty);
            w.u32(dst.0);
            put_operand(w, *src);
        }
        Inst::Bin { op, ty, dst, a, b } => {
            w.u8(1);
            w.u8(bin_op_tag(*op));
            put_ty(w, *ty);
            w.u32(dst.0);
            put_operand(w, *a);
            put_operand(w, *b);
        }
        Inst::Un { op, ty, dst, a } => {
            w.u8(2);
            w.u8(un_op_tag(*op));
            put_ty(w, *ty);
            w.u32(dst.0);
            put_operand(w, *a);
        }
        Inst::Mad { ty, dst, a, b, c } => {
            w.u8(3);
            put_ty(w, *ty);
            w.u32(dst.0);
            put_operand(w, *a);
            put_operand(w, *b);
            put_operand(w, *c);
        }
        Inst::Setp { cmp, ty, dst, a, b } => {
            w.u8(4);
            w.u8(cmp_op_tag(*cmp));
            put_ty(w, *ty);
            w.u32(dst.0);
            put_operand(w, *a);
            put_operand(w, *b);
        }
        Inst::Selp {
            ty,
            dst,
            a,
            b,
            pred,
        } => {
            w.u8(5);
            put_ty(w, *ty);
            w.u32(dst.0);
            put_operand(w, *a);
            put_operand(w, *b);
            w.u32(pred.0);
        }
        Inst::Cvt {
            dst_ty,
            src_ty,
            dst,
            src,
        } => {
            w.u8(6);
            put_ty(w, *dst_ty);
            put_ty(w, *src_ty);
            w.u32(dst.0);
            put_operand(w, *src);
        }
        Inst::Ld {
            space,
            ty,
            dst,
            addr,
        } => {
            w.u8(7);
            put_space(w, *space);
            put_ty(w, *ty);
            w.u32(dst.0);
            put_address(w, *addr);
        }
        Inst::St {
            space,
            ty,
            addr,
            src,
        } => {
            w.u8(8);
            put_space(w, *space);
            put_ty(w, *ty);
            put_address(w, *addr);
            put_operand(w, *src);
        }
        Inst::Bar => w.u8(9),
        Inst::Special { dst, reg } => {
            w.u8(10);
            w.u32(dst.0);
            w.u8(special_reg_tag(*reg));
        }
        Inst::Tex { ty, dst, tex, idx } => {
            w.u8(11);
            put_ty(w, *ty);
            w.u32(dst.0);
            w.u32(*tex);
            put_operand(w, *idx);
        }
    }
}

fn put_terminator(w: &mut ByteWriter, t: &ks_ir::Terminator) {
    match t {
        ks_ir::Terminator::Br { target } => {
            w.u8(0);
            w.u32(target.0);
        }
        ks_ir::Terminator::CondBr {
            pred,
            negate,
            then_t,
            else_t,
        } => {
            w.u8(1);
            w.u32(pred.0);
            w.bool(*negate);
            w.u32(then_t.0);
            w.u32(else_t.0);
        }
        ks_ir::Terminator::Ret => w.u8(2),
    }
}

fn put_function(w: &mut ByteWriter, f: &ks_ir::Function) {
    w.str(&f.name);
    w.usize(f.params.len());
    for p in &f.params {
        w.str(&p.name);
        put_ty(w, p.ty);
        w.u32(p.offset);
    }
    w.usize(f.blocks.len());
    for b in &f.blocks {
        w.u32(b.id.0);
        w.usize(b.insts.len());
        for i in &b.insts {
            put_inst(w, i);
        }
        put_terminator(w, &b.term);
    }
    w.usize(f.vreg_types.len());
    for ty in &f.vreg_types {
        put_ty(w, *ty);
    }
    w.usize(f.shared.len());
    for s in &f.shared {
        w.str(&s.name);
        w.u32(s.offset);
        w.u32(s.size_bytes);
    }
    w.u32(f.local_bytes);
}

fn put_module(w: &mut ByteWriter, m: &ks_ir::Module) {
    w.usize(m.functions.len());
    for f in &m.functions {
        put_function(w, f);
    }
    w.usize(m.consts.len());
    for c in &m.consts {
        w.str(&c.name);
        w.u32(c.offset);
        w.u32(c.size_bytes);
    }
    w.usize(m.textures.len());
    for t in &m.textures {
        w.str(t);
    }
}

fn put_defines(w: &mut ByteWriter, d: &Defines) {
    let items = d.items();
    w.usize(items.len());
    for (n, v) in items {
        w.str(n);
        w.str(v);
    }
    // A persisted binary compiled, so its define set had no invalid
    // entries — nothing further to encode.
}

fn put_metrics(w: &mut ByteWriter, m: &CompileMetrics) {
    put_duration(w, m.preproc);
    put_duration(w, m.parse);
    put_duration(w, m.sema);
    put_duration(w, m.lower);
    put_duration(w, m.opt);
    put_duration(w, m.analysis);
    put_duration(w, m.verify);
    put_duration(w, m.regalloc);
    put_duration(w, m.total);
}

fn severity_tag(s: ks_analysis::Severity) -> u8 {
    match s {
        ks_analysis::Severity::Allow => 0,
        ks_analysis::Severity::Warn => 1,
        ks_analysis::Severity::Deny => 2,
    }
}

/// Serialize a compiled binary into a store payload.
pub(crate) fn serialize_binary(bin: &Binary) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(BINARY_SCHEMA_VERSION);
    put_module(&mut w, &bin.module);
    w.str(&bin.ptx);
    // Name-sorted for deterministic bytes (HashMap order is random).
    let mut names: Vec<&String> = bin.regalloc.keys().collect();
    names.sort();
    w.usize(names.len());
    for name in names {
        let ra = &bin.regalloc[name];
        w.str(name);
        w.u32(ra.gpr_count);
        w.u32(ra.pred_count);
        w.usize(ra.assignment.len());
        for a in &ra.assignment {
            w.u32(*a);
        }
    }
    put_defines(&mut w, &bin.defines);
    w.str(&bin.device);
    put_duration(&mut w, bin.compile_time);
    put_metrics(&mut w, &bin.metrics);
    w.usize(bin.diagnostics.len());
    for d in &bin.diagnostics {
        w.str(d.code.code());
        w.u8(severity_tag(d.severity));
        w.str(&d.function);
        match d.block {
            None => w.u8(0),
            Some(b) => {
                w.u8(1);
                w.u32(b.0);
            }
        }
        match d.inst {
            None => w.u8(0),
            Some(i) => {
                w.u8(1);
                w.usize(i);
            }
        }
        w.str(&d.message);
    }
    w.usize(bin.verification.len());
    for f in &bin.verification {
        w.str(f.code);
        w.str(&f.context);
        w.str(&f.env);
        w.str(&f.function);
        w.str(&f.message);
    }
    w.into_vec()
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn corrupt(what: &str, v: impl std::fmt::Display) -> StoreError {
    StoreError::Corrupt(format!("bad {what} {v}"))
}

fn get_duration(r: &mut ByteReader) -> Result<Duration, StoreError> {
    Ok(Duration::from_nanos(r.u64()?))
}

fn get_ty(r: &mut ByteReader) -> Result<ks_ir::Ty, StoreError> {
    Ok(match r.u8()? {
        0 => ks_ir::Ty::S32,
        1 => ks_ir::Ty::U32,
        2 => ks_ir::Ty::F32,
        3 => ks_ir::Ty::Pred,
        4 => ks_ir::Ty::Ptr(get_space(r)?),
        t => return Err(corrupt("type tag", t)),
    })
}

fn get_space(r: &mut ByteReader) -> Result<ks_ir::Space, StoreError> {
    Ok(match r.u8()? {
        0 => ks_ir::Space::Global,
        1 => ks_ir::Space::Shared,
        2 => ks_ir::Space::Const,
        3 => ks_ir::Space::Local,
        4 => ks_ir::Space::Param,
        t => return Err(corrupt("space tag", t)),
    })
}

fn get_vreg(r: &mut ByteReader) -> Result<ks_ir::VReg, StoreError> {
    Ok(ks_ir::VReg(r.u32()?))
}

fn get_operand(r: &mut ByteReader) -> Result<ks_ir::Operand, StoreError> {
    Ok(match r.u8()? {
        0 => ks_ir::Operand::Reg(get_vreg(r)?),
        1 => ks_ir::Operand::ImmI(r.i64()?),
        2 => ks_ir::Operand::ImmF(r.f32_bits()?),
        t => return Err(corrupt("operand tag", t)),
    })
}

fn get_address(r: &mut ByteReader) -> Result<ks_ir::Address, StoreError> {
    let base = match r.u8()? {
        0 => None,
        1 => Some(get_vreg(r)?),
        t => return Err(corrupt("address tag", t)),
    };
    Ok(ks_ir::Address {
        base,
        offset: r.i64()?,
    })
}

fn get_bin_op(r: &mut ByteReader) -> Result<ks_ir::BinOp, StoreError> {
    use ks_ir::BinOp::*;
    Ok(match r.u8()? {
        0 => Add,
        1 => Sub,
        2 => Mul,
        3 => Mul24,
        4 => Div,
        5 => Rem,
        6 => Min,
        7 => Max,
        8 => And,
        9 => Or,
        10 => Xor,
        11 => Shl,
        12 => Shr,
        t => return Err(corrupt("binop tag", t)),
    })
}

fn get_un_op(r: &mut ByteReader) -> Result<ks_ir::UnOp, StoreError> {
    use ks_ir::UnOp::*;
    Ok(match r.u8()? {
        0 => Neg,
        1 => Not,
        2 => Abs,
        3 => Sqrt,
        4 => Rsqrt,
        5 => Floor,
        t => return Err(corrupt("unop tag", t)),
    })
}

fn get_cmp_op(r: &mut ByteReader) -> Result<ks_ir::CmpOp, StoreError> {
    use ks_ir::CmpOp::*;
    Ok(match r.u8()? {
        0 => Eq,
        1 => Ne,
        2 => Lt,
        3 => Le,
        4 => Gt,
        5 => Ge,
        t => return Err(corrupt("cmpop tag", t)),
    })
}

fn get_special_reg(r: &mut ByteReader) -> Result<ks_ir::SpecialReg, StoreError> {
    use ks_ir::SpecialReg::*;
    Ok(match r.u8()? {
        0 => TidX,
        1 => TidY,
        2 => TidZ,
        3 => CtaIdX,
        4 => CtaIdY,
        5 => CtaIdZ,
        6 => NtidX,
        7 => NtidY,
        8 => NtidZ,
        9 => NctaIdX,
        10 => NctaIdY,
        11 => NctaIdZ,
        t => return Err(corrupt("special-reg tag", t)),
    })
}

fn get_inst(r: &mut ByteReader) -> Result<ks_ir::Inst, StoreError> {
    use ks_ir::Inst;
    Ok(match r.u8()? {
        0 => Inst::Mov {
            ty: get_ty(r)?,
            dst: get_vreg(r)?,
            src: get_operand(r)?,
        },
        1 => Inst::Bin {
            op: get_bin_op(r)?,
            ty: get_ty(r)?,
            dst: get_vreg(r)?,
            a: get_operand(r)?,
            b: get_operand(r)?,
        },
        2 => Inst::Un {
            op: get_un_op(r)?,
            ty: get_ty(r)?,
            dst: get_vreg(r)?,
            a: get_operand(r)?,
        },
        3 => Inst::Mad {
            ty: get_ty(r)?,
            dst: get_vreg(r)?,
            a: get_operand(r)?,
            b: get_operand(r)?,
            c: get_operand(r)?,
        },
        4 => Inst::Setp {
            cmp: get_cmp_op(r)?,
            ty: get_ty(r)?,
            dst: get_vreg(r)?,
            a: get_operand(r)?,
            b: get_operand(r)?,
        },
        5 => Inst::Selp {
            ty: get_ty(r)?,
            dst: get_vreg(r)?,
            a: get_operand(r)?,
            b: get_operand(r)?,
            pred: get_vreg(r)?,
        },
        6 => Inst::Cvt {
            dst_ty: get_ty(r)?,
            src_ty: get_ty(r)?,
            dst: get_vreg(r)?,
            src: get_operand(r)?,
        },
        7 => Inst::Ld {
            space: get_space(r)?,
            ty: get_ty(r)?,
            dst: get_vreg(r)?,
            addr: get_address(r)?,
        },
        8 => Inst::St {
            space: get_space(r)?,
            ty: get_ty(r)?,
            addr: get_address(r)?,
            src: get_operand(r)?,
        },
        9 => Inst::Bar,
        10 => Inst::Special {
            dst: get_vreg(r)?,
            reg: get_special_reg(r)?,
        },
        11 => Inst::Tex {
            ty: get_ty(r)?,
            dst: get_vreg(r)?,
            tex: r.u32()?,
            idx: get_operand(r)?,
        },
        t => return Err(corrupt("instruction tag", t)),
    })
}

fn get_terminator(r: &mut ByteReader) -> Result<ks_ir::Terminator, StoreError> {
    Ok(match r.u8()? {
        0 => ks_ir::Terminator::Br {
            target: ks_ir::BlockId(r.u32()?),
        },
        1 => ks_ir::Terminator::CondBr {
            pred: get_vreg(r)?,
            negate: r.bool()?,
            then_t: ks_ir::BlockId(r.u32()?),
            else_t: ks_ir::BlockId(r.u32()?),
        },
        2 => ks_ir::Terminator::Ret,
        t => return Err(corrupt("terminator tag", t)),
    })
}

fn get_function(r: &mut ByteReader) -> Result<ks_ir::Function, StoreError> {
    let name = r.str()?;
    let mut params = Vec::new();
    for _ in 0..r.usize()? {
        params.push(ks_ir::KernelParam {
            name: r.str()?,
            ty: get_ty(r)?,
            offset: r.u32()?,
        });
    }
    let mut blocks = Vec::new();
    for _ in 0..r.usize()? {
        let id = ks_ir::BlockId(r.u32()?);
        let mut insts = Vec::new();
        for _ in 0..r.usize()? {
            insts.push(get_inst(r)?);
        }
        blocks.push(ks_ir::BasicBlock {
            id,
            insts,
            term: get_terminator(r)?,
        });
    }
    let mut vreg_types = Vec::new();
    for _ in 0..r.usize()? {
        vreg_types.push(get_ty(r)?);
    }
    let mut shared = Vec::new();
    for _ in 0..r.usize()? {
        shared.push(ks_ir::SharedDecl {
            name: r.str()?,
            offset: r.u32()?,
            size_bytes: r.u32()?,
        });
    }
    Ok(ks_ir::Function {
        name,
        params,
        blocks,
        vreg_types,
        shared,
        local_bytes: r.u32()?,
    })
}

fn get_module(r: &mut ByteReader) -> Result<ks_ir::Module, StoreError> {
    let mut functions = Vec::new();
    for _ in 0..r.usize()? {
        functions.push(get_function(r)?);
    }
    let mut consts = Vec::new();
    for _ in 0..r.usize()? {
        consts.push(ks_ir::ConstDecl {
            name: r.str()?,
            offset: r.u32()?,
            size_bytes: r.u32()?,
        });
    }
    let mut textures = Vec::new();
    for _ in 0..r.usize()? {
        textures.push(r.str()?);
    }
    Ok(ks_ir::Module {
        functions,
        consts,
        textures,
    })
}

fn get_metrics(r: &mut ByteReader) -> Result<CompileMetrics, StoreError> {
    Ok(CompileMetrics {
        preproc: get_duration(r)?,
        parse: get_duration(r)?,
        sema: get_duration(r)?,
        lower: get_duration(r)?,
        opt: get_duration(r)?,
        analysis: get_duration(r)?,
        verify: get_duration(r)?,
        regalloc: get_duration(r)?,
        total: get_duration(r)?,
    })
}

fn get_severity(r: &mut ByteReader) -> Result<ks_analysis::Severity, StoreError> {
    Ok(match r.u8()? {
        0 => ks_analysis::Severity::Allow,
        1 => ks_analysis::Severity::Warn,
        2 => ks_analysis::Severity::Deny,
        t => return Err(corrupt("severity tag", t)),
    })
}

/// Re-intern a persisted KSV code to its `&'static str`; an unknown
/// code means the record was written by something we don't understand.
fn intern_ksv_code(code: &str) -> Result<&'static str, StoreError> {
    for known in ["KSV001", "KSV002", "KSV003", "KSV101"] {
        if code == known {
            return Ok(known);
        }
    }
    Err(corrupt("verification code", code))
}

/// Decode a store payload back into a [`Binary`].
pub(crate) fn deserialize_binary(payload: &[u8]) -> Result<Binary, StoreError> {
    let mut r = ByteReader::new(payload);
    let schema = r.u32()?;
    if schema != BINARY_SCHEMA_VERSION {
        // Unreachable through the normal cache path (the schema version
        // is part of the fingerprint), but a misfiled record must still
        // fail typed, not garbled.
        return Err(StoreError::Version {
            found: schema,
            expected: BINARY_SCHEMA_VERSION,
        });
    }
    let module = get_module(&mut r)?;
    let ptx = r.str()?;
    let mut regalloc = HashMap::new();
    for _ in 0..r.usize()? {
        let name = r.str()?;
        let gpr_count = r.u32()?;
        let pred_count = r.u32()?;
        let mut assignment = Vec::new();
        for _ in 0..r.usize()? {
            assignment.push(r.u32()?);
        }
        regalloc.insert(
            name,
            RegAlloc {
                gpr_count,
                pred_count,
                assignment,
            },
        );
    }
    let mut defines = Defines::new();
    for _ in 0..r.usize()? {
        let name = r.str()?;
        let value = r.str()?;
        defines = defines.def(&name, value);
    }
    let device = r.str()?;
    let compile_time = get_duration(&mut r)?;
    let metrics = get_metrics(&mut r)?;
    let mut diagnostics = Vec::new();
    for _ in 0..r.usize()? {
        let code_str = r.str()?;
        let code = ks_analysis::LintCode::parse(&code_str)
            .ok_or_else(|| corrupt("lint code", &code_str))?;
        let severity = get_severity(&mut r)?;
        let function = r.str()?;
        let block = match r.u8()? {
            0 => None,
            1 => Some(ks_ir::BlockId(r.u32()?)),
            t => return Err(corrupt("diagnostic block tag", t)),
        };
        let inst = match r.u8()? {
            0 => None,
            1 => Some(r.usize()?),
            t => return Err(corrupt("diagnostic inst tag", t)),
        };
        diagnostics.push(ks_analysis::Diagnostic {
            code,
            severity,
            function,
            block,
            inst,
            message: r.str()?,
        });
    }
    let mut verification = Vec::new();
    for _ in 0..r.usize()? {
        let code = intern_ksv_code(&r.str()?)?;
        verification.push(ks_verify::Finding {
            code,
            context: r.str()?,
            env: r.str()?,
            function: r.str()?,
            message: r.str()?,
        });
    }
    r.expect_end()?;
    Ok(Binary {
        module,
        ptx,
        regalloc,
        defines,
        device,
        compile_time,
        metrics,
        diagnostics,
        verification,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;
    use ks_sim::DeviceConfig;

    const KERNEL: &str = r#"
        #ifndef LOOP_COUNT
        #define LOOP_COUNT loopCount
        #endif
        __global__ void k(int* in, int* out, int loopCount) {
            int acc = 0;
            const unsigned int offset = blockIdx.x * blockDim.x + threadIdx.x;
            for (int i = 0; i < LOOP_COUNT; i++) {
                acc += *(in + offset + i);
            }
            *(out + offset) = acc;
        }
    "#;

    fn assert_binaries_equal(a: &Binary, b: &Binary) {
        assert_eq!(a.module, b.module);
        assert_eq!(a.ptx, b.ptx);
        assert_eq!(a.regalloc.len(), b.regalloc.len());
        for (k, ra) in &a.regalloc {
            let rb = &b.regalloc[k];
            assert_eq!(
                (ra.gpr_count, ra.pred_count, &ra.assignment),
                (rb.gpr_count, rb.pred_count, &rb.assignment)
            );
        }
        assert_eq!(a.defines, b.defines);
        assert_eq!(a.device, b.device);
        assert_eq!(a.compile_time, b.compile_time);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.diagnostics, b.diagnostics);
        assert_eq!(a.verification, b.verification);
    }

    #[test]
    fn compiled_binary_roundtrips() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let bin = c
            .compile(KERNEL, Defines::new().def("LOOP_COUNT", 4))
            .unwrap();
        let bytes = serialize_binary(&bin);
        let back = deserialize_binary(&bytes).unwrap();
        assert_binaries_equal(&bin, &back);
        // Determinism: serializing again produces identical bytes (the
        // regalloc map is emitted sorted).
        assert_eq!(bytes, serialize_binary(&back));
    }

    #[test]
    fn binary_with_diagnostics_and_findings_roundtrips() {
        // A bank-conflict-prone kernel compiled with analysis at warn
        // level, so diagnostics ride on the binary.
        let src = r#"
            __global__ void k(float* out) {
                __shared__ float s[1024];
                int t = (int)threadIdx.x;
                s[t * 32] = 1.0f;
                __syncthreads();
                out[t] = s[t * 32];
            }
        "#;
        let c =
            Compiler::new(DeviceConfig::tesla_c2070()).with_analysis(ks_analysis::AnalysisConfig {
                block_dim: Some((32, 1, 1)),
                ..Default::default()
            });
        let bin = c.compile(src, Defines::new()).unwrap();
        assert!(
            !bin.diagnostics.is_empty(),
            "test kernel must produce at least one warning"
        );
        let back = deserialize_binary(&serialize_binary(&bin)).unwrap();
        assert_binaries_equal(&bin, &back);
    }

    #[test]
    fn truncated_payload_is_a_typed_error() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let bin = c.compile(KERNEL, Defines::new()).unwrap();
        let bytes = serialize_binary(&bin);
        for cut in [0, 1, 4, 16, bytes.len() / 2, bytes.len() - 1] {
            match deserialize_binary(&bytes[..cut]) {
                Err(StoreError::Truncated { .. } | StoreError::Corrupt(_)) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let bin = c.compile(KERNEL, Defines::new()).unwrap();
        let mut bytes = serialize_binary(&bin);
        bytes.push(0);
        assert!(matches!(
            deserialize_binary(&bytes),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let bin = c.compile(KERNEL, Defines::new()).unwrap();
        let mut bytes = serialize_binary(&bin);
        bytes[0] = BINARY_SCHEMA_VERSION as u8 + 1;
        assert!(matches!(
            deserialize_binary(&bytes),
            Err(StoreError::Version { .. })
        ));
    }

    #[test]
    fn unknown_enum_tags_are_corrupt_not_panics() {
        let c = Compiler::new(DeviceConfig::tesla_c1060());
        let bin = c.compile(KERNEL, Defines::new()).unwrap();
        let bytes = serialize_binary(&bin);
        // Flip every byte, one at a time is too slow; sample positions.
        for pos in (4..bytes.len()).step_by(7) {
            let mut evil = bytes.clone();
            evil[pos] = evil[pos].wrapping_add(0x40);
            // Must never panic; any Err (or even an Ok whose content
            // differs) is acceptable — the record checksum catches
            // content drift at the store layer above.
            let _ = deserialize_binary(&evil);
        }
    }
}
