//! Background compile tier tests: ticket/blocking dedup through the
//! single-flight cache, deterministic cancellation, worker-site fault
//! injection, and exact `spawned == completed + failed + cancelled`
//! accounting with registry parity.
//!
//! These tests share the process-wide registry and worker pool, so the
//! parity tests serialize on a file-local lock and work on deltas.

use ks_core::{Compiler, Defines};
use ks_fault::{FaultKind, FaultPlan, FaultRule, Target};
use ks_sim::DeviceConfig;
use std::sync::{Arc, Mutex};

static TEST_LOCK: Mutex<()> = Mutex::new(());

const KERNEL: &str = r#"
    #ifndef LOOP_COUNT
    #define LOOP_COUNT loopCount
    #endif
    __global__ void stress(int* in, int* out, int loopCount) {
        int acc = 0;
        const unsigned int offset = blockIdx.x * blockDim.x + threadIdx.x;
        for (int i = 0; i < LOOP_COUNT; i++) {
            acc += *(in + offset + i);
        }
        *(out + offset) = acc;
    }
"#;

fn defines(loop_count: usize) -> Defines {
    Defines::new().def("LOOP_COUNT", loop_count)
}

fn async_registry_counters() -> (u64, u64, u64, u64) {
    let r = ks_trace::registry();
    (
        r.counter_value(ks_trace::names::ASYNC_SPAWNED),
        r.counter_value(ks_trace::names::ASYNC_COMPLETED),
        r.counter_value(ks_trace::names::ASYNC_FAILED),
        r.counter_value(ks_trace::names::ASYNC_CANCELLED),
    )
}

#[test]
fn n_tickets_for_one_key_cost_one_compile() {
    let _guard = TEST_LOCK.lock().unwrap();
    const TICKETS: usize = 8;
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
    let tickets: Vec<_> = (0..TICKETS)
        .map(|_| compiler.spawn_compile(KERNEL, defines(32)))
        .collect();
    let bins: Vec<_> = tickets.iter().map(|t| t.wait().unwrap()).collect();
    for b in &bins[1..] {
        assert!(Arc::ptr_eq(&bins[0], b), "duplicate compilation escaped");
    }
    let s = compiler.cache_stats();
    assert_eq!(s.misses, 1, "single-flight must compile once: {s}");
    assert_eq!(s.hits + s.misses, TICKETS as u64, "{s}");
    let a = compiler.async_stats();
    assert_eq!(a.spawned, TICKETS as u64, "{a}");
    assert_eq!(a.completed, TICKETS as u64, "{a}");
    assert_eq!(a.failed + a.cancelled, 0, "{a}");
}

#[test]
fn ticket_and_blocking_compile_share_one_flight() {
    let _guard = TEST_LOCK.lock().unwrap();
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
    let ticket = compiler.spawn_compile(KERNEL, defines(48));
    // Blocking call for the same canonical key: leads, follows, or hits
    // depending on scheduling — in every case one miss total.
    let blocking = compiler.compile(KERNEL, defines(48)).unwrap();
    let via_ticket = ticket.wait().unwrap();
    assert!(
        Arc::ptr_eq(&blocking, &via_ticket),
        "ticket and blocking path must share the binary"
    );
    let s = compiler.cache_stats();
    assert_eq!(s.misses, 1, "exactly one compile for the shared key: {s}");
    assert_eq!(s.hits, 1, "the other path must be a hit/dedup-join: {s}");
    assert_eq!(ticket.key(), {
        // The public contract: same inputs → same canonical key, so a
        // second spawn reports the same key.
        compiler.spawn_compile(KERNEL, defines(48)).key()
    });
}

#[test]
fn cancel_resolves_immediately_and_is_idempotent() {
    let _guard = TEST_LOCK.lock().unwrap();
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
    let ticket = compiler.spawn_compile(KERNEL, defines(64));
    let first = ticket.cancel();
    // Whether or not a worker won the race, the ticket is resolved now.
    assert!(ticket.is_done());
    let second = ticket.cancel();
    assert!(!second, "second cancel must report too-late");
    if first {
        let err = ticket.wait().expect_err("cancelled ticket resolves Err");
        assert!(err.message.contains("cancelled"), "{err}");
        let a = compiler.async_stats();
        assert_eq!((a.cancelled, a.completed, a.failed), (1, 0, 0), "{a}");
    }
    // A later compile of the same key succeeds regardless.
    compiler.compile(KERNEL, defines(64)).unwrap();
}

#[test]
fn worker_fault_point_fails_ticket_without_touching_compile_site() {
    let _guard = TEST_LOCK.lock().unwrap();
    let plan = Arc::new(
        FaultPlan::new(11).rule(
            FaultRule::new(
                FaultKind::WorkerDrop,
                Target::Define("-D LOOP_COUNT=80".into()),
            )
            .persistent(),
        ),
    );
    let compiler =
        Arc::new(Compiler::new(DeviceConfig::tesla_c1060()).with_fault_plan(plan.clone()));
    let err = compiler
        .spawn_compile(KERNEL, defines(80))
        .wait()
        .expect_err("worker drop must fail the ticket");
    assert!(err.message.contains("worker-drop"), "{err}");
    let a = compiler.async_stats();
    assert_eq!((a.spawned, a.failed), (1, 1), "{a}");
    // The cache never saw the job: no miss, no failure recorded there.
    let s = compiler.cache_stats();
    assert_eq!(s.misses + s.failures, 0, "{s}");
    // The blocking path is immune to worker-site rules.
    compiler.compile(KERNEL, defines(80)).unwrap();
    assert!(
        plan.event_log().contains("site=worker"),
        "{}",
        plan.event_log()
    );
}

#[test]
fn failed_compiles_resolve_tickets_with_the_compile_error() {
    let _guard = TEST_LOCK.lock().unwrap();
    let plan = Arc::new(
        FaultPlan::new(5).rule(
            FaultRule::new(
                FaultKind::CompileError,
                Target::Define("-D LOOP_COUNT=96".into()),
            )
            .persistent(),
        ),
    );
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()).with_fault_plan(plan));
    let err = compiler
        .spawn_compile(KERNEL, defines(96))
        .wait()
        .expect_err("injected compile fault must surface");
    assert!(err.message.contains("injected fault"), "{err}");
    let a = compiler.async_stats();
    assert_eq!((a.spawned, a.failed), (1, 1), "{a}");
    // This one *did* go through the cache: the failure is accounted.
    assert_eq!(compiler.cache_stats().failures, 1);
}

#[test]
fn async_accounting_matches_registry_deltas() {
    let _guard = TEST_LOCK.lock().unwrap();
    let before = async_registry_counters();
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
    // A mix: 6 tickets over 3 keys (all complete), plus one cancelled.
    let tickets: Vec<_> = (0..6)
        .map(|i| compiler.spawn_compile(KERNEL, defines(100 + i % 3)))
        .collect();
    let doomed = compiler.spawn_compile(KERNEL, defines(999));
    let cancelled = doomed.cancel();
    for t in &tickets {
        t.wait().unwrap();
    }
    // Wait for the doomed ticket too (resolved either way).
    let _ = doomed.wait();
    let a = compiler.async_stats();
    assert_eq!(a.spawned, 7, "{a}");
    assert_eq!(
        a.spawned,
        a.completed + a.failed + a.cancelled,
        "async accounting must balance: {a}"
    );
    assert_eq!(a.cancelled, u64::from(cancelled), "{a}");
    let after = async_registry_counters();
    assert_eq!(after.0 - before.0, a.spawned, "registry spawned parity");
    assert_eq!(after.1 - before.1, a.completed, "registry completed parity");
    assert_eq!(after.2 - before.2, a.failed, "registry failed parity");
    assert_eq!(after.3 - before.3, a.cancelled, "registry cancelled parity");
    // Cache invariant still holds for the async traffic that reached it.
    let s = compiler.cache_stats();
    assert_eq!(s.hits + s.misses, a.completed, "{s} vs {a}");
}

#[test]
fn dropping_the_compiler_resolves_outstanding_tickets() {
    let _guard = TEST_LOCK.lock().unwrap();
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
    // Queue a burst, then drop our handle immediately. Workers that
    // dequeue after the drop resolve the ticket with an error; workers
    // that raced ahead complete normally. Either way every ticket
    // resolves and accounting balances.
    let tickets: Vec<_> = (0..4)
        .map(|i| compiler.spawn_compile(KERNEL, defines(200 + i)))
        .collect();
    drop(compiler);
    let mut resolved = 0u64;
    for t in &tickets {
        match t.wait() {
            Ok(_) => resolved += 1,
            Err(e) => {
                assert!(e.message.contains("compiler dropped"), "{e}");
                resolved += 1;
            }
        }
    }
    assert_eq!(resolved, 4, "every ticket must resolve, never hang");
}
