//! Multi-thread stress tests for the sharded, single-flight compile
//! service. These are the load-bearing properties behind §4.3's
//! amortization argument: a thundering herd on one key costs exactly one
//! compilation, distinct keys never serialize into a deadlock, stats stay
//! exact under arbitrary interleavings, and a bounded cache respects its
//! capacity. Run in release mode by `ci.sh` (fixed thread counts and
//! define sets — no nondeterministic inputs).

use ks_core::{CacheStats, Compiler, Defines};
use ks_sim::DeviceConfig;
use std::sync::{Arc, Barrier};

/// Appendix-B-style kernel; LOOP_COUNT is the specialization knob. A
/// largish unrolled loop makes each compile slow enough that concurrent
/// requests genuinely overlap.
const KERNEL: &str = r#"
    #ifndef LOOP_COUNT
    #define LOOP_COUNT loopCount
    #endif
    __global__ void stress(int* in, int* out, int loopCount) {
        int acc = 0;
        const unsigned int offset = blockIdx.x * blockDim.x + threadIdx.x;
        for (int i = 0; i < LOOP_COUNT; i++) {
            acc += *(in + offset + i);
        }
        *(out + offset) = acc;
    }
"#;

fn defines(loop_count: usize) -> Defines {
    Defines::new().def("LOOP_COUNT", loop_count)
}

#[test]
fn same_key_thundering_herd_costs_one_compile() {
    const THREADS: usize = 8;
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let (c, b) = (compiler.clone(), barrier.clone());
            std::thread::spawn(move || {
                b.wait();
                c.compile(KERNEL, defines(64)).unwrap()
            })
        })
        .collect();
    let bins: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Everyone received the *same* binary, not byte-identical copies.
    for b in &bins[1..] {
        assert!(Arc::ptr_eq(&bins[0], b), "duplicate compilation escaped");
    }
    let s = compiler.cache_stats();
    assert_eq!(s.misses, 1, "exactly one miss, got {s}");
    assert_eq!(
        s.hits,
        (THREADS - 1) as u64,
        "dedup must count as hits: {s}"
    );
    assert_eq!(s.hits + s.misses, THREADS as u64);
    assert_eq!(s.evictions, 0);
    // Followers that blocked on the leader are itemized (how many of the
    // 7 raced in before the leader finished is scheduling-dependent).
    assert!(s.dedup_waits <= (THREADS - 1) as u64);
}

#[test]
fn distinct_keys_compile_in_parallel_without_deadlock() {
    const THREADS: usize = 8;
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let (c, b) = (compiler.clone(), barrier.clone());
            std::thread::spawn(move || {
                b.wait();
                c.compile(KERNEL, defines(i + 1)).unwrap()
            })
        })
        .collect();
    let bins: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (i, b) in bins.iter().enumerate() {
        for other in &bins[i + 1..] {
            assert!(!Arc::ptr_eq(b, other), "distinct keys shared a binary");
        }
    }
    let s = compiler.cache_stats();
    assert_eq!(s.misses, THREADS as u64, "{s}");
    assert_eq!(s.hits, 0, "{s}");
    assert_eq!(s.dedup_waits, 0, "{s}");
}

#[test]
fn accounting_is_exact_under_mixed_interleavings() {
    const THREADS: usize = 8;
    const ITERS: usize = 16;
    const KEYS: usize = 4;
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let (c, b) = (compiler.clone(), barrier.clone());
            std::thread::spawn(move || {
                b.wait();
                for i in 0..ITERS {
                    // Every thread cycles through the keys, phase-shifted.
                    let k = (t + i) % KEYS;
                    c.compile(KERNEL, defines(k + 1)).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = compiler.cache_stats();
    let calls = (THREADS * ITERS) as u64;
    // The invariant the seed's split-lock stats could not guarantee:
    // every successful call is exactly one hit or one miss.
    assert_eq!(s.hits + s.misses, calls, "{s}");
    // Single-flight + unbounded cache: one miss per distinct key, ever.
    assert_eq!(s.misses, KEYS as u64, "{s}");
    assert_eq!(compiler.cache_len(), KEYS);
}

#[test]
fn batch_api_dedupes_against_itself() {
    let compiler = Compiler::new(DeviceConfig::tesla_c1060());
    // 32 jobs over 4 distinct keys, shuffled together.
    let jobs: Vec<(&str, Defines)> = (0..32).map(|i| (KERNEL, defines(i % 4 + 1))).collect();
    let results = compiler.compile_batch(&jobs);
    assert_eq!(results.len(), 32);
    for (i, r) in results.iter().enumerate() {
        let r = r.as_ref().unwrap();
        // Order preserved: result i is the binary for key i % 4.
        assert!(Arc::ptr_eq(r, results[i % 4].as_ref().unwrap()));
    }
    let s = compiler.cache_stats();
    assert_eq!(s.misses, 4, "batch must dedup duplicate jobs: {s}");
    assert_eq!(s.hits + s.misses, 32, "{s}");
}

#[test]
fn bounded_cache_respects_capacity_under_concurrency() {
    const CAPACITY: usize = 4;
    const THREADS: usize = 8;
    const KEYS: usize = 16;
    let compiler =
        Arc::new(Compiler::new(DeviceConfig::tesla_c1060()).with_cache_capacity(CAPACITY));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let (c, b) = (compiler.clone(), barrier.clone());
            std::thread::spawn(move || {
                b.wait();
                for i in 0..KEYS {
                    let k = (t * 3 + i) % KEYS;
                    c.compile(KERNEL, defines(k + 1)).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = compiler.cache_stats();
    assert!(
        compiler.cache_len() <= CAPACITY,
        "capacity exceeded: {} > {CAPACITY}",
        compiler.cache_len()
    );
    assert_eq!(s.hits + s.misses, (THREADS * KEYS) as u64, "{s}");
    // Eviction accounting balances: everything ever inserted is either
    // still resident or was counted out.
    assert_eq!(s.misses, s.evictions + compiler.cache_len() as u64, "{s}");
    assert!(s.evictions > 0, "churn over {KEYS} keys must evict: {s}");

    // An evicted key recompiles: one more miss, and the books still close.
    let before = compiler.cache_stats();
    let resident: u64 = compiler.cache_len() as u64;
    for k in 0..KEYS {
        compiler.compile(KERNEL, defines(k + 1)).unwrap();
    }
    let after = compiler.cache_stats();
    assert_eq!(
        after.hits + after.misses,
        before.hits + before.misses + KEYS as u64
    );
    assert!(
        after.misses >= before.misses + (KEYS as u64 - resident),
        "evicted keys must re-miss: {after}"
    );
}

#[test]
fn stats_snapshot_is_default_before_any_compile() {
    let compiler = Compiler::new(DeviceConfig::tesla_c1060());
    assert_eq!(compiler.cache_stats(), CacheStats::default());
    assert_eq!(compiler.cache_len(), 0);
}
