//! Resilience-layer integration tests: retry waves under a thundering
//! herd, failure quarantine vs. cache capacity, the per-variant circuit
//! breaker, and panic conversion. Fault plans are attached per-compiler
//! ([`Compiler::with_fault_plan`]) so tests stay parallel-safe — nothing
//! here touches the process-wide plan slot.

use ks_core::{Compiler, Defines, ResilienceConfig};
use ks_fault::{FaultKind, FaultPlan, FaultRule, Target};
use ks_sim::DeviceConfig;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const KERNEL: &str = r#"
    #ifndef LOOP_COUNT
    #define LOOP_COUNT loopCount
    #endif
    __global__ void stress(int* in, int* out, int loopCount) {
        int acc = 0;
        const unsigned int offset = blockIdx.x * blockDim.x + threadIdx.x;
        for (int i = 0; i < LOOP_COUNT; i++) {
            acc += *(in + offset + i);
        }
        *(out + offset) = acc;
    }
"#;

fn defines(loop_count: usize) -> Defines {
    Defines::new().def("LOOP_COUNT", loop_count)
}

/// Satellite: N concurrent requests for a key whose leader *errors*
/// (not panics). Exactly one retry wave runs (the leader's), every
/// thread observes the same `Err`, the failure never counts as a hit or
/// a miss, and once the quarantine expires a fresh compile succeeds.
#[test]
fn thundering_herd_under_failure_costs_one_retry_wave() {
    const THREADS: usize = 6;
    // The fault clears after 2 injections: initial attempt + 1 retry.
    // With max_retries = 1 the leader's wave exhausts the fault, so the
    // post-quarantine compile is clean.
    let plan = Arc::new(
        FaultPlan::new(42).rule(
            FaultRule::new(FaultKind::CompileError, Target::Any)
                .persistent()
                .limit(2),
        ),
    );
    let compiler = Arc::new(
        Compiler::new(DeviceConfig::tesla_c1060())
            .with_fault_plan(plan.clone())
            .with_resilience(ResilienceConfig {
                max_retries: 1,
                backoff_base: Duration::ZERO,
                quarantine_ttl: Duration::from_millis(50),
                ..ResilienceConfig::default()
            }),
    );
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let (c, b) = (compiler.clone(), barrier.clone());
            std::thread::spawn(move || {
                b.wait();
                c.compile(KERNEL, defines(8))
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let msgs: Vec<String> = results
        .iter()
        .map(|r| r.as_ref().unwrap_err().message.clone())
        .collect();
    assert!(
        msgs[0].contains("injected fault: compile-error"),
        "unexpected error: {}",
        msgs[0]
    );
    for m in &msgs[1..] {
        assert_eq!(m, &msgs[0], "followers must observe the leader's error");
    }

    let s = compiler.cache_stats();
    assert_eq!(s.retries, 1, "exactly one retry wave: {s}");
    assert_eq!(s.failures, THREADS as u64, "every caller counts: {s}");
    assert_eq!(s.hits + s.misses, 0, "failures are not hits or misses: {s}");
    assert_eq!(plan.injected_count(), 2);

    // Inside the quarantine window the key fast-fails with the recorded
    // error — no fresh compile attempt, so no new injections.
    let err = compiler.compile(KERNEL, defines(8)).unwrap_err();
    assert_eq!(err.message, msgs[0]);
    let s = compiler.cache_stats();
    assert!(s.quarantined >= 1, "fast-fail must count: {s}");
    assert_eq!(plan.injected_count(), 2, "quarantine must not re-attempt");

    // After expiry the fresh compile runs — the fault is exhausted, so
    // it succeeds and the key caches normally.
    std::thread::sleep(Duration::from_millis(60));
    compiler.compile(KERNEL, defines(8)).unwrap();
    let s = compiler.cache_stats();
    assert_eq!(s.misses, 1, "post-quarantine compile is a fresh miss: {s}");
    compiler.compile(KERNEL, defines(8)).unwrap();
    assert_eq!(compiler.cache_stats().hits, 1);
}

/// Satellite: quarantined failures must not occupy LRU capacity or ever
/// be served as hits. With capacity 1, a failed key and a cached good
/// key coexist; the good key stays resident and no eviction happens.
#[test]
fn quarantined_failures_do_not_occupy_cache_capacity() {
    let plan = Arc::new(
        FaultPlan::new(7).rule(
            // Only LOOP_COUNT=13 compiles fail; everything else is clean.
            FaultRule::new(
                FaultKind::CompileError,
                Target::Define("LOOP_COUNT=13".into()),
            )
            .persistent(),
        ),
    );
    let compiler = Compiler::new(DeviceConfig::tesla_c1060())
        .with_cache_capacity(1)
        .with_fault_plan(plan)
        .with_resilience(ResilienceConfig {
            quarantine_ttl: Duration::from_secs(60),
            ..ResilienceConfig::default()
        });

    assert!(compiler.compile(KERNEL, defines(13)).is_err());
    compiler.compile(KERNEL, defines(1)).unwrap();
    // The good key still fits (the failure holds no capacity) and is
    // served as a hit; the quarantined key fast-fails, never a hit.
    compiler.compile(KERNEL, defines(1)).unwrap();
    assert!(compiler.compile(KERNEL, defines(13)).is_err());
    let s = compiler.cache_stats();
    assert_eq!(s.evictions, 0, "failed entry must not evict: {s}");
    assert_eq!((s.hits, s.misses), (1, 1), "stats: {s}");
    assert_eq!(s.failures, 2, "stats: {s}");
    assert_eq!(s.quarantined, 1, "second bad call fast-fails: {s}");
    assert_eq!(s.hits + s.misses, 2, "requests invariant: {s}");
}

/// K consecutive failures trip the key's breaker; while open, callers
/// fast-fail with a breaker error; after the cooldown the half-open
/// probe re-attempts and a persistent fault re-trips it.
#[test]
fn circuit_breaker_trips_and_retrips_on_half_open_probe() {
    let plan = Arc::new(
        FaultPlan::new(3).rule(
            FaultRule::new(
                FaultKind::CompileError,
                Target::Define("LOOP_COUNT=2".into()),
            )
            .persistent(),
        ),
    );
    let compiler = Compiler::new(DeviceConfig::tesla_c1060())
        .with_fault_plan(plan)
        .with_resilience(ResilienceConfig {
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(50),
            quarantine_ttl: Duration::ZERO,
            ..ResilienceConfig::default()
        });

    // Zero quarantine: every call re-attempts and the consecutive count
    // climbs to the threshold.
    for _ in 0..3 {
        assert!(compiler.compile(KERNEL, defines(2)).is_err());
    }
    let s = compiler.cache_stats();
    assert_eq!(s.breaker_opens, 1, "threshold reached: {s}");

    // Open: fast-fail with the breaker error, no compile attempt.
    let err = compiler.compile(KERNEL, defines(2)).unwrap_err();
    assert!(
        err.message
            .contains("circuit breaker open (3 consecutive failures)"),
        "got: {}",
        err.message
    );
    let s = compiler.cache_stats();
    assert_eq!(s.quarantined, 1, "breaker fast-fail counts: {s}");

    // Cooldown elapses; the half-open probe runs a real attempt, the
    // persistent fault fails it again, and the breaker re-trips.
    std::thread::sleep(Duration::from_millis(60));
    assert!(compiler.compile(KERNEL, defines(2)).is_err());
    let s = compiler.cache_stats();
    assert_eq!(s.breaker_opens, 2, "half-open probe re-trips: {s}");

    // A different specialization of the same source is a different key:
    // its breaker is independent and it compiles fine.
    compiler.compile(KERNEL, defines(4)).unwrap();
}

/// `catch_panics` converts an injected compile panic into a retryable
/// `CompileError`; with one retry the compile still succeeds.
#[test]
fn catch_panics_converts_leader_panic_into_retryable_error() {
    let plan = Arc::new(
        FaultPlan::new(9).rule(FaultRule::new(FaultKind::CompilePanic, Target::Any).limit(1)),
    );
    let compiler = Compiler::new(DeviceConfig::tesla_c1060())
        .with_fault_plan(plan)
        .with_resilience(ResilienceConfig {
            max_retries: 1,
            backoff_base: Duration::ZERO,
            catch_panics: true,
            ..ResilienceConfig::default()
        });
    compiler.compile(KERNEL, defines(5)).unwrap();
    let s = compiler.cache_stats();
    assert_eq!((s.retries, s.misses, s.failures), (1, 1, 0), "stats: {s}");
}

/// Backoff is deterministic in (jitter_seed, key, attempt), grows
/// exponentially from the base, respects the cap, and jitters within
/// [0.5, 1.5) of the nominal delay.
#[test]
fn backoff_is_deterministic_bounded_and_jittered() {
    let cfg = ResilienceConfig {
        max_retries: 8,
        backoff_base: Duration::from_millis(4),
        backoff_cap: Duration::from_millis(20),
        ..ResilienceConfig::default()
    };
    for attempt in 1..=8u32 {
        let d = cfg.backoff(0xABCD, attempt);
        assert_eq!(d, cfg.backoff(0xABCD, attempt), "deterministic");
        let nominal = (4u64 << (attempt - 1)).min(20) as f64;
        let ms = d.as_secs_f64() * 1e3;
        assert!(
            ms >= nominal * 0.5 && ms < nominal * 1.5,
            "attempt {attempt}: {ms}ms outside [{}, {})",
            nominal * 0.5,
            nominal * 1.5
        );
    }
    // Different keys see different jitter (the herd decorrelates).
    assert_ne!(cfg.backoff(1, 1), cfg.backoff(2, 1));
}

/// Same seed, same call sequence: two independent plans produce
/// byte-identical event logs (the determinism the CI drill diffs).
#[test]
fn same_seed_plans_replay_identical_event_logs() {
    let mk = || {
        Arc::new(
            FaultPlan::new(1234)
                .rule(FaultRule::new(FaultKind::CompileError, Target::Any).rate_ppm(400_000)),
        )
    };
    let (plan_a, plan_b) = (mk(), mk());
    for plan in [&plan_a, &plan_b] {
        let compiler = Compiler::new(DeviceConfig::tesla_c1060())
            .with_fault_plan(plan.clone())
            .with_resilience(ResilienceConfig {
                max_retries: 4,
                backoff_base: Duration::ZERO,
                ..ResilienceConfig::default()
            });
        for i in 0..6 {
            compiler.compile(KERNEL, defines(i + 1)).unwrap();
        }
    }
    assert_eq!(plan_a.event_log(), plan_b.event_log());
    assert!(
        plan_a.injected_count() > 0,
        "seed 1234 must inject something"
    );
}
