//! Persistent artifact store integration: warm starts across compiler
//! instances (the process-restart analogue), same-key write races,
//! corrupt/torn record degradation, ticket resolution from disk, and
//! worker-panic containment.

use ks_core::{Compiler, Defines};
use ks_sim::DeviceConfig;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const KERNEL: &str = r#"
    #ifndef LOOP_COUNT
    #define LOOP_COUNT loopCount
    #endif
    __global__ void k(int* in, int* out, int loopCount) {
        int acc = 0;
        const unsigned int offset = blockIdx.x * blockDim.x + threadIdx.x;
        for (int i = 0; i < LOOP_COUNT; i++) {
            acc += *(in + offset + i);
        }
        *(out + offset) = acc;
    }
"#;

/// A fresh per-test store directory (removed up front so reruns start
/// cold; tests clean up on success).
fn tmpdir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ks-core-store-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn record_files(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else {
        return found;
    };
    for e in entries.flatten() {
        let path = e.path();
        if path.is_dir() {
            found.extend(record_files(&path));
        } else if path.extension().is_some_and(|x| x == "ksb") {
            found.push(path);
        }
    }
    found
}

fn compiler_with_store(dir: &Path) -> Compiler {
    Compiler::new(DeviceConfig::tesla_c1060())
        .with_store(dir)
        .expect("open store")
}

#[test]
fn warm_start_serves_every_variant_from_disk_with_zero_compiles() {
    let dir = tmpdir("warm");
    let variants: Vec<Defines> = (1..=4)
        .map(|i| Defines::new().def("LOOP_COUNT", i))
        .collect();

    // Cold pass: everything compiles and writes through.
    let cold = compiler_with_store(&dir);
    let mut listings = Vec::new();
    for d in &variants {
        listings.push(cold.compile(KERNEL, d).unwrap().ptx.clone());
    }
    let s = cold.cache_stats();
    assert_eq!(s.misses, 4);
    assert_eq!(s.disk_misses, 4, "every leader probed an empty store: {s}");
    assert_eq!(s.disk_hits, 0);
    assert_eq!(s.store_errors, 0);
    assert_eq!(record_files(&dir).len(), 4);

    // Warm start: a fresh compiler (process-restart analogue) on the
    // same directory serves everything from disk — zero compiles,
    // byte-identical listings.
    let warm = compiler_with_store(&dir);
    for (d, expected) in variants.iter().zip(&listings) {
        let bin = warm.compile(KERNEL, d).unwrap();
        assert_eq!(&bin.ptx, expected, "reloaded listing must be identical");
    }
    let s = warm.cache_stats();
    assert_eq!(s.misses, 0, "warm start must not compile: {s}");
    assert_eq!(s.hits, 4);
    assert_eq!(s.disk_hits, 4);
    assert_eq!(s.disk_misses, 0);
    assert_eq!(s.total_compile_micros, 0, "no compile time was paid: {s}");
    // Re-touching a variant is now a pure memory hit.
    warm.compile(KERNEL, &variants[0]).unwrap();
    let s = warm.cache_stats();
    assert_eq!((s.hits, s.disk_hits), (5, 4));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_key_race_across_compilers_writes_exactly_one_record() {
    let dir = tmpdir("race");
    let a = Arc::new(compiler_with_store(&dir));
    let b = Arc::new(compiler_with_store(&dir));
    let d = Defines::new().def("LOOP_COUNT", 7);
    let spawn = |c: &Arc<Compiler>| {
        let c = c.clone();
        let d = d.clone();
        std::thread::spawn(move || c.compile(KERNEL, &d).map(|bin| bin.ptx.clone()))
    };
    let (ta, tb) = (spawn(&a), spawn(&b));
    let pa = ta.join().unwrap().unwrap();
    let pb = tb.join().unwrap().unwrap();
    assert_eq!(pa, pb);
    assert_eq!(
        record_files(&dir).len(),
        1,
        "one key must publish exactly one record"
    );
    // Neither side may have seen a torn or conflicting write.
    assert_eq!(a.cache_stats().store_errors, 0);
    assert_eq!(b.cache_stats().store_errors, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_record_degrades_to_byte_identical_recompile() {
    let dir = tmpdir("corrupt");
    let d = Defines::new().def("LOOP_COUNT", 3);
    let expected = compiler_with_store(&dir)
        .compile(KERNEL, &d)
        .unwrap()
        .ptx
        .clone();
    let files = record_files(&dir);
    assert_eq!(files.len(), 1);

    // Flip one payload byte: the checksum must reject the record and the
    // compiler must quietly recompile — never panic, never fail.
    let mut bytes = std::fs::read(&files[0]).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x5A;
    std::fs::write(&files[0], &bytes).unwrap();

    let c = compiler_with_store(&dir);
    let bin = c.compile(KERNEL, &d).unwrap();
    assert_eq!(bin.ptx, expected, "recompiled output must be identical");
    let s = c.cache_stats();
    assert_eq!(s.store_errors, 1, "{s}");
    assert_eq!(s.misses, 1);
    assert_eq!(s.disk_hits, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_records_degrade_to_recompile() {
    // A torn write can cut anywhere: mid-header (8 bytes keeps only the
    // magic + half the version) or mid-payload.
    for (tag, keep_fraction) in [("header", 0.0), ("payload", 0.5)] {
        let dir = tmpdir(&format!("torn-{tag}"));
        let d = Defines::new().def("LOOP_COUNT", 5);
        compiler_with_store(&dir).compile(KERNEL, &d).unwrap();
        let files = record_files(&dir);
        assert_eq!(files.len(), 1);
        let bytes = std::fs::read(&files[0]).unwrap();
        let keep = if keep_fraction == 0.0 {
            8
        } else {
            (bytes.len() as f64 * keep_fraction) as usize
        };
        std::fs::write(&files[0], &bytes[..keep]).unwrap();

        let c = compiler_with_store(&dir);
        let bin = c.compile(KERNEL, &d);
        assert!(bin.is_ok(), "torn {tag} record must not fail the compile");
        let s = c.cache_stats();
        assert_eq!(s.store_errors, 1, "torn {tag}: {s}");
        assert_eq!(s.misses, 1, "torn {tag}: {s}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn tickets_resolve_from_disk_without_a_worker_slot() {
    let dir = tmpdir("async-disk");
    let d = Defines::new().def("LOOP_COUNT", 9);
    compiler_with_store(&dir).compile(KERNEL, &d).unwrap();

    let warm = Arc::new(compiler_with_store(&dir));
    let ticket = warm.spawn_compile(KERNEL, &d);
    // Resolved synchronously at spawn time: the disk hit never touched
    // the worker queue.
    assert!(
        ticket.is_done(),
        "disk hit must resolve the ticket at spawn"
    );
    assert!(ticket.wait().is_ok());
    let s = warm.cache_stats();
    assert_eq!((s.hits, s.disk_hits, s.misses), (1, 1, 0), "{s}");
    let a = warm.async_stats();
    assert_eq!((a.spawned, a.completed), (1, 1));
    assert_eq!(a.spawned, a.completed + a.failed + a.cancelled);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_panic_fails_the_ticket_and_spares_the_pool() {
    let plan = Arc::new(
        ks_fault::FaultPlan::new(7).rule(
            ks_fault::FaultRule::new(ks_fault::FaultKind::CompilePanic, ks_fault::Target::Any)
                .persistent(),
        ),
    );
    let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()).with_fault_plan(plan));
    let ticket = c.spawn_compile(KERNEL, Defines::new().def("LOOP_COUNT", 2));
    let err = ticket.wait().expect_err("injected panic must fail the job");
    assert!(err.message.contains("panic"), "{err}");
    let a = c.async_stats();
    assert_eq!(a.failed, 1, "{a}");
    assert_eq!(a.spawned, a.completed + a.failed + a.cancelled);
    // The pool worker survived the unwind: a clean compiler's job on the
    // same process-wide pool still completes.
    let clean = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
    let t2 = clean.spawn_compile(KERNEL, Defines::new().def("LOOP_COUNT", 2));
    assert!(t2.wait().is_ok(), "pool must keep working after a panic");
}

#[test]
fn attach_time_scrub_quarantines_rot_and_warm_start_recompiles_cleanly() {
    let dir = tmpdir("scrub-attach");
    let rotted = Defines::new().def("LOOP_COUNT", 2);
    let intact = Defines::new().def("LOOP_COUNT", 5);
    let first = compiler_with_store(&dir);
    let expected_ptx = first.compile(KERNEL, &rotted).unwrap().ptx.clone();
    first.compile(KERNEL, &intact).unwrap();
    let rotted_path = first
        .store_path()
        .map(|root| {
            let hex = first.cache_key(KERNEL, &rotted).to_hex();
            root.join(&hex[..2]).join(format!("{hex}.ksb"))
        })
        .unwrap();
    drop(first);

    // Header-intact payload rot: flip one bit past the 40-byte header.
    let mut bytes = std::fs::read(&rotted_path).unwrap();
    bytes[60] ^= 0x04;
    std::fs::write(&rotted_path, &bytes).unwrap();

    // "Restart": a fresh compiler attaches with a scrub. The rotted
    // record is quarantined before the store goes live.
    let (c, report) = Compiler::new(DeviceConfig::tesla_c1060())
        .with_store_scrubbed(&dir)
        .expect("open + scrub store");
    assert_eq!(report.scanned, 2);
    assert_eq!(report.valid, 1);
    assert_eq!(report.quarantined.len(), 1);
    assert!(matches!(
        report.quarantined[0].1,
        ks_core::StoreError::ChecksumMismatch { .. }
    ));
    assert!(!rotted_path.exists(), "rot moved out of the fan-out");
    assert!(dir.join("quarantine").is_dir());

    // Warm start after the scrub: the intact variant loads from disk,
    // the quarantined one recompiles byte-identically — and crucially
    // with *zero* store errors, because the bad record was already out
    // of the way.
    let bin = c.compile(KERNEL, &rotted).unwrap();
    assert_eq!(bin.ptx, expected_ptx);
    c.compile(KERNEL, &intact).unwrap();
    let s = c.cache_stats();
    assert_eq!(s.store_errors, 0, "{s}");
    assert_eq!(s.disk_hits, 1, "{s}");
    assert_eq!(s.misses, 1, "{s}");

    // An on-demand re-scrub of the now-clean store finds nothing.
    let again = c.scrub_store().unwrap().unwrap();
    assert_eq!(again.quarantined.len(), 0);
    assert_eq!(again.scanned, 2, "recompile republished the record");
    let _ = std::fs::remove_dir_all(&dir);
}
