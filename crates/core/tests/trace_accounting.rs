//! Metric-accounting invariants under concurrency: the registry
//! counters ks-core publishes must stay consistent with each other
//! (`hits + misses == compile requests`) and with the compiler's own
//! `CacheStats`, whatever mix of thundering herds, distinct keys, and
//! repeats the callers produce.
//!
//! These tests share the process-wide registry, so each works on
//! before/after deltas and they are serialized by a file-local lock.

use ks_core::{Compiler, Defines};
use ks_sim::DeviceConfig;
use std::sync::{Arc, Mutex};

static TEST_LOCK: Mutex<()> = Mutex::new(());

const SRC: &str = r#"
    #ifndef GAIN
    #define GAIN gain
    #endif
    __global__ void amp(float* x, int gain, int n) {
        int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
        if (i < n) { x[i] = x[i] * (float)GAIN; }
    }
"#;

struct CacheDelta {
    hits: u64,
    misses: u64,
    dedup_waits: u64,
    requests: u64,
}

fn registry_cache_counters() -> (u64, u64, u64, u64) {
    let r = ks_trace::registry();
    (
        r.counter_value(ks_trace::names::CACHE_HITS),
        r.counter_value(ks_trace::names::CACHE_MISSES),
        r.counter_value(ks_trace::names::CACHE_DEDUP_WAITS),
        r.counter_value(ks_trace::names::COMPILE_REQUESTS),
    )
}

/// Run `f` and return the registry-counter delta it produced.
fn delta(f: impl FnOnce()) -> CacheDelta {
    let before = registry_cache_counters();
    f();
    let after = registry_cache_counters();
    CacheDelta {
        hits: after.0 - before.0,
        misses: after.1 - before.1,
        dedup_waits: after.2 - before.2,
        requests: after.3 - before.3,
    }
}

#[test]
fn thundering_herd_accounts_every_request() {
    let _guard = TEST_LOCK.lock().unwrap();
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
    let threads = 8;
    let d = delta(|| {
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = compiler.clone();
                s.spawn(move || {
                    c.compile(SRC, Defines::new().def("GAIN", 3)).unwrap();
                });
            }
        });
    });
    // One key, N concurrent callers: exactly one miss, the rest hits.
    assert_eq!(d.misses, 1, "single-flight must compile once");
    assert_eq!(d.hits, threads - 1);
    assert_eq!(d.hits + d.misses, d.requests, "every request accounted");
    // Followers are also counted as dedup waits (racy Claim::Hit path
    // aside, at least one thread must have blocked on the leader... but
    // a fast leader can finish before any follower arrives, so only the
    // upper bound is deterministic).
    assert!(d.dedup_waits < threads);

    // The registry mirrors the compiler's own stats exactly (fresh
    // compiler: its stats ARE this test's delta).
    let stats = compiler.cache_stats();
    assert_eq!((stats.hits, stats.misses), (d.hits, d.misses));
    assert_eq!(stats.dedup_waits, d.dedup_waits);
}

#[test]
fn distinct_keys_all_miss() {
    let _guard = TEST_LOCK.lock().unwrap();
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
    let n = 6u64;
    let d = delta(|| {
        std::thread::scope(|s| {
            for g in 0..n {
                let c = compiler.clone();
                s.spawn(move || {
                    c.compile(SRC, Defines::new().def("GAIN", g)).unwrap();
                });
            }
        });
    });
    assert_eq!(d.misses, n);
    assert_eq!(d.hits, 0);
    assert_eq!(d.requests, n);
}

#[test]
fn mixed_workload_invariant_holds() {
    let _guard = TEST_LOCK.lock().unwrap();
    let compiler = Arc::new(Compiler::new(DeviceConfig::tesla_c2070()));
    let threads = 8u64;
    let per_thread = 6u64;
    let d = delta(|| {
        std::thread::scope(|s| {
            for t in 0..threads {
                let c = compiler.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        // 3 distinct keys, revisited by every thread.
                        let gain = (t + i) % 3;
                        c.compile(SRC, Defines::new().def("GAIN", gain)).unwrap();
                    }
                });
            }
        });
    });
    assert_eq!(d.requests, threads * per_thread);
    assert_eq!(d.hits + d.misses, d.requests);
    assert_eq!(d.misses, 3, "one compile per distinct key");
    let stats = compiler.cache_stats();
    assert_eq!(stats.hits + stats.misses, d.requests);
}

/// The resilience counters keep exact parity too: local `CacheStats`
/// and the registry agree on failures, quarantines, retries, and
/// breaker trips, and failed calls never leak into `hits + misses ==
/// requests`.
#[test]
fn failures_keep_exact_registry_parity() {
    use ks_fault::{FaultKind, FaultPlan, FaultRule, Target};
    let _guard = TEST_LOCK.lock().unwrap();
    let plan = Arc::new(FaultPlan::new(21).rule(
        FaultRule::new(FaultKind::CompileError, Target::Define("GAIN=99".into())).persistent(),
    ));
    let compiler = Compiler::new(DeviceConfig::tesla_c1060())
        .with_fault_plan(plan)
        .with_resilience(ks_core::ResilienceConfig {
            max_retries: 2,
            backoff_base: std::time::Duration::ZERO,
            quarantine_ttl: std::time::Duration::from_secs(60),
            breaker_threshold: 1,
            ..ks_core::ResilienceConfig::default()
        });
    let reg = ks_trace::registry();
    let resilience_counters = || {
        (
            reg.counter_value(ks_trace::names::CACHE_FAILURES),
            reg.counter_value(ks_trace::names::CACHE_QUARANTINED),
            reg.counter_value(ks_trace::names::COMPILE_RETRIES),
            reg.counter_value(ks_trace::names::BREAKER_OPEN),
        )
    };
    let before = resilience_counters();
    let d = delta(|| {
        assert!(compiler
            .compile(SRC, Defines::new().def("GAIN", 99))
            .is_err());
        assert!(compiler
            .compile(SRC, Defines::new().def("GAIN", 99))
            .is_err());
        compiler
            .compile(SRC, Defines::new().def("GAIN", 1))
            .unwrap();
    });
    let after = resilience_counters();
    let stats = compiler.cache_stats();
    // Fresh compiler + serialized registry: the delta IS its stats.
    assert_eq!(
        (
            after.0 - before.0,
            after.1 - before.1,
            after.2 - before.2,
            after.3 - before.3,
        ),
        (
            stats.failures,
            stats.quarantined,
            stats.retries,
            stats.breaker_opens,
        ),
        "registry must mirror CacheStats exactly: {stats}"
    );
    assert_eq!(
        stats.failures, 2,
        "one real failure + one fast-fail: {stats}"
    );
    assert_eq!(stats.quarantined, 1, "second call fast-fails: {stats}");
    assert_eq!(stats.retries, 2, "one retry wave of two: {stats}");
    assert_eq!(stats.breaker_opens, 1, "threshold 1 trips once: {stats}");
    // The failed calls never enter the request invariant.
    assert_eq!(d.requests, 1, "only the successful compile is a request");
    assert_eq!(d.hits + d.misses, d.requests);
}

#[test]
fn evictions_reach_the_registry() {
    let _guard = TEST_LOCK.lock().unwrap();
    let compiler = Compiler::new(DeviceConfig::tesla_c1060()).with_cache_capacity(2);
    let before = ks_trace::registry().counter_value(ks_trace::names::CACHE_EVICTIONS);
    for g in 0..5 {
        compiler
            .compile(SRC, Defines::new().def("GAIN", g))
            .unwrap();
    }
    let evicted = ks_trace::registry().counter_value(ks_trace::names::CACHE_EVICTIONS) - before;
    assert_eq!(evicted, compiler.cache_stats().evictions);
    assert_eq!(evicted, 3, "capacity 2, 5 inserts");
}
