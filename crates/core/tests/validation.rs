//! End-to-end translation validation through the `Compiler`: a compiler
//! carrying a `ValidationConfig` verifies every HIR transform and IR pass
//! during `compile`, attaches findings to the `Binary`, publishes
//! registry counters, and `validate_specialization` checks RE→SK
//! equivalence through the same cached pipeline.

use ks_core::{Compiler, Defines, ValidationConfig};
use ks_sim::DeviceConfig;
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

const SRC: &str = r#"
    #ifndef GAIN
    #define GAIN gain
    #endif
    #ifndef N
    #define N n
    #endif
    __global__ void amp(float* x, int gain, int n) {
        int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
        if (i < N) { x[i] = x[i] * (float)GAIN; }
    }
"#;

#[test]
fn validated_compile_is_clean_and_counts_checks() {
    let _guard = TEST_LOCK.lock().unwrap();
    let compiler =
        Compiler::new(DeviceConfig::tesla_c1060()).with_validation(ValidationConfig::default());
    let reg = ks_trace::registry();
    let before = reg.counter_value(ks_trace::names::VERIFY_CHECKS);
    let diffs_before = reg.counter_value(ks_trace::names::VERIFY_DIFFS);
    let bin = compiler
        .compile(SRC, Defines::new().def("GAIN", 3).def("N", 1024))
        .unwrap();
    assert!(
        !bin.verification.iter().any(|f| f.is_error()),
        "clean kernel must produce no error findings: {:?}",
        bin.verification
    );
    let checks = reg.counter_value(ks_trace::names::VERIFY_CHECKS) - before;
    assert!(checks > 0, "validation must have run comparisons");
    assert_eq!(
        reg.counter_value(ks_trace::names::VERIFY_DIFFS) - diffs_before,
        0
    );
    // Verification time is split out of the opt phase, never negative.
    assert!(bin.metrics.opt + bin.metrics.verify <= bin.metrics.total);
}

#[test]
fn unvalidated_compile_attaches_nothing() {
    let _guard = TEST_LOCK.lock().unwrap();
    let compiler = Compiler::new(DeviceConfig::tesla_c1060());
    let bin = compiler.compile(SRC, Defines::new()).unwrap();
    assert!(bin.verification.is_empty());
    assert_eq!(bin.metrics.verify, std::time::Duration::ZERO);
}

#[test]
fn specialization_equivalence_via_compiler() {
    let _guard = TEST_LOCK.lock().unwrap();
    let compiler =
        Compiler::new(DeviceConfig::tesla_c1060()).with_validation(ValidationConfig::default());
    let report = compiler
        .validate_specialization(SRC, &Defines::new().def("GAIN", 3).def("N", 1024))
        .unwrap();
    assert!(report.checks > 0);
    assert!(
        report.is_clean(),
        "RE and SK must agree: {:?}",
        report.findings
    );
}

#[test]
fn validation_config_participates_in_cache_key() {
    let _guard = TEST_LOCK.lock().unwrap();
    // Same compiler, same key → hit; validation config is part of the
    // compiler, so its cache is internally consistent by construction.
    // What must hold: two compiles of the same source+defines on a
    // validated compiler produce one miss.
    let compiler =
        Compiler::new(DeviceConfig::tesla_c1060()).with_validation(ValidationConfig::default());
    compiler.compile(SRC, Defines::new().def("N", 64)).unwrap();
    compiler.compile(SRC, Defines::new().def("N", 64)).unwrap();
    let stats = compiler.cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 1);
}
