//! # ks-fault — deterministic, seeded fault injection
//!
//! The dissertation's adaptability story makes compilation and kernel
//! launch *runtime* operations: GPU-PF re-specializes kernels mid-run,
//! which means the pipeline must survive compiles that fail and launches
//! that fault. This crate is the failure model the resilience layer in
//! ks-core and gpu-pf is tested against.
//!
//! A [`FaultPlan`] is a seeded list of [`FaultRule`]s. Each rule targets
//! a site (`compile` or `launch`), selects victims by kernel name, cache
//! key, or `-D` define substring ([`Target`]), and fires either on exact
//! occurrence numbers (`nth`), for a bounded number of injections
//! (`limit`), or probabilistically at a fixed parts-per-million rate
//! driven by a SplitMix64 stream keyed on `(seed, rule, identity,
//! occurrence)`. **Determinism is the contract**: the same plan, seed,
//! and sequence of `check_*` calls produce the same injections and a
//! byte-identical [`FaultPlan::event_log`] — no wall-clock, no global
//! RNG. That is what lets CI run a fault drill twice and `diff` the
//! output, and what makes failures found under injection replayable.
//!
//! Consumers poll the plan at their existing instrumentation points:
//!
//! * ks-core calls [`FaultPlan::check_compile`] before running the real
//!   compile pipeline (per attempt, so retries re-roll the dice);
//! * ks-sim calls [`FaultPlan::check_device`] at the top of `launch`,
//!   before any device state is touched, so injected device faults are
//!   always retry-safe.
//!
//! Plans are attached per-compiler (`Compiler::with_fault_plan`) or
//! process-wide via [`install`]; [`active`] is a lock-free no-op when
//! nothing is installed, so production binaries pay one relaxed atomic
//! load per site.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// What kind of failure to inject. Compile-site kinds surface as
/// `CompileError`s (or a panic) from ks-core; device-site kinds surface
/// as `SimError`s from `ks_sim::launch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The compile returns an error ("nvcc" failure analogue).
    CompileError,
    /// The compile panics (compiler bug analogue); exercises the
    /// single-flight panic handoff and `catch_panics` resilience.
    CompilePanic,
    /// The compile reports exceeding its deadline.
    CompileTimeout,
    /// The kernel launch times out (watchdog analogue).
    LaunchTimeout,
    /// Device memory allocation fails at launch.
    DeviceOom,
    /// An uncorrectable ECC/memory fault is reported at launch.
    EccFault,
    /// A *silent* data corruption: the launch succeeds, but one bit of
    /// an output buffer is flipped after the kernel completes — the
    /// caller sees `Ok`. Unlike every other launch kind this never
    /// surfaces as an error; ks-sim applies the flip to device memory
    /// using the fault's [`InjectedFault::entropy`], so placement is as
    /// deterministic as the injection decision itself. Only an
    /// end-to-end integrity check (golden checksum or witness re-run)
    /// can catch it.
    SilentFlip,
    /// A background compile worker drops the job before compiling
    /// (killed-worker analogue). Checked at the worker site — the ticket
    /// resolves with an error, the pool thread survives, and the
    /// blocking compile path never sees it.
    WorkerDrop,
}

impl FaultKind {
    /// True for kinds checked at the compile site.
    pub fn is_compile(self) -> bool {
        self.site() == Site::Compile
    }

    /// Which instrumentation site checks this kind.
    fn site(self) -> Site {
        match self {
            FaultKind::CompileError | FaultKind::CompilePanic | FaultKind::CompileTimeout => {
                Site::Compile
            }
            FaultKind::LaunchTimeout
            | FaultKind::DeviceOom
            | FaultKind::EccFault
            | FaultKind::SilentFlip => Site::Launch,
            FaultKind::WorkerDrop => Site::Worker,
        }
    }

    /// Stable lowercase label used in messages and the event log.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::CompileError => "compile-error",
            FaultKind::CompilePanic => "compile-panic",
            FaultKind::CompileTimeout => "compile-timeout",
            FaultKind::LaunchTimeout => "launch-timeout",
            FaultKind::DeviceOom => "device-oom",
            FaultKind::EccFault => "ecc-fault",
            FaultKind::SilentFlip => "silent-flip",
            FaultKind::WorkerDrop => "worker-drop",
        }
    }
}

/// Which compiles/launches a rule applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// Every check at the rule's site.
    Any,
    /// Kernels whose name matches exactly (first `__global__` name of
    /// the translation unit at the compile site; the launched kernel at
    /// the device site).
    Kernel(String),
    /// A specific specialization cache key. Matches at the compile and
    /// worker sites, and at the launch site when the caller identifies
    /// the bound binary via [`FaultPlan::check_device_keyed`] — which is
    /// how a drill faults launches of one exact variant.
    Key(u64),
    /// Checks whose `-D` command line contains this substring. This is
    /// how a plan faults *specialized* variants of a kernel while
    /// letting the generic (define-free) build through — the fallback
    /// path gpu-pf degrades onto. Like [`Target::Key`], launch-site
    /// matching requires a keyed check; the legacy unkeyed
    /// [`FaultPlan::check_device`] carries an empty `-D` line and so
    /// never matches a non-empty substring.
    Define(String),
}

impl Target {
    fn matches(&self, identity: &str, key: u64, defines: &str) -> bool {
        match self {
            Target::Any => true,
            Target::Kernel(name) => name == identity,
            // Key 0 / an empty `-D` line mean "caller did not identify
            // the binary" (legacy unkeyed launch checks), so keyed
            // selectors simply never fire there — no site guard needed.
            Target::Key(k) => *k == key,
            Target::Define(s) => !defines.is_empty() && defines.contains(s.as_str()),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Site {
    Compile,
    Launch,
    /// The background compile worker pool, between dequeue and compile.
    Worker,
}

impl Site {
    fn label(self) -> &'static str {
        match self {
            Site::Compile => "compile",
            Site::Launch => "launch",
            Site::Worker => "worker",
        }
    }
}

/// One injection rule. Build with [`FaultRule::new`] and the fluent
/// setters; fires when the target matches and the occurrence/limit/rate
/// gates all pass.
#[derive(Debug, Clone)]
pub struct FaultRule {
    pub kind: FaultKind,
    pub target: Target,
    /// Transient faults are expected to clear on retry (the resilience
    /// layer retries them); persistent faults reproduce every time.
    pub transient: bool,
    /// Injection probability in parts per million (1_000_000 = always).
    pub rate_ppm: u32,
    /// Fire only on exactly the nth matching occurrence (1-based),
    /// counted per identity.
    pub nth: Option<u64>,
    /// Stop after this many injections from this rule (across all
    /// identities). `limit(3)` with an always-firing rule models a fault
    /// that clears after three attempts.
    pub limit: Option<u64>,
}

impl FaultRule {
    pub fn new(kind: FaultKind, target: Target) -> FaultRule {
        FaultRule {
            kind,
            target,
            transient: true,
            rate_ppm: 1_000_000,
            nth: None,
            limit: None,
        }
    }

    /// Mark the fault persistent: retries observe it again.
    pub fn persistent(mut self) -> FaultRule {
        self.transient = false;
        self
    }

    /// Fire probabilistically at `ppm` parts per million.
    pub fn rate_ppm(mut self, ppm: u32) -> FaultRule {
        self.rate_ppm = ppm.min(1_000_000);
        self
    }

    /// Fire only on the nth matching occurrence (1-based, per identity).
    pub fn nth(mut self, n: u64) -> FaultRule {
        self.nth = Some(n);
        self
    }

    /// Cap total injections from this rule.
    pub fn limit(mut self, n: u64) -> FaultRule {
        self.limit = Some(n);
        self
    }
}

/// A fault the plan decided to inject, returned to the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    pub kind: FaultKind,
    pub transient: bool,
    /// Which matching occurrence (1-based, per identity) fired.
    pub occurrence: u64,
    /// The kernel name (or `"?"` when unknown) the check was made for.
    pub identity: String,
    /// Deterministic per-injection entropy: a SplitMix64 output keyed on
    /// `(seed, rule, identity, occurrence)` under a domain tag distinct
    /// from the rate-roll stream. Consumers that need seeded randomness
    /// beyond the fire/no-fire decision (e.g. where a [`FaultKind::
    /// SilentFlip`] lands) draw from this so replays stay byte-exact.
    pub entropy: u64,
}

impl InjectedFault {
    /// Deterministic human-readable message for error payloads. The
    /// `(transient)`/`(persistent)` marker is load-bearing: retry layers
    /// key off it (`SimError::is_transient`).
    pub fn message(&self) -> String {
        format!(
            "injected fault: {} on `{}` ({}, occurrence {})",
            self.kind.label(),
            self.identity,
            if self.transient {
                "transient"
            } else {
                "persistent"
            },
            self.occurrence
        )
    }
}

/// One line of the deterministic event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// `"compile"` or `"launch"`.
    pub site: &'static str,
    pub kind: FaultKind,
    pub identity: String,
    pub occurrence: u64,
    pub transient: bool,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[fault] site={} kind={} id={} occ={} {}",
            self.site,
            self.kind.label(),
            self.identity,
            self.occurrence,
            if self.transient {
                "transient"
            } else {
                "persistent"
            }
        )
    }
}

#[derive(Default)]
struct PlanState {
    /// Matching-occurrence counters per (rule index, identity).
    occurrences: HashMap<(usize, String), u64>,
    /// Injections fired per rule (for `limit`).
    injected: Vec<u64>,
    events: Vec<FaultEvent>,
}

/// A seeded, deterministic fault-injection plan. See the crate docs.
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    state: Mutex<PlanState>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
            state: Mutex::new(PlanState::default()),
        }
    }

    /// Append a rule (builder style). Rules are checked in insertion
    /// order; the first one that fires wins.
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self.state.get_mut().injected.push(0);
        self
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Build a plan from `KS_FAULT_*` environment variables:
    /// `KS_FAULT_SEED` (u64), `KS_FAULT_COMPILE_PPM`,
    /// `KS_FAULT_DEVICE_PPM`, and `KS_FAULT_SILENT_PPM` (silent output
    /// bit flips). Returns `None` when no rate is set, so unconfigured
    /// processes keep the zero-cost fast path.
    pub fn from_env() -> Option<FaultPlan> {
        fn var_u64(name: &str) -> Option<u64> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        let compile_ppm = var_u64("KS_FAULT_COMPILE_PPM").unwrap_or(0) as u32;
        let device_ppm = var_u64("KS_FAULT_DEVICE_PPM").unwrap_or(0) as u32;
        let silent_ppm = var_u64("KS_FAULT_SILENT_PPM").unwrap_or(0) as u32;
        if compile_ppm == 0 && device_ppm == 0 && silent_ppm == 0 {
            return None;
        }
        let mut plan = FaultPlan::new(var_u64("KS_FAULT_SEED").unwrap_or(0));
        if compile_ppm > 0 {
            plan = plan
                .rule(FaultRule::new(FaultKind::CompileError, Target::Any).rate_ppm(compile_ppm));
        }
        if device_ppm > 0 {
            plan = plan
                .rule(FaultRule::new(FaultKind::LaunchTimeout, Target::Any).rate_ppm(device_ppm));
        }
        if silent_ppm > 0 {
            plan =
                plan.rule(FaultRule::new(FaultKind::SilentFlip, Target::Any).rate_ppm(silent_ppm));
        }
        Some(plan)
    }

    /// Should this compile attempt fault? `identity` is the kernel name
    /// (first `__global__` in the unit), `key` the specialization cache
    /// key, `defines` the rendered `-D` command line. Called once per
    /// *attempt*, so a bounded transient fault clears under retry.
    pub fn check_compile(&self, identity: &str, key: u64, defines: &str) -> Option<InjectedFault> {
        self.check(Site::Compile, identity, key, defines)
    }

    /// Should this kernel launch fault? Called before any device state
    /// is modified, so injected device faults are always retry-safe.
    /// Carries no binary identity: [`Target::Key`]/[`Target::Define`]
    /// rules never match here — use [`FaultPlan::check_device_keyed`]
    /// when the bound binary's cache key and `-D` line are known.
    pub fn check_device(&self, kernel: &str) -> Option<InjectedFault> {
        self.check(Site::Launch, kernel, 0, "")
    }

    /// Like [`FaultPlan::check_device`], but identifies the bound binary
    /// by its canonical specialization cache key and rendered `-D`
    /// command line, so launch faults can be scoped to one exact variant
    /// (`Target::Key` / `Target::Define`). gpu-pf calls this for every
    /// pipeline launch with the key of whichever binary is bound —
    /// generic, specialized, or last-known-good.
    pub fn check_device_keyed(
        &self,
        kernel: &str,
        key: u64,
        defines: &str,
    ) -> Option<InjectedFault> {
        self.check(Site::Launch, kernel, key, defines)
    }

    /// Should the background worker drop this dequeued job? Called by
    /// the async compile pool after dequeue, before the compile runs;
    /// an injection resolves the ticket with an error without touching
    /// the cache, so the blocking path is unaffected.
    pub fn check_worker(&self, identity: &str, key: u64, defines: &str) -> Option<InjectedFault> {
        self.check(Site::Worker, identity, key, defines)
    }

    fn check(&self, site: Site, identity: &str, key: u64, defines: &str) -> Option<InjectedFault> {
        let mut st = self.state.lock();
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.kind.site() != site {
                continue;
            }
            if !rule.target.matches(identity, key, defines) {
                continue;
            }
            let occ = st
                .occurrences
                .entry((i, identity.to_string()))
                .and_modify(|o| *o += 1)
                .or_insert(1);
            let occ = *occ;
            if let Some(n) = rule.nth {
                if occ != n {
                    continue;
                }
            }
            if let Some(limit) = rule.limit {
                if st.injected[i] >= limit {
                    continue;
                }
            }
            let stream = self.seed
                ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ fnv1a(identity).wrapping_mul(0x5851_F42D_4C95_7F2D)
                ^ occ;
            if rule.rate_ppm < 1_000_000 {
                let roll = splitmix64(stream);
                if (roll % 1_000_000) as u32 >= rule.rate_ppm {
                    continue;
                }
            }
            st.injected[i] += 1;
            let fault = InjectedFault {
                kind: rule.kind,
                transient: rule.transient,
                occurrence: occ,
                identity: identity.to_string(),
                // A second draw under a domain tag keeps the placement
                // stream independent of the fire/no-fire roll.
                entropy: splitmix64(stream ^ 0xB17F_11B5_ED5D_C0DE),
            };
            st.events.push(FaultEvent {
                site: site.label(),
                kind: rule.kind,
                identity: identity.to_string(),
                occurrence: occ,
                transient: rule.transient,
            });
            return Some(fault);
        }
        None
    }

    /// Total injections fired so far.
    pub fn injected_count(&self) -> u64 {
        self.state.lock().injected.iter().sum()
    }

    /// Snapshot of every injection, in firing order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.state.lock().events.clone()
    }

    /// The deterministic event log: one line per injection, no
    /// timestamps, byte-identical across runs with the same seed and
    /// call sequence.
    pub fn event_log(&self) -> String {
        let st = self.state.lock();
        let mut out = String::new();
        for e in &st.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

/// SplitMix64 finalizer — a tiny, well-distributed stateless mixer. The
/// decision stream is a pure function of (seed, rule, identity,
/// occurrence), which is what makes rate-based injection replayable.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Extract `__global__ void <name>` kernel names from a CUDA-dialect
/// source, in declaration order. Used by call sites to derive the
/// identity a [`Target::Kernel`] rule matches against.
pub fn kernel_names(source: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = source;
    while let Some(pos) = rest.find("__global__") {
        rest = &rest[pos + "__global__".len()..];
        let after_void = match rest.trim_start().strip_prefix("void") {
            Some(r) => r,
            None => continue,
        };
        let ident: String = after_void
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() {
            names.push(ident);
        }
    }
    names
}

static INSTALLED: AtomicBool = AtomicBool::new(false);

fn global_plan() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static PLAN: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(None))
}

/// Install a process-wide plan consulted by every compile and launch
/// that doesn't have a per-compiler plan attached. Replaces any
/// previous plan.
pub fn install(plan: Arc<FaultPlan>) {
    *global_plan().lock() = Some(plan);
    INSTALLED.store(true, Ordering::Release);
}

/// Remove the process-wide plan.
pub fn clear() {
    *global_plan().lock() = None;
    INSTALLED.store(false, Ordering::Release);
}

/// The process-wide plan, if any. One relaxed atomic load when nothing
/// is installed — cheap enough for per-launch polling.
pub fn active() -> Option<Arc<FaultPlan>> {
    if !INSTALLED.load(Ordering::Acquire) {
        return None;
    }
    global_plan().lock().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_occurrence_fires_once_per_identity() {
        let plan = FaultPlan::new(1)
            .rule(FaultRule::new(FaultKind::CompileError, Target::Kernel("k".into())).nth(2));
        assert!(plan.check_compile("k", 0, "").is_none());
        let f = plan.check_compile("k", 0, "").expect("2nd occurrence");
        assert_eq!(f.occurrence, 2);
        assert!(plan.check_compile("k", 0, "").is_none());
        // A different kernel has its own occurrence stream.
        assert!(plan.check_compile("other", 0, "").is_none());
    }

    #[test]
    fn limit_clears_after_n_injections() {
        let plan =
            FaultPlan::new(7).rule(FaultRule::new(FaultKind::CompileError, Target::Any).limit(3));
        for _ in 0..3 {
            assert!(plan.check_compile("k", 9, "").is_some());
        }
        assert!(plan.check_compile("k", 9, "").is_none());
        assert_eq!(plan.injected_count(), 3);
    }

    #[test]
    fn define_target_spares_generic_compiles() {
        let plan = FaultPlan::new(0).rule(
            FaultRule::new(FaultKind::CompileError, Target::Define("-D FACTOR=".into()))
                .persistent(),
        );
        assert!(plan.check_compile("scale", 1, "-D FACTOR=4").is_some());
        assert!(plan.check_compile("scale", 2, "").is_none());
    }

    #[test]
    fn rate_stream_is_deterministic_and_roughly_calibrated() {
        let run = || {
            let plan = FaultPlan::new(42)
                .rule(FaultRule::new(FaultKind::CompileError, Target::Any).rate_ppm(100_000));
            let mut hits = 0u32;
            for i in 0..10_000 {
                let id = format!("k{}", i % 64);
                if plan.check_compile(&id, 0, "").is_some() {
                    hits += 1;
                }
            }
            (hits, plan.event_log())
        };
        let (a, log_a) = run();
        let (b, log_b) = run();
        assert_eq!(a, b);
        assert_eq!(log_a, log_b, "event log must be byte-identical");
        // 10% nominal on 10k trials: accept a generous band.
        assert!((500..2_000).contains(&a), "hit count {a} out of band");
    }

    #[test]
    fn device_checks_ignore_compile_rules_and_vice_versa() {
        let plan = FaultPlan::new(3)
            .rule(FaultRule::new(FaultKind::CompileError, Target::Any))
            .rule(FaultRule::new(FaultKind::LaunchTimeout, Target::Kernel("k".into())).nth(1));
        let d = plan.check_device("k").expect("launch rule");
        assert_eq!(d.kind, FaultKind::LaunchTimeout);
        assert!(d.message().contains("(transient"), "{}", d.message());
        let c = plan.check_compile("k", 0, "").expect("compile rule");
        assert_eq!(c.kind, FaultKind::CompileError);
    }

    #[test]
    fn worker_site_is_independent_of_compile_and_launch() {
        let plan = FaultPlan::new(9)
            .rule(FaultRule::new(FaultKind::WorkerDrop, Target::Define("-D F=".into())).limit(1));
        // Compile and launch sites never see worker rules.
        assert!(plan.check_compile("k", 0, "-D F=3").is_none());
        assert!(plan.check_device("k").is_none());
        // Generic (define-free) jobs are spared by the Define target.
        assert!(plan.check_worker("k", 0, "").is_none());
        let f = plan.check_worker("k", 0, "-D F=3").expect("worker drop");
        assert_eq!(f.kind, FaultKind::WorkerDrop);
        assert!(f.message().contains("worker-drop"), "{}", f.message());
        // limit(1) exhausted.
        assert!(plan.check_worker("k", 0, "-D F=3").is_none());
        assert!(
            plan.event_log().contains("site=worker"),
            "{}",
            plan.event_log()
        );
    }

    #[test]
    fn launch_faults_match_on_key_and_define_when_keyed() {
        // Regression: the old `site != Site::Launch` guard in
        // `Target::matches` made per-variant launch drills impossible —
        // a Key/Define-targeted launch rule could never fire.
        let plan = FaultPlan::new(11)
            .rule(FaultRule::new(FaultKind::SilentFlip, Target::Key(0xBEEF)).nth(1))
            .rule(
                FaultRule::new(
                    FaultKind::LaunchTimeout,
                    Target::Define("-D TILE_W=".into()),
                )
                .nth(1),
            );
        // Unkeyed checks (key 0, empty -D line) still never match.
        assert!(plan.check_device("k").is_none());
        // Wrong key / non-matching defines: spared.
        assert!(plan.check_device_keyed("k", 0xF00D, "-D OTHER=1").is_none());
        // The exact variant: both selectors now fire at the launch site.
        let f = plan
            .check_device_keyed("k", 0xBEEF, "-D OTHER=1")
            .expect("key-scoped launch fault");
        assert_eq!(f.kind, FaultKind::SilentFlip);
        let g = plan
            .check_device_keyed("k", 0x1234, "-D TILE_W=16")
            .expect("define-scoped launch fault");
        assert_eq!(g.kind, FaultKind::LaunchTimeout);
        assert!(plan.event_log().contains("site=launch"));
    }

    #[test]
    fn silent_flip_entropy_is_deterministic_and_decoupled() {
        let draw = || {
            let plan = FaultPlan::new(21)
                .rule(FaultRule::new(FaultKind::SilentFlip, Target::Kernel("k".into())).nth(2));
            assert!(plan.check_device_keyed("k", 1, "-D A=1").is_none());
            plan.check_device_keyed("k", 1, "-D A=1").expect("nth(2)")
        };
        let a = draw();
        let b = draw();
        assert_eq!(a.entropy, b.entropy, "entropy must replay exactly");
        assert_ne!(a.entropy, 0);
        // Distinct occurrences draw distinct placement entropy.
        let plan = FaultPlan::new(21)
            .rule(FaultRule::new(FaultKind::SilentFlip, Target::Kernel("k".into())).limit(2));
        let e1 = plan.check_device("k").unwrap().entropy;
        let e2 = plan.check_device("k").unwrap().entropy;
        assert_ne!(e1, e2);
    }

    #[test]
    fn extracts_kernel_names() {
        let src = r#"
            __device__ int helper(int x) { return x; }
            __global__ void scale(float* a, int n) {}
            extern "C" __global__   void add_two (float* a) {}
        "#;
        assert_eq!(kernel_names(src), vec!["scale", "add_two"]);
    }

    #[test]
    fn install_clear_roundtrip() {
        assert!(active().is_none());
        install(Arc::new(FaultPlan::new(5)));
        assert!(active().is_some());
        clear();
        assert!(active().is_none());
    }
}
