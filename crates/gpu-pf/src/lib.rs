//! # gpu-pf — the GPU Prototyping Framework
//!
//! A Rust reproduction of the dissertation's GPU-PF (§4.4.1): a host-side
//! framework for streaming processing pipelines built around three concept
//! classes —
//!
//! * **parameters** (Table 4.1): memory extents, subsets, schedules,
//!   integers, floats, pointers, triplets, pairs, data types, booleans, and
//!   self-updating steps;
//! * **resources** (Tables 4.2/4.3): modules (compiled with kernel
//!   specialization from bound parameters), kernels, and memory references
//!   (constant, global, host, and moving subset views);
//! * **actions** (Table 4.4): memory copies (direction inferred from the
//!   endpoint memory types), kernel executions, user functions, and file
//!   I/O.
//!
//! A pipeline's lifetime has three phases: **specification** (building the
//! object graph — nothing allocated), **refresh** (recompile/reallocate
//! exactly the resources whose parameters changed), and **execution**
//! (iterating the pipeline; each action fires per its schedule). Log output
//! mirrors Appendix G: refresh reports and per-operation timing.
//!
//! ```
//! use gpu_pf::{Arg, MacroBinding, Pipeline};
//! use std::sync::Arc;
//!
//! const SRC: &str = r#"
//!     #ifndef GAIN
//!     #define GAIN gain
//!     #endif
//!     __global__ void amp(float* x, int gain, int n) {
//!         int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
//!         if (i < n) { x[i] = x[i] * (float)GAIN; }
//!     }
//! "#;
//!
//! let compiler = Arc::new(ks_core::Compiler::new(ks_sim::DeviceConfig::tesla_c1060()));
//! let mut p = Pipeline::new(compiler, 1 << 20);
//! // specification phase
//! let gain = p.int_param("GAIN", 3);
//! let ext = p.extent_param("x", [64, 1, 1], 4);
//! let host = p.host_memory(ext);
//! let dev = p.global_memory(ext);
//! let m = p.module(SRC, vec![("GAIN", MacroBinding::Param(gain))]);
//! let k = p.kernel(m, "amp");
//! let every = p.schedule_param("every", 1, 0);
//! let (g, b) = (p.triplet_param("g", [1, 1, 1]), p.triplet_param("b", [64, 1, 1]));
//! let n = p.int_param("n", 64);
//! p.copy("h2d", host, dev, every);
//! p.exec("amp", k, g, b, None, vec![Arg::Mem(dev), Arg::Param(gain), Arg::Param(n)], every);
//! p.copy("d2h", dev, host, every);
//! // refresh phase: compiles the specialized module, allocates memory
//! p.refresh().unwrap();
//! p.set_host_f32(host, &[2.0; 64]);
//! // execution phase
//! p.run(1).unwrap();
//! assert_eq!(p.host_f32(host), vec![6.0; 64]);
//! // re-specialize and run again: exactly one recompilation happens
//! p.set_int(gain, 5);
//! p.refresh().unwrap();
//! p.run(1).unwrap();
//! assert_eq!(p.host_f32(host), vec![30.0; 64]);
//! ```

pub mod log;
pub mod param;

use ks_core::{Binary, CompileTicket, Compiler, Defines};
use ks_sim::{launch_keyed, DeviceState, KArg, LaunchDims, LaunchOptions, LaunchReport, SimError};
use param::{ParamValue, StepParam};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Per-pipeline registry handles. Unlabeled pipelines publish straight
/// to the global `gpu_pf.*` metrics; labeled ones
/// ([`Pipeline::set_label`]) publish through a
/// `{pipeline=<label>}` scope whose cells roll up exactly into the same
/// globals, so fleet-wide aggregates are unchanged by labeling.
struct PfMetrics {
    iterations: ks_trace::Counter,
    refreshes: ks_trace::Counter,
    fallback_generic: ks_trace::Counter,
    fallback_last_good: ks_trace::Counter,
    launch_retries: ks_trace::Counter,
    promotions: ks_trace::Counter,
    promotions_failed: ks_trace::Counter,
    promotions_superseded: ks_trace::Counter,
    /// Ticket spawn → hot-swap latency (µs), the always-on histogram
    /// twin of the `tier_swap` spans.
    promotion_latency_us: ks_trace::Histogram,
    /// Wall time per pipeline iteration (µs) — the windowed-p95 readout
    /// `ks-prof watch` displays per pipeline.
    iteration_us: ks_trace::Histogram,
    integrity_checks: ks_trace::Counter,
    integrity_witness: ks_trace::Counter,
    integrity_violations: ks_trace::Counter,
    integrity_transient: ks_trace::Counter,
    integrity_corrupt: ks_trace::Counter,
    integrity_recovered: ks_trace::Counter,
    integrity_reexecs: ks_trace::Counter,
}

impl PfMetrics {
    fn from_scope(s: &ks_trace::Scope<'static>) -> PfMetrics {
        PfMetrics {
            iterations: s.counter(ks_trace::names::PF_ITERATIONS),
            refreshes: s.counter(ks_trace::names::PF_REFRESHES),
            fallback_generic: s.counter(ks_trace::names::PF_FALLBACK_GENERIC),
            fallback_last_good: s.counter(ks_trace::names::PF_FALLBACK_LAST_GOOD),
            launch_retries: s.counter(ks_trace::names::PF_LAUNCH_RETRIES),
            promotions: s.counter(ks_trace::names::PF_PROMOTIONS),
            promotions_failed: s.counter(ks_trace::names::PF_PROMOTIONS_FAILED),
            promotions_superseded: s.counter(ks_trace::names::PF_PROMOTIONS_SUPERSEDED),
            promotion_latency_us: s.histogram(ks_trace::names::PF_PROMOTION_LATENCY_US),
            iteration_us: s.histogram(ks_trace::names::PF_ITERATION_US),
            integrity_checks: s.counter(ks_trace::names::PF_INTEGRITY_CHECKS),
            integrity_witness: s.counter(ks_trace::names::PF_INTEGRITY_WITNESS),
            integrity_violations: s.counter(ks_trace::names::PF_INTEGRITY_VIOLATIONS),
            integrity_transient: s.counter(ks_trace::names::PF_INTEGRITY_TRANSIENT),
            integrity_corrupt: s.counter(ks_trace::names::PF_INTEGRITY_CORRUPT),
            integrity_recovered: s.counter(ks_trace::names::PF_INTEGRITY_RECOVERED),
            integrity_reexecs: s.counter(ks_trace::names::PF_INTEGRITY_REEXECS),
        }
    }
}

/// Registry label value for one tier, used in the
/// `gpu_pf.tier.dwell_us.<tier>` dwell histogram names.
fn tier_label(t: Tier) -> &'static str {
    match t {
        Tier::Generic => "generic",
        Tier::Promoting => "promoting",
        Tier::Specialized => "specialized",
        Tier::Failed => "failed",
    }
}

/// Handle to a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// Handle to a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResId(pub usize);

/// Errors from pipeline refresh or execution.
#[derive(Debug)]
pub enum PfError {
    Compile(ks_core::CompileError),
    Sim(SimError),
    Mem(ks_sim::MemError),
    Spec(String),
    Io(std::io::Error),
    /// A resource/parameter binding resolved to the wrong kind or an
    /// unallocated resource (formerly a panic; the message text is
    /// unchanged). The panicking accessors (`int_value`, `device_addr`,
    /// …) remain as thin wrappers over the `try_*` forms.
    Bind(String),
    /// Launch-path resolution failed: not a kernel resource, module not
    /// compiled, or a value unusable on the launch path.
    Launch(String),
}

impl std::fmt::Display for PfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfError::Compile(e) => write!(f, "{e}"),
            PfError::Sim(e) => write!(f, "{e}"),
            PfError::Mem(e) => write!(f, "{e}"),
            PfError::Spec(s) => write!(f, "specification error: {s}"),
            PfError::Io(e) => write!(f, "io error: {e}"),
            // Bare text: the panicking wrappers rely on this rendering
            // matching the pre-conversion panic messages exactly.
            PfError::Bind(s) => write!(f, "{s}"),
            PfError::Launch(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for PfError {}

impl From<ks_core::CompileError> for PfError {
    fn from(e: ks_core::CompileError) -> Self {
        PfError::Compile(e)
    }
}

impl From<SimError> for PfError {
    fn from(e: SimError) -> Self {
        PfError::Sim(e)
    }
}

impl From<ks_sim::MemError> for PfError {
    fn from(e: ks_sim::MemError) -> Self {
        PfError::Mem(e)
    }
}

struct ParamSlot {
    name: String,
    value: ParamValue,
    dirty: bool,
}

/// How a module macro binds to a parameter.
#[derive(Debug, Clone)]
pub enum MacroBinding {
    /// The parameter's value rendered as an integer literal.
    Param(ParamId),
    /// A fixed string (escape hatch for type tokens etc.).
    Literal(String),
}

/// How a module degraded when its specialized compile failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackKind {
    /// Compiled and bound the generic (no `-D` defines) kernel binary:
    /// correct results via runtime arguments, without the specialized
    /// variant's performance.
    Generic,
    /// Kept the previously compiled (stale-specialization) binary.
    LastKnownGood,
}

/// Record of one graceful degradation during [`Pipeline::refresh`].
#[derive(Debug, Clone)]
pub struct Degradation {
    /// Resource index of the module that degraded.
    pub module: usize,
    pub fallback: FallbackKind,
    /// The specialized compile error (or integrity verdict) that forced
    /// the fallback.
    pub error: String,
    /// Canonical cache key (32-hex [`ks_core::Fingerprint`]) of the
    /// *failed* variant, so reports name the exact artifact — the same
    /// identity `ks-store` records carry on disk.
    pub key: String,
    /// The failed variant's rendered `-D` command line (empty for a
    /// generic compile), so a report names the exact configuration
    /// without a key-to-defines lookup.
    pub defines: String,
}

/// Canonical identity of the binary a module currently serves, stamped
/// at every bind site from [`ks_core::Compiler::cache_key`] over the
/// module source and the binary's *actual* compile defines (which, for
/// a degraded module, differ from the requested specialization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundKey {
    /// 32-hex canonical cache key.
    pub fingerprint: String,
    /// Low 64 bits of the key — what keyed launch-fault selectors
    /// ([`ks_fault::Target::Key`]) match on.
    pub lo64: u64,
    /// Rendered `-D` command line of the bound binary.
    pub defines: String,
}

/// End-to-end output-integrity checking for kernel executions
/// ([`Pipeline::set_integrity`]).
///
/// When enabled, every `Exec` action snapshots its device-memory
/// arguments before launching, checksums them after (FNV-1a-128 via
/// [`ks_core::StableHasher`]), and periodically *witnesses* the result:
/// the inputs are restored and the generic (define-free) binary —
/// compiled from the same source, reading its runtime arguments — re-runs
/// on them. Specialization is semantics-preserving, so any byte
/// divergence between the specialized output and the witness output is
/// an integrity violation: either a transient device flip or a corrupt
/// specialized binary. N-of-M re-execution voting tells the two apart,
/// the degradation ladder quarantines a corrupt variant, and the
/// iteration re-executes so downstream actions only ever see verified
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityConfig {
    /// Witness every Nth integrity-checked execution (1 = every one).
    /// 0 disables periodic witnessing: a witness then runs only when a
    /// pinned golden checksum ([`Pipeline::expect_checksum`]) mismatches.
    pub witness_period: u64,
    /// Re-execution votes cast when a witness disagrees (the M in
    /// N-of-M).
    pub vote_m: u32,
    /// Votes that must agree with the witness to call the divergence a
    /// transient device flip (the N). Fewer agreements convict the
    /// specialized binary itself, which is then quarantined.
    pub vote_n: u32,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig {
            witness_period: 16,
            vote_m: 3,
            vote_n: 2,
        }
    }
}

/// What first exposed an integrity violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A pinned golden checksum ([`Pipeline::expect_checksum`])
    /// mismatched, and the witness confirmed the divergence.
    GoldenMismatch,
    /// A scheduled witness launch disagreed with the specialized output.
    WitnessMismatch,
}

/// Root cause assigned by N-of-M re-execution voting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Re-executions of the same specialized binary agree with the
    /// witness: the original output was corrupted in flight (an SDC
    /// event), not by the binary. The variant keeps serving.
    TransientFlip,
    /// Re-executions reproduce the divergence: the specialized binary
    /// itself computes wrong bytes. The variant is quarantined through
    /// the degradation ladder and the generic binary takes over.
    CorruptBinary,
}

/// One detected-and-adjudicated output-integrity violation.
#[derive(Debug, Clone)]
pub struct IntegrityViolation {
    /// Pipeline iteration the violating execution ran in.
    pub iteration: u64,
    /// The `Exec` action's label.
    pub label: String,
    /// Resource index of the module whose binary was suspect.
    pub module: usize,
    /// Kernel name launched.
    pub kernel: String,
    /// Canonical cache key (32-hex) of the suspect variant.
    pub key: String,
    /// The suspect variant's `-D` command line.
    pub defines: String,
    pub kind: ViolationKind,
    pub verdict: Verdict,
    /// Votes that agreed with the witness, out of `votes_total` cast.
    pub votes_agree: u32,
    pub votes_total: u32,
    /// The post-recovery re-execution reproduced the witness output
    /// byte-for-byte — downstream actions saw verified bytes.
    pub recovered: bool,
}

/// Per-pipeline integrity accounting. The same events appear on the
/// `gpu_pf.integrity.*` registry counters (globally and under the
/// pipeline's label scope).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Executions that ran with integrity checking active.
    pub checks: u64,
    /// Witness launches performed (generic re-runs on restored inputs).
    pub witness_launches: u64,
    /// Violations detected (witness disagreed with the checked output).
    pub violations: u64,
    /// Violations adjudicated as transient device flips.
    pub transient_flips: u64,
    /// Violations adjudicated as corrupt specialized binaries.
    pub corrupt_binaries: u64,
    /// Violations whose recovery re-execution matched the witness.
    pub recovered: u64,
    /// Voting and recovery re-executions of the checked kernel.
    pub reexecutions: u64,
}

/// How [`Pipeline::refresh`] produces specialized binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshMode {
    /// Compile every dirty module synchronously inside `refresh()` —
    /// the original GPU-PF behavior: refresh returns only when every
    /// module holds its exact specialized binary.
    #[default]
    Blocking,
    /// Tiered execution: `refresh()` binds each dirty module to a
    /// servable binary immediately (the generic, define-free variant —
    /// or the previous binary if one exists) and enqueues the
    /// specialized compile on the background tier. The module is
    /// hot-swapped to the specialized binary when its
    /// [`CompileTicket`] resolves; in-flight launches keep the binary
    /// they pinned at launch time.
    Tiered,
}

/// Which binary a module is serving, relative to its requested
/// specialization (tiered execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// Serving the generic (define-free) binary; no specialization has
    /// been requested or completed yet.
    #[default]
    Generic,
    /// A background specialization is in flight; the module serves its
    /// interim binary until the ticket resolves.
    Promoting,
    /// Serving its exact requested specialized binary.
    Specialized,
    /// The most recent specialization attempt failed; the module keeps
    /// serving its fallback binary and the next refresh retries.
    Failed,
}

/// Per-pipeline promotion accounting (tiered mode). The same events
/// appear on the `gpu_pf.promotions*` registry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PromotionStats {
    /// Modules hot-swapped to their specialized binary.
    pub promoted: u64,
    /// Background specializations that failed (module kept fallback).
    pub failed: u64,
    /// In-flight promotions cancelled because the module was re-dirtied
    /// before the ticket resolved.
    pub superseded: u64,
    /// Promotions currently in flight.
    pub pending: u64,
}

/// An in-flight background specialization for one module.
struct Pending {
    ticket: CompileTicket,
    /// What the module serves while the ticket is in flight — recorded
    /// as the degradation fallback if the promotion fails.
    fallback: FallbackKind,
    /// When the ticket was spawned; the `tier_swap` span covers
    /// spawn → hot-swap.
    started: Instant,
    /// Canonical identity of the variant being compiled, stamped at
    /// spawn time so a failed promotion's [`Degradation`] names the
    /// exact `-D` configuration that failed.
    key: BoundKey,
}

enum Resource {
    Module {
        source: String,
        bindings: Vec<(String, MacroBinding)>,
        binary: Option<Arc<Binary>>,
        /// Bound to a fallback binary; the next refresh retries the
        /// specialized compile even if no parameter changed.
        degraded: bool,
        /// Which binary the module currently serves (tiered execution).
        tier: Tier,
        /// When the module entered its current tier; each transition
        /// records the elapsed dwell into the per-module
        /// `gpu_pf.tier.dwell_us.*` histograms.
        tier_since: Instant,
        /// The in-flight background specialization, if any.
        pending: Option<Pending>,
        /// Canonical identity of the binary currently bound, stamped at
        /// every bind site. `None` until the first bind.
        bound: Option<BoundKey>,
    },
    Kernel {
        module: ResId,
        name: String,
    },
    GlobalMem {
        extent: ParamId,
        addr: Option<u64>,
        bytes: u64,
    },
    HostMem {
        extent: ParamId,
        data: Vec<u8>,
    },
    ConstMem {
        module: ResId,
        name: String,
    },
    /// A moving window over another memory reference; the subset parameter
    /// advances each iteration (streaming input frames, §4.4.1).
    Subset {
        of: ResId,
        subset: ParamId,
    },
    /// A texture reference inside a module, bound to a memory reference
    /// (Table 4.2's Texture resource): rebound before every launch, so a
    /// moving subset can stream frames through the texture path.
    Texture {
        module: ResId,
        name: String,
        mem: ResId,
    },
}

/// A kernel-execution argument.
#[derive(Debug, Clone, Copy)]
pub enum Arg {
    /// Scalar from a parameter (Integer/Float/Pointer/Bool).
    Param(ParamId),
    /// Device pointer of a memory resource.
    Mem(ResId),
}

type UserFn = Box<dyn FnMut(&mut DeviceState, u64) -> Result<(), PfError> + Send>;

enum Action {
    Copy {
        src: ResId,
        dst: ResId,
        schedule: ParamId,
        label: String,
    },
    Exec {
        kernel: ResId,
        grid: ParamId,
        block: ParamId,
        dynamic_shared: Option<ParamId>,
        args: Vec<Arg>,
        schedule: ParamId,
        label: String,
    },
    User {
        f: UserFn,
        schedule: ParamId,
        label: String,
    },
    FileOut {
        mem: ResId,
        path: PathBuf,
        schedule: ParamId,
        label: String,
    },
    FileIn {
        mem: ResId,
        path: PathBuf,
        schedule: ParamId,
        label: String,
    },
}

/// Result of a §4.4.2-style output validation.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    pub compared: usize,
    pub mismatches: usize,
    pub first_mismatch: Option<usize>,
    pub worst_abs: f32,
    pub worst_rel: f32,
    pub length_mismatch: bool,
}

impl ValidationReport {
    pub fn passed(&self) -> bool {
        self.mismatches == 0 && !self.length_mismatch
    }
}

/// Timing record for one executed operation.
#[derive(Debug, Clone)]
pub struct OpTiming {
    pub iteration: u64,
    pub label: String,
    /// Simulated GPU milliseconds for kernel executions; modeled transfer
    /// time for copies.
    pub sim_ms: f64,
}

/// The pipeline: owns the device, the compiler, and the object graph.
pub struct Pipeline {
    compiler: Arc<Compiler>,
    pub state: DeviceState,
    params: Vec<ParamSlot>,
    resources: Vec<Resource>,
    actions: Vec<Action>,
    iteration: u64,
    refreshed: bool,
    pub launch_options: LaunchOptions,
    /// Launch retry budget for *transient* device faults (per
    /// execution; non-transient simulation traps never retry).
    pub launch_retries: u32,
    log: log::Logger,
    timings: Vec<OpTiming>,
    /// Reports of every kernel execution (most recent last).
    pub reports: Vec<LaunchReport>,
    degradations: Vec<Degradation>,
    refresh_mode: RefreshMode,
    promotion_stats: PromotionStats,
    /// Output-integrity checking, off by default ([`Pipeline::set_integrity`]).
    integrity: Option<IntegrityConfig>,
    /// Integrity-checked executions so far — the witness-period clock.
    integrity_seq: u64,
    integrity_stats: IntegrityStats,
    violations: Vec<IntegrityViolation>,
    /// Pinned golden checksums by exec label ([`Pipeline::expect_checksum`]).
    golden: BTreeMap<String, String>,
    /// Most recent observed output checksum by exec label.
    observed_checksums: BTreeMap<String, String>,
    /// The metric scope this pipeline publishes through: global when
    /// unlabeled, `{pipeline=<label>}` after [`Pipeline::set_label`].
    scope: ks_trace::Scope<'static>,
    metrics: PfMetrics,
    label: Option<String>,
}

impl Pipeline {
    /// Specification phase begins: nothing is compiled or allocated yet.
    pub fn new(compiler: Arc<Compiler>, heap_bytes: u64) -> Pipeline {
        let dev = compiler.device().clone();
        let scope = ks_trace::registry().scoped(&[]);
        Pipeline {
            compiler,
            state: DeviceState::new(dev, heap_bytes),
            params: Vec::new(),
            resources: Vec::new(),
            actions: Vec::new(),
            iteration: 0,
            refreshed: false,
            launch_options: LaunchOptions::default(),
            launch_retries: 2,
            log: log::Logger::disabled(),
            timings: Vec::new(),
            reports: Vec::new(),
            degradations: Vec::new(),
            refresh_mode: RefreshMode::Blocking,
            promotion_stats: PromotionStats::default(),
            integrity: None,
            integrity_seq: 0,
            integrity_stats: IntegrityStats::default(),
            violations: Vec::new(),
            golden: BTreeMap::new(),
            observed_checksums: BTreeMap::new(),
            metrics: PfMetrics::from_scope(&scope),
            scope,
            label: None,
        }
    }

    /// Tag every metric this pipeline publishes with a
    /// `{pipeline=<label>}` scope. Scoped cells roll up exactly into
    /// the global `gpu_pf.*` aggregates, so labeling changes nothing
    /// for fleet-wide readers; per-pipeline windows and dwell
    /// histograms become separable. Call before `refresh()` — metrics
    /// already published stay on the previous scope.
    pub fn set_label(&mut self, label: &str) {
        self.scope = ks_trace::registry().scoped(&[("pipeline", label)]);
        self.metrics = PfMetrics::from_scope(&self.scope);
        self.label = Some(label.to_string());
    }

    /// The metric label set by [`Pipeline::set_label`], if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// The registry name `base` resolves to under this pipeline's
    /// scope (e.g. `gpu_pf.iteration_us{pipeline=p0}`), for readers
    /// that want this pipeline's cells out of a snapshot or window.
    pub fn metric_name(&self, base: &str) -> String {
        ks_trace::scoped_name(base, self.scope.labels())
    }

    /// Cumulative time-in-tier dwell histogram for `tier`, under this
    /// pipeline's scope: how long modules sat on that tier before
    /// transitioning off it. Derived from the same transitions the
    /// `tier_swap` spans mark, but always-on.
    pub fn tier_dwell(&self, tier: Tier) -> ks_trace::HistogramSnapshot {
        self.scope
            .histogram(&ks_trace::names::pf_tier_dwell_us(tier_label(tier)))
            .snapshot()
    }

    /// Record the end of a module's dwell on its current tier and move
    /// it to `new`, publishing the elapsed µs into the per-module,
    /// per-pipeline, and global dwell histograms (the scope chain rolls
    /// each sample up through all three).
    fn record_tier_transition(&mut self, i: usize, new: Tier) {
        let Resource::Module {
            tier, tier_since, ..
        } = &mut self.resources[i]
        else {
            unreachable!()
        };
        let old = std::mem::replace(tier, new);
        let dwell = std::mem::replace(tier_since, Instant::now()).elapsed();
        let module = i.to_string();
        self.scope
            .scoped(&[("module", &module)])
            .histogram(&ks_trace::names::pf_tier_dwell_us(tier_label(old)))
            .record_duration_us(dwell);
    }

    /// Canonical identity of a (source, defines) variant under this
    /// pipeline's compiler.
    fn variant_key(&self, source: &str, defs: &Defines) -> BoundKey {
        let fp = self.compiler.cache_key(source, defs);
        BoundKey {
            fingerprint: fp.to_hex(),
            lo64: fp.lo64(),
            defines: defs.command_line(),
        }
    }

    /// Stamp module `i`'s bound-key identity from the binary it now
    /// holds. Called at every bind site, so keyed launch-fault checks
    /// and integrity records always name the served variant exactly.
    fn stamp_bound_key(&mut self, i: usize) {
        let Resource::Module {
            source,
            binary: Some(bin),
            ..
        } = &self.resources[i]
        else {
            return;
        };
        let key = self.variant_key(&source.clone(), &bin.defines.clone());
        let Resource::Module { bound, .. } = &mut self.resources[i] else {
            unreachable!()
        };
        *bound = Some(key);
    }

    /// Every graceful degradation recorded by [`Pipeline::refresh`]
    /// (oldest first). Empty when all specialized compiles succeeded.
    pub fn degradations(&self) -> &[Degradation] {
        &self.degradations
    }

    /// Enable (or disable, with `None`) end-to-end output-integrity
    /// checking for every `Exec` action. See [`IntegrityConfig`].
    pub fn set_integrity(&mut self, cfg: Option<IntegrityConfig>) {
        self.integrity = cfg;
    }

    pub fn integrity(&self) -> Option<IntegrityConfig> {
        self.integrity
    }

    /// Per-pipeline integrity accounting (mirrors the
    /// `gpu_pf.integrity.*` counters under this pipeline's scope).
    pub fn integrity_stats(&self) -> IntegrityStats {
        self.integrity_stats
    }

    /// Every detected integrity violation (oldest first).
    pub fn integrity_violations(&self) -> &[IntegrityViolation] {
        &self.violations
    }

    /// Pin the expected output checksum for an `Exec` action's label.
    /// While integrity checking is on, any execution whose observed
    /// checksum differs triggers an immediate witness — even between
    /// scheduled witness periods. Only pin stages whose inputs are
    /// stationary across iterations; for streaming stages rely on the
    /// periodic witness instead.
    pub fn expect_checksum(&mut self, label: &str, checksum: &str) {
        self.golden.insert(label.to_string(), checksum.to_string());
    }

    /// The most recent observed output checksum (32-hex FNV-1a-128 over
    /// the execution's device-memory arguments) for an exec label, once
    /// integrity checking has seen it fire.
    pub fn last_checksum(&self, label: &str) -> Option<&str> {
        self.observed_checksums.get(label).map(|s| s.as_str())
    }

    /// Canonical identity of the binary a module currently serves, or
    /// `None` before the first bind (or if `id` is not a module).
    pub fn module_bound_key(&self, id: ResId) -> Option<&BoundKey> {
        match &self.resources[id.0] {
            Resource::Module { bound, .. } => bound.as_ref(),
            _ => None,
        }
    }

    /// Select how [`Pipeline::refresh`] produces specialized binaries
    /// (blocking, the default, or tiered).
    pub fn set_refresh_mode(&mut self, mode: RefreshMode) {
        self.refresh_mode = mode;
    }

    pub fn refresh_mode(&self) -> RefreshMode {
        self.refresh_mode
    }

    /// The tier a module resource is currently serving from, or `None`
    /// if `id` is not a module.
    pub fn module_tier(&self, id: ResId) -> Option<Tier> {
        match &self.resources[id.0] {
            Resource::Module { tier, .. } => Some(*tier),
            _ => None,
        }
    }

    /// Per-pipeline promotion accounting; `pending` counts tickets
    /// still in flight right now.
    pub fn promotion_stats(&self) -> PromotionStats {
        let pending = self
            .resources
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    Resource::Module {
                        pending: Some(_),
                        ..
                    }
                )
            })
            .count() as u64;
        PromotionStats {
            pending,
            ..self.promotion_stats
        }
    }

    /// Route Appendix-G-style log output to a writer.
    pub fn set_logger(&mut self, w: Box<dyn std::io::Write + Send>) {
        self.log = log::Logger::new(w);
    }

    /// Route Appendix-G-style log output to a [`ks_trace::Subscriber`],
    /// sharing a sink with trace/metric exports.
    pub fn set_subscriber(&mut self, s: Arc<dyn ks_trace::Subscriber>) {
        self.log = log::Logger::subscriber(s);
    }

    // ---- parameters (Table 4.1) ----

    fn add_param(&mut self, name: &str, value: ParamValue) -> ParamId {
        self.params.push(ParamSlot {
            name: name.to_string(),
            value,
            dirty: true,
        });
        ParamId(self.params.len() - 1)
    }

    pub fn int_param(&mut self, name: &str, v: i64) -> ParamId {
        self.add_param(name, ParamValue::Int(v))
    }

    pub fn float_param(&mut self, name: &str, v: f64) -> ParamId {
        self.add_param(name, ParamValue::Float(v))
    }

    pub fn bool_param(&mut self, name: &str, v: bool) -> ParamId {
        self.add_param(name, ParamValue::Bool(v))
    }

    pub fn pointer_param(&mut self, name: &str, v: u64) -> ParamId {
        self.add_param(name, ParamValue::Ptr(v))
    }

    pub fn triplet_param(&mut self, name: &str, v: [u32; 3]) -> ParamId {
        self.add_param(name, ParamValue::Triplet(v))
    }

    pub fn pair_param(&mut self, name: &str, v: [u32; 2]) -> ParamId {
        self.add_param(name, ParamValue::Pair(v))
    }

    /// Geometry (up to 3D) and element size of a memory reference.
    pub fn extent_param(&mut self, name: &str, dims: [u32; 3], elem_bytes: u32) -> ParamId {
        self.add_param(name, ParamValue::Extent { dims, elem_bytes })
    }

    /// Period between events and delay before the first occurrence.
    pub fn schedule_param(&mut self, name: &str, period: u64, delay: u64) -> ParamId {
        self.add_param(name, ParamValue::Schedule { period, delay })
    }

    /// Subrange of a memory extent with a per-iteration stride (in
    /// elements of the underlying extent).
    pub fn subset_param(
        &mut self,
        name: &str,
        offset_elems: u64,
        len_elems: u64,
        stride_elems: i64,
        reset_period: u64,
    ) -> ParamId {
        self.add_param(
            name,
            ParamValue::Subset {
                offset: offset_elems,
                len: len_elems,
                stride: stride_elems,
                reset_period,
            },
        )
    }

    /// Self-updating parameter iterating through a range with a stride.
    pub fn step_param(&mut self, name: &str, start: i64, stride: i64, end: i64) -> ParamId {
        self.add_param(
            name,
            ParamValue::Step(StepParam {
                current: start,
                start,
                stride,
                end,
            }),
        )
    }

    /// Update an integer parameter (marks dependents dirty; takes effect at
    /// the next refresh).
    /// The compiler backing this pipeline (shared, cache and all).
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    pub fn set_int(&mut self, id: ParamId, v: i64) {
        let slot = &mut self.params[id.0];
        slot.value = ParamValue::Int(v);
        slot.dirty = true;
        self.refreshed = false;
    }

    pub fn set_triplet(&mut self, id: ParamId, v: [u32; 3]) {
        let slot = &mut self.params[id.0];
        slot.value = ParamValue::Triplet(v);
        slot.dirty = true;
        self.refreshed = false;
    }

    pub fn set_pointer(&mut self, id: ParamId, v: u64) {
        let slot = &mut self.params[id.0];
        slot.value = ParamValue::Ptr(v);
        slot.dirty = true;
        self.refreshed = false;
    }

    pub fn set_extent(&mut self, id: ParamId, dims: [u32; 3], elem_bytes: u32) {
        let slot = &mut self.params[id.0];
        slot.value = ParamValue::Extent { dims, elem_bytes };
        slot.dirty = true;
        self.refreshed = false;
    }

    /// Integer value of a parameter, or [`PfError::Bind`] if the
    /// parameter is not integer-valued.
    pub fn try_int_value(&self, id: ParamId) -> Result<i64, PfError> {
        match &self.params[id.0].value {
            ParamValue::Int(v) => Ok(*v),
            ParamValue::Step(s) => Ok(s.current),
            ParamValue::Bool(b) => Ok(i64::from(*b)),
            v => Err(PfError::Bind(format!(
                "parameter {} is not an integer: {v:?}",
                self.params[id.0].name
            ))),
        }
    }

    /// Panicking form of [`Pipeline::try_int_value`] (same message).
    pub fn int_value(&self, id: ParamId) -> i64 {
        self.try_int_value(id).unwrap_or_else(|e| panic!("{e}"))
    }

    fn triplet_value(&self, id: ParamId) -> Result<[u32; 3], PfError> {
        match &self.params[id.0].value {
            ParamValue::Triplet(v) => Ok(*v),
            v => Err(PfError::Bind(format!(
                "parameter {} is not a triplet: {v:?}",
                self.params[id.0].name
            ))),
        }
    }

    fn extent_bytes(&self, id: ParamId) -> Result<u64, PfError> {
        match &self.params[id.0].value {
            ParamValue::Extent { dims, elem_bytes } => {
                Ok(dims[0] as u64 * dims[1] as u64 * dims[2] as u64 * *elem_bytes as u64)
            }
            v => Err(PfError::Bind(format!(
                "parameter {} is not an extent: {v:?}",
                self.params[id.0].name
            ))),
        }
    }

    fn schedule_fires(&self, id: ParamId, iter: u64) -> Result<bool, PfError> {
        match &self.params[id.0].value {
            ParamValue::Schedule { period, delay } => {
                Ok(iter >= *delay && (*period > 0) && (iter - delay).is_multiple_of(*period))
            }
            v => Err(PfError::Bind(format!(
                "parameter {} is not a schedule: {v:?}",
                self.params[id.0].name
            ))),
        }
    }

    // ---- resources (Tables 4.2/4.3) ----

    fn add_res(&mut self, r: Resource) -> ResId {
        self.resources.push(r);
        ResId(self.resources.len() - 1)
    }

    /// A CUDA module compiled at refresh time with macro values taken from
    /// the bound parameters — kernel specialization automation.
    pub fn module(&mut self, source: &str, bindings: Vec<(&str, MacroBinding)>) -> ResId {
        self.add_res(Resource::Module {
            source: source.to_string(),
            bindings: bindings
                .into_iter()
                .map(|(n, b)| (n.to_string(), b))
                .collect(),
            binary: None,
            degraded: false,
            tier: Tier::Generic,
            tier_since: Instant::now(),
            pending: None,
            bound: None,
        })
    }

    pub fn kernel(&mut self, module: ResId, name: &str) -> ResId {
        self.add_res(Resource::Kernel {
            module,
            name: name.to_string(),
        })
    }

    pub fn global_memory(&mut self, extent: ParamId) -> ResId {
        self.add_res(Resource::GlobalMem {
            extent,
            addr: None,
            bytes: 0,
        })
    }

    pub fn host_memory(&mut self, extent: ParamId) -> ResId {
        self.add_res(Resource::HostMem {
            extent,
            data: Vec::new(),
        })
    }

    pub fn constant_memory(&mut self, module: ResId, name: &str) -> ResId {
        self.add_res(Resource::ConstMem {
            module,
            name: name.to_string(),
        })
    }

    /// A moving window over `of`, positioned by a subset parameter. Usable
    /// anywhere a full memory reference is (Table 4.3).
    pub fn subset(&mut self, of: ResId, subset: ParamId) -> ResId {
        self.add_res(Resource::Subset { of, subset })
    }

    /// A texture reference of `module`, bound to `mem`'s device address
    /// before every kernel execution.
    pub fn texture(&mut self, module: ResId, name: &str, mem: ResId) -> ResId {
        self.add_res(Resource::Texture {
            module,
            name: name.to_string(),
            mem,
        })
    }

    /// Fill a host memory resource (before or between runs), or
    /// [`PfError::Bind`] if `id` is not host memory.
    pub fn try_set_host_data(&mut self, id: ResId, bytes: &[u8]) -> Result<(), PfError> {
        match &mut self.resources[id.0] {
            Resource::HostMem { data, .. } => {
                data.clear();
                data.extend_from_slice(bytes);
                Ok(())
            }
            _ => Err(PfError::Bind("resource is not host memory".to_string())),
        }
    }

    /// Panicking form of [`Pipeline::try_set_host_data`] (same message).
    pub fn set_host_data(&mut self, id: ResId, bytes: &[u8]) {
        self.try_set_host_data(id, bytes)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn set_host_f32(&mut self, id: ResId, vals: &[f32]) {
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.set_host_data(id, &bytes);
    }

    /// Contents of a host memory resource, or [`PfError::Bind`] if `id`
    /// is not host memory.
    pub fn try_host_data(&self, id: ResId) -> Result<&[u8], PfError> {
        match &self.resources[id.0] {
            Resource::HostMem { data, .. } => Ok(data),
            _ => Err(PfError::Bind("resource is not host memory".to_string())),
        }
    }

    /// Panicking form of [`Pipeline::try_host_data`] (same message).
    pub fn host_data(&self, id: ResId) -> &[u8] {
        self.try_host_data(id).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn host_f32(&self, id: ResId) -> Vec<f32> {
        self.host_data(id)
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Device address of a global memory resource (after refresh), or
    /// [`PfError::Bind`] if unresolvable.
    pub fn try_device_addr(&self, id: ResId) -> Result<u64, PfError> {
        let unallocated = || PfError::Bind("refresh() first".to_string());
        match &self.resources[id.0] {
            Resource::GlobalMem { addr, .. } => addr.ok_or_else(unallocated),
            Resource::Subset { of, subset } => {
                let (base_addr, elem) = match &self.resources[of.0] {
                    Resource::GlobalMem { addr, extent, .. } => {
                        (addr.ok_or_else(unallocated)?, self.extent_elem(*extent)?)
                    }
                    _ => {
                        return Err(PfError::Bind(
                            "subset of non-global memory has no device address".to_string(),
                        ))
                    }
                };
                match &self.params[subset.0].value {
                    ParamValue::Subset { offset, .. } => Ok(base_addr + offset * elem as u64),
                    _ => Err(PfError::Bind(
                        "subset resource bound to non-subset parameter".to_string(),
                    )),
                }
            }
            _ => Err(PfError::Bind("resource has no device address".to_string())),
        }
    }

    /// Panicking form of [`Pipeline::try_device_addr`] (same messages).
    pub fn device_addr(&self, id: ResId) -> u64 {
        self.try_device_addr(id).unwrap_or_else(|e| panic!("{e}"))
    }

    fn extent_elem(&self, id: ParamId) -> Result<u32, PfError> {
        match &self.params[id.0].value {
            ParamValue::Extent { elem_bytes, .. } => Ok(*elem_bytes),
            _ => Err(PfError::Bind("not an extent".to_string())),
        }
    }

    /// The compiled binary backing a kernel (after refresh), or
    /// [`PfError::Launch`] if the resource isn't a compiled kernel.
    pub fn try_kernel_binary(&self, kernel: ResId) -> Result<&Arc<Binary>, PfError> {
        let Resource::Kernel { module, .. } = &self.resources[kernel.0] else {
            return Err(PfError::Launch("not a kernel resource".to_string()));
        };
        match &self.resources[module.0] {
            Resource::Module {
                binary: Some(b), ..
            } => Ok(b),
            _ => Err(PfError::Launch(
                "module not compiled; refresh() first".to_string(),
            )),
        }
    }

    /// Panicking form of [`Pipeline::try_kernel_binary`] (same messages).
    pub fn kernel_binary(&self, kernel: ResId) -> &Arc<Binary> {
        self.try_kernel_binary(kernel)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    // ---- actions (Table 4.4) ----

    /// Single copy function; endpoint memory types determine the transfer
    /// direction, like GPU-PF's one-function copy.
    pub fn copy(&mut self, label: &str, src: ResId, dst: ResId, schedule: ParamId) {
        self.actions.push(Action::Copy {
            src,
            dst,
            schedule,
            label: label.to_string(),
        });
    }

    #[allow(clippy::too_many_arguments)]
    pub fn exec(
        &mut self,
        label: &str,
        kernel: ResId,
        grid: ParamId,
        block: ParamId,
        dynamic_shared: Option<ParamId>,
        args: Vec<Arg>,
        schedule: ParamId,
    ) {
        self.actions.push(Action::Exec {
            kernel,
            grid,
            block,
            dynamic_shared,
            args,
            schedule,
            label: label.to_string(),
        });
    }

    pub fn user_fn(
        &mut self,
        label: &str,
        f: impl FnMut(&mut DeviceState, u64) -> Result<(), PfError> + Send + 'static,
        schedule: ParamId,
    ) {
        self.actions.push(Action::User {
            f: Box::new(f),
            schedule,
            label: label.to_string(),
        });
    }

    pub fn file_out(
        &mut self,
        label: &str,
        mem: ResId,
        path: impl Into<PathBuf>,
        schedule: ParamId,
    ) {
        self.actions.push(Action::FileOut {
            mem,
            path: path.into(),
            schedule,
            label: label.to_string(),
        });
    }

    /// Binary data input: read a file into a host or global memory
    /// resource each time the schedule fires (Table 4.4's File I/O).
    pub fn file_in(
        &mut self,
        label: &str,
        path: impl Into<PathBuf>,
        mem: ResId,
        schedule: ParamId,
    ) {
        self.actions.push(Action::FileIn {
            mem,
            path: path.into(),
            schedule,
            label: label.to_string(),
        });
    }

    // ---- refresh phase ----

    /// Recompute every resource affected by parameter changes: recompile
    /// modules whose bound macros changed, (re)allocate memory whose
    /// extents changed. Comprehensive error checking happens here so the
    /// execution phase stays fast (§4.4.1).
    pub fn refresh(&mut self) -> Result<(), PfError> {
        let _span = ks_trace::span("refresh");
        let dirty: BTreeSet<usize> = self
            .params
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dirty)
            .map(|(i, _)| i)
            .collect();
        self.log.line_with(|| {
            format!(
                "=== refresh: {} dirty parameter(s) of {} ===",
                dirty.len(),
                self.params.len()
            )
        });
        for i in 0..self.resources.len() {
            // Split borrows: temporarily take the resource out.
            match &self.resources[i] {
                Resource::Module {
                    source,
                    bindings,
                    binary,
                    degraded,
                    ..
                } => {
                    // A degraded module retries its specialized compile on
                    // every refresh (the half-open probe of the fallback
                    // path), even when no bound parameter changed.
                    let needs = binary.is_none()
                        || *degraded
                        || bindings.iter().any(|(_, b)| match b {
                            MacroBinding::Param(p) => dirty.contains(&p.0),
                            MacroBinding::Literal(_) => false,
                        });
                    if !needs {
                        continue;
                    }
                    let mut defs = Defines::new();
                    for (name, b) in bindings {
                        match b {
                            MacroBinding::Param(p) => {
                                let v = self.render_param(*p)?;
                                defs = defs.def(name, v);
                            }
                            MacroBinding::Literal(s) => {
                                defs = defs.def(name, s.clone());
                            }
                        }
                    }
                    let source = source.clone();
                    // A define-free module's generic binary *is* its
                    // specialization target, so the tiered path would
                    // gain nothing: compile it in place either way.
                    if self.refresh_mode == RefreshMode::Tiered && !defs.is_empty() {
                        self.refresh_module_tiered(i, &source, defs)?;
                    } else {
                        self.refresh_module_blocking(i, &source, defs)?;
                    }
                }
                Resource::GlobalMem { extent, addr, .. } => {
                    let needs = addr.is_none() || dirty.contains(&extent.0);
                    if !needs {
                        continue;
                    }
                    let bytes = self.extent_bytes(*extent)?;
                    let a = self.state.global.alloc(bytes)?;
                    self.log
                        .line_with(|| format!("global[{i}]: allocated {bytes} B at {a:#x}"));
                    let Resource::GlobalMem { addr, bytes: b, .. } = &mut self.resources[i] else {
                        unreachable!()
                    };
                    *addr = Some(a);
                    *b = bytes;
                }
                Resource::HostMem { extent, data } => {
                    let bytes = self.extent_bytes(*extent)? as usize;
                    if data.len() != bytes {
                        let Resource::HostMem { data, .. } = &mut self.resources[i] else {
                            unreachable!()
                        };
                        data.resize(bytes, 0);
                    }
                }
                Resource::Texture { module, name, .. } => {
                    // Validate the binding target once the module exists.
                    if let Resource::Module {
                        binary: Some(bin), ..
                    } = &self.resources[module.0]
                    {
                        if bin.module.texture_index(name).is_none() {
                            return Err(PfError::Spec(format!(
                                "module declares no texture named {name}"
                            )));
                        }
                    }
                }
                _ => {}
            }
        }
        for p in &mut self.params {
            p.dirty = false;
        }
        self.log.line_with(|| {
            let store = match self.compiler.store_path() {
                Some(p) => format!(", store {}", p.display()),
                None => String::new(),
            };
            format!(
                "=== refresh complete: cache {}{store} ===",
                self.compiler.cache_stats()
            )
        });
        self.metrics.refreshes.inc();
        self.refreshed = true;
        Ok(())
    }

    /// Blocking module refresh: compile the specialized binary inside
    /// `refresh()` (degrading on failure) and bind it before returning.
    fn refresh_module_blocking(
        &mut self,
        i: usize,
        source: &str,
        defs: Defines,
    ) -> Result<(), PfError> {
        let Resource::Module { binary, .. } = &self.resources[i] else {
            unreachable!()
        };
        let last_good = binary.clone();
        let before = self.compiler.cache_stats();
        let (bin, fallback) = match self.compiler.compile(source, &defs) {
            Ok(b) => (b, None),
            Err(e) => self.degrade_module(i, source, &defs, last_good, e)?,
        };
        let after = self.compiler.cache_stats();
        self.log.line_with(|| {
            let how = if after.hits > before.hits {
                "cache hit".to_string()
            } else {
                // Per-phase compile metrics, Appendix-G style.
                format!("compiled in {:?}: {}", bin.compile_time, bin.metrics)
            };
            format!(
                "module[{i}]: compile [{}] -> {} ({how})",
                defs.command_line(),
                bin.module
                    .functions
                    .iter()
                    .map(|f| f.name.clone())
                    .collect::<Vec<_>>()
                    .join(","),
            )
        });
        // Surface analysis findings (non-deny severities; deny
        // already failed the compile) in the refresh report.
        for d in &bin.diagnostics {
            self.log.line_with(|| format!("module[{i}]: {d}"));
        }
        // Translation-validation findings, when the compiler
        // was built `with_validation`. Errors already denied
        // the compile; what remains are inconclusive warnings.
        if !bin.verification.is_empty() {
            self.log.line_with(|| {
                format!(
                    "module[{i}]: verification: {} finding(s), {} error(s)",
                    bin.verification.len(),
                    bin.verification.iter().filter(|f| f.is_error()).count()
                )
            });
            for f in &bin.verification {
                self.log.line_with(|| format!("module[{i}]: {f}"));
            }
        }
        let Resource::Module {
            binary, degraded, ..
        } = &mut self.resources[i]
        else {
            unreachable!()
        };
        *binary = Some(bin);
        *degraded = fallback.is_some();
        self.stamp_bound_key(i);
        let new_tier = match fallback {
            None => Tier::Specialized,
            Some(FallbackKind::Generic) => Tier::Generic,
            Some(FallbackKind::LastKnownGood) => Tier::Failed,
        };
        self.record_tier_transition(i, new_tier);
        Ok(())
    }

    /// Tiered module refresh: bind a servable binary *now* — the
    /// generic, define-free variant, or whatever the module already
    /// holds — and enqueue the specialized compile on the background
    /// tier. An in-flight promotion for this module is superseded
    /// (cancelled and its result discarded): the parameters it compiled
    /// under are stale, and hot-swapping its binary in would silently
    /// pin old macro values.
    fn refresh_module_tiered(
        &mut self,
        i: usize,
        source: &str,
        defs: Defines,
    ) -> Result<(), PfError> {
        let Resource::Module {
            binary, pending, ..
        } = &mut self.resources[i]
        else {
            unreachable!()
        };
        if let Some(stale) = pending.take() {
            stale.ticket.cancel();
            self.metrics.promotions_superseded.inc();
            self.promotion_stats.superseded += 1;
            self.log.line_with(|| {
                format!("module[{i}]: superseded in-flight promotion (parameters re-dirtied)")
            });
        }
        let fallback = if binary.is_some() {
            // Keep serving whatever the module already holds (a stale
            // specialization, or the generic bound on a prior refresh).
            FallbackKind::LastKnownGood
        } else {
            // First refresh: the generic binary is the only thing that
            // can serve the first launch. Its compile is the one
            // blocking cost the tiered path pays — once, shared across
            // every variant of this source via the cache. If even the
            // generic fails there is nothing servable: fail the
            // refresh, exactly like the blocking path with no fallback.
            let generic = self
                .compiler
                .compile(source, Defines::new())
                .map_err(PfError::Compile)?;
            let Resource::Module { binary, .. } = &mut self.resources[i] else {
                unreachable!()
            };
            *binary = Some(generic);
            self.stamp_bound_key(i);
            self.log
                .line_with(|| format!("module[{i}]: bound generic binary for immediate service"));
            FallbackKind::Generic
        };
        let spec_key = self.variant_key(source, &defs);
        let ticket = self.compiler.spawn_compile(source, &defs);
        self.log.line_with(|| {
            format!(
                "module[{i}]: specializing [{}] in background (key {})",
                defs.command_line(),
                ticket.key()
            )
        });
        let Resource::Module {
            pending, degraded, ..
        } = &mut self.resources[i]
        else {
            unreachable!()
        };
        *pending = Some(Pending {
            ticket,
            fallback,
            started: Instant::now(),
            key: spec_key,
        });
        *degraded = false;
        self.record_tier_transition(i, Tier::Promoting);
        Ok(())
    }

    /// Apply every resolved promotion ticket (non-blocking): hot-swap
    /// the module's binary on success, or record a degradation and mark
    /// the module [`Tier::Failed`] — the next refresh retries. Returns
    /// the number of modules promoted by this call. Launches pin their
    /// binary `Arc` before executing, so a swap never affects an
    /// in-flight launch — only the next one.
    pub fn poll_promotions(&mut self) -> usize {
        let mut promoted = 0;
        for i in 0..self.resources.len() {
            let Resource::Module { pending, .. } = &mut self.resources[i] else {
                continue;
            };
            let Some(p) = pending else { continue };
            let Some(result) = p.ticket.try_result() else {
                continue;
            };
            let p = pending.take().unwrap();
            match result {
                Ok(bin) => {
                    let Resource::Module {
                        binary, degraded, ..
                    } = &mut self.resources[i]
                    else {
                        unreachable!()
                    };
                    *binary = Some(bin);
                    *degraded = false;
                    self.stamp_bound_key(i);
                    self.record_tier_transition(i, Tier::Specialized);
                    self.metrics.promotions.inc();
                    self.metrics
                        .promotion_latency_us
                        .record_duration_us(p.started.elapsed());
                    self.promotion_stats.promoted += 1;
                    // Span covering spawn → hot-swap: the window the
                    // module served its interim tier.
                    ks_trace::complete_span("tier_swap", p.started);
                    self.log.line_with(|| {
                        format!(
                            "module[{i}]: promoted to specialized binary after {:?}",
                            p.started.elapsed()
                        )
                    });
                    promoted += 1;
                }
                Err(e) => {
                    let Resource::Module { degraded, .. } = &mut self.resources[i] else {
                        unreachable!()
                    };
                    *degraded = true;
                    self.record_tier_transition(i, Tier::Failed);
                    self.metrics.promotions_failed.inc();
                    self.promotion_stats.failed += 1;
                    match p.fallback {
                        FallbackKind::Generic => self.metrics.fallback_generic.inc(),
                        FallbackKind::LastKnownGood => self.metrics.fallback_last_good.inc(),
                    }
                    self.degradations.push(Degradation {
                        module: i,
                        fallback: p.fallback,
                        error: e.to_string(),
                        key: p.key.fingerprint.clone(),
                        defines: p.key.defines.clone(),
                    });
                    self.log.line_with(|| {
                        format!(
                            "module[{i}]: promotion failed ({e}); serving {:?} fallback \
                             (failed variant {} [{}])",
                            p.fallback, p.key.fingerprint, p.key.defines
                        )
                    });
                }
            }
        }
        promoted
    }

    /// Block until every in-flight promotion resolves, then apply them
    /// all. Returns the number of modules promoted.
    pub fn wait_promotions(&mut self) -> usize {
        let tickets: Vec<CompileTicket> = self
            .resources
            .iter()
            .filter_map(|r| match r {
                Resource::Module {
                    pending: Some(p), ..
                } => Some(p.ticket.clone()),
                _ => None,
            })
            .collect();
        for t in tickets {
            let _ = t.wait();
        }
        self.poll_promotions()
    }

    /// Graceful degradation when a specialized compile fails: bind the
    /// generic (no-defines) kernel binary — functionally correct, since
    /// our sources default every specialization macro to its runtime
    /// argument — or, failing that, keep the last-known-good binary.
    /// Only when neither fallback exists does the refresh fail.
    fn degrade_module(
        &mut self,
        idx: usize,
        source: &str,
        defs: &Defines,
        last_good: Option<Arc<Binary>>,
        err: ks_core::CompileError,
    ) -> Result<(Arc<Binary>, Option<FallbackKind>), PfError> {
        let _span = ks_trace::span_fields("refresh-fallback", || {
            vec![
                ("module".to_string(), idx.to_string()),
                ("error".to_string(), err.message.clone()),
            ]
        });
        // Name the exact variant that failed in every degradation
        // record: its canonical cache key and `-D` configuration.
        let failed = self.variant_key(source, defs);
        // The generic compile is only a distinct variant when the failed
        // one was actually specialized.
        if !defs.is_empty() {
            if let Ok(generic) = self.compiler.compile(source, Defines::new()) {
                self.metrics.fallback_generic.inc();
                self.log.line_with(|| {
                    format!(
                        "module[{idx}]: specialized compile failed ({err}); \
                         falling back to generic kernel (failed variant {} [{}])",
                        failed.fingerprint, failed.defines
                    )
                });
                self.degradations.push(Degradation {
                    module: idx,
                    fallback: FallbackKind::Generic,
                    error: err.to_string(),
                    key: failed.fingerprint,
                    defines: failed.defines,
                });
                return Ok((generic, Some(FallbackKind::Generic)));
            }
        }
        if let Some(prev) = last_good {
            self.metrics.fallback_last_good.inc();
            self.log.line_with(|| {
                format!("module[{idx}]: compile failed ({err}); keeping last-known-good binary")
            });
            self.degradations.push(Degradation {
                module: idx,
                fallback: FallbackKind::LastKnownGood,
                error: err.to_string(),
                key: failed.fingerprint,
                defines: failed.defines,
            });
            return Ok((prev, Some(FallbackKind::LastKnownGood)));
        }
        Err(PfError::Compile(err))
    }

    /// Render a parameter as a macro value string.
    fn render_param(&self, id: ParamId) -> Result<String, PfError> {
        match &self.params[id.0].value {
            ParamValue::Int(v) => Ok(v.to_string()),
            ParamValue::Bool(b) => Ok(if *b { "1" } else { "0" }.to_string()),
            ParamValue::Float(v) => Ok(format!("{v}f")),
            ParamValue::Ptr(v) => Ok(format!("{v:#x}")),
            ParamValue::Step(s) => Ok(s.current.to_string()),
            ParamValue::Triplet(v) => Ok(v[0].to_string()), // .x by convention
            ParamValue::Pair(v) => Ok(v[0].to_string()),
            v => Err(PfError::Bind(format!(
                "parameter {} ({v:?}) cannot be rendered as a macro value",
                self.params[id.0].name
            ))),
        }
    }

    // ---- execution phase ----

    /// Run `iterations` pipeline iterations.
    pub fn run(&mut self, iterations: u64) -> Result<(), PfError> {
        if !self.refreshed {
            return Err(PfError::Spec("refresh() must run before execution".into()));
        }
        for _ in 0..iterations {
            let iter = self.iteration;
            let _span = ks_trace::span_fields("pipeline-iteration", || {
                vec![("iter".to_string(), iter.to_string())]
            });
            let iter_started = Instant::now();
            self.log
                .line_with(|| format!("--- pipeline iteration {iter} ---"));
            // Tiered mode: promotions land between iterations, never
            // mid-action — each launch runs its pinned binary to
            // completion.
            if self.refresh_mode == RefreshMode::Tiered {
                self.poll_promotions();
            }
            for a in 0..self.actions.len() {
                self.run_action(a, iter)?;
            }
            self.metrics.iterations.inc();
            self.metrics
                .iteration_us
                .record_duration_us(iter_started.elapsed());
            // Self-updating parameters advance at the end of the iteration.
            for p in &mut self.params {
                match &mut p.value {
                    ParamValue::Step(s) => s.advance(),
                    ParamValue::Subset {
                        offset,
                        stride,
                        reset_period,
                        ..
                    } => {
                        if *reset_period > 0 && (iter + 1).is_multiple_of(*reset_period) {
                            // Reset to the start of the window cycle.
                            *offset = offset
                                .wrapping_sub((*stride as u64).wrapping_mul(*reset_period - 1));
                        } else {
                            *offset = offset.wrapping_add(*stride as u64);
                        }
                    }
                    _ => {}
                }
            }
            self.iteration += 1;
        }
        Ok(())
    }

    /// §4.4.2 validation: compare a host memory resource against reference
    /// values with an absolute/relative tolerance, reporting mismatches.
    pub fn validate_f32(
        &self,
        mem: ResId,
        reference: &[f32],
        abs_tol: f32,
        rel_tol: f32,
    ) -> ValidationReport {
        let got = self.host_f32(mem);
        let n = got.len().min(reference.len());
        let mut worst_abs = 0.0f32;
        let mut worst_rel = 0.0f32;
        let mut mismatches = 0usize;
        let mut first_mismatch = None;
        for i in 0..n {
            let (g, r) = (got[i], reference[i]);
            let abs = (g - r).abs();
            let rel = abs / r.abs().max(1e-30);
            worst_abs = worst_abs.max(abs);
            worst_rel = worst_rel.max(rel);
            if abs > abs_tol && rel > rel_tol {
                mismatches += 1;
                if first_mismatch.is_none() {
                    first_mismatch = Some(i);
                }
            }
        }
        let report = ValidationReport {
            compared: n,
            mismatches,
            first_mismatch,
            worst_abs,
            worst_rel,
            length_mismatch: got.len() != reference.len(),
        };
        self.log.line_with(|| {
            format!(
                "  [validate] {} elements, {} mismatches (worst abs {:.3e}, rel {:.3e})",
                report.compared, report.mismatches, report.worst_abs, report.worst_rel
            )
        });
        report
    }

    /// Total simulated GPU time accumulated so far (kernels + transfers).
    pub fn total_sim_ms(&self) -> f64 {
        self.timings.iter().map(|t| t.sim_ms).sum()
    }

    pub fn timings(&self) -> &[OpTiming] {
        &self.timings
    }

    pub fn clear_timings(&mut self) {
        self.timings.clear();
        self.reports.clear();
    }

    fn run_action(&mut self, idx: usize, iter: u64) -> Result<(), PfError> {
        // Determine schedule without holding a borrow on the action.
        let (fires, label) = match &self.actions[idx] {
            Action::Copy {
                schedule, label, ..
            }
            | Action::Exec {
                schedule, label, ..
            }
            | Action::User {
                schedule, label, ..
            }
            | Action::FileOut {
                schedule, label, ..
            }
            | Action::FileIn {
                schedule, label, ..
            } => (self.schedule_fires(*schedule, iter)?, label.clone()),
        };
        if !fires {
            return Ok(());
        }
        match &mut self.actions[idx] {
            Action::User { f, .. } => {
                let mut func = std::mem::replace(f, Box::new(|_, _| Ok(())));
                let r = func(&mut self.state, iter);
                // Restore the original closure.
                if let Action::User { f, .. } = &mut self.actions[idx] {
                    *f = func;
                }
                r?;
                self.log.line_with(|| format!("  [user] {label}"));
                Ok(())
            }
            _ => self.run_simple_action(idx, iter, &label),
        }
    }

    fn run_simple_action(&mut self, idx: usize, iter: u64, label: &str) -> Result<(), PfError> {
        match &self.actions[idx] {
            Action::Copy { src, dst, .. } => {
                let (src, dst) = (*src, *dst);
                let ms = self.do_copy(src, dst)?;
                self.log
                    .line_with(|| format!("  [copy] {label}: {ms:.6} ms"));
                self.timings.push(OpTiming {
                    iteration: iter,
                    label: label.to_string(),
                    sim_ms: ms,
                });
                Ok(())
            }
            Action::Exec {
                kernel,
                grid,
                block,
                dynamic_shared,
                args,
                ..
            } => {
                // Re-bind every texture resource (their backing memory —
                // e.g. a moving subset — may have advanced).
                let bindings: Vec<(String, u64)> = self
                    .resources
                    .iter()
                    .filter_map(|r| match r {
                        Resource::Texture { name, mem, .. } => {
                            Some(self.try_device_addr(*mem).map(|a| (name.clone(), a)))
                        }
                        _ => None,
                    })
                    .collect::<Result<_, _>>()?;
                for (name, addr) in bindings {
                    self.state.bind_texture(&name, addr);
                }
                let kernel = *kernel;
                let exec_args = args.clone();
                let grid = self.triplet_value(*grid)?;
                let block = self.triplet_value(*block)?;
                let dyn_sh = match dynamic_shared {
                    Some(p) => self.try_int_value(*p)? as u32,
                    None => 0,
                };
                let kargs: Vec<KArg> = exec_args
                    .iter()
                    .map(|a| self.resolve_arg(a))
                    .collect::<Result<_, _>>()?;
                let Resource::Kernel { module, name } = &self.resources[kernel.0] else {
                    return Err(PfError::Launch(format!("{label}: not a kernel resource")));
                };
                let module_idx = module.0;
                let name = name.clone();
                let Resource::Module {
                    source,
                    binary: Some(bin),
                    bound,
                    ..
                } = &self.resources[module_idx]
                else {
                    return Err(PfError::Launch(format!("{label}: module not compiled")));
                };
                let source = source.clone();
                let bin = bin.clone();
                // Identify the launch to the fault plan (and to integrity
                // records) by the served variant's canonical cache key.
                let bound = bound.clone().unwrap_or(BoundKey {
                    fingerprint: String::new(),
                    lo64: 0,
                    defines: String::new(),
                });
                let dims = LaunchDims {
                    grid: (grid[0], grid[1], grid[2]),
                    block: (block[0], block[1], block[2]),
                    dynamic_shared: dyn_sh,
                };
                // Integrity checking compares output bytes, so it needs
                // every block functionally executed.
                let integrity = self.integrity.filter(|_| self.launch_options.functional);
                let pre = match integrity {
                    Some(_) => {
                        let bufs = self.mem_arg_buffers(&exec_args)?;
                        let snap = self.read_bufs(&bufs)?;
                        Some((bufs, snap))
                    }
                    None => None,
                };
                let mut report = self.launch_with_retry(
                    &bin,
                    &name,
                    dims,
                    &kargs,
                    bound.lo64,
                    &bound.defines,
                    label,
                )?;
                if let (Some(cfg), Some((bufs, pre))) = (integrity, pre) {
                    report = self.check_integrity(
                        cfg, iter, label, module_idx, &name, &source, &bin, &bound, dims, &kargs,
                        &bufs, &pre, report,
                    )?;
                }
                self.log.line_with(|| {
                    format!(
                        "  [exec] {label}: {} grid=({},{},{}) block=({},{},{}) {:.6} ms, {} regs, occ {:.2}",
                        name,
                        grid[0],
                        grid[1],
                        grid[2],
                        block[0],
                        block[1],
                        block[2],
                        report.time_ms,
                        report.regs_per_thread,
                        report.occupancy.occupancy,
                    )
                });
                self.timings.push(OpTiming {
                    iteration: iter,
                    label: label.to_string(),
                    sim_ms: report.time_ms,
                });
                self.reports.push(report);
                Ok(())
            }
            Action::FileOut { mem, path, .. } => {
                let (mem, path) = (*mem, path.clone());
                let bytes = match &self.resources[mem.0] {
                    Resource::HostMem { data, .. } => data.clone(),
                    Resource::GlobalMem { addr, bytes, .. } => self
                        .state
                        .global
                        .read_bytes(
                            addr.ok_or_else(|| PfError::Spec("unallocated".into()))?,
                            *bytes,
                        )?
                        .to_vec(),
                    _ => {
                        return Err(PfError::Spec(
                            "file output needs host or global memory".into(),
                        ))
                    }
                };
                std::fs::write(&path, bytes).map_err(PfError::Io)?;
                self.log
                    .line_with(|| format!("  [file] {label}: wrote {}", path.display()));
                Ok(())
            }
            Action::FileIn { mem, path, .. } => {
                let (mem, path) = (*mem, path.clone());
                let bytes = std::fs::read(&path).map_err(PfError::Io)?;
                match &mut self.resources[mem.0] {
                    Resource::HostMem { data, .. } => {
                        let n = bytes.len().min(data.len());
                        data[..n].copy_from_slice(&bytes[..n]);
                    }
                    Resource::GlobalMem {
                        addr, bytes: cap, ..
                    } => {
                        let a = addr.ok_or_else(|| PfError::Spec("unallocated".into()))?;
                        let n = (bytes.len() as u64).min(*cap);
                        let a2 = a;
                        let slice = bytes[..n as usize].to_vec();
                        self.state.global.write_bytes(a2, &slice)?;
                    }
                    _ => {
                        return Err(PfError::Spec(
                            "file input needs host or global memory".into(),
                        ))
                    }
                }
                self.log
                    .line_with(|| format!("  [file] {label}: read {}", path.display()));
                Ok(())
            }
            Action::User { .. } => unreachable!("handled by run_action"),
        }
    }

    fn resolve_arg(&self, a: &Arg) -> Result<KArg, PfError> {
        Ok(match a {
            Arg::Param(p) => match &self.params[p.0].value {
                ParamValue::Int(v) => KArg::I32(*v as i32),
                ParamValue::Bool(b) => KArg::I32(i64::from(*b) as i32),
                ParamValue::Float(v) => KArg::F32(*v as f32),
                ParamValue::Ptr(v) => KArg::Ptr(*v),
                ParamValue::Step(s) => KArg::I32(s.current as i32),
                v => {
                    return Err(PfError::Spec(format!(
                        "parameter {} ({v:?}) cannot be a kernel argument",
                        self.params[p.0].name
                    )))
                }
            },
            Arg::Mem(r) => KArg::Ptr(self.try_device_addr(*r)?),
        })
    }

    /// `(addr, bytes)` of every device-memory argument of an exec — the
    /// buffers integrity checking snapshots, checksums, and compares.
    /// Kernels can only write through the pointers they receive, so the
    /// `Arg::Mem` set covers the execution's entire write set.
    fn mem_arg_buffers(&self, args: &[Arg]) -> Result<Vec<(u64, u64)>, PfError> {
        let mut bufs = Vec::new();
        for a in args {
            let Arg::Mem(r) = a else { continue };
            bufs.push((self.try_device_addr(*r)?, self.mem_bytes(*r)?));
        }
        Ok(bufs)
    }

    /// Byte length of a device-memory resource (full buffer, or the
    /// current window of a subset).
    fn mem_bytes(&self, id: ResId) -> Result<u64, PfError> {
        match &self.resources[id.0] {
            Resource::GlobalMem { bytes, .. } => Ok(*bytes),
            Resource::Subset { of, subset } => {
                let elem = match &self.resources[of.0] {
                    Resource::GlobalMem { extent, .. } => self.extent_elem(*extent)?,
                    _ => {
                        return Err(PfError::Bind(
                            "subset of non-global memory has no device buffer".to_string(),
                        ))
                    }
                };
                match &self.params[subset.0].value {
                    ParamValue::Subset { len, .. } => Ok(len * elem as u64),
                    _ => Err(PfError::Bind(
                        "subset resource bound to non-subset parameter".to_string(),
                    )),
                }
            }
            _ => Err(PfError::Bind("argument has no device buffer".to_string())),
        }
    }

    fn read_bufs(&self, bufs: &[(u64, u64)]) -> Result<Vec<Vec<u8>>, PfError> {
        bufs.iter()
            .map(|&(a, n)| Ok(self.state.global.read_bytes(a, n)?.to_vec()))
            .collect()
    }

    fn write_bufs(&mut self, bufs: &[(u64, u64)], data: &[Vec<u8>]) -> Result<(), PfError> {
        for (&(a, _), d) in bufs.iter().zip(data) {
            self.state.global.write_bytes(a, d)?;
        }
        Ok(())
    }

    /// One kernel launch with the transient-fault retry loop, identified
    /// to an active fault plan by the served variant's cache key.
    /// Transient device faults (injected watchdog timeouts, OOM, ECC)
    /// fire before any device state changes, so a retry is safe; genuine
    /// simulation traps are deterministic and fail fast. Does not touch
    /// `reports`/`timings` — the caller decides which launch represents
    /// the action.
    #[allow(clippy::too_many_arguments)]
    fn launch_with_retry(
        &mut self,
        bin: &Arc<Binary>,
        kernel: &str,
        dims: LaunchDims,
        kargs: &[KArg],
        key: u64,
        defines: &str,
        label: &str,
    ) -> Result<LaunchReport, PfError> {
        let mut attempt = 0u32;
        loop {
            match launch_keyed(
                &mut self.state,
                &bin.module,
                kernel,
                dims,
                kargs,
                self.launch_options,
                key,
                defines,
            ) {
                Ok(r) => return Ok(r),
                Err(e) if e.is_transient() && attempt < self.launch_retries => {
                    attempt += 1;
                    self.metrics.launch_retries.inc();
                    self.log.line_with(|| {
                        format!(
                            "  [retry] {label}: transient device fault ({e}); \
                             attempt {attempt}"
                        )
                    });
                }
                Err(e) => return Err(PfError::Sim(e)),
            }
        }
    }

    /// Post-launch output-integrity check for one `Exec` firing: observe
    /// the output checksum, witness with the generic binary when due (or
    /// when a pinned golden checksum mismatches), adjudicate any
    /// divergence by N-of-M re-execution voting, quarantine a corrupt
    /// variant, and re-execute so the device holds verified bytes when
    /// this returns. Returns the launch report that ultimately produced
    /// the surviving output.
    #[allow(clippy::too_many_arguments)]
    fn check_integrity(
        &mut self,
        cfg: IntegrityConfig,
        iter: u64,
        label: &str,
        module_idx: usize,
        kernel: &str,
        source: &str,
        bin: &Arc<Binary>,
        bound: &BoundKey,
        dims: LaunchDims,
        kargs: &[KArg],
        bufs: &[(u64, u64)],
        pre: &[Vec<u8>],
        report: LaunchReport,
    ) -> Result<LaunchReport, PfError> {
        self.metrics.integrity_checks.inc();
        self.integrity_stats.checks += 1;
        self.integrity_seq += 1;
        let post = self.read_bufs(bufs)?;
        let checksum = checksum_hex(&post);
        let golden_mismatch = self
            .golden
            .get(label)
            .is_some_and(|pinned| *pinned != checksum);
        self.observed_checksums
            .insert(label.to_string(), checksum.clone());
        let witness_due =
            cfg.witness_period > 0 && self.integrity_seq.is_multiple_of(cfg.witness_period);
        if !witness_due && !golden_mismatch {
            return Ok(report);
        }
        // Witness: re-run the generic (define-free) binary — compiled
        // from the same source, reading its runtime arguments — on the
        // restored inputs. Compile before touching device state so an
        // unavailable witness leaves the original output in place.
        let generic = match self.compiler.compile(source, Defines::new()) {
            Ok(g) => g,
            Err(e) => {
                self.log.line_with(|| {
                    format!("  [integrity] {label}: witness unavailable (generic compile: {e})")
                });
                return Ok(report);
            }
        };
        let gkey = self.variant_key(source, &generic.defines);
        self.metrics.integrity_witness.inc();
        self.integrity_stats.witness_launches += 1;
        self.write_bufs(bufs, pre)?;
        self.launch_with_retry(
            &generic,
            kernel,
            dims,
            kargs,
            gkey.lo64,
            &gkey.defines,
            label,
        )?;
        let witness = self.read_bufs(bufs)?;
        if witness == post {
            if golden_mismatch {
                // The computation is self-consistent across two distinct
                // binaries; the pinned expectation is stale for this
                // input. Surface it, but do not convict anything.
                self.log.line_with(|| {
                    format!(
                        "  [integrity] {label}: pinned checksum mismatch but witness \
                         agrees (observed {checksum}); pin is stale for this input"
                    )
                });
            }
            // Device state already equals the verified output.
            return Ok(report);
        }
        // Divergence: either the original output was corrupted in flight
        // or the specialized binary computes wrong bytes. Vote: restore
        // the inputs and re-run the *same* specialized binary; runs that
        // agree with the witness exonerate the binary.
        self.metrics.integrity_violations.inc();
        self.integrity_stats.violations += 1;
        let kind = if golden_mismatch {
            ViolationKind::GoldenMismatch
        } else {
            ViolationKind::WitnessMismatch
        };
        let mut votes_agree = 0u32;
        for _ in 0..cfg.vote_m {
            self.write_bufs(bufs, pre)?;
            self.launch_with_retry(bin, kernel, dims, kargs, bound.lo64, &bound.defines, label)?;
            self.metrics.integrity_reexecs.inc();
            self.integrity_stats.reexecutions += 1;
            if self.read_bufs(bufs)? == witness {
                votes_agree += 1;
            }
        }
        let verdict = if votes_agree >= cfg.vote_n {
            Verdict::TransientFlip
        } else {
            Verdict::CorruptBinary
        };
        match verdict {
            Verdict::TransientFlip => {
                self.metrics.integrity_transient.inc();
                self.integrity_stats.transient_flips += 1;
            }
            Verdict::CorruptBinary => {
                // Quarantine the variant through the degradation ladder:
                // the generic binary takes over, the module is marked
                // degraded (the next refresh retries the specialization),
                // and the degradation record names the convicted variant.
                self.metrics.integrity_corrupt.inc();
                self.integrity_stats.corrupt_binaries += 1;
                self.metrics.fallback_generic.inc();
                let Resource::Module {
                    binary, degraded, ..
                } = &mut self.resources[module_idx]
                else {
                    unreachable!()
                };
                *binary = Some(generic.clone());
                *degraded = true;
                self.stamp_bound_key(module_idx);
                self.record_tier_transition(module_idx, Tier::Generic);
                self.degradations.push(Degradation {
                    module: module_idx,
                    fallback: FallbackKind::Generic,
                    error: format!(
                        "integrity violation: specialized output diverges from generic \
                         witness ({votes_agree}/{} votes agreed with witness)",
                        cfg.vote_m
                    ),
                    key: bound.fingerprint.clone(),
                    defines: bound.defines.clone(),
                });
            }
        }
        // Recovery: restore the inputs once more and re-execute with the
        // binary the verdict left in service (the exonerated specialized
        // variant, or the generic that replaced a convicted one), so
        // downstream actions only ever see verified bytes.
        self.write_bufs(bufs, pre)?;
        let (rbin, rkey) = match verdict {
            Verdict::TransientFlip => (bin.clone(), bound.clone()),
            Verdict::CorruptBinary => (generic, gkey),
        };
        let final_report =
            self.launch_with_retry(&rbin, kernel, dims, kargs, rkey.lo64, &rkey.defines, label)?;
        self.metrics.integrity_reexecs.inc();
        self.integrity_stats.reexecutions += 1;
        let final_out = self.read_bufs(bufs)?;
        let recovered = final_out == witness;
        if recovered {
            self.metrics.integrity_recovered.inc();
            self.integrity_stats.recovered += 1;
        }
        self.observed_checksums
            .insert(label.to_string(), checksum_hex(&final_out));
        let violation = IntegrityViolation {
            iteration: iter,
            label: label.to_string(),
            module: module_idx,
            kernel: kernel.to_string(),
            key: bound.fingerprint.clone(),
            defines: bound.defines.clone(),
            kind,
            verdict,
            votes_agree,
            votes_total: cfg.vote_m,
            recovered,
        };
        self.log.line_with(|| {
            format!(
                "  [integrity] {label}: {:?} on variant {} [{}] -> {:?} \
                 ({votes_agree}/{} votes agreed with witness), recovered={recovered}",
                violation.kind, violation.key, violation.defines, violation.verdict, cfg.vote_m
            )
        });
        self.violations.push(violation);
        Ok(final_report)
    }

    /// Copy between two memory references; returns a modeled transfer time
    /// (PCIe-class for host↔device, device bandwidth for device↔device).
    fn do_copy(&mut self, src: ResId, dst: ResId) -> Result<f64, PfError> {
        // Resolve (kind, addr-or-host) for both ends.
        enum End {
            Host(ResId),
            Dev(u64),
            Const(ResId, String),
        }
        let classify = |p: &Pipeline, r: ResId| -> Result<(End, u64), PfError> {
            match &p.resources[r.0] {
                Resource::HostMem { data, .. } => Ok((End::Host(r), data.len() as u64)),
                Resource::GlobalMem { addr, bytes, .. } => Ok((
                    End::Dev(addr.ok_or_else(|| PfError::Spec("unallocated global".into()))?),
                    *bytes,
                )),
                Resource::Subset { of, subset } => {
                    let ParamValue::Subset { len, .. } = &p.params[subset.0].value else {
                        return Err(PfError::Spec("bad subset parameter".into()));
                    };
                    match &p.resources[of.0] {
                        Resource::GlobalMem { extent, .. } => {
                            let elem = p.extent_elem(*extent)? as u64;
                            Ok((End::Dev(p.try_device_addr(r)?), len * elem))
                        }
                        Resource::HostMem { .. } => Err(PfError::Spec(
                            "host subsets not supported; copy the full buffer".into(),
                        )),
                        _ => Err(PfError::Spec("subset of unsupported memory".into())),
                    }
                }
                Resource::ConstMem { module, name } => Ok((End::Const(*module, name.clone()), 0)),
                _ => Err(PfError::Spec("not a memory resource".into())),
            }
        };
        let (se, sb) = classify(self, src)?;
        let (de, db) = classify(self, dst)?;
        let n = match (&se, &de) {
            (End::Const(..), _) => 0,
            (_, End::Const(..)) => sb,
            _ => sb.min(db),
        };
        match (se, de) {
            (End::Host(h), End::Dev(a)) => {
                let data = match &self.resources[h.0] {
                    Resource::HostMem { data, .. } => data[..n as usize].to_vec(),
                    _ => unreachable!(),
                };
                self.state.global.write_bytes(a, &data)?;
            }
            (End::Dev(a), End::Host(h)) => {
                let data = self.state.global.read_bytes(a, n)?.to_vec();
                match &mut self.resources[h.0] {
                    Resource::HostMem { data: d, .. } => d[..n as usize].copy_from_slice(&data),
                    _ => unreachable!(),
                }
            }
            (End::Dev(a), End::Dev(b)) => {
                let data = self.state.global.read_bytes(a, n)?.to_vec();
                self.state.global.write_bytes(b, &data)?;
            }
            (End::Host(s), End::Host(d)) => {
                let data = self.host_data(s)[..n as usize].to_vec();
                match &mut self.resources[d.0] {
                    Resource::HostMem { data: dd, .. } => dd[..n as usize].copy_from_slice(&data),
                    _ => unreachable!(),
                }
            }
            (End::Host(h), End::Const(m, name)) => {
                let data = match &self.resources[h.0] {
                    Resource::HostMem { data, .. } => data.clone(),
                    _ => unreachable!(),
                };
                let Resource::Module {
                    binary: Some(bin), ..
                } = &self.resources[m.0]
                else {
                    return Err(PfError::Spec("module not compiled".into()));
                };
                let module = bin.module.clone();
                self.state.set_const(&module, &name, &data)?;
            }
            _ => return Err(PfError::Spec("unsupported copy direction".into())),
        }
        // Transfer-time model: host↔device over PCIe-gen2 (~6 GB/s
        // effective) + fixed launch overhead; device↔device at memory BW.
        let gbps = 6.0e9;
        Ok(n as f64 / gbps * 1e3 + 0.005)
    }
}

/// FNV-1a-128 over an execution's device-memory buffers (count- and
/// length-prefixed, via [`ks_core::StableHasher`]), rendered in the
/// same 32-hex form `ks-store` fingerprints use. This is the checksum
/// [`Pipeline::last_checksum`] reports and
/// [`Pipeline::expect_checksum`] pins.
fn checksum_hex(bufs: &[Vec<u8>]) -> String {
    let mut h = ks_core::StableHasher::new();
    h.str("gpu-pf.integrity.v1");
    h.usize(bufs.len());
    for b in bufs {
        h.bytes(b);
    }
    h.finish().to_hex()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_sim::DeviceConfig;

    const SCALE_SRC: &str = r#"
        #ifndef FACTOR
        #define FACTOR factor
        #endif
        __global__ void scale(float* in, float* out, int factor, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { out[i] = in[i] * (float)FACTOR; }
        }
    "#;

    fn pipeline() -> Pipeline {
        let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
        Pipeline::new(c, 32 << 20)
    }

    #[test]
    fn full_pipeline_roundtrip() {
        let mut p = pipeline();
        let n = 256u32;
        let factor = p.int_param("FACTOR", 3);
        let ext = p.extent_param("buf", [n, 1, 1], 4);
        let host_in = p.host_memory(ext);
        let host_out = p.host_memory(ext);
        let dev_in = p.global_memory(ext);
        let dev_out = p.global_memory(ext);
        let m = p.module(SCALE_SRC, vec![("FACTOR", MacroBinding::Param(factor))]);
        let k = p.kernel(m, "scale");
        let grid = p.triplet_param("grid", [2, 1, 1]);
        let blk = p.triplet_param("block", [128, 1, 1]);
        let every = p.schedule_param("every", 1, 0);
        let nparam = p.int_param("n", n as i64);
        p.copy("h2d", host_in, dev_in, every);
        p.exec(
            "scale",
            k,
            grid,
            blk,
            None,
            vec![
                Arg::Mem(dev_in),
                Arg::Mem(dev_out),
                Arg::Param(factor),
                Arg::Param(nparam),
            ],
            every,
        );
        p.copy("d2h", dev_out, host_out, every);

        let vals: Vec<f32> = (0..n).map(|i| i as f32).collect();
        p.refresh().unwrap();
        p.set_host_f32(host_in, &vals);
        p.run(1).unwrap();
        let out = p.host_f32(host_out);
        for i in 0..n as usize {
            assert_eq!(out[i], vals[i] * 3.0);
        }
        assert!(p.total_sim_ms() > 0.0);
        assert_eq!(p.reports.len(), 1);

        // Change the specialization parameter: refresh recompiles, results
        // change accordingly.
        p.set_int(factor, 5);
        p.refresh().unwrap();
        p.run(1).unwrap();
        let out = p.host_f32(host_out);
        assert_eq!(out[10], 50.0);
    }

    #[test]
    fn refresh_only_recompiles_dirty_modules() {
        let mut p = pipeline();
        let f1 = p.int_param("FACTOR", 2);
        let _m1 = p.module(SCALE_SRC, vec![("FACTOR", MacroBinding::Param(f1))]);
        p.refresh().unwrap();
        let misses_before = p.compiler.cache_stats().misses;
        // Nothing dirty: refresh again, no compile.
        p.refresh().unwrap();
        assert_eq!(p.compiler.cache_stats().misses, misses_before);
        // Dirty param: recompiles (one miss).
        p.set_int(f1, 7);
        p.refresh().unwrap();
        assert_eq!(p.compiler.cache_stats().misses, misses_before + 1);
        // Back to the old value: cache hit, not a recompile.
        p.set_int(f1, 2);
        let hits_before = p.compiler.cache_stats().hits;
        p.refresh().unwrap();
        assert_eq!(p.compiler.cache_stats().misses, misses_before + 1);
        assert_eq!(p.compiler.cache_stats().hits, hits_before + 1);
    }

    #[test]
    fn schedules_control_firing() {
        let mut p = pipeline();
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c2 = counter.clone();
        let every_third = p.schedule_param("third", 3, 1);
        p.user_fn(
            "count",
            move |_, _| {
                c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Ok(())
            },
            every_third,
        );
        p.refresh().unwrap();
        p.run(10).unwrap();
        // Fires at iterations 1, 4, 7 → 3 times... and 10 iterations cover
        // iters 0..9, so 1,4,7 = 3 firings.
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    fn run_before_refresh_is_an_error() {
        let mut p = pipeline();
        assert!(matches!(p.run(1), Err(PfError::Spec(_))));
    }

    #[test]
    fn step_param_advances_each_iteration() {
        let mut p = pipeline();
        let s = p.step_param("frame", 0, 2, 100);
        let every = p.schedule_param("e", 1, 0);
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        // Capture the step value via a user function would need param
        // access; instead check the value between runs.
        p.user_fn("noop", |_, _| Ok(()), every);
        p.refresh().unwrap();
        for _ in 0..3 {
            seen2.lock().push(p.int_value(s));
            p.run(1).unwrap();
        }
        assert_eq!(*seen.lock(), vec![0, 2, 4]);
    }

    #[test]
    fn subset_window_moves_over_frames() {
        // Stream 3 "frames" stored contiguously on the device through a
        // moving subset window.
        let mut p = pipeline();
        let frame = 64u32;
        let all_ext = p.extent_param("all", [frame * 3, 1, 1], 4);
        let one_ext = p.extent_param("one", [frame, 1, 1], 4);
        let dev_all = p.global_memory(all_ext);
        let host_all = p.host_memory(all_ext);
        let host_one = p.host_memory(one_ext);
        let win = p.subset_param("w", 0, frame as u64, frame as i64, 0);
        let dev_win = p.subset(dev_all, win);
        let once = p.schedule_param("once", 1000, 0);
        let every = p.schedule_param("every", 1, 0);
        p.copy("load", host_all, dev_all, once);
        p.copy("frame", dev_win, host_one, every);
        p.refresh().unwrap();
        let data: Vec<f32> = (0..frame * 3).map(|i| i as f32).collect();
        p.set_host_f32(host_all, &data);
        p.run(1).unwrap();
        assert_eq!(p.host_f32(host_one)[0], 0.0);
        p.run(1).unwrap();
        assert_eq!(p.host_f32(host_one)[0], frame as f32);
        p.run(1).unwrap();
        assert_eq!(p.host_f32(host_one)[0], (frame * 2) as f32);
    }

    /// Table 4.2's texture resource: a kernel reads its input through a
    /// texture reference bound to a moving subset, streaming two frames.
    #[test]
    fn texture_resource_streams_through_subset() {
        const SRC: &str = r#"
            texture<float> texIn;
            __global__ void copy_tex(float* out, int n) {
                int i = (int)(blockIdx.x * blockDim.x + threadIdx.x);
                if (i < n) { out[i] = tex1Dfetch(texIn, i) * 2.0f; }
            }
        "#;
        let mut p = pipeline();
        let frame = 64u32;
        let all_ext = p.extent_param("all", [frame * 2, 1, 1], 4);
        let one_ext = p.extent_param("one", [frame, 1, 1], 4);
        let host_all = p.host_memory(all_ext);
        let dev_all = p.global_memory(all_ext);
        let dev_out = p.global_memory(one_ext);
        let host_out = p.host_memory(one_ext);
        let win = p.subset_param("w", 0, frame as u64, frame as i64, 0);
        let dev_win = p.subset(dev_all, win);
        let m = p.module(SRC, vec![]);
        let k = p.kernel(m, "copy_tex");
        let _tex = p.texture(m, "texIn", dev_win);
        let once = p.schedule_param("once", 1 << 30, 0);
        let every = p.schedule_param("every", 1, 0);
        let grid = p.triplet_param("g", [1, 1, 1]);
        let blk = p.triplet_param("b", [64, 1, 1]);
        let n = p.int_param("n", frame as i64);
        p.copy("load", host_all, dev_all, once);
        p.exec(
            "copy_tex",
            k,
            grid,
            blk,
            None,
            vec![Arg::Mem(dev_out), Arg::Param(n)],
            every,
        );
        p.copy("out", dev_out, host_out, every);
        p.refresh().unwrap();
        let data: Vec<f32> = (0..frame * 2).map(|i| i as f32).collect();
        p.set_host_f32(host_all, &data);
        p.run(1).unwrap();
        assert_eq!(p.host_f32(host_out)[0], 0.0);
        assert_eq!(p.host_f32(host_out)[5], 10.0);
        // Second iteration: the subset (and therefore the texture binding)
        // advanced to frame 2.
        p.run(1).unwrap();
        assert_eq!(p.host_f32(host_out)[0], frame as f32 * 2.0);
    }

    #[test]
    fn constant_memory_copy() {
        let src = r#"
            __constant__ float coef[4];
            __global__ void apply(float* out) {
                out[threadIdx.x] = coef[threadIdx.x & 3u];
            }
        "#;
        let mut p = pipeline();
        let m = p.module(src, vec![]);
        let k = p.kernel(m, "apply");
        let cmem = p.constant_memory(m, "coef");
        let ext4 = p.extent_param("c", [4, 1, 1], 4);
        let ext8 = p.extent_param("o", [8, 1, 1], 4);
        let host_c = p.host_memory(ext4);
        let dev_o = p.global_memory(ext8);
        let host_o = p.host_memory(ext8);
        let grid = p.triplet_param("g", [1, 1, 1]);
        let blk = p.triplet_param("b", [8, 1, 1]);
        let every = p.schedule_param("e", 1, 0);
        p.copy("coef", host_c, cmem, every);
        p.exec("apply", k, grid, blk, None, vec![Arg::Mem(dev_o)], every);
        p.copy("out", dev_o, host_o, every);
        p.refresh().unwrap();
        p.set_host_f32(host_c, &[9.0, 8.0, 7.0, 6.0]);
        p.run(1).unwrap();
        assert_eq!(
            p.host_f32(host_o),
            vec![9.0, 8.0, 7.0, 6.0, 9.0, 8.0, 7.0, 6.0]
        );
    }

    #[test]
    fn file_io_actions_roundtrip() {
        let dir = std::env::temp_dir().join("gpu-pf-fileio");
        let _ = std::fs::create_dir_all(&dir);
        let path_in = dir.join("in.bin");
        let path_out = dir.join("out.bin");
        let vals = [4.0f32, 5.0, 6.0, 7.0];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&path_in, &bytes).unwrap();

        let mut p = pipeline();
        let ext = p.extent_param("b", [4, 1, 1], 4);
        let host = p.host_memory(ext);
        let dev = p.global_memory(ext);
        let host2 = p.host_memory(ext);
        let every = p.schedule_param("e", 1, 0);
        p.file_in("load", &path_in, host, every);
        p.copy("h2d", host, dev, every);
        p.copy("d2h", dev, host2, every);
        p.file_out("save", host2, &path_out, every);
        p.refresh().unwrap();
        p.run(1).unwrap();
        assert_eq!(p.host_f32(host2), vals.to_vec());
        assert_eq!(std::fs::read(&path_out).unwrap(), bytes);
    }

    /// §4 footnote 1: statically compiled pointer values. A global
    /// allocation's device address is bound to a macro; the specialized
    /// kernel stores through the absolute address, no pointer argument.
    #[test]
    fn pointer_specialization_through_pipeline() {
        const SRC: &str = r#"
            #ifndef PTR_OUT
            #define PTR_OUT out
            #endif
            __global__ void mark(float* out) {
                float* p = (float*)PTR_OUT;
                p[threadIdx.x] = 42.0f + (float)threadIdx.x;
            }
        "#;
        let mut p = pipeline();
        let ext = p.extent_param("o", [16, 1, 1], 4);
        let dev = p.global_memory(ext);
        let host = p.host_memory(ext);
        // Two-phase: allocate first, then bind the address and build the
        // module in a second refresh (the paper compiles once addresses
        // are known).
        p.refresh().unwrap();
        let addr = p.device_addr(dev);
        let ptr = p.pointer_param("PTR_OUT", addr);
        let m = p.module(SRC, vec![("PTR_OUT", MacroBinding::Param(ptr))]);
        let k = p.kernel(m, "mark");
        let every = p.schedule_param("e", 1, 0);
        let grid = p.triplet_param("g", [1, 1, 1]);
        let blk = p.triplet_param("b", [16, 1, 1]);
        // The pointer argument still exists in the signature but is unused
        // after specialization.
        p.exec("mark", k, grid, blk, None, vec![Arg::Mem(dev)], every);
        p.copy("d2h", dev, host, every);
        p.refresh().unwrap();
        p.run(1).unwrap();
        let out = p.host_f32(host);
        for (t, v) in out.iter().enumerate() {
            assert_eq!(*v, 42.0 + t as f32);
        }
        // The compiled kernel contains the absolute address.
        let bin = p.kernel_binary(k);
        // The thread-index offset is register-computed; the allocation's
        // absolute device address is folded into the store displacement.
        assert!(
            bin.ptx.contains(&format!("+{addr}]")) || bin.ptx.contains(&format!("[{addr}")),
            "absolute store address expected in PTX:\n{}",
            bin.ptx
        );
    }

    #[test]
    fn validation_report_catches_mismatches() {
        let mut p = pipeline();
        let ext = p.extent_param("b", [4, 1, 1], 4);
        let host = p.host_memory(ext);
        p.refresh().unwrap();
        p.set_host_f32(host, &[1.0, 2.0, 3.0, 4.0]);
        let ok = p.validate_f32(host, &[1.0, 2.0, 3.0, 4.0], 1e-6, 1e-6);
        assert!(ok.passed());
        let bad = p.validate_f32(host, &[1.0, 2.5, 3.0, 4.0], 1e-6, 1e-6);
        assert!(!bad.passed());
        assert_eq!(bad.mismatches, 1);
        assert_eq!(bad.first_mismatch, Some(1));
        assert!((bad.worst_abs - 0.5).abs() < 1e-6);
        // Within tolerance passes.
        let tol = p.validate_f32(host, &[1.0, 2.5, 3.0, 4.0], 0.6, 0.0);
        assert!(tol.passed());
    }

    #[test]
    fn scalar_param_kinds_as_kernel_arguments() {
        const SRC: &str = r#"
            __global__ void mix(float* out, int i, float f, int b) {
                out[threadIdx.x] = (float)i + f + (float)b * 100.0f;
            }
        "#;
        let mut p = pipeline();
        let ext = p.extent_param("o", [8, 1, 1], 4);
        let dev = p.global_memory(ext);
        let host = p.host_memory(ext);
        let m = p.module(SRC, vec![]);
        let k = p.kernel(m, "mix");
        let every = p.schedule_param("e", 1, 0);
        let grid = p.triplet_param("g", [1, 1, 1]);
        let blk = p.triplet_param("b", [8, 1, 1]);
        let ai = p.int_param("i", 7);
        let af = p.float_param("f", 0.25);
        let ab = p.bool_param("flag", true);
        p.exec(
            "mix",
            k,
            grid,
            blk,
            None,
            vec![
                Arg::Mem(dev),
                Arg::Param(ai),
                Arg::Param(af),
                Arg::Param(ab),
            ],
            every,
        );
        p.copy("d2h", dev, host, every);
        p.refresh().unwrap();
        p.run(1).unwrap();
        assert!(p.host_f32(host).iter().all(|v| (*v - 107.25).abs() < 1e-5));
    }

    #[test]
    fn extent_change_reallocates_on_refresh() {
        let mut p = pipeline();
        let ext = p.extent_param("buf", [16, 1, 1], 4);
        let dev = p.global_memory(ext);
        p.refresh().unwrap();
        let a1 = p.device_addr(dev);
        // Growing the extent must produce a fresh (larger) allocation.
        p.set_extent(ext, [4096, 1, 1], 4);
        p.refresh().unwrap();
        let a2 = p.device_addr(dev);
        assert_ne!(a1, a2, "reallocation expected");
    }

    #[test]
    fn logger_produces_appendix_g_style_output() {
        let buf = Arc::new(parking_lot::Mutex::new(Vec::<u8>::new()));
        struct W(Arc<parking_lot::Mutex<Vec<u8>>>);
        impl std::io::Write for W {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut p = pipeline();
        p.set_logger(Box::new(W(buf.clone())));
        let f = p.int_param("FACTOR", 2);
        let _m = p.module(SCALE_SRC, vec![("FACTOR", MacroBinding::Param(f))]);
        p.refresh().unwrap();
        p.run(1).unwrap();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        assert!(text.contains("refresh"), "{text}");
        assert!(text.contains("-D FACTOR=2"), "{text}");
        assert!(text.contains("pipeline iteration 0"), "{text}");
    }

    #[test]
    fn refresh_logs_analysis_diagnostics() {
        let buf = Arc::new(parking_lot::Mutex::new(Vec::<u8>::new()));
        struct W(Arc<parking_lot::Mutex<Vec<u8>>>);
        impl std::io::Write for W {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // Column-major access: every warp load touches 32 segments, which
        // the analyzer flags as KSA005 (warn — the refresh still succeeds).
        let src = r#"
            __global__ void colmajor(float* a, float* out) {
                int t = (int)threadIdx.x;
                out[t] = a[t * 32];
            }
        "#;
        let cfg = ks_core::AnalysisConfig {
            block_dim: Some((64, 1, 1)),
            ..Default::default()
        };
        let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()).with_analysis(cfg));
        let mut p = Pipeline::new(c, 32 << 20);
        p.set_logger(Box::new(W(buf.clone())));
        let _m = p.module(src, vec![]);
        p.refresh().unwrap();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        assert!(
            text.contains("KSA005"),
            "diagnostic missing from log: {text}"
        );
    }

    #[test]
    fn subscriber_sink_counts_lines_and_disabled_makes_no_calls() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Counting(AtomicUsize);
        impl ks_trace::Subscriber for Counting {
            fn line(&self, _: &str) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let sink = Arc::new(Counting::default());
        let mut p = pipeline();
        p.set_subscriber(sink.clone());
        let f = p.int_param("FACTOR", 2);
        let _m = p.module(SCALE_SRC, vec![("FACTOR", MacroBinding::Param(f))]);
        p.refresh().unwrap();
        p.run(2).unwrap();
        let calls = sink.0.load(Ordering::SeqCst);
        assert!(
            calls >= 4,
            "expected refresh + iteration lines, got {calls}"
        );

        // A freshly-constructed pipeline's logger is disabled: running it
        // must not touch any sink (and `line_with` closures never run —
        // see log::tests::disabled_logger_never_runs_format_closures).
        let mut q = pipeline();
        assert!(!q.log.enabled());
        let f = q.int_param("FACTOR", 3);
        let _m = q.module(SCALE_SRC, vec![("FACTOR", MacroBinding::Param(f))]);
        q.refresh().unwrap();
        q.run(2).unwrap();
        assert_eq!(
            sink.0.load(Ordering::SeqCst),
            calls,
            "disabled pipeline must make zero sink calls"
        );
    }

    #[test]
    fn pipeline_publishes_iteration_and_refresh_counters() {
        let reg = ks_trace::registry();
        let before_it = reg.counter_value(ks_trace::names::PF_ITERATIONS);
        let before_rf = reg.counter_value(ks_trace::names::PF_REFRESHES);
        let mut p = pipeline();
        let every = p.schedule_param("e", 1, 0);
        p.user_fn("noop", |_, _| Ok(()), every);
        p.refresh().unwrap();
        p.run(3).unwrap();
        assert!(reg.counter_value(ks_trace::names::PF_ITERATIONS) >= before_it + 3);
        assert!(reg.counter_value(ks_trace::names::PF_REFRESHES) > before_rf);
    }

    #[test]
    fn refresh_logs_compile_metrics_and_cache_stats() {
        let buf = Arc::new(parking_lot::Mutex::new(Vec::<u8>::new()));
        struct W(Arc<parking_lot::Mutex<Vec<u8>>>);
        impl std::io::Write for W {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut p = pipeline();
        p.set_logger(Box::new(W(buf.clone())));
        let f = p.int_param("FACTOR", 2);
        let _m = p.module(SCALE_SRC, vec![("FACTOR", MacroBinding::Param(f))]);
        p.refresh().unwrap();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        // Per-phase compile metrics ride on the module compile line...
        assert!(text.contains("preproc"), "phase metrics missing: {text}");
        // ...and the refresh trailer summarizes the specialization cache.
        assert!(
            text.contains("refresh complete: cache"),
            "cache stats trailer missing: {text}"
        );
        assert!(text.contains("misses"), "{text}");

        // A second refresh with the same binding is a cache hit, visible
        // in the trailer's hit counter.
        p.set_int(f, 2);
        p.refresh().unwrap();
        let stats = p.compiler().cache_stats();
        assert!(stats.hits >= 1, "expected a re-refresh hit: {stats}");
    }

    #[test]
    fn refresh_trailer_names_the_store_and_warm_restart_skips_compiles() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("gpu-pf-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let buf = Arc::new(parking_lot::Mutex::new(Vec::<u8>::new()));
        struct W(Arc<parking_lot::Mutex<Vec<u8>>>);
        impl std::io::Write for W {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let run = |buf: &Arc<parking_lot::Mutex<Vec<u8>>>| {
            let c = Arc::new(
                Compiler::new(DeviceConfig::tesla_c1060())
                    .with_store(&dir)
                    .unwrap(),
            );
            let mut p = Pipeline::new(c, 32 << 20);
            p.set_logger(Box::new(W(buf.clone())));
            let f = p.int_param("FACTOR", 2);
            let _m = p.module(SCALE_SRC, vec![("FACTOR", MacroBinding::Param(f))]);
            p.refresh().unwrap();
            p.compiler().cache_stats()
        };

        // Cold process: compiles and publishes the record.
        let cold = run(&buf);
        assert_eq!((cold.misses, cold.disk_hits), (1, 0), "{cold}");
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        assert!(
            text.contains(&format!("store {}", dir.display())),
            "store trailer missing: {text}"
        );
        assert!(text.contains("disk-hits"), "{text}");

        // Warm restart: a fresh pipeline + compiler on the same store
        // directory binds the module without compiling.
        let warm = run(&buf);
        assert_eq!((warm.misses, warm.disk_hits), (0, 1), "{warm}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Builds the standard scale pipeline around a caller-supplied
    /// compiler (so fault plans and resilience policies apply).
    fn scale_pipeline(compiler: Arc<Compiler>) -> (Pipeline, ParamId, ResId, ResId) {
        let mut p = Pipeline::new(compiler, 32 << 20);
        let n = 64u32;
        let factor = p.int_param("FACTOR", 3);
        let ext = p.extent_param("buf", [n, 1, 1], 4);
        let host_in = p.host_memory(ext);
        let host_out = p.host_memory(ext);
        let dev_in = p.global_memory(ext);
        let dev_out = p.global_memory(ext);
        let m = p.module(SCALE_SRC, vec![("FACTOR", MacroBinding::Param(factor))]);
        let k = p.kernel(m, "scale");
        let grid = p.triplet_param("grid", [1, 1, 1]);
        let blk = p.triplet_param("block", [64, 1, 1]);
        let every = p.schedule_param("every", 1, 0);
        let nparam = p.int_param("n", n as i64);
        p.copy("h2d", host_in, dev_in, every);
        p.exec(
            "scale",
            k,
            grid,
            blk,
            None,
            vec![
                Arg::Mem(dev_in),
                Arg::Mem(dev_out),
                Arg::Param(factor),
                Arg::Param(nparam),
            ],
            every,
        );
        p.copy("d2h", dev_out, host_out, every);
        (p, factor, host_in, host_out)
    }

    #[test]
    fn specialized_compile_failure_degrades_to_generic_kernel() {
        // Every specialized (-D FACTOR=...) compile of this module fails
        // persistently; the define-free generic compile is untouched.
        let plan = Arc::new(
            ks_fault::FaultPlan::new(11).rule(
                ks_fault::FaultRule::new(
                    ks_fault::FaultKind::CompileError,
                    ks_fault::Target::Define("FACTOR".into()),
                )
                .persistent(),
            ),
        );
        let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()).with_fault_plan(plan));
        let (mut p, factor, host_in, host_out) = scale_pipeline(c);
        p.refresh().unwrap();
        let vals: Vec<f32> = (0..64).map(|i| i as f32).collect();
        p.set_host_f32(host_in, &vals);
        p.run(1).unwrap();
        // The generic kernel reads the runtime argument, so results are
        // still correct — degraded, not wrong.
        let out = p.host_f32(host_out);
        assert_eq!(out[10], 30.0);
        assert_eq!(p.degradations().len(), 1);
        assert_eq!(p.degradations()[0].fallback, FallbackKind::Generic);
        assert!(p.degradations()[0].error.contains("injected fault"));

        // A degraded module re-attempts its specialization on the next
        // refresh even though no parameter changed; the persistent fault
        // degrades it again (recorded as a second degradation).
        p.set_int(factor, 5);
        p.refresh().unwrap();
        p.run(1).unwrap();
        assert_eq!(p.host_f32(host_out)[10], 50.0);
        assert_eq!(p.degradations().len(), 2);
    }

    #[test]
    fn last_known_good_binary_retained_when_generic_also_fails() {
        // Both rules fire on their second matching occurrence for the
        // `scale` identity. Call sequence: refresh#1 specialized (occ 1
        // for both rules, clean), refresh#2 specialized (rule 1 occ 2 →
        // fail; rule 2 not consulted), refresh#2 generic fallback
        // (rule 1 occ 3, rule 2 occ 2 → fail) → last-known-good.
        let rule = || {
            ks_fault::FaultRule::new(
                ks_fault::FaultKind::CompileError,
                ks_fault::Target::Kernel("scale".into()),
            )
            .persistent()
            .nth(2)
        };
        let plan = Arc::new(ks_fault::FaultPlan::new(5).rule(rule()).rule(rule()));
        let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()).with_fault_plan(plan));
        let (mut p, factor, host_in, host_out) = scale_pipeline(c);
        p.refresh().unwrap();
        let vals: Vec<f32> = (0..64).map(|i| i as f32).collect();
        p.set_host_f32(host_in, &vals);
        p.run(1).unwrap();
        assert_eq!(p.host_f32(host_out)[10], 30.0);
        assert!(p.degradations().is_empty());

        // Re-specialize: both compiles fail, the stale FACTOR=3 binary
        // keeps the pipeline running (visibly stale results).
        p.set_int(factor, 5);
        p.refresh().unwrap();
        p.run(1).unwrap();
        assert_eq!(
            p.host_f32(host_out)[10],
            30.0,
            "last-known-good keeps the old specialization"
        );
        assert_eq!(p.degradations().len(), 1);
        assert_eq!(p.degradations()[0].fallback, FallbackKind::LastKnownGood);
    }

    /// Serializes every test that installs the process-wide fault plan
    /// (`ks_fault::install`/`clear`): concurrent installs would clobber
    /// each other mid-launch.
    static GLOBAL_PLAN: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn transient_launch_faults_retry_then_exhaust() {
        // The device-fault path is consulted in ks-sim via the
        // process-wide plan, so this test owns the global slot for its
        // duration; rules are pinned to kernel names no other test uses.
        let _guard = GLOBAL_PLAN.lock().unwrap_or_else(|e| e.into_inner());
        const RETRY_SRC: &str = r#"
            __global__ void retryk(float* in, float* out, int factor, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { out[i] = in[i] * (float)factor; }
            }
        "#;
        let plan = Arc::new(
            ks_fault::FaultPlan::new(2)
                .rule(
                    // One transient launch timeout on the first launch.
                    ks_fault::FaultRule::new(
                        ks_fault::FaultKind::LaunchTimeout,
                        ks_fault::Target::Kernel("retryk".into()),
                    )
                    .nth(1),
                )
                .rule(
                    // Every launch of the doomed kernel times out.
                    ks_fault::FaultRule::new(
                        ks_fault::FaultKind::LaunchTimeout,
                        ks_fault::Target::Kernel("doomedk".into()),
                    )
                    .persistent(),
                ),
        );
        ks_fault::install(plan);

        let build = |src: &str, kernel: &str| {
            let mut p = pipeline();
            let ext = p.extent_param("buf", [64, 1, 1], 4);
            let dev_in = p.global_memory(ext);
            let dev_out = p.global_memory(ext);
            let m = p.module(src, vec![]);
            let k = p.kernel(m, kernel);
            let grid = p.triplet_param("grid", [1, 1, 1]);
            let blk = p.triplet_param("block", [64, 1, 1]);
            let every = p.schedule_param("every", 1, 0);
            let f = p.int_param("factor", 2);
            let n = p.int_param("n", 64);
            p.exec(
                kernel,
                k,
                grid,
                blk,
                None,
                vec![
                    Arg::Mem(dev_in),
                    Arg::Mem(dev_out),
                    Arg::Param(f),
                    Arg::Param(n),
                ],
                every,
            );
            p
        };

        // Transient fault: absorbed by the launch retry, run succeeds.
        let mut p = build(RETRY_SRC, "retryk");
        p.refresh().unwrap();
        p.run(1).unwrap();

        // Persistent fault: retries exhaust, the typed SimError surfaces
        // (still an Err, never a panic) and it reads as transient so the
        // caller knows retrying was legitimate.
        let mut p = build(&RETRY_SRC.replace("retryk", "doomedk"), "doomedk");
        p.refresh().unwrap();
        let err = p.run(1).unwrap_err();
        ks_fault::clear();
        match err {
            PfError::Sim(e) => {
                assert!(e.to_string().contains("injected fault: launch-timeout"));
            }
            other => panic!("expected PfError::Sim, got {other:?}"),
        }
    }

    #[test]
    fn degradations_name_the_failed_variant_key() {
        // Same forced compile failure as above, via the per-compiler
        // plan; what's under test is that the degradation record names
        // the exact failed variant: canonical cache key + `-D` line.
        let plan = Arc::new(
            ks_fault::FaultPlan::new(11).rule(
                ks_fault::FaultRule::new(
                    ks_fault::FaultKind::CompileError,
                    ks_fault::Target::Define("FACTOR".into()),
                )
                .persistent(),
            ),
        );
        let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()).with_fault_plan(plan));
        let (mut p, _factor, _hi, _ho) = scale_pipeline(c.clone());
        p.refresh().unwrap();
        assert_eq!(p.degradations().len(), 1);
        let d = &p.degradations()[0];
        let expected = c.cache_key(SCALE_SRC, &Defines::new().def("FACTOR", "3"));
        assert_eq!(d.key, expected.to_hex());
        assert_eq!(d.defines, "-D FACTOR=3");
        // The served binary's stamped identity is the *generic* variant
        // — what is actually bound, not what was requested.
        let bound = p.module_bound_key(ResId(4)).unwrap();
        assert_eq!(
            bound.fingerprint,
            c.cache_key(SCALE_SRC, &Defines::new()).to_hex()
        );
        assert_eq!(bound.defines, "");
    }

    #[test]
    fn integrity_witness_catches_transient_flip_and_recovers() {
        let _guard = GLOBAL_PLAN.lock().unwrap_or_else(|e| e.into_inner());
        let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
        let (mut p, factor, host_in, host_out) = scale_pipeline(c);
        // A factor no other test uses keeps this variant's cache key —
        // and therefore the keyed flip rule — unique to this test.
        p.set_int(factor, 13);
        p.set_integrity(Some(IntegrityConfig {
            witness_period: 1,
            vote_m: 3,
            vote_n: 2,
        }));
        p.refresh().unwrap();
        let key = p.module_bound_key(ResId(4)).unwrap().clone();
        assert!(key.defines.contains("-D FACTOR=13"));
        // One silent bit flip on the first launch of exactly this
        // specialized variant; witness/vote/recovery launches (and every
        // other test's launches) carry other keys or occurrences.
        let plan = Arc::new(
            ks_fault::FaultPlan::new(99).rule(
                ks_fault::FaultRule::new(
                    ks_fault::FaultKind::SilentFlip,
                    ks_fault::Target::Key(key.lo64),
                )
                .nth(1),
            ),
        );
        ks_fault::install(plan.clone());
        let vals: Vec<f32> = (0..64).map(|i| i as f32 + 1.0).collect();
        p.set_host_f32(host_in, &vals);
        let r = p.run(2);
        ks_fault::clear();
        r.unwrap();
        assert_eq!(plan.injected_count(), 1);
        // The flip was detected, adjudicated as transient, and the
        // iteration re-executed: downstream saw only verified bytes.
        let out = p.host_f32(host_out);
        for i in 0..64 {
            assert_eq!(out[i], vals[i] * 13.0);
        }
        let s = p.integrity_stats();
        assert_eq!(s.checks, 2);
        assert_eq!(s.witness_launches, 2);
        assert_eq!(s.violations, 1);
        assert_eq!(s.transient_flips, 1);
        assert_eq!(s.corrupt_binaries, 0);
        assert_eq!(s.recovered, 1);
        assert_eq!(s.reexecutions, 4); // 3 votes + 1 recovery
        let v = &p.integrity_violations()[0];
        assert_eq!(v.kind, ViolationKind::WitnessMismatch);
        assert_eq!(v.verdict, Verdict::TransientFlip);
        assert!(v.recovered);
        assert_eq!(v.key, key.fingerprint);
        assert_eq!((v.votes_agree, v.votes_total), (3, 3));
        // An exonerated variant keeps serving; nothing degraded.
        assert_eq!(p.module_tier(ResId(4)), Some(Tier::Specialized));
        assert!(p.degradations().is_empty());
    }

    #[test]
    fn corrupt_specialized_binary_is_quarantined_by_witness_voting() {
        // A macro binding that *lies*: the specialized binary bakes in
        // FACTOR=7 while the runtime argument says 5, so the variant
        // persistently computes wrong bytes — the binary-corruption case
        // (vs a one-shot flip), no fault plan needed.
        let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
        let mut p = Pipeline::new(c.clone(), 32 << 20);
        let ext = p.extent_param("buf", [64, 1, 1], 4);
        let host_in = p.host_memory(ext);
        let host_out = p.host_memory(ext);
        let dev_in = p.global_memory(ext);
        let dev_out = p.global_memory(ext);
        let m = p.module(
            SCALE_SRC,
            vec![("FACTOR", MacroBinding::Literal("7".into()))],
        );
        let k = p.kernel(m, "scale");
        let grid = p.triplet_param("grid", [1, 1, 1]);
        let blk = p.triplet_param("block", [64, 1, 1]);
        let every = p.schedule_param("every", 1, 0);
        let factor = p.int_param("factor", 5);
        let n = p.int_param("n", 64);
        p.copy("h2d", host_in, dev_in, every);
        p.exec(
            "scale",
            k,
            grid,
            blk,
            None,
            vec![
                Arg::Mem(dev_in),
                Arg::Mem(dev_out),
                Arg::Param(factor),
                Arg::Param(n),
            ],
            every,
        );
        p.copy("d2h", dev_out, host_out, every);
        p.set_integrity(Some(IntegrityConfig {
            witness_period: 1,
            vote_m: 2,
            vote_n: 1,
        }));
        p.refresh().unwrap();
        let suspect = p.module_bound_key(m).unwrap().clone();
        let vals: Vec<f32> = (0..64).map(|i| i as f32).collect();
        p.set_host_f32(host_in, &vals);
        p.run(2).unwrap();
        // The generic witness (×5, the runtime argument) convicted the
        // ×7 variant: every vote reproduced the divergence.
        let out = p.host_f32(host_out);
        for i in 0..64 {
            assert_eq!(out[i], vals[i] * 5.0);
        }
        assert_eq!(p.integrity_violations().len(), 1);
        let v = &p.integrity_violations()[0];
        assert_eq!(v.verdict, Verdict::CorruptBinary);
        assert!(v.recovered);
        assert_eq!(v.key, suspect.fingerprint);
        assert_eq!(v.defines, "-D FACTOR=7");
        assert_eq!((v.votes_agree, v.votes_total), (0, 2));
        // Quarantined through the degradation ladder: generic serves,
        // module marked degraded (next refresh retries), record names
        // the convicted variant.
        assert_eq!(p.module_tier(m), Some(Tier::Generic));
        assert_eq!(p.degradations().len(), 1);
        let d = &p.degradations()[0];
        assert_eq!(d.fallback, FallbackKind::Generic);
        assert!(d.error.contains("integrity violation"));
        assert_eq!(d.key, suspect.fingerprint);
        assert_eq!(d.defines, "-D FACTOR=7");
        assert_eq!(p.module_bound_key(m).unwrap().defines, "");
        let s = p.integrity_stats();
        assert_eq!(s.corrupt_binaries, 1);
        assert_eq!(s.transient_flips, 0);
        // Iteration 2 served the generic: witness agreed, no new
        // violation.
        assert_eq!(s.violations, 1);
        assert_eq!(s.recovered, 1);
    }

    #[test]
    fn golden_checksum_pin_triggers_witness_and_stale_pin_is_benign() {
        let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
        let (mut p, _factor, host_in, _host_out) = scale_pipeline(c);
        // No periodic witnessing: only a pinned-checksum mismatch may
        // trigger one.
        p.set_integrity(Some(IntegrityConfig {
            witness_period: 0,
            vote_m: 3,
            vote_n: 2,
        }));
        p.refresh().unwrap();
        let vals: Vec<f32> = (0..64).map(|i| i as f32).collect();
        p.set_host_f32(host_in, &vals);
        p.run(1).unwrap();
        assert_eq!(p.integrity_stats().checks, 1);
        assert_eq!(p.integrity_stats().witness_launches, 0);
        // Pin the observed checksum: stationary inputs keep matching it,
        // so the cheap checksum compare suffices and no witness runs.
        let cs = p.last_checksum("scale").unwrap().to_string();
        assert_eq!(cs.len(), 32);
        p.expect_checksum("scale", &cs);
        p.run(2).unwrap();
        assert_eq!(p.integrity_stats().witness_launches, 0);
        assert!(p.integrity_violations().is_empty());
        // A wrong pin triggers the witness — which agrees with the
        // output, so the pin is reported stale rather than convicting
        // the binary.
        p.expect_checksum("scale", "00000000000000000000000000000000");
        p.run(1).unwrap();
        assert_eq!(p.integrity_stats().witness_launches, 1);
        assert!(p.integrity_violations().is_empty());
    }

    #[test]
    fn accessor_errors_are_typed_with_stable_messages() {
        let mut p = pipeline();
        let trip = p.triplet_param("t", [1, 1, 1]);
        let ext = p.extent_param("e", [8, 1, 1], 4);
        let dev = p.global_memory(ext);
        let m = p.module(SCALE_SRC, vec![]);
        let k = p.kernel(m, "scale");

        // Binding errors render the bare message the old panics carried.
        let e = p.try_int_value(trip).unwrap_err();
        assert!(matches!(&e, PfError::Bind(_)), "{e:?}");
        assert!(e.to_string().contains("not an integer"), "{e}");

        let e = p.try_host_data(dev).unwrap_err();
        assert!(matches!(&e, PfError::Bind(_)));
        assert_eq!(e.to_string(), "resource is not host memory");

        let e = p.try_device_addr(dev).unwrap_err();
        assert!(matches!(&e, PfError::Bind(_)));
        assert_eq!(e.to_string(), "refresh() first");

        // Kernel-resolution errors are launch-typed.
        let e = p.try_kernel_binary(dev).unwrap_err();
        assert!(matches!(&e, PfError::Launch(_)));
        assert_eq!(e.to_string(), "not a kernel resource");
        let e = p.try_kernel_binary(k).unwrap_err();
        assert!(matches!(&e, PfError::Launch(_)));
        assert_eq!(e.to_string(), "module not compiled; refresh() first");
    }

    // ---- tiered execution ----

    #[test]
    fn tiered_refresh_serves_generic_immediately_then_promotes() {
        let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
        let (mut p, _factor, host_in, host_out) = scale_pipeline(c.clone());
        p.set_refresh_mode(RefreshMode::Tiered);
        let m = ResId(4); // the module created by scale_pipeline
        assert_eq!(p.module_tier(m), Some(Tier::Generic));

        p.refresh().unwrap();
        // Refresh returned without waiting for the specialization: the
        // module serves the generic binary (verifiably: same Arc as a
        // direct generic compile) while its ticket is in flight.
        assert_eq!(p.module_tier(m), Some(Tier::Promoting));
        let generic = c.compile(SCALE_SRC, Defines::new()).unwrap();
        let kernel = ResId(5);
        assert!(
            Arc::ptr_eq(p.kernel_binary(kernel), &generic),
            "first launch must be served by the generic binary"
        );

        // The generic kernel reads FACTOR from its runtime argument, so
        // the first run is already correct.
        let vals: Vec<f32> = (0..64).map(|i| i as f32).collect();
        p.set_host_f32(host_in, &vals);
        p.run(1).unwrap();
        assert_eq!(p.host_f32(host_out)[10], 30.0);

        // Promotion: hot-swap to the exact specialized binary. (run()
        // polls at each iteration top, so the swap may already have
        // landed there; wait_promotions() covers the slow case.)
        p.wait_promotions();
        assert_eq!(p.module_tier(m), Some(Tier::Specialized));
        let specialized = c
            .compile(SCALE_SRC, Defines::new().def("FACTOR", 3))
            .unwrap();
        assert!(Arc::ptr_eq(p.kernel_binary(kernel), &specialized));
        p.run(1).unwrap();
        assert_eq!(p.host_f32(host_out)[10], 30.0);
        let stats = p.promotion_stats();
        assert_eq!((stats.promoted, stats.failed, stats.pending), (1, 0, 0));
        assert!(p.degradations().is_empty());
    }

    /// Regression: re-dirtying a module while its promotion is in
    /// flight must supersede the stale ticket, not swap in a binary
    /// specialized for outdated parameter values. A stale FACTOR=3
    /// binary would hard-code 3 and ignore the runtime argument — the
    /// output check catches exactly that.
    #[test]
    fn superseding_a_promotion_never_swaps_in_a_stale_binary() {
        let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
        let (mut p, factor, host_in, host_out) = scale_pipeline(c);
        p.set_refresh_mode(RefreshMode::Tiered);
        p.refresh().unwrap();
        // Re-dirty before the FACTOR=3 ticket is applied.
        p.set_int(factor, 5);
        p.refresh().unwrap();
        assert_eq!(p.promotion_stats().superseded, 1);
        assert_eq!(p.wait_promotions(), 1);
        assert_eq!(p.module_tier(ResId(4)), Some(Tier::Specialized));

        let vals: Vec<f32> = (0..64).map(|i| i as f32).collect();
        p.set_host_f32(host_in, &vals);
        p.run(1).unwrap();
        assert_eq!(
            p.host_f32(host_out)[10],
            50.0,
            "a stale FACTOR=3 specialization must never be promoted"
        );
        let stats = p.promotion_stats();
        assert_eq!((stats.promoted, stats.superseded), (1, 1));
    }

    /// Tiered promotion failures route through the same degradation
    /// machinery as blocking refreshes, and a seeded fault plan makes
    /// two identical runs degrade byte-identically.
    #[test]
    fn promotion_failure_degrades_deterministically() {
        let run_once = || {
            let plan = Arc::new(
                ks_fault::FaultPlan::new(23).rule(
                    ks_fault::FaultRule::new(
                        ks_fault::FaultKind::CompileError,
                        ks_fault::Target::Define("FACTOR".into()),
                    )
                    .persistent(),
                ),
            );
            let c =
                Arc::new(Compiler::new(DeviceConfig::tesla_c1060()).with_fault_plan(plan.clone()));
            let (mut p, _factor, host_in, host_out) = scale_pipeline(c);
            p.set_refresh_mode(RefreshMode::Tiered);
            p.refresh().unwrap();
            assert_eq!(p.wait_promotions(), 0, "failed promotion must not swap");
            assert_eq!(p.module_tier(ResId(4)), Some(Tier::Failed));
            assert_eq!(p.promotion_stats().failed, 1);
            assert_eq!(p.degradations().len(), 1);
            assert_eq!(p.degradations()[0].fallback, FallbackKind::Generic);
            assert!(p.degradations()[0].error.contains("injected fault"));
            // Still serving correct results from the generic tier.
            let vals: Vec<f32> = (0..64).map(|i| i as f32).collect();
            p.set_host_f32(host_in, &vals);
            p.run(1).unwrap();
            assert_eq!(p.host_f32(host_out)[10], 30.0);
            // A later refresh retries the specialization (still doomed
            // by the persistent rule — a second identical degradation).
            p.refresh().unwrap();
            assert_eq!(p.module_tier(ResId(4)), Some(Tier::Promoting));
            p.wait_promotions();
            assert_eq!(p.degradations().len(), 2);
            plan.event_log()
        };
        let first = run_once();
        let second = run_once();
        assert!(!first.is_empty());
        assert_eq!(
            first, second,
            "same seed must degrade byte-identically across runs"
        );
    }

    /// A launch racing a hot-swap must always execute a fully-built
    /// binary: launches pin an `Arc<Binary>` before executing, and the
    /// swap only changes which binary the *next* pin observes.
    #[test]
    fn launch_racing_a_hot_swap_sees_a_fully_built_binary() {
        let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
        let generic = c.compile(SCALE_SRC, Defines::new()).unwrap();
        let ticket = c.spawn_compile(SCALE_SRC, Defines::new().def("FACTOR", 7));
        // The shared slot stands in for a module's binary field; the
        // launcher threads play the part of pipeline iterations.
        let slot = Arc::new(parking_lot::Mutex::new(generic.clone()));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let launchers: Vec<_> = (0..3)
            .map(|t| {
                let (slot, stop, c) = (slot.clone(), stop.clone(), c.clone());
                std::thread::spawn(move || {
                    let mut state = DeviceState::new(c.device().clone(), 1 << 20);
                    let a_in = state.global.alloc(64 * 4).unwrap();
                    let a_out = state.global.alloc(64 * 4).unwrap();
                    let dims = LaunchDims {
                        grid: (1, 1, 1),
                        block: (64, 1, 1),
                        dynamic_shared: 0,
                    };
                    let args = [
                        KArg::Ptr(a_in),
                        KArg::Ptr(a_out),
                        KArg::I32(2),
                        KArg::I32(64),
                    ];
                    let mut launches = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) || launches == 0 {
                        // Pin, then launch: the swap may happen between
                        // these two lines and must not matter.
                        let bin = slot.lock().clone();
                        assert!(
                            !bin.module.functions.is_empty() && !bin.ptx.is_empty(),
                            "launcher {t} saw a partially built binary"
                        );
                        ks_sim::launch(
                            &mut state,
                            &bin.module,
                            "scale",
                            dims,
                            &args,
                            LaunchOptions::default(),
                        )
                        .unwrap();
                        launches += 1;
                    }
                    launches
                })
            })
            .collect();
        // Resolve the promotion and hot-swap mid-traffic.
        let specialized = ticket.wait().unwrap();
        *slot.lock() = specialized.clone();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: u64 = launchers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total >= 3, "every launcher must have launched");
        // Post-swap pins observe exactly the specialized binary.
        assert!(Arc::ptr_eq(&*slot.lock(), &specialized));
    }

    #[test]
    fn blocking_refresh_reports_specialized_tier() {
        let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
        let (mut p, _f, _hi, _ho) = scale_pipeline(c);
        assert_eq!(p.refresh_mode(), RefreshMode::Blocking);
        p.refresh().unwrap();
        assert_eq!(p.module_tier(ResId(4)), Some(Tier::Specialized));
        assert_eq!(p.promotion_stats(), PromotionStats::default());
        // Non-module resources have no tier.
        assert_eq!(p.module_tier(ResId(0)), None);
    }

    /// Labeled pipelines publish through a `{pipeline=...}` scope:
    /// the scoped cells carry this pipeline's events, and time-in-tier
    /// dwell histograms record every transition (generic → promoting →
    /// specialized) with the promotion latency alongside.
    #[test]
    fn labeled_pipeline_scopes_metrics_and_records_dwell() {
        let reg = ks_trace::registry();
        let c = Arc::new(Compiler::new(DeviceConfig::tesla_c1060()));
        let (mut p, _factor, host_in, host_out) = scale_pipeline(c);
        p.set_label("dwell-test");
        p.set_refresh_mode(RefreshMode::Tiered);
        assert_eq!(p.label(), Some("dwell-test"));
        assert_eq!(
            p.metric_name(ks_trace::names::PF_ITERATIONS),
            "gpu_pf.iterations{pipeline=dwell-test}"
        );

        let iters_before = reg.counter_value(&p.metric_name(ks_trace::names::PF_ITERATIONS));
        let lat_before = reg
            .histogram(&p.metric_name(ks_trace::names::PF_PROMOTION_LATENCY_US))
            .count();

        p.refresh().unwrap();
        // Generic dwell episode closed by the -> Promoting transition.
        assert_eq!(p.tier_dwell(Tier::Generic).count, 1);
        let vals: Vec<f32> = (0..64).map(|i| i as f32).collect();
        p.set_host_f32(host_in, &vals);
        p.run(1).unwrap();
        p.wait_promotions();
        assert_eq!(p.module_tier(ResId(4)), Some(Tier::Specialized));
        assert_eq!(p.host_f32(host_out)[10], 30.0);

        // Promoting dwell closed by the hot-swap; promotion latency
        // histogram recorded the same event under this pipeline's scope.
        assert_eq!(p.tier_dwell(Tier::Promoting).count, 1);
        let lat_after = reg
            .histogram(&p.metric_name(ks_trace::names::PF_PROMOTION_LATENCY_US))
            .count();
        assert_eq!(lat_after - lat_before, 1);
        let iters_after = reg.counter_value(&p.metric_name(ks_trace::names::PF_ITERATIONS));
        assert_eq!(iters_after - iters_before, 1);
        // Per-module dwell cells exist under the nested scope and roll
        // up into the pipeline-level cell (module 4 is the only one).
        let per_module = reg
            .histogram("gpu_pf.tier.dwell_us.promoting{module=4,pipeline=dwell-test}")
            .snapshot();
        assert_eq!(per_module.count, 1);
    }
}
