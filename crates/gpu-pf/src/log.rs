//! Appendix-G-style log output: refresh reports, pipeline iterations, and
//! per-operation timing lines.

use parking_lot::Mutex;
use std::io::Write;

/// A line-oriented logger; disabled by default (zero cost).
pub struct Logger {
    sink: Option<Mutex<Box<dyn Write + Send>>>,
}

impl Logger {
    pub fn disabled() -> Logger {
        Logger { sink: None }
    }

    pub fn new(w: Box<dyn Write + Send>) -> Logger {
        Logger {
            sink: Some(Mutex::new(w)),
        }
    }

    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    pub fn line(&self, s: &str) {
        if let Some(sink) = &self.sink {
            let mut w = sink.lock();
            let _ = writeln!(w, "[gpu-pf] {s}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_logger_is_silent() {
        let l = Logger::disabled();
        assert!(!l.enabled());
        l.line("nothing happens");
    }

    #[test]
    fn enabled_logger_writes_lines() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct W(Arc<Mutex<Vec<u8>>>);
        impl Write for W {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let l = Logger::new(Box::new(W(buf.clone())));
        l.line("hello");
        assert_eq!(
            String::from_utf8(buf.lock().clone()).unwrap(),
            "[gpu-pf] hello\n"
        );
    }
}
