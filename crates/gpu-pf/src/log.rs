//! Appendix-G-style log output: refresh reports, pipeline iterations, and
//! per-operation timing lines.
//!
//! Lines are routed through a [`ks_trace::Subscriber`], so tests and tools
//! can substitute counting or capturing sinks, while the formatted output
//! stays byte-identical to the historical writer-based logger: every line
//! is prefixed with `[gpu-pf] ` and terminated with `\n`.

use ks_trace::{Subscriber, WriterSink};
use std::io::Write;
use std::sync::Arc;

/// A line-oriented logger; disabled by default (zero cost).
pub struct Logger {
    sink: Option<Arc<dyn Subscriber>>,
}

impl Logger {
    /// No sink, no allocations: `line_with` closures are never invoked.
    pub fn disabled() -> Logger {
        Logger { sink: None }
    }

    /// Route lines to a writer (wrapped in a [`WriterSink`]).
    pub fn new(w: Box<dyn Write + Send>) -> Logger {
        Logger {
            sink: Some(Arc::new(WriterSink::new(w))),
        }
    }

    /// Route lines to an existing subscriber.
    pub fn subscriber(s: Arc<dyn Subscriber>) -> Logger {
        Logger { sink: Some(s) }
    }

    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    pub fn line(&self, s: &str) {
        if let Some(sink) = &self.sink {
            sink.line(&format!("[gpu-pf] {s}"));
        }
    }

    /// Lazily-formatted line: the closure only runs when a sink is
    /// attached, so a disabled logger costs one branch and nothing else.
    pub fn line_with(&self, f: impl FnOnce() -> String) {
        if let Some(sink) = &self.sink {
            sink.line(&format!("[gpu-pf] {}", f()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    #[test]
    fn disabled_logger_is_silent() {
        let l = Logger::disabled();
        assert!(!l.enabled());
        l.line("nothing happens");
    }

    #[test]
    fn disabled_logger_never_runs_format_closures() {
        let l = Logger::disabled();
        l.line_with(|| panic!("closure must not run on a disabled logger"));
    }

    #[test]
    fn enabled_logger_writes_lines() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct W(Arc<Mutex<Vec<u8>>>);
        impl Write for W {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let l = Logger::new(Box::new(W(buf.clone())));
        l.line("hello");
        l.line_with(|| "lazy".to_string());
        assert_eq!(
            String::from_utf8(buf.lock().clone()).unwrap(),
            "[gpu-pf] hello\n[gpu-pf] lazy\n"
        );
    }

    #[test]
    fn subscriber_logger_receives_prefixed_lines() {
        #[derive(Default)]
        struct Capture(Mutex<Vec<String>>);
        impl Subscriber for Capture {
            fn line(&self, text: &str) {
                self.0.lock().push(text.to_string());
            }
        }
        let cap = Arc::new(Capture::default());
        let l = Logger::subscriber(cap.clone());
        l.line("one");
        l.line_with(|| "two".to_string());
        assert_eq!(*cap.0.lock(), vec!["[gpu-pf] one", "[gpu-pf] two"]);
    }
}
