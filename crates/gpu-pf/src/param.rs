//! Parameter value types (Table 4.1 of the dissertation).

/// A self-updating parameter that iterates through a range with a stride
/// (GPU-PF's "Step" type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepParam {
    pub current: i64,
    pub start: i64,
    pub stride: i64,
    /// Exclusive upper bound; the step wraps back to `start` at the end.
    pub end: i64,
}

impl StepParam {
    pub fn advance(&mut self) {
        let next = self.current + self.stride;
        self.current =
            if (self.stride > 0 && next >= self.end) || (self.stride < 0 && next <= self.end) {
                self.start
            } else {
                next
            };
    }
}

/// The value carried by a pipeline parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Geometry (up to three dimensions) and element size of a memory
    /// reference ("Memory Extent").
    Extent {
        dims: [u32; 3],
        elem_bytes: u32,
    },
    /// Subrange of a memory extent with a per-iteration stride
    /// ("Memory Subset"): `offset`/`len`/`stride` in elements.
    Subset {
        offset: u64,
        len: u64,
        stride: i64,
        reset_period: u64,
    },
    /// Period between events and delay before the first occurrence.
    Schedule {
        period: u64,
        delay: u64,
    },
    Int(i64),
    Float(f64),
    Ptr(u64),
    /// Three integers — commonly grid/block dimensions.
    Triplet([u32; 3]),
    Pair([u32; 2]),
    Bool(bool),
    /// Self-updating range iterator.
    Step(StepParam),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_wraps_at_end() {
        let mut s = StepParam {
            current: 0,
            start: 0,
            stride: 3,
            end: 9,
        };
        let mut seen = vec![s.current];
        for _ in 0..5 {
            s.advance();
            seen.push(s.current);
        }
        assert_eq!(seen, vec![0, 3, 6, 0, 3, 6]);
    }

    #[test]
    fn negative_stride_step() {
        let mut s = StepParam {
            current: 10,
            start: 10,
            stride: -5,
            end: 0,
        };
        s.advance();
        assert_eq!(s.current, 5);
        s.advance();
        assert_eq!(s.current, 10, "wraps when reaching end");
    }
}
