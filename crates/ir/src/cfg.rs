//! Control-flow-graph analyses shared by the optimizer and the simulator.
//!
//! The simulator needs immediate *post*-dominators to place SIMT
//! reconvergence points (the classic post-dominator stack used by real
//! hardware and by GPGPU-Sim); the optimizer needs predecessor lists and
//! reverse post-order for dataflow.

use crate::module::{BlockId, Function};

/// Predecessor/successor lists plus traversal orders for one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    pub succs: Vec<Vec<BlockId>>,
    pub preds: Vec<Vec<BlockId>>,
    /// Reverse post-order over reachable blocks, starting at the entry.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (usize::MAX if unreachable).
    pub rpo_pos: Vec<usize>,
}

impl Cfg {
    pub fn build(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for b in &f.blocks {
            for s in b.term.successors() {
                succs[b.id.0 as usize].push(s);
                preds[s.0 as usize].push(b.id);
            }
        }
        // Iterative DFS post-order.
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Stack entries: (block, next successor index to visit).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b].len() {
                let s = succs[b][*i].0 as usize;
                *i += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(BlockId(b as u32));
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, b) in post.iter().enumerate() {
            rpo_pos[b.0 as usize] = i;
        }
        Cfg {
            succs,
            preds,
            rpo: post,
            rpo_pos,
        }
    }

    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.0 as usize] != usize::MAX
    }
}

/// Immediate post-dominators, computed by the Cooper–Harvey–Kennedy
/// algorithm on the reverse CFG with a virtual exit node. `ipdom[b]` is
/// `None` when the block's immediate post-dominator is the virtual exit
/// itself (i.e. paths from `b` diverge all the way to function return) or
/// when `b` cannot reach an exit.
pub fn ipdoms(f: &Function, cfg: &Cfg) -> Vec<Option<BlockId>> {
    let n = f.blocks.len();
    let exit = n; // virtual exit node

    // Reverse-graph successors: rsucc(exit) = every Ret block;
    // rsucc(b) = forward predecessors of b.
    let ret_blocks: Vec<usize> = f
        .blocks
        .iter()
        .filter(|b| matches!(b.term, crate::inst::Terminator::Ret))
        .map(|b| b.id.0 as usize)
        .collect();
    let rsucc = |v: usize| -> Vec<usize> {
        if v == exit {
            ret_blocks.clone()
        } else {
            cfg.preds[v].iter().map(|p| p.0 as usize).collect()
        }
    };

    // RPO of the reverse graph from the virtual exit (iterative DFS).
    let mut visited = vec![false; n + 1];
    let mut post: Vec<usize> = Vec::with_capacity(n + 1);
    let mut stack: Vec<(usize, usize)> = vec![(exit, 0)];
    visited[exit] = true;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        let succs = rsucc(v);
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(v);
            stack.pop();
        }
    }
    post.reverse(); // reverse-graph RPO, exit first
    let mut pos = vec![usize::MAX; n + 1];
    for (i, &v) in post.iter().enumerate() {
        pos[v] = i;
    }

    // rev_preds(b) in the reverse graph = forward successors (+ exit for
    // Ret blocks).
    let rev_preds = |b: usize| -> Vec<usize> {
        let blk = &f.blocks[b];
        let mut v: Vec<usize> = blk.term.successors().iter().map(|s| s.0 as usize).collect();
        if matches!(blk.term, crate::inst::Terminator::Ret) {
            v.push(exit);
        }
        v
    };

    let mut idom: Vec<Option<usize>> = vec![None; n + 1];
    idom[exit] = Some(exit);
    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while pos[a] > pos[b] {
                a = idom[a].expect("processed");
            }
            while pos[b] > pos[a] {
                b = idom[b].expect("processed");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in post.iter() {
            if b == exit {
                continue;
            }
            let mut new_idom: Option<usize> = None;
            for p in rev_preds(b) {
                if pos[p] == usize::MAX {
                    continue; // cannot reach exit
                }
                if idom[p].is_some() {
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }

    (0..n)
        .map(|b| match idom[b] {
            Some(d) if d != exit && d != b => Some(BlockId(d as u32)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Terminator, VReg};
    use crate::module::{BasicBlock, Function};
    use crate::types::Ty;

    fn func_with(blocks: Vec<Terminator>) -> Function {
        Function {
            name: "t".into(),
            params: vec![],
            blocks: blocks
                .into_iter()
                .enumerate()
                .map(|(i, term)| BasicBlock {
                    id: BlockId(i as u32),
                    insts: vec![],
                    term,
                })
                .collect(),
            vreg_types: vec![Ty::Pred],
            shared: vec![],
            local_bytes: 0,
        }
    }

    /// Diamond: 0 -> {1,2} -> 3 -> ret. ipdom(0)=3, ipdom(1)=3, ipdom(2)=3.
    #[test]
    fn diamond_ipdom() {
        let f = func_with(vec![
            Terminator::CondBr {
                pred: VReg(0),
                negate: false,
                then_t: BlockId(1),
                else_t: BlockId(2),
            },
            Terminator::Br { target: BlockId(3) },
            Terminator::Br { target: BlockId(3) },
            Terminator::Ret,
        ]);
        let cfg = Cfg::build(&f);
        let pd = ipdoms(&f, &cfg);
        assert_eq!(pd[0], Some(BlockId(3)));
        assert_eq!(pd[1], Some(BlockId(3)));
        assert_eq!(pd[2], Some(BlockId(3)));
        assert_eq!(pd[3], None);
    }

    /// Loop: 0 -> 1; 1 -> {1, 2}; 2 ret. ipdom(1) = 2 (the loop exit).
    #[test]
    fn loop_ipdom_is_exit() {
        let f = func_with(vec![
            Terminator::Br { target: BlockId(1) },
            Terminator::CondBr {
                pred: VReg(0),
                negate: false,
                then_t: BlockId(1),
                else_t: BlockId(2),
            },
            Terminator::Ret,
        ]);
        let cfg = Cfg::build(&f);
        let pd = ipdoms(&f, &cfg);
        assert_eq!(pd[0], Some(BlockId(1)));
        assert_eq!(pd[1], Some(BlockId(2)));
        assert_eq!(pd[2], None);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = func_with(vec![
            Terminator::Br { target: BlockId(2) },
            Terminator::Ret, // unreachable
            Terminator::Ret,
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert!(cfg.is_reachable(BlockId(2)));
        assert!(!cfg.is_reachable(BlockId(1)));
        assert_eq!(cfg.rpo.len(), 2);
    }

    /// Regression: guard-if wrapping a loop (the shape every bounds-checked
    /// kernel lowers to). A reversed *forward* RPO mis-numbers the loop
    /// header here; a true reverse-graph RPO is required.
    /// 0→{2,3}; 2→4; 4→{5,7}; 5→6; 6→4; 7→3; 3→1(ret).
    #[test]
    fn guarded_loop_ipdoms() {
        let f = func_with(vec![
            Terminator::CondBr {
                pred: VReg(0),
                negate: false,
                then_t: BlockId(2),
                else_t: BlockId(3),
            },
            Terminator::Ret,
            Terminator::Br { target: BlockId(4) },
            Terminator::Br { target: BlockId(1) },
            Terminator::CondBr {
                pred: VReg(0),
                negate: false,
                then_t: BlockId(5),
                else_t: BlockId(7),
            },
            Terminator::Br { target: BlockId(6) },
            Terminator::Br { target: BlockId(4) },
            Terminator::Br { target: BlockId(3) },
        ]);
        let cfg = Cfg::build(&f);
        let pd = ipdoms(&f, &cfg);
        assert_eq!(pd[0], Some(BlockId(3)));
        assert_eq!(pd[4], Some(BlockId(7)));
        assert_eq!(pd[2], Some(BlockId(4)));
        assert_eq!(pd[6], Some(BlockId(4)));
    }

    /// An infinite loop cannot reach the exit; blocks inside it get None.
    #[test]
    fn infinite_loop_has_no_ipdom() {
        let f = func_with(vec![
            Terminator::Br { target: BlockId(1) },
            Terminator::Br { target: BlockId(1) },
        ]);
        let cfg = Cfg::build(&f);
        let pd = ipdoms(&f, &cfg);
        assert_eq!(pd[1], None);
    }

    #[test]
    fn preds_and_succs() {
        let f = func_with(vec![
            Terminator::CondBr {
                pred: VReg(0),
                negate: false,
                then_t: BlockId(1),
                else_t: BlockId(2),
            },
            Terminator::Br { target: BlockId(2) },
            Terminator::Ret,
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs[0], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds[2], vec![BlockId(0), BlockId(1)]);
    }
}
