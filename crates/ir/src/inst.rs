//! Instruction set: operands, opcodes, terminators.

use crate::module::BlockId;
use crate::types::{Space, Ty};
use std::fmt;

/// A virtual register. Physical assignment happens in `ks-sim::regalloc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%r{}", self.0)
    }
}

/// An instruction operand: a virtual register or an immediate.
///
/// Immediates are what specialization is all about — a specialized kernel
/// replaces parameter loads and computed strides with `ImmI`/`ImmF` values
/// baked into the instruction stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    Reg(VReg),
    /// Integer immediate; also used for pointer immediates (specialized
    /// `PTR_IN`-style constants, stored as the raw 64-bit address).
    ImmI(i64),
    /// Float immediate.
    ImmF(f32),
}

impl Operand {
    pub fn as_reg(&self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    pub fn is_imm(&self) -> bool {
        !matches!(self, Operand::Reg(_))
    }

    /// Integer immediate value, if this operand is one.
    pub fn imm_i(&self) -> Option<i64> {
        match self {
            Operand::ImmI(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

/// Binary arithmetic/logical opcodes. The same opcode is reused across
/// operand types; `Ty` on the instruction disambiguates semantics
/// (e.g. `div.s32` vs `div.u32` vs `div.f32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// 24-bit integer multiply intrinsic (`__[u]mul24`). Fast on CC 1.x,
    /// slower than `*` on CC 2.x — the relative-throughput inversion
    /// discussed in §2.4.
    Mul24,
    Div,
    Rem,
    Min,
    Max,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl BinOp {
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul.lo",
            BinOp::Mul24 => "mul24.lo",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }
}

/// Unary opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
    Abs,
    Sqrt,
    /// 1/sqrt(x), single precision.
    Rsqrt,
    /// Round toward -inf (floorf).
    Floor,
}

impl UnOp {
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt.rn",
            UnOp::Rsqrt => "rsqrt.approx",
            UnOp::Floor => "cvt.rmi",
        }
    }
}

/// Comparison predicates for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Special (read-only) per-thread registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    TidX,
    TidY,
    TidZ,
    CtaIdX,
    CtaIdY,
    CtaIdZ,
    NtidX,
    NtidY,
    NtidZ,
    NctaIdX,
    NctaIdY,
    NctaIdZ,
}

impl SpecialReg {
    pub fn name(self) -> &'static str {
        match self {
            SpecialReg::TidX => "%tid.x",
            SpecialReg::TidY => "%tid.y",
            SpecialReg::TidZ => "%tid.z",
            SpecialReg::CtaIdX => "%ctaid.x",
            SpecialReg::CtaIdY => "%ctaid.y",
            SpecialReg::CtaIdZ => "%ctaid.z",
            SpecialReg::NtidX => "%ntid.x",
            SpecialReg::NtidY => "%ntid.y",
            SpecialReg::NtidZ => "%ntid.z",
            SpecialReg::NctaIdX => "%nctaid.x",
            SpecialReg::NctaIdY => "%nctaid.y",
            SpecialReg::NctaIdZ => "%nctaid.z",
        }
    }
}

/// A memory address: optional base register plus a byte offset.
///
/// Fully specialized kernels frequently reduce to `base = %tid`-derived
/// register with a chain of constant offsets — exactly the unrolled
/// base-plus-offset pattern visible in Appendix D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Address {
    /// Base register holding a byte address (`None` ⇒ absolute `offset`).
    pub base: Option<VReg>,
    /// Byte offset added to the base.
    pub offset: i64,
}

impl Address {
    pub fn reg(base: VReg) -> Self {
        Address {
            base: Some(base),
            offset: 0,
        }
    }

    pub fn reg_off(base: VReg, offset: i64) -> Self {
        Address {
            base: Some(base),
            offset,
        }
    }

    pub fn abs(offset: i64) -> Self {
        Address { base: None, offset }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.base {
            Some(b) if self.offset != 0 => write!(f, "[{}+{}]", b, self.offset),
            Some(b) => write!(f, "[{}]", b),
            None => write!(f, "[{}]", self.offset),
        }
    }
}

/// Non-terminator instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `mov.ty dst, src`
    Mov { ty: Ty, dst: VReg, src: Operand },
    /// `op.ty dst, a, b`
    Bin {
        op: BinOp,
        ty: Ty,
        dst: VReg,
        a: Operand,
        b: Operand,
    },
    /// `op.ty dst, a`
    Un {
        op: UnOp,
        ty: Ty,
        dst: VReg,
        a: Operand,
    },
    /// Fused multiply-add: `mad.ty dst, a, b, c` = a*b + c.
    Mad {
        ty: Ty,
        dst: VReg,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    /// `setp.cmp.ty dst, a, b` — writes a predicate register.
    Setp {
        cmp: CmpOp,
        ty: Ty,
        dst: VReg,
        a: Operand,
        b: Operand,
    },
    /// `selp.ty dst, a, b, pred` — dst = pred ? a : b.
    Selp {
        ty: Ty,
        dst: VReg,
        a: Operand,
        b: Operand,
        pred: VReg,
    },
    /// Type conversion `cvt.dst_ty.src_ty`.
    Cvt {
        dst_ty: Ty,
        src_ty: Ty,
        dst: VReg,
        src: Operand,
    },
    /// `ld.space.ty dst, [addr]`
    Ld {
        space: Space,
        ty: Ty,
        dst: VReg,
        addr: Address,
    },
    /// `st.space.ty [addr], src`
    St {
        space: Space,
        ty: Ty,
        addr: Address,
        src: Operand,
    },
    /// `bar.sync 0` — block-wide barrier.
    Bar,
    /// Read a special register into a regular one.
    Special { dst: VReg, reg: SpecialReg },
    /// Unfiltered 1-D texture fetch from linear memory
    /// (`tex1Dfetch`): `dst = tex[idx]`, where `tex` indexes the module's
    /// texture-reference table and `idx` is an element index.
    Tex {
        ty: Ty,
        dst: VReg,
        tex: u32,
        idx: Operand,
    },
}

impl Inst {
    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Inst::Mov { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Mad { dst, .. }
            | Inst::Setp { dst, .. }
            | Inst::Selp { dst, .. }
            | Inst::Cvt { dst, .. }
            | Inst::Ld { dst, .. }
            | Inst::Special { dst, .. }
            | Inst::Tex { dst, .. } => Some(*dst),
            Inst::St { .. } | Inst::Bar => None,
        }
    }

    /// Visit every register this instruction uses (reads).
    pub fn for_each_use(&self, mut f: impl FnMut(VReg)) {
        fn op(o: &Operand, f: &mut impl FnMut(VReg)) {
            if let Operand::Reg(r) = o {
                f(*r)
            }
        }
        match self {
            Inst::Mov { src, .. } => op(src, &mut f),
            Inst::Bin { a, b, .. } => {
                op(a, &mut f);
                op(b, &mut f);
            }
            Inst::Un { a, .. } => op(a, &mut f),
            Inst::Mad { a, b, c, .. } => {
                op(a, &mut f);
                op(b, &mut f);
                op(c, &mut f);
            }
            Inst::Setp { a, b, .. } => {
                op(a, &mut f);
                op(b, &mut f);
            }
            Inst::Selp { a, b, pred, .. } => {
                op(a, &mut f);
                op(b, &mut f);
                f(*pred);
            }
            Inst::Cvt { src, .. } => op(src, &mut f),
            Inst::Ld { addr, .. } => {
                if let Some(b) = addr.base {
                    f(b)
                }
            }
            Inst::St { addr, src, .. } => {
                if let Some(b) = addr.base {
                    f(b)
                }
                op(src, &mut f);
            }
            Inst::Bar => {}
            Inst::Special { .. } => {}
            Inst::Tex { idx, .. } => op(idx, &mut f),
        }
    }

    /// Replace every register *use* (not the def) via the supplied map.
    pub fn map_uses(&mut self, f: &mut impl FnMut(VReg) -> Operand) {
        fn map_op(o: &mut Operand, f: &mut impl FnMut(VReg) -> Operand) {
            if let Operand::Reg(r) = *o {
                *o = f(r);
            }
        }
        // Addresses can only hold registers; a callback returning an
        // immediate folds into the offset when possible.
        fn map_addr(a: &mut Address, f: &mut impl FnMut(VReg) -> Operand) {
            if let Some(b) = a.base {
                match f(b) {
                    Operand::Reg(r) => a.base = Some(r),
                    Operand::ImmI(v) => {
                        a.base = None;
                        a.offset += v;
                    }
                    Operand::ImmF(_) => {} // nonsensical; leave untouched
                }
            }
        }
        match self {
            Inst::Mov { src, .. } => map_op(src, f),
            Inst::Bin { a, b, .. } => {
                map_op(a, f);
                map_op(b, f);
            }
            Inst::Un { a, .. } => map_op(a, f),
            Inst::Mad { a, b, c, .. } => {
                map_op(a, f);
                map_op(b, f);
                map_op(c, f);
            }
            Inst::Setp { a, b, .. } => {
                map_op(a, f);
                map_op(b, f);
            }
            Inst::Selp { a, b, pred, .. } => {
                map_op(a, f);
                map_op(b, f);
                if let Operand::Reg(r) = f(*pred) {
                    *pred = r;
                }
            }
            Inst::Cvt { src, .. } => map_op(src, f),
            Inst::Ld { addr, .. } => map_addr(addr, f),
            Inst::St { addr, src, .. } => {
                map_addr(addr, &mut *f);
                map_op(src, f);
            }
            Inst::Bar => {}
            Inst::Special { .. } => {}
            Inst::Tex { idx, .. } => map_op(idx, f),
        }
    }

    /// True if removing this instruction can change observable behaviour
    /// even when its def is dead.
    pub fn has_side_effect(&self) -> bool {
        matches!(self, Inst::St { .. } | Inst::Bar)
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional branch.
    Br { target: BlockId },
    /// Conditional branch on a predicate register.
    CondBr {
        pred: VReg,
        negate: bool,
        then_t: BlockId,
        else_t: BlockId,
    },
    /// Return from kernel.
    Ret,
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br { target } => vec![*target],
            Terminator::CondBr { then_t, else_t, .. } => vec![*then_t, *else_t],
            Terminator::Ret => vec![],
        }
    }

    /// Register used by the terminator, if any.
    pub fn use_reg(&self) -> Option<VReg> {
        match self {
            Terminator::CondBr { pred, .. } => Some(*pred),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let i = Inst::Bin {
            op: BinOp::Add,
            ty: Ty::S32,
            dst: VReg(3),
            a: Operand::Reg(VReg(1)),
            b: Operand::ImmI(7),
        };
        assert_eq!(i.def(), Some(VReg(3)));
        let mut uses = vec![];
        i.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![VReg(1)]);
    }

    #[test]
    fn store_has_side_effect_and_no_def() {
        let st = Inst::St {
            space: Space::Global,
            ty: Ty::F32,
            addr: Address::reg(VReg(0)),
            src: Operand::ImmF(1.0),
        };
        assert!(st.has_side_effect());
        assert_eq!(st.def(), None);
        let mut uses = vec![];
        st.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![VReg(0)]);
    }

    #[test]
    fn map_uses_folds_address_base_to_offset() {
        let mut ld = Inst::Ld {
            space: Space::Global,
            ty: Ty::F32,
            dst: VReg(5),
            addr: Address::reg_off(VReg(2), 16),
        };
        ld.map_uses(&mut |r| {
            assert_eq!(r, VReg(2));
            Operand::ImmI(0x1000)
        });
        match ld {
            Inst::Ld { addr, .. } => {
                assert_eq!(addr.base, None);
                assert_eq!(addr.offset, 0x1000 + 16);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn cmp_swapped() {
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.swapped(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondBr {
            pred: VReg(0),
            negate: false,
            then_t: BlockId(1),
            else_t: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Ret.successors(), vec![]);
        assert_eq!(t.use_reg(), Some(VReg(0)));
    }
}
