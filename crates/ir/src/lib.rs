//! # ks-ir — PTX-like intermediate representation
//!
//! A typed, virtual-register IR modeled on NVIDIA PTX, the target of the
//! `ks-codegen` lowering and the input to both the `ks-opt` optimization
//! passes and the `ks-sim` GPU simulator.
//!
//! Design points mirroring PTX (dissertation §2.4, Appendices C/D):
//!
//! * **Virtual registers** — register names are virtual; physical register
//!   assignment happens later, during the "PTX → binary" translation
//!   implemented by `ks-sim`'s linear-scan allocator. This is what lets the
//!   specialization results report *reduced per-thread register usage*.
//! * **Typed instructions** — every arithmetic instruction carries an
//!   operand type (`s32`, `u32`, `f32`, …), and loads/stores carry a
//!   state space (`global`, `shared`, `const`, `local`, `param`).
//! * **Load/store semantics** — destination first, then sources.
//! * **Explicit control flow** — basic blocks terminated by branches;
//!   a fully specialized kernel typically lowers to a single block with
//!   no control flow at all (cf. Appendix D).

pub mod cfg;
pub mod inst;
pub mod module;
pub mod printer;
pub mod types;
pub mod verify;

pub use inst::{Address, BinOp, CmpOp, Inst, Operand, SpecialReg, Terminator, UnOp, VReg};
pub use module::{BasicBlock, BlockId, ConstDecl, Function, KernelParam, Module, SharedDecl};
pub use types::{Space, Ty};
pub use verify::{verify_function, verify_module, VerifyCode, VerifyError};
