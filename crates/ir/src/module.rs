//! Modules, functions, basic blocks — the container types of the IR.

use crate::inst::{Inst, Terminator, VReg};
use crate::types::Ty;

/// Identifier of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BB{}", self.0)
    }
}

/// A straight-line run of instructions ending in a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    pub id: BlockId,
    pub insts: Vec<Inst>,
    pub term: Terminator,
}

/// A kernel parameter: name, type, and its byte offset in param space.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelParam {
    pub name: String,
    pub ty: Ty,
    pub offset: u32,
}

/// A `__shared__` array declaration with its resolved byte size and offset
/// within the block's shared-memory window.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedDecl {
    pub name: String,
    pub offset: u32,
    pub size_bytes: u32,
}

/// A module-level `__constant__` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDecl {
    pub name: String,
    pub offset: u32,
    pub size_bytes: u32,
}

/// A compiled kernel function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    pub params: Vec<KernelParam>,
    /// Blocks indexed by `BlockId.0`. Entry block is index 0.
    pub blocks: Vec<BasicBlock>,
    /// Type of each virtual register, indexed by `VReg.0`.
    pub vreg_types: Vec<Ty>,
    /// Static shared-memory declarations (offsets pre-assigned).
    pub shared: Vec<SharedDecl>,
    /// Per-thread local (spill) memory in bytes.
    pub local_bytes: u32,
}

impl Function {
    /// Allocate a fresh virtual register of the given type.
    pub fn new_vreg(&mut self, ty: Ty) -> VReg {
        let r = VReg(self.vreg_types.len() as u32);
        self.vreg_types.push(ty);
        r
    }

    /// Total bytes of parameter space used by this kernel's arguments.
    pub fn param_bytes(&self) -> u32 {
        self.params
            .last()
            .map(|p| p.offset + p.ty.size_bytes())
            .unwrap_or(0)
    }

    /// Total static shared memory required per block, in bytes.
    pub fn shared_bytes(&self) -> u32 {
        self.shared.iter().map(|s| s.size_bytes).sum()
    }

    /// Number of virtual registers.
    pub fn num_vregs(&self) -> usize {
        self.vreg_types.len()
    }

    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.0 as usize]
    }

    /// Total static instruction count across all blocks (terminators count
    /// as one instruction each, matching how PTX listings read).
    pub fn static_inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }

    /// Look up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&KernelParam> {
        self.params.iter().find(|p| p.name == name)
    }
}

/// A compiled module: the unit the specialization engine produces and the
/// simulator loads (the analogue of a CUDA module / `.cubin`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    pub functions: Vec<Function>,
    /// Module-level constant memory declarations (offsets pre-assigned).
    pub consts: Vec<ConstDecl>,
    /// Texture-reference names; `Inst::Tex.tex` indexes this table. The
    /// host binds each reference to a device address before launching.
    pub textures: Vec<String>,
}

impl Module {
    /// Total constant-memory bytes declared by the module. The CUDA limit
    /// is 64 KB across all loaded kernels (§2.4); the simulator enforces it.
    pub fn const_bytes(&self) -> u32 {
        self.consts.iter().map(|c| c.size_bytes).sum()
    }

    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    pub fn const_decl(&self, name: &str) -> Option<&ConstDecl> {
        self.consts.iter().find(|c| c.name == name)
    }

    /// Index of a texture reference by name.
    pub fn texture_index(&self, name: &str) -> Option<u32> {
        self.textures
            .iter()
            .position(|t| t == name)
            .map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand;
    use crate::types::Space;

    fn empty_fn() -> Function {
        Function {
            name: "k".into(),
            params: vec![],
            blocks: vec![BasicBlock {
                id: BlockId(0),
                insts: vec![],
                term: Terminator::Ret,
            }],
            vreg_types: vec![],
            shared: vec![],
            local_bytes: 0,
        }
    }

    #[test]
    fn vreg_allocation_tracks_types() {
        let mut f = empty_fn();
        let a = f.new_vreg(Ty::S32);
        let b = f.new_vreg(Ty::F32);
        assert_eq!(a, VReg(0));
        assert_eq!(b, VReg(1));
        assert_eq!(f.vreg_types[0], Ty::S32);
        assert_eq!(f.vreg_types[1], Ty::F32);
        assert_eq!(f.num_vregs(), 2);
    }

    #[test]
    fn param_bytes_accounts_for_offsets() {
        let mut f = empty_fn();
        f.params = vec![
            KernelParam {
                name: "in".into(),
                ty: Ty::Ptr(Space::Global),
                offset: 0,
            },
            KernelParam {
                name: "n".into(),
                ty: Ty::S32,
                offset: 8,
            },
        ];
        assert_eq!(f.param_bytes(), 12);
        assert!(f.param("n").is_some());
        assert!(f.param("missing").is_none());
    }

    #[test]
    fn shared_and_const_totals() {
        let mut f = empty_fn();
        f.shared.push(SharedDecl {
            name: "tile".into(),
            offset: 0,
            size_bytes: 1024,
        });
        f.shared.push(SharedDecl {
            name: "buf".into(),
            offset: 1024,
            size_bytes: 512,
        });
        assert_eq!(f.shared_bytes(), 1536);

        let m = Module {
            functions: vec![f],
            consts: vec![ConstDecl {
                name: "filt".into(),
                offset: 0,
                size_bytes: 128,
            }],
            textures: vec![],
        };
        assert_eq!(m.const_bytes(), 128);
        assert!(m.function("k").is_some());
        assert!(m.const_decl("filt").is_some());
    }

    #[test]
    fn static_inst_count_includes_terminators() {
        let mut f = empty_fn();
        let r = f.new_vreg(Ty::S32);
        f.blocks[0].insts.push(Inst::Mov {
            ty: Ty::S32,
            dst: r,
            src: Operand::ImmI(1),
        });
        assert_eq!(f.static_inst_count(), 2);
    }
}
