//! Scalar types and memory state spaces.

use std::fmt;

/// Scalar value types carried by instructions and virtual registers.
///
/// Pointers are 64-bit byte addresses tagged with the state space they point
/// into; the simulator uses the tag to route memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 32-bit signed integer (`.s32`).
    S32,
    /// 32-bit unsigned integer (`.u32`).
    U32,
    /// 32-bit IEEE-754 float (`.f32`).
    F32,
    /// 1-bit predicate register (`.pred`).
    Pred,
    /// 64-bit pointer into a state space (`.u64` address).
    Ptr(Space),
}

impl Ty {
    /// Size of a value of this type in bytes when stored to memory.
    pub fn size_bytes(self) -> u32 {
        match self {
            Ty::S32 | Ty::U32 | Ty::F32 => 4,
            Ty::Pred => 1,
            Ty::Ptr(_) => 8,
        }
    }

    /// True for the two 32-bit integer types.
    pub fn is_integer(self) -> bool {
        matches!(self, Ty::S32 | Ty::U32)
    }

    /// True if the type is a pointer.
    pub fn is_ptr(self) -> bool {
        matches!(self, Ty::Ptr(_))
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::S32 => write!(f, "s32"),
            Ty::U32 => write!(f, "u32"),
            Ty::F32 => write!(f, "f32"),
            Ty::Pred => write!(f, "pred"),
            Ty::Ptr(s) => write!(f, "ptr.{s}"),
        }
    }
}

/// Memory state spaces, mirroring PTX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device global memory: large, high latency, transaction-coalesced.
    Global,
    /// Per-block scratchpad (`__shared__`): banked, low latency.
    Shared,
    /// Module-level read-only memory (`__constant__`): broadcast-cached.
    Const,
    /// Per-thread spill space for non-scalarized local arrays. High latency:
    /// existing NVIDIA GPUs cannot indirectly address registers (§2.4), so
    /// dynamically indexed locals live here.
    Local,
    /// Kernel parameter space; run-time-evaluated kernels must load their
    /// scalar arguments from here before use (§2.4).
    Param,
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Space::Global => "global",
            Space::Shared => "shared",
            Space::Const => "const",
            Space::Local => "local",
            Space::Param => "param",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Ty::S32.size_bytes(), 4);
        assert_eq!(Ty::U32.size_bytes(), 4);
        assert_eq!(Ty::F32.size_bytes(), 4);
        assert_eq!(Ty::Ptr(Space::Global).size_bytes(), 8);
        assert_eq!(Ty::Pred.size_bytes(), 1);
    }

    #[test]
    fn predicates() {
        assert!(Ty::S32.is_integer());
        assert!(Ty::U32.is_integer());
        assert!(!Ty::F32.is_integer());
        assert!(Ty::Ptr(Space::Shared).is_ptr());
        assert!(!Ty::S32.is_ptr());
    }

    #[test]
    fn display() {
        assert_eq!(Ty::F32.to_string(), "f32");
        assert_eq!(Ty::Ptr(Space::Global).to_string(), "ptr.global");
        assert_eq!(Space::Param.to_string(), "param");
    }
}
