//! IR verifier: structural and type sanity checks. The ks-core pipeline
//! runs [`verify_module`] after lowering and after each optimization pass
//! that changed a function — in debug builds always, in release builds
//! whenever an analysis configuration is attached to the compiler — and
//! once more on the final module in every build.

#[cfg(test)]
use crate::inst::Terminator;
use crate::inst::{Inst, Operand, VReg};
use crate::module::{BlockId, Function, Module};
use crate::types::{Space, Ty};
use std::fmt;

/// Stable diagnostic codes for IR-verifier findings, in the same style as
/// the ks-analysis `KSA0xx` lint codes and the ks-verify `KSV0xx`
/// translation-validation codes, so all three families render and export
/// uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyCode {
    /// Structural problems: missing blocks, block-id/index mismatch.
    Structure,
    /// A virtual register outside the declared register file.
    RegisterRange,
    /// Operand/destination/immediate type incompatibilities.
    TypeMismatch,
    /// Memory-space misuse: stores to read-only spaces, reg-relative
    /// param loads.
    MemorySpace,
    /// Control-flow problems: branches to nonexistent blocks, non-pred
    /// branch predicates.
    ControlFlow,
    /// Hardware resource limits (e.g. the 64 KB constant-memory window).
    ResourceLimit,
}

impl VerifyCode {
    /// Stable textual code (`KSI001`..`KSI006`).
    pub fn code(self) -> &'static str {
        match self {
            VerifyCode::Structure => "KSI001",
            VerifyCode::RegisterRange => "KSI002",
            VerifyCode::TypeMismatch => "KSI003",
            VerifyCode::MemorySpace => "KSI004",
            VerifyCode::ControlFlow => "KSI005",
            VerifyCode::ResourceLimit => "KSI006",
        }
    }
}

impl fmt::Display for VerifyCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A verification failure with structured context: stable code, function,
/// block, and instruction index (when the failure is attributable to a
/// specific instruction).
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    pub code: VerifyCode,
    pub function: String,
    pub block: Option<BlockId>,
    /// Index of the offending instruction within the block; `None` for
    /// block/terminator/module-level findings.
    pub inst: Option<usize>,
    pub message: String,
}

impl VerifyError {
    /// One-line JSON export, matching the shape ks-analysis and ks-verify
    /// diagnostics use in `--export jsonl` outputs.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"code\":\"{}\"", self.code));
        s.push_str(&format!(
            ",\"function\":\"{}\"",
            self.function.replace('"', "\\\"")
        ));
        if let Some(b) = self.block {
            s.push_str(&format!(",\"block\":{}", b.0));
        }
        if let Some(i) = self.inst {
            s.push_str(&format!(",\"inst\":{i}"));
        }
        s.push_str(&format!(
            ",\"message\":\"{}\"",
            self.message.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        s.push('}');
        s
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Same rendering shape as ks-analysis lints:
        //   error[KSI003]: kernel/BB0#2: message
        write!(f, "error[{}]: {}", self.code, self.function)?;
        if let Some(b) = self.block {
            write!(f, "/{b}")?;
            if let Some(i) = self.inst {
                write!(f, "#{i}")?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

struct Checker<'a> {
    f: &'a Function,
    errors: Vec<VerifyError>,
    block: Option<BlockId>,
    inst: Option<usize>,
}

impl<'a> Checker<'a> {
    fn err(&mut self, code: VerifyCode, msg: impl Into<String>) {
        self.errors.push(VerifyError {
            code,
            function: self.f.name.clone(),
            block: self.block,
            inst: self.inst,
            message: msg.into(),
        });
    }

    fn check_reg(&mut self, r: VReg) -> Option<Ty> {
        if (r.0 as usize) < self.f.vreg_types.len() {
            Some(self.f.vreg_types[r.0 as usize])
        } else {
            self.err(
                VerifyCode::RegisterRange,
                format!(
                    "register {r} out of range ({} declared)",
                    self.f.vreg_types.len()
                ),
            );
            None
        }
    }

    fn check_operand(&mut self, o: &Operand, expect: Ty) {
        match o {
            Operand::Reg(r) => {
                if let Some(ty) = self.check_reg(*r) {
                    let compatible = ty == expect
                        // Integer registers are interchangeable at the bit
                        // level (PTX allows untyped register reuse); pointer
                        // arithmetic also mixes ptr and integer regs.
                        || (ty.is_integer() && expect.is_integer())
                        || (ty.is_ptr() && (expect.is_ptr() || expect.is_integer()))
                        || (expect.is_ptr() && ty.is_integer());
                    if !compatible {
                        self.err(
                            VerifyCode::TypeMismatch,
                            format!("operand {r} has type {ty}, instruction expects {expect}"),
                        );
                    }
                }
            }
            Operand::ImmI(_) => {
                if expect == Ty::F32 {
                    self.err(
                        VerifyCode::TypeMismatch,
                        "integer immediate used where f32 expected".to_string(),
                    );
                }
            }
            Operand::ImmF(_) => {
                if expect != Ty::F32 {
                    self.err(
                        VerifyCode::TypeMismatch,
                        format!("float immediate used where {expect} expected"),
                    );
                }
            }
        }
    }

    fn check_dst(&mut self, dst: VReg, expect: Ty) {
        if let Some(ty) = self.check_reg(dst) {
            let ok = ty == expect
                || (ty.is_integer() && expect.is_integer())
                || (ty.is_ptr() && expect.is_integer())
                || (expect.is_ptr() && ty.is_integer())
                || (ty.is_ptr() && expect.is_ptr());
            if !ok {
                self.err(
                    VerifyCode::TypeMismatch,
                    format!("dst {dst} has type {ty}, instruction writes {expect}"),
                );
            }
        }
    }

    fn check_inst(&mut self, i: &Inst) {
        match i {
            Inst::Mov { ty, dst, src } => {
                self.check_dst(*dst, *ty);
                self.check_operand(src, *ty);
            }
            Inst::Bin { op, ty, dst, a, b } => {
                self.check_dst(*dst, *ty);
                self.check_operand(a, *ty);
                self.check_operand(b, *ty);
                // PTX permits and/or/xor on predicates; everything else is
                // arithmetic and needs a numeric type.
                if *ty == Ty::Pred
                    && !matches!(
                        op,
                        crate::inst::BinOp::And | crate::inst::BinOp::Or | crate::inst::BinOp::Xor
                    )
                {
                    self.err(
                        VerifyCode::TypeMismatch,
                        "binary arithmetic on predicate type",
                    );
                }
            }
            Inst::Un { ty, dst, a, .. } => {
                self.check_dst(*dst, *ty);
                self.check_operand(a, *ty);
            }
            Inst::Mad { ty, dst, a, b, c } => {
                self.check_dst(*dst, *ty);
                self.check_operand(a, *ty);
                self.check_operand(b, *ty);
                self.check_operand(c, *ty);
            }
            Inst::Setp { ty, dst, a, b, .. } => {
                if let Some(t) = self.check_reg(*dst) {
                    if t != Ty::Pred {
                        self.err(
                            VerifyCode::TypeMismatch,
                            format!("setp dst {dst} must be pred, is {t}"),
                        );
                    }
                }
                self.check_operand(a, *ty);
                self.check_operand(b, *ty);
            }
            Inst::Selp {
                ty,
                dst,
                a,
                b,
                pred,
            } => {
                self.check_dst(*dst, *ty);
                self.check_operand(a, *ty);
                self.check_operand(b, *ty);
                if let Some(t) = self.check_reg(*pred) {
                    if t != Ty::Pred {
                        self.err(
                            VerifyCode::TypeMismatch,
                            format!("selp pred {pred} must be pred, is {t}"),
                        );
                    }
                }
            }
            Inst::Cvt {
                dst_ty,
                src_ty,
                dst,
                src,
            } => {
                self.check_dst(*dst, *dst_ty);
                self.check_operand(src, *src_ty);
            }
            Inst::Ld {
                space,
                ty,
                dst,
                addr,
            } => {
                self.check_dst(*dst, *ty);
                if let Some(b) = addr.base {
                    self.check_reg(b);
                }
                if *space == Space::Param && addr.base.is_some() {
                    self.err(
                        VerifyCode::MemorySpace,
                        "param-space loads must use absolute offsets",
                    );
                }
            }
            Inst::St {
                space,
                ty,
                addr,
                src,
            } => {
                self.check_operand(src, *ty);
                if let Some(b) = addr.base {
                    self.check_reg(b);
                }
                if matches!(space, Space::Const | Space::Param) {
                    self.err(
                        VerifyCode::MemorySpace,
                        format!("store to read-only space {space}"),
                    );
                }
            }
            Inst::Bar => {}
            Inst::Special { dst, .. } => {
                self.check_dst(*dst, Ty::U32);
            }
            Inst::Tex { ty, dst, idx, .. } => {
                self.check_dst(*dst, *ty);
                self.check_operand(idx, Ty::S32);
            }
        }
    }
}

/// Verify one function. Returns all problems found (empty = valid).
pub fn verify_function(f: &Function) -> Vec<VerifyError> {
    let mut c = Checker {
        f,
        errors: vec![],
        block: None,
        inst: None,
    };
    if f.blocks.is_empty() {
        c.err(VerifyCode::Structure, "function has no blocks");
        return c.errors;
    }
    if f.blocks[0].id != BlockId(0) {
        c.err(VerifyCode::Structure, "entry block must have id 0");
    }
    for (i, b) in f.blocks.iter().enumerate() {
        if b.id.0 as usize != i {
            c.errors.push(VerifyError {
                code: VerifyCode::Structure,
                function: f.name.clone(),
                block: Some(b.id),
                inst: None,
                message: format!("block id {} does not match index {i}", b.id),
            });
        }
    }
    for b in &f.blocks {
        c.block = Some(b.id);
        for (pos, i) in b.insts.iter().enumerate() {
            c.inst = Some(pos);
            c.check_inst(i);
        }
        c.inst = None;
        for s in b.term.successors() {
            if s.0 as usize >= f.blocks.len() {
                c.err(
                    VerifyCode::ControlFlow,
                    format!("branch to nonexistent block {s}"),
                );
            }
        }
        if let Some(p) = b.term.use_reg() {
            if let Some(t) = c.check_reg(p) {
                if t != Ty::Pred {
                    c.err(
                        VerifyCode::ControlFlow,
                        format!("branch predicate {p} must be pred, is {t}"),
                    );
                }
            }
        }
    }
    c.errors
}

/// Verify a whole module, including the CUDA 64 KB constant-memory limit.
pub fn verify_module(m: &Module) -> Vec<VerifyError> {
    let mut errors = vec![];
    for f in &m.functions {
        errors.extend(verify_function(f));
    }
    if m.const_bytes() > 64 * 1024 {
        errors.push(VerifyError {
            code: VerifyCode::ResourceLimit,
            function: "<module>".into(),
            block: None,
            inst: None,
            message: format!(
                "constant memory {} bytes exceeds the 64 KB CUDA limit",
                m.const_bytes()
            ),
        });
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Address, BinOp};
    use crate::module::{BasicBlock, ConstDecl};

    fn func(insts: Vec<Inst>, vreg_types: Vec<Ty>) -> Function {
        Function {
            name: "t".into(),
            params: vec![],
            blocks: vec![BasicBlock {
                id: BlockId(0),
                insts,
                term: Terminator::Ret,
            }],
            vreg_types,
            shared: vec![],
            local_bytes: 0,
        }
    }

    #[test]
    fn valid_function_passes() {
        let f = func(
            vec![Inst::Bin {
                op: BinOp::Add,
                ty: Ty::S32,
                dst: VReg(0),
                a: Operand::ImmI(1),
                b: Operand::ImmI(2),
            }],
            vec![Ty::S32],
        );
        assert!(verify_function(&f).is_empty());
    }

    #[test]
    fn out_of_range_register_caught() {
        let f = func(
            vec![Inst::Mov {
                ty: Ty::S32,
                dst: VReg(5),
                src: Operand::ImmI(0),
            }],
            vec![Ty::S32],
        );
        let errs = verify_function(&f);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("out of range"));
    }

    #[test]
    fn type_mismatch_caught() {
        let f = func(
            vec![Inst::Mov {
                ty: Ty::F32,
                dst: VReg(0),
                src: Operand::ImmI(3),
            }],
            vec![Ty::F32],
        );
        let errs = verify_function(&f);
        assert!(errs.iter().any(|e| e.message.contains("integer immediate")));
    }

    #[test]
    fn store_to_const_space_rejected() {
        let f = func(
            vec![Inst::St {
                space: Space::Const,
                ty: Ty::F32,
                addr: Address::abs(0),
                src: Operand::ImmF(0.0),
            }],
            vec![],
        );
        let errs = verify_function(&f);
        assert!(errs.iter().any(|e| e.message.contains("read-only")));
    }

    #[test]
    fn branch_to_missing_block_rejected() {
        let mut f = func(vec![], vec![]);
        f.blocks[0].term = Terminator::Br { target: BlockId(9) };
        let errs = verify_function(&f);
        assert!(errs.iter().any(|e| e.message.contains("nonexistent")));
    }

    #[test]
    fn const_memory_limit_enforced() {
        let m = Module {
            functions: vec![],
            consts: vec![ConstDecl {
                name: "big".into(),
                offset: 0,
                size_bytes: 65 * 1024,
            }],
            textures: vec![],
        };
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("64 KB")));
    }

    #[test]
    fn structured_rendering_and_export() {
        let f = func(
            vec![Inst::Mov {
                ty: Ty::S32,
                dst: VReg(5),
                src: Operand::ImmI(0),
            }],
            vec![Ty::S32],
        );
        let errs = verify_function(&f);
        assert_eq!(errs[0].code, VerifyCode::RegisterRange);
        assert_eq!(errs[0].inst, Some(0));
        let rendered = errs[0].to_string();
        assert!(
            rendered.starts_with("error[KSI002]: t/BB0#0:"),
            "got: {rendered}"
        );
        let json = errs[0].to_json();
        assert!(json.contains("\"code\":\"KSI002\""), "got: {json}");
        assert!(json.contains("\"inst\":0"), "got: {json}");
    }

    #[test]
    fn setp_requires_pred_dst() {
        let f = func(
            vec![Inst::Setp {
                cmp: crate::inst::CmpOp::Lt,
                ty: Ty::S32,
                dst: VReg(0),
                a: Operand::ImmI(0),
                b: Operand::ImmI(1),
            }],
            vec![Ty::S32],
        );
        let errs = verify_function(&f);
        assert!(errs.iter().any(|e| e.message.contains("must be pred")));
    }
}
