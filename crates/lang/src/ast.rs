//! Untyped abstract syntax tree produced by the parser.

/// Type specifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeSpec {
    Void,
    Int,
    UInt,
    Float,
    Ptr(Box<TypeSpec>),
}

impl TypeSpec {
    pub fn ptr(self) -> TypeSpec {
        TypeSpec::Ptr(Box::new(self))
    }
}

/// The four CUDA built-in thread-geometry variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinVar {
    ThreadIdx,
    BlockIdx,
    BlockDim,
    GridDim,
}

/// Component of a built-in variable (`.x`, `.y`, `.z`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim3 {
    X,
    Y,
    Z,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    LogicalNot,
    BitNot,
    /// `*p`
    Deref,
    PreInc,
    PreDec,
    PostInc,
    PostDec,
}

/// Binary operators (excluding assignment, handled separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    LogicalAnd,
    LogicalOr,
}

/// Assignment operators. `Assign` is plain `=`; the rest are compound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    And,
    Or,
    Xor,
}

impl AssignOp {
    /// The underlying binary op for a compound assignment.
    pub fn binary(self) -> Option<BinaryOp> {
        Some(match self {
            AssignOp::Assign => return None,
            AssignOp::Add => BinaryOp::Add,
            AssignOp::Sub => BinaryOp::Sub,
            AssignOp::Mul => BinaryOp::Mul,
            AssignOp::Div => BinaryOp::Div,
            AssignOp::Rem => BinaryOp::Rem,
            AssignOp::Shl => BinaryOp::Shl,
            AssignOp::Shr => BinaryOp::Shr,
            AssignOp::And => BinaryOp::BitAnd,
            AssignOp::Or => BinaryOp::BitOr,
            AssignOp::Xor => BinaryOp::BitXor,
        })
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit { value: i64, unsigned: bool },
    FloatLit(f32),
    Ident(String),
    Builtin(BuiltinVar, Dim3),
    Unary(UnaryOp, Box<Expr>),
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    Index(Box<Expr>, Box<Expr>),
    Call(String, Vec<Expr>),
    Cast(TypeSpec, Box<Expr>),
}

impl Expr {
    pub fn int(v: i64) -> Expr {
        Expr::IntLit {
            value: v,
            unsigned: false,
        }
    }
}

/// A variable declaration (statement form).
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    pub name: String,
    pub ty: TypeSpec,
    /// Array dimensions; empty for scalars. Sizes must be compile-time
    /// constants (checked in sema), mirroring the CUDA restriction.
    pub dims: Vec<Expr>,
    pub init: Option<Expr>,
    pub shared: bool,
    pub is_const: bool,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Decl(Decl),
    Expr(Expr),
    If {
        cond: Expr,
        then_s: Box<Stmt>,
        else_s: Option<Box<Stmt>>,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
        /// `#pragma unroll` preceding the loop: `None` = no pragma,
        /// `Some(None)` = full unroll requested, `Some(Some(n))` = factor n.
        unroll: Option<Option<u32>>,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
    },
    DoWhile {
        body: Box<Stmt>,
        cond: Expr,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    Block(Vec<Stmt>),
    /// Several declarations from one `int a = 1, b = 2;` statement —
    /// unlike `Block`, introduces no scope.
    Multi(Vec<Stmt>),
    /// `__syncthreads();`
    Sync,
    /// Empty statement (`;`).
    Empty,
}

/// Function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct FnParam {
    pub name: String,
    pub ty: TypeSpec,
}

/// Function kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnKind {
    /// `__global__` kernel entry point.
    Kernel,
    /// `__device__` helper, force-inlined at call sites.
    Device,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    pub kind: FnKind,
    pub name: String,
    pub ret: TypeSpec,
    pub params: Vec<FnParam>,
    pub body: Vec<Stmt>,
}

/// A module-scope `__constant__` array declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantDecl {
    pub name: String,
    pub elem: TypeSpec,
    pub dims: Vec<Expr>,
}

/// A module-scope texture reference: `texture<float> name;`.
#[derive(Debug, Clone, PartialEq)]
pub struct TextureDecl {
    pub name: String,
    pub elem: TypeSpec,
}

/// Top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Func(FuncDef),
    Constant(ConstantDecl),
    Texture(TextureDecl),
}

/// A parsed translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TranslationUnit {
    pub items: Vec<Item>,
}
