//! Lexer: source text → position-tagged tokens.
//!
//! Handles line (`//`) and block (`/* */`) comments, line continuations
//! (`\` before newline, needed for multi-line `#define`s), decimal and hex
//! integer literals with `u`/`U` suffix, and float literals with optional
//! `f`/`F` suffix and exponents.

use crate::token::{LangError, Punct, Tok, Token};

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    line_start: bool,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<u8> {
        self.src.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
            self.line_start = true;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::new("lex", self.line, self.col, msg)
    }

    /// Skip whitespace and comments. Line continuations glue lines together
    /// (the continuation does NOT set `line_start`).
    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'\\') if self.peek2() == Some(b'\n') => {
                    self.bump();
                    self.bump();
                    // A continuation means the next token is *not* at a
                    // logical line start.
                    self.line_start = false;
                }
                Some(b'\\') if self.peek2() == Some(b'\r') && self.peek3() == Some(b'\n') => {
                    self.bump();
                    self.bump();
                    self.bump();
                    self.line_start = false;
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => return Err(self.err("unterminated block comment")),
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Tok, LangError> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hstart = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                self.bump();
            }
            if self.pos == hstart {
                return Err(self.err("hex literal with no digits"));
            }
            let text = std::str::from_utf8(&self.src[hstart..self.pos]).unwrap();
            let value = u64::from_str_radix(text, 16)
                .map_err(|_| self.err("hex literal out of range"))? as i64;
            let unsigned = self.consume_int_suffix() || value > i32::MAX as i64;
            return Ok(Tok::Int { value, unsigned });
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        } else if self.peek() == Some(b'.')
            && !matches!(self.peek2(), Some(c) if c.is_ascii_alphabetic())
        {
            // "1." style literal
            is_float = true;
            self.bump();
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = self.pos;
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                self.pos = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .to_string();
        if is_float || matches!(self.peek(), Some(b'f') | Some(b'F')) {
            if matches!(self.peek(), Some(b'f') | Some(b'F')) {
                self.bump();
            }
            let v: f32 = text.parse().map_err(|_| self.err("bad float literal"))?;
            Ok(Tok::Float(v))
        } else {
            let value: i64 = text
                .parse()
                .map_err(|_| self.err("integer literal out of range"))?;
            let unsigned = self.consume_int_suffix() || value > i32::MAX as i64;
            Ok(Tok::Int { value, unsigned })
        }
    }

    fn consume_int_suffix(&mut self) -> bool {
        let mut unsigned = false;
        // Accept any combination of u/U/l/L suffixes; we model only 32-bit
        // kernels so `l` is accepted and ignored.
        while matches!(
            self.peek(),
            Some(b'u') | Some(b'U') | Some(b'l') | Some(b'L')
        ) {
            if matches!(self.peek(), Some(b'u') | Some(b'U')) {
                unsigned = true;
            }
            self.bump();
        }
        unsigned
    }

    fn lex_punct(&mut self) -> Result<Punct, LangError> {
        use Punct::*;
        let c = self.bump().unwrap();
        let p1 = self.peek();
        let p2 = self.peek2();
        let two = |l: &mut Self, p: Punct| {
            l.bump();
            p
        };
        Ok(match c {
            b'+' => match p1 {
                Some(b'+') => two(self, PlusPlus),
                Some(b'=') => two(self, PlusAssign),
                _ => Plus,
            },
            b'-' => match p1 {
                Some(b'-') => two(self, MinusMinus),
                Some(b'=') => two(self, MinusAssign),
                _ => Minus,
            },
            b'*' => match p1 {
                Some(b'=') => two(self, StarAssign),
                _ => Star,
            },
            b'/' => match p1 {
                Some(b'=') => two(self, SlashAssign),
                _ => Slash,
            },
            b'%' => match p1 {
                Some(b'=') => two(self, PercentAssign),
                _ => Percent,
            },
            b'=' => match p1 {
                Some(b'=') => two(self, EqEq),
                _ => Assign,
            },
            b'!' => match p1 {
                Some(b'=') => two(self, NotEq),
                _ => Not,
            },
            b'<' => match (p1, p2) {
                (Some(b'<'), Some(b'=')) => {
                    self.bump();
                    self.bump();
                    ShlAssign
                }
                (Some(b'<'), _) => two(self, Shl),
                (Some(b'='), _) => two(self, Le),
                _ => Lt,
            },
            b'>' => match (p1, p2) {
                (Some(b'>'), Some(b'=')) => {
                    self.bump();
                    self.bump();
                    ShrAssign
                }
                (Some(b'>'), _) => two(self, Shr),
                (Some(b'='), _) => two(self, Ge),
                _ => Gt,
            },
            b'&' => match p1 {
                Some(b'&') => two(self, AndAnd),
                Some(b'=') => two(self, AmpAssign),
                _ => Amp,
            },
            b'|' => match p1 {
                Some(b'|') => two(self, OrOr),
                Some(b'=') => two(self, PipeAssign),
                _ => Pipe,
            },
            b'^' => match p1 {
                Some(b'=') => two(self, CaretAssign),
                _ => Caret,
            },
            b'~' => Tilde,
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'.' => Dot,
            b'?' => Question,
            b':' => Colon,
            b'#' => Hash,
            other => return Err(self.err(format!("unexpected character '{}'", other as char))),
        })
    }
}

/// Lex a full source string.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let mut lx = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        line_start: true,
    };
    let mut out = Vec::new();
    loop {
        lx.skip_trivia()?;
        let Some(c) = lx.peek() else { break };
        let (line, col, line_start) = (lx.line, lx.col, lx.line_start);
        lx.line_start = false;
        let tok = if c.is_ascii_alphabetic() || c == b'_' {
            let start = lx.pos;
            while matches!(lx.peek(), Some(ch) if ch.is_ascii_alphanumeric() || ch == b'_') {
                lx.bump();
            }
            Tok::Ident(
                std::str::from_utf8(&lx.src[start..lx.pos])
                    .unwrap()
                    .to_string(),
            )
        } else if c.is_ascii_digit()
            // leading-dot float literals like `.5f`
            || (c == b'.' && matches!(lx.peek2(), Some(d) if d.is_ascii_digit()))
        {
            lx.lex_number()?
        } else {
            Tok::Punct(lx.lex_punct()?)
        };
        out.push(Token {
            tok,
            line,
            col,
            line_start,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Punct;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_ints() {
        assert_eq!(
            toks("foo bar_2 42 0x1F 7u"),
            vec![
                Tok::ident("foo"),
                Tok::ident("bar_2"),
                Tok::Int {
                    value: 42,
                    unsigned: false
                },
                Tok::Int {
                    value: 31,
                    unsigned: false
                },
                Tok::Int {
                    value: 7,
                    unsigned: true
                },
            ]
        );
    }

    #[test]
    fn floats() {
        assert_eq!(
            toks("1.5 2.0f 3f 1e3 2.5e-2f"),
            vec![
                Tok::Float(1.5),
                Tok::Float(2.0),
                Tok::Float(3.0),
                Tok::Float(1000.0),
                Tok::Float(0.025),
            ]
        );
    }

    #[test]
    fn operators_maximal_munch() {
        assert_eq!(
            toks("a<<=b >>= << >> <= < ++ += +"),
            vec![
                Tok::ident("a"),
                Tok::Punct(Punct::ShlAssign),
                Tok::ident("b"),
                Tok::Punct(Punct::ShrAssign),
                Tok::Punct(Punct::Shl),
                Tok::Punct(Punct::Shr),
                Tok::Punct(Punct::Le),
                Tok::Punct(Punct::Lt),
                Tok::Punct(Punct::PlusPlus),
                Tok::Punct(Punct::PlusAssign),
                Tok::Punct(Punct::Plus),
            ]
        );
    }

    #[test]
    fn comments_stripped() {
        assert_eq!(
            toks("a // comment\nb /* multi\nline */ c"),
            vec![Tok::ident("a"), Tok::ident("b"), Tok::ident("c")]
        );
    }

    #[test]
    fn line_start_flags_and_continuations() {
        let ts = lex("#define A \\\n 1\nB").unwrap();
        // '#' starts a line; 'define', 'A', and '1' (after continuation) do
        // not; 'B' starts the next logical line.
        assert!(ts[0].line_start);
        assert!(!ts[1].line_start);
        assert!(!ts[2].line_start);
        assert!(!ts[3].line_start);
        assert!(ts[4].line_start);
        assert!(ts[4].tok.is_ident("B"));
    }

    #[test]
    fn member_access_lexes_as_dot() {
        assert_eq!(
            toks("threadIdx.x"),
            vec![
                Tok::ident("threadIdx"),
                Tok::Punct(Punct::Dot),
                Tok::ident("x")
            ]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn large_unsigned_hex() {
        // Pointer-style values used for specialized PTR_IN constants.
        assert_eq!(
            toks("0x200ca0200"),
            vec![Tok::Int {
                value: 0x200ca0200,
                unsigned: true
            }]
        );
    }
}
