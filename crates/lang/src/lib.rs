//! # ks-lang — CUDA-C-subset kernel language front end
//!
//! The developer-facing surface of the kernel-specialization toolchain:
//! kernels are written once, in a C dialect close to CUDA C, *in terms of
//! undefined constants* (all-caps macro names by convention, §4). At run
//! time the specialization engine supplies `-D NAME=value` definitions and
//! this crate's preprocessor + parser produce an AST in which those
//! parameters are literal constants — unlocking loop unrolling, constant
//! folding, strength reduction, and register blocking downstream.
//!
//! Pipeline: [`lexer`] → [`preproc`] (a real token-level C preprocessor:
//! object- and function-like macros, `#if/#ifdef/#elif/#else/#endif`,
//! `defined()`, command-line defines) → [`parser`] → [`sema`] (name
//! resolution + type checking producing a typed HIR).

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod preproc;
pub mod pretty;
pub mod sema;
pub mod token;

pub use ast::*;
pub use sema::hir;
pub use token::{LangError, Tok, Token};

/// Convenience: run the full front end.
///
/// `defines` are the command-line `-D NAME=value` pairs (value may be empty,
/// meaning `1`, as with `nvcc -D FLAG`).
pub fn frontend(
    source: &str,
    defines: &[(String, String)],
) -> Result<sema::hir::Program, LangError> {
    let toks = lexer::lex(source)?;
    let pp = preproc::preprocess(toks, defines)?;
    let unit = parser::parse(pp)?;
    sema::check(&unit)
}
