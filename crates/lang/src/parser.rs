//! Recursive-descent parser: preprocessed tokens → AST.

use crate::ast::*;
use crate::preproc::PRAGMA_UNROLL;
use crate::token::{LangError, Punct, Tok, Token};

pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

/// Parse a preprocessed token stream into a translation unit.
pub fn parse(toks: Vec<Token>) -> Result<TranslationUnit, LangError> {
    let mut p = Parser { toks, pos: 0 };
    let mut items = Vec::new();
    while !p.at_end() {
        items.push(p.item()?);
    }
    Ok(TranslationUnit { items })
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        let (l, c) = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| (t.line, t.col))
            .unwrap_or((0, 0));
        LangError::new("parse", l, c, msg)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == Some(&Tok::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), LangError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{}', found {:?}",
                p.as_str(),
                self.peek()
            )))
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(i)) if i == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            t => Err(self.err(format!("expected identifier, found {t:?}"))),
        }
    }

    /// Try to parse a type specifier starting at the current position.
    /// Returns `None` (without consuming) if the next tokens are not a type.
    fn try_type(&mut self) -> Option<TypeSpec> {
        let save = self.pos;
        let base = if self.eat_ident("void") {
            TypeSpec::Void
        } else if self.eat_ident("unsigned") {
            // `unsigned` or `unsigned int`
            self.eat_ident("int");
            TypeSpec::UInt
        } else if self.eat_ident("int") {
            TypeSpec::Int
        } else if self.eat_ident("float") {
            TypeSpec::Float
        } else if self.eat_ident("size_t") || self.eat_ident("unsigned_int") {
            TypeSpec::UInt
        } else {
            self.pos = save;
            return None;
        };
        let mut ty = base;
        while self.eat_punct(Punct::Star) {
            ty = ty.ptr();
        }
        Some(ty)
    }

    fn item(&mut self) -> Result<Item, LangError> {
        // Texture reference: `texture<float[, dims[, mode]]> name;`
        if self.eat_ident("texture") {
            self.expect_punct(Punct::Lt)?;
            let elem = self
                .try_type()
                .ok_or_else(|| self.err("expected element type in texture<>"))?;
            // Skip optional dimensionality / read-mode arguments.
            while self.eat_punct(Punct::Comma) {
                self.bump();
            }
            self.expect_punct(Punct::Gt)?;
            let name = self.expect_ident()?;
            self.expect_punct(Punct::Semi)?;
            return Ok(Item::Texture(TextureDecl { name, elem }));
        }
        // Qualifiers can appear in any order: __global__, __device__,
        // __constant__, __forceinline__, static, const.
        let mut kind: Option<FnKind> = None;
        let mut constant = false;
        loop {
            if self.eat_ident("__global__") {
                kind = Some(FnKind::Kernel);
            } else if self.eat_ident("__device__") {
                kind = Some(FnKind::Device);
            } else if self.eat_ident("__constant__") {
                constant = true;
            } else if self.eat_ident("__forceinline__")
                || self.eat_ident("__noinline__")
                || self.eat_ident("static")
                || self.eat_ident("inline")
                || self.eat_ident("const")
            {
                // accepted and ignored
            } else {
                break;
            }
        }
        let ty = self.try_type().ok_or_else(|| self.err("expected type"))?;
        let name = self.expect_ident()?;
        if constant {
            let mut dims = Vec::new();
            while self.eat_punct(Punct::LBracket) {
                dims.push(self.expr()?);
                self.expect_punct(Punct::RBracket)?;
            }
            self.expect_punct(Punct::Semi)?;
            if dims.is_empty() {
                return Err(self.err("__constant__ declarations must be arrays"));
            }
            return Ok(Item::Constant(ConstantDecl {
                name,
                elem: ty,
                dims,
            }));
        }
        let kind =
            kind.ok_or_else(|| self.err("top-level functions must be __global__ or __device__"))?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                // `const` in parameter types accepted and ignored.
                while self.eat_ident("const") {}
                let pty = self
                    .try_type()
                    .ok_or_else(|| self.err("expected parameter type"))?;
                while self.eat_ident("const") {}
                // `restrict` / `__restrict__` accepted and ignored.
                while self.eat_ident("__restrict__") || self.eat_ident("restrict") {}
                let pname = self.expect_ident()?;
                params.push(FnParam {
                    name: pname,
                    ty: pty,
                });
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        self.expect_punct(Punct::LBrace)?;
        let body = self.block_body()?;
        Ok(Item::Func(FuncDef {
            kind,
            name,
            ret: ty,
            params,
            body,
        }))
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, LangError> {
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.at_end() {
                return Err(self.err("unexpected end of input in block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        // #pragma unroll [N]
        if self.eat_ident(PRAGMA_UNROLL) {
            let factor = if let Some(Tok::Int { value, .. }) = self.peek() {
                let v = *value as u32;
                self.pos += 1;
                Some(v)
            } else {
                None
            };
            let s = self.stmt()?;
            return match s {
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    ..
                } => Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    unroll: Some(factor),
                }),
                other => Ok(other), // pragma on a non-loop: ignored
            };
        }
        if self.eat_punct(Punct::Semi) {
            return Ok(Stmt::Empty);
        }
        if self.eat_punct(Punct::LBrace) {
            return Ok(Stmt::Block(self.block_body()?));
        }
        if self.eat_ident("if") {
            self.expect_punct(Punct::LParen)?;
            let cond = self.expr()?;
            self.expect_punct(Punct::RParen)?;
            let then_s = Box::new(self.stmt()?);
            let else_s = if self.eat_ident("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If {
                cond,
                then_s,
                else_s,
            });
        }
        if self.eat_ident("for") {
            self.expect_punct(Punct::LParen)?;
            let init = if self.eat_punct(Punct::Semi) {
                None
            } else {
                Some(Box::new(self.decl_or_expr_stmt()?))
            };
            let cond = if self.peek() == Some(&Tok::Punct(Punct::Semi)) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(Punct::Semi)?;
            let step = if self.peek() == Some(&Tok::Punct(Punct::RParen)) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(Punct::RParen)?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
                unroll: None,
            });
        }
        if self.eat_ident("while") {
            self.expect_punct(Punct::LParen)?;
            let cond = self.expr()?;
            self.expect_punct(Punct::RParen)?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_ident("do") {
            let body = Box::new(self.stmt()?);
            if !self.eat_ident("while") {
                return Err(self.err("expected 'while' after do-body"));
            }
            self.expect_punct(Punct::LParen)?;
            let cond = self.expr()?;
            self.expect_punct(Punct::RParen)?;
            self.expect_punct(Punct::Semi)?;
            return Ok(Stmt::DoWhile { body, cond });
        }
        if self.eat_ident("return") {
            if self.eat_punct(Punct::Semi) {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_punct(Punct::Semi)?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.eat_ident("break") {
            self.expect_punct(Punct::Semi)?;
            return Ok(Stmt::Break);
        }
        if self.eat_ident("continue") {
            self.expect_punct(Punct::Semi)?;
            return Ok(Stmt::Continue);
        }
        if self.eat_ident("__syncthreads") {
            self.expect_punct(Punct::LParen)?;
            self.expect_punct(Punct::RParen)?;
            self.expect_punct(Punct::Semi)?;
            return Ok(Stmt::Sync);
        }
        self.decl_or_expr_stmt()
    }

    /// A declaration or an expression statement, consuming the trailing ';'.
    fn decl_or_expr_stmt(&mut self) -> Result<Stmt, LangError> {
        let shared = self.eat_ident("__shared__");
        let is_const = self.eat_ident("const");
        // Allow `__shared__` after `const` too.
        let shared = shared || self.eat_ident("__shared__");
        if let Some(ty) = self.try_type() {
            // Declaration (possibly multiple declarators: int a = 1, b = 2;)
            let mut decls = Vec::new();
            loop {
                let mut dty = ty.clone();
                while self.eat_punct(Punct::Star) {
                    dty = dty.ptr();
                }
                let name = self.expect_ident()?;
                let mut dims = Vec::new();
                while self.eat_punct(Punct::LBracket) {
                    dims.push(self.expr()?);
                    self.expect_punct(Punct::RBracket)?;
                }
                let init = if self.eat_punct(Punct::Assign) {
                    Some(self.assignment()?)
                } else {
                    None
                };
                decls.push(Stmt::Decl(Decl {
                    name,
                    ty: dty,
                    dims,
                    init,
                    shared,
                    is_const,
                }));
                if self.eat_punct(Punct::Semi) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
            return Ok(if decls.len() == 1 {
                decls.pop().unwrap()
            } else {
                Stmt::Multi(decls)
            });
        }
        if shared || is_const {
            return Err(self.err("expected type after qualifier"));
        }
        let e = self.expr()?;
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt::Expr(e))
    }

    // ---- expressions (C precedence) ----

    pub fn expr(&mut self) -> Result<Expr, LangError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, LangError> {
        let lhs = self.conditional()?;
        let op = match self.peek() {
            Some(Tok::Punct(Punct::Assign)) => AssignOp::Assign,
            Some(Tok::Punct(Punct::PlusAssign)) => AssignOp::Add,
            Some(Tok::Punct(Punct::MinusAssign)) => AssignOp::Sub,
            Some(Tok::Punct(Punct::StarAssign)) => AssignOp::Mul,
            Some(Tok::Punct(Punct::SlashAssign)) => AssignOp::Div,
            Some(Tok::Punct(Punct::PercentAssign)) => AssignOp::Rem,
            Some(Tok::Punct(Punct::ShlAssign)) => AssignOp::Shl,
            Some(Tok::Punct(Punct::ShrAssign)) => AssignOp::Shr,
            Some(Tok::Punct(Punct::AmpAssign)) => AssignOp::And,
            Some(Tok::Punct(Punct::PipeAssign)) => AssignOp::Or,
            Some(Tok::Punct(Punct::CaretAssign)) => AssignOp::Xor,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.assignment()?;
        Ok(Expr::Assign(op, Box::new(lhs), Box::new(rhs)))
    }

    fn conditional(&mut self) -> Result<Expr, LangError> {
        let c = self.binary(1)?;
        if self.eat_punct(Punct::Question) {
            let a = self.assignment()?;
            self.expect_punct(Punct::Colon)?;
            let b = self.conditional()?;
            Ok(Expr::Cond(Box::new(c), Box::new(a), Box::new(b)))
        } else {
            Ok(c)
        }
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        while let Some(&Tok::Punct(p)) = self.peek() {
            let (prec, op) = match p {
                Punct::Star => (10, BinaryOp::Mul),
                Punct::Slash => (10, BinaryOp::Div),
                Punct::Percent => (10, BinaryOp::Rem),
                Punct::Plus => (9, BinaryOp::Add),
                Punct::Minus => (9, BinaryOp::Sub),
                Punct::Shl => (8, BinaryOp::Shl),
                Punct::Shr => (8, BinaryOp::Shr),
                Punct::Lt => (7, BinaryOp::Lt),
                Punct::Le => (7, BinaryOp::Le),
                Punct::Gt => (7, BinaryOp::Gt),
                Punct::Ge => (7, BinaryOp::Ge),
                Punct::EqEq => (6, BinaryOp::Eq),
                Punct::NotEq => (6, BinaryOp::Ne),
                Punct::Amp => (5, BinaryOp::BitAnd),
                Punct::Caret => (4, BinaryOp::BitXor),
                Punct::Pipe => (3, BinaryOp::BitOr),
                Punct::AndAnd => (2, BinaryOp::LogicalAnd),
                Punct::OrOr => (1, BinaryOp::LogicalOr),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        // Cast: '(' type ')' unary — distinguished from parenthesized expr
        // by attempting a type parse after '('.
        if self.peek() == Some(&Tok::Punct(Punct::LParen)) {
            let save = self.pos;
            self.pos += 1;
            if let Some(ty) = self.try_type() {
                if self.eat_punct(Punct::RParen) {
                    let inner = self.unary()?;
                    return Ok(Expr::Cast(ty, Box::new(inner)));
                }
            }
            self.pos = save;
        }
        match self.peek() {
            Some(Tok::Punct(Punct::Minus)) => {
                self.pos += 1;
                Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.unary()?)))
            }
            Some(Tok::Punct(Punct::Plus)) => {
                self.pos += 1;
                self.unary()
            }
            Some(Tok::Punct(Punct::Not)) => {
                self.pos += 1;
                Ok(Expr::Unary(UnaryOp::LogicalNot, Box::new(self.unary()?)))
            }
            Some(Tok::Punct(Punct::Tilde)) => {
                self.pos += 1;
                Ok(Expr::Unary(UnaryOp::BitNot, Box::new(self.unary()?)))
            }
            Some(Tok::Punct(Punct::Star)) => {
                self.pos += 1;
                Ok(Expr::Unary(UnaryOp::Deref, Box::new(self.unary()?)))
            }
            Some(Tok::Punct(Punct::PlusPlus)) => {
                self.pos += 1;
                Ok(Expr::Unary(UnaryOp::PreInc, Box::new(self.unary()?)))
            }
            Some(Tok::Punct(Punct::MinusMinus)) => {
                self.pos += 1;
                Ok(Expr::Unary(UnaryOp::PreDec, Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct(Punct::LBracket) {
                let idx = self.expr()?;
                self.expect_punct(Punct::RBracket)?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.peek() == Some(&Tok::Punct(Punct::PlusPlus)) {
                self.pos += 1;
                e = Expr::Unary(UnaryOp::PostInc, Box::new(e));
            } else if self.peek() == Some(&Tok::Punct(Punct::MinusMinus)) {
                self.pos += 1;
                e = Expr::Unary(UnaryOp::PostDec, Box::new(e));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        match self.bump() {
            Some(Tok::Int { value, unsigned }) => Ok(Expr::IntLit { value, unsigned }),
            Some(Tok::Float(v)) => Ok(Expr::FloatLit(v)),
            Some(Tok::Punct(Punct::LParen)) => {
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                // Built-in geometry variables with member access.
                let builtin = match name.as_str() {
                    "threadIdx" => Some(BuiltinVar::ThreadIdx),
                    "blockIdx" => Some(BuiltinVar::BlockIdx),
                    "blockDim" => Some(BuiltinVar::BlockDim),
                    "gridDim" => Some(BuiltinVar::GridDim),
                    _ => None,
                };
                if let Some(b) = builtin {
                    self.expect_punct(Punct::Dot)?;
                    let member = self.expect_ident()?;
                    let d = match member.as_str() {
                        "x" => Dim3::X,
                        "y" => Dim3::Y,
                        "z" => Dim3::Z,
                        m => return Err(self.err(format!("unknown component .{m}"))),
                    };
                    return Ok(Expr::Builtin(b, d));
                }
                // Function call?
                if self.peek() == Some(&Tok::Punct(Punct::LParen)) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.assignment()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma)?;
                        }
                    }
                    return Ok(Expr::Call(name, args));
                }
                Ok(Expr::Ident(name))
            }
            t => Err(self.err(format!("unexpected token {t:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::preproc::preprocess;

    fn parse_src(src: &str) -> TranslationUnit {
        parse(preprocess(lex(src).unwrap(), &[]).unwrap()).unwrap()
    }

    #[test]
    fn parses_listing_4_1_kernel() {
        // The run-time-evaluated mathTest kernel from the dissertation.
        let src = r#"
            __global__ void mathTest(int* in, int* out, int argA, int argB, int loopCount) {
                int acc = 0;
                const unsigned int stride = argA * argB;
                const unsigned int offset = blockIdx.x * blockDim.x + threadIdx.x;
                for (int i = 0; i < loopCount; i++) {
                    acc += *(in + offset + i * stride);
                }
                *(out + offset) = acc;
                return;
            }
        "#;
        let tu = parse_src(src);
        assert_eq!(tu.items.len(), 1);
        let Item::Func(f) = &tu.items[0] else {
            panic!()
        };
        assert_eq!(f.kind, FnKind::Kernel);
        assert_eq!(f.name, "mathTest");
        assert_eq!(f.params.len(), 5);
        assert_eq!(f.params[0].ty, TypeSpec::Int.ptr());
        // body: acc decl, stride decl, offset decl, for, assign, return
        assert_eq!(f.body.len(), 6);
        assert!(matches!(&f.body[3], Stmt::For { .. }));
    }

    #[test]
    fn shared_and_constant_decls() {
        let src = r#"
            __constant__ float filt[32];
            __global__ void k(float* p) {
                __shared__ float tile[4][8];
                tile[threadIdx.y][threadIdx.x] = p[0];
                __syncthreads();
            }
        "#;
        let tu = parse_src(src);
        let Item::Constant(c) = &tu.items[0] else {
            panic!()
        };
        assert_eq!(c.name, "filt");
        assert_eq!(c.dims.len(), 1);
        let Item::Func(f) = &tu.items[1] else {
            panic!()
        };
        let Stmt::Decl(d) = &f.body[0] else { panic!() };
        assert!(d.shared);
        assert_eq!(d.dims.len(), 2);
        assert!(matches!(f.body[2], Stmt::Sync));
    }

    #[test]
    fn pragma_unroll_binds_to_loop() {
        let src = r#"
            __global__ void k(int* p, int n) {
                #pragma unroll 4
                for (int i = 0; i < n; i++) { p[i] = i; }
            }
        "#;
        let tu = parse_src(src);
        let Item::Func(f) = &tu.items[0] else {
            panic!()
        };
        let Stmt::For { unroll, .. } = &f.body[0] else {
            panic!()
        };
        assert_eq!(*unroll, Some(Some(4)));
    }

    #[test]
    fn cast_vs_paren_disambiguation() {
        let src = r#"
            __global__ void k(int* out) {
                int a = (int)1.5f;
                int b = (a) + 2;
                float* p = (float*)out;
                p[0] = 0.0f;
            }
        "#;
        let tu = parse_src(src);
        let Item::Func(f) = &tu.items[0] else {
            panic!()
        };
        let Stmt::Decl(d) = &f.body[0] else { panic!() };
        assert!(matches!(d.init, Some(Expr::Cast(TypeSpec::Int, _))));
        let Stmt::Decl(d2) = &f.body[2] else { panic!() };
        assert!(matches!(&d2.init, Some(Expr::Cast(TypeSpec::Ptr(_), _))));
    }

    #[test]
    fn operator_precedence() {
        let src = "__global__ void k(int* o, int a, int b) { o[0] = a + b * 2 << 1; }";
        let tu = parse_src(src);
        let Item::Func(f) = &tu.items[0] else {
            panic!()
        };
        let Stmt::Expr(Expr::Assign(_, _, rhs)) = &f.body[0] else {
            panic!()
        };
        // ((a + (b*2)) << 1)
        let Expr::Binary(BinaryOp::Shl, l, _) = rhs.as_ref() else {
            panic!()
        };
        assert!(matches!(l.as_ref(), Expr::Binary(BinaryOp::Add, _, _)));
    }

    #[test]
    fn multiple_declarators() {
        let src = "__global__ void k(int* o) { int a = 1, b = 2; o[0] = a + b; }";
        let tu = parse_src(src);
        let Item::Func(f) = &tu.items[0] else {
            panic!()
        };
        assert!(matches!(&f.body[0], Stmt::Multi(v) if v.len() == 2));
    }

    #[test]
    fn ternary_and_compound_assign() {
        let src = "__global__ void k(int* o, int a) { o[0] += a > 0 ? a : -a; }";
        let tu = parse_src(src);
        let Item::Func(f) = &tu.items[0] else {
            panic!()
        };
        let Stmt::Expr(Expr::Assign(AssignOp::Add, _, rhs)) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(rhs.as_ref(), Expr::Cond(..)));
    }

    #[test]
    fn device_function() {
        let src = r#"
            __device__ float square(float x) { return x * x; }
            __global__ void k(float* o) { o[0] = square(3.0f); }
        "#;
        let tu = parse_src(src);
        let Item::Func(f) = &tu.items[0] else {
            panic!()
        };
        assert_eq!(f.kind, FnKind::Device);
        assert_eq!(f.ret, TypeSpec::Float);
    }

    #[test]
    fn missing_semicolon_is_error() {
        let src = "__global__ void k(int* o) { o[0] = 1 }";
        let toks = preprocess(lex(src).unwrap(), &[]).unwrap();
        assert!(parse(toks).is_err());
    }

    #[test]
    fn while_and_do_while() {
        let src = r#"
            __global__ void k(int* o, int n) {
                int i = 0;
                while (i < n) { i++; }
                do { i--; } while (i > 0);
                o[0] = i;
            }
        "#;
        let tu = parse_src(src);
        let Item::Func(f) = &tu.items[0] else {
            panic!()
        };
        assert!(matches!(&f.body[1], Stmt::While { .. }));
        assert!(matches!(&f.body[2], Stmt::DoWhile { .. }));
    }
}
